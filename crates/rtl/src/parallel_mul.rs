//! Gate-level parallel FP-INT multiplier (INT4 configuration): the full
//! Figure 5(b)–(d) datapath as a netlist, bit-exact with the behavioral
//! [`pacq_fp16::ParallelFpIntMultiplier`] under flush-to-zero.
//!
//! One 16-bit activation and one packed word enter; four FP16 biased
//! products `A × (B_lane + 1032)` leave. The shared sign (1 XOR), shared
//! exponent (one INT5-class adder) and the four narrow product lanes are
//! exactly the sharing that makes the unit cheap (Figure 9).

use crate::adder::{add_constant, incrementer};
use crate::multiplier::parallel_int11_multiplier;
use crate::netlist::{Bus, Netlist, NodeId};

/// Handle to the built parallel multiplier.
#[derive(Debug, Clone)]
pub struct ParallelFpIntCircuit {
    /// The netlist.
    pub netlist: Netlist,
    outs: Vec<Bus>,
}

impl ParallelFpIntCircuit {
    /// Builds the INT4 (4-lane) circuit.
    pub fn build() -> Self {
        Self::build_with_lanes(4)
    }

    /// Builds the INT2 (8-lane) circuit.
    pub fn build_int2() -> Self {
        Self::build_with_lanes(8)
    }

    fn build_with_lanes(lanes: usize) -> Self {
        let mut n = Netlist::new();
        let a = n.input_bus(16);
        let packed = n.input_bus(16);
        let outs = parallel_fp_int_multiplier_lanes(&mut n, &a, &packed, lanes);
        ParallelFpIntCircuit { netlist: n, outs }
    }

    /// Number of weight lanes (4 for INT4, 8 for INT2).
    pub fn lanes(&self) -> usize {
        self.outs.len()
    }

    /// Multiplies one FP16 activation by the four packed INT4 biased
    /// codes, returning the four FP16 product bit patterns.
    ///
    /// # Panics
    ///
    /// Panics when built for INT2; use [`Self::multiply_all`].
    pub fn multiply(&mut self, a: u16, packed: u16) -> [u16; 4] {
        assert_eq!(self.lanes(), 4, "multiply() is the INT4 entry point");
        let all = self.multiply_all(a, packed);
        core::array::from_fn(|l| all[l])
    }

    /// Multiplies one FP16 activation by every packed biased code,
    /// returning one FP16 product per lane.
    pub fn multiply_all(&mut self, a: u16, packed: u16) -> Vec<u16> {
        let mut inputs = Vec::with_capacity(32);
        for i in 0..16 {
            inputs.push((a >> i) & 1 == 1);
        }
        for i in 0..16 {
            inputs.push((packed >> i) & 1 == 1);
        }
        self.netlist.simulate(&inputs);
        self.outs
            .iter()
            .map(|o| self.netlist.read_bus(o) as u16)
            .collect()
    }
}

/// Builds the INT4 parallel FP-INT multiplier; returns the four output
/// buses.
///
/// # Panics
///
/// Panics unless both inputs are 16-bit buses.
pub fn parallel_fp_int_multiplier(n: &mut Netlist, a: &[NodeId], packed: &[NodeId]) -> [Bus; 4] {
    let outs = parallel_fp_int_multiplier_lanes(n, a, packed, 4);
    core::array::from_fn(|l| outs[l].clone())
}

/// Builds the parallel FP-INT multiplier for 4 (INT4) or 8 (INT2) lanes;
/// returns one output bus per lane.
///
/// For INT2 the weight nibble is 2 bits and the biased value is
/// `1024 + code` with `code ∈ [0, 3]` (offset 1026 after the `+2` bias).
///
/// # Panics
///
/// Panics unless both inputs are 16-bit buses and `lanes` is 4 or 8.
pub fn parallel_fp_int_multiplier_lanes(
    n: &mut Netlist,
    a: &[NodeId],
    packed: &[NodeId],
    lanes: usize,
) -> Vec<Bus> {
    assert_eq!(a.len(), 16, "a must be 16 bits");
    assert_eq!(packed.len(), 16, "packed word must be 16 bits");
    assert!(matches!(lanes, 4 | 8), "lanes must be 4 (INT4) or 8 (INT2)");
    let code_bits = 16 / lanes;

    let sign = a[15];
    let ea: Bus = a[10..15].to_vec();
    let ma: Bus = a[..10].to_vec();

    // Activation class (FTZ: exp==0 is zero).
    let exp_any = n.or_reduce(&ea);
    let exp_all = n.and_reduce(&ea);
    let man_any = n.or_reduce(&ma);
    let a_zero = n.not(exp_any);
    let man_none = n.not(man_any);
    let a_inf = n.and(exp_all, man_none);
    let a_nan = n.and(exp_all, man_any);

    // 11-bit significand.
    let mut sig_a = ma.clone();
    sig_a.push(exp_any);

    // --- parallel INT11 MUL + Figure 5(d) assembly ----------------------
    // (2-bit INT2 nibbles are zero-extended to the 4-bit lane datapath;
    // the arithmetic is identical with the top partial products gated.)
    let zero_pad = n.constant(false);
    let nibbles: Vec<Bus> = (0..lanes)
        .map(|l| {
            let mut nib: Bus = packed[code_bits * l..code_bits * (l + 1)].to_vec();
            while nib.len() < 4 {
                nib.push(zero_pad);
            }
            nib
        })
        .collect();
    let raws: Vec<Bus> = if lanes == 4 {
        let arr: [Bus; 4] = core::array::from_fn(|l| nibbles[l].clone());
        parallel_int11_multiplier(n, &sig_a, &arr).to_vec()
    } else {
        let lo: [Bus; 4] = core::array::from_fn(|l| nibbles[l].clone());
        let hi: [Bus; 4] = core::array::from_fn(|l| nibbles[4 + l].clone());
        let mut v = parallel_int11_multiplier(n, &sig_a, &lo).to_vec();
        v.extend(parallel_int11_multiplier(n, &sig_a, &hi));
        v
    };

    // --- shared INT5 exponent adder: biased base = ea + 10 --------------
    let zero = n.constant(false);
    let ea7: Bus = ea.iter().copied().chain([zero, zero]).collect();
    let (base_exp, _) = add_constant(n, &ea7, 10);

    (0..lanes)
        .map(|lane| {
            let product = &raws[lane];

            // Per-lane 1-bit normalization.
            let norm = product[21];
            let kept: Bus = (0..11)
                .map(|i| n.mux(norm, product[10 + i], product[11 + i]))
                .collect();
            let round_bit = n.mux(norm, product[9], product[10]);
            let sticky_lo = n.or_reduce(&product[..9]);
            let sticky_hi = n.or(sticky_lo, product[9]);
            let sticky = n.mux(norm, sticky_lo, sticky_hi);

            // Per-lane rounding unit (RNE).
            let tie_or_up = n.or(sticky, kept[0]);
            let round_up = n.and(round_bit, tie_or_up);
            let (mantissa, round_carry) = incrementer(n, &kept, round_up);

            // Exponent: base + norm + round_carry; overflow at >= 31.
            let (x0, _) = incrementer(n, &base_exp, norm);
            let (biased, _) = incrementer(n, &x0, round_carry);
            let low_all = n.and_reduce(&biased[..5]);
            let hi_or = n.or(biased[5], biased[6]);
            let overflow = n.or(hi_or, low_all);

            // Normal result {sign, biased[4:0], mantissa[9:0]}.
            let mut result: Bus = mantissa[..10].to_vec();
            result.extend_from_slice(&biased[..5]);

            // Overflow or inf input → {sign, 0x7C00}; zero input → {sign, 0};
            // NaN input → canonical NaN.
            let inf_sel = n.or(overflow, a_inf);
            let inf_bits = n.constant_bus(0x7C00, 15);
            let with_inf = n.mux_bus(inf_sel, &result, &inf_bits);
            let zero_bits = n.constant_bus(0x0000, 15);
            let mut with_zero = n.mux_bus(a_zero, &with_inf, &zero_bits);
            with_zero.push(sign);
            let nan_bits = n.constant_bus(0x7E00, 16);
            n.mux_bus(a_nan, &with_zero, &nan_bits)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacq_fp16::{Fp16, PackedWord, ParallelFpIntMultiplier, SubnormalMode, WeightPrecision};

    fn behavioral(a: u16, packed: u16) -> [u16; 4] {
        let unit = ParallelFpIntMultiplier::with_subnormal_mode(
            WeightPrecision::Int4,
            SubnormalMode::FlushToZero,
        );
        let t = unit.multiply(Fp16::from_bits(a), PackedWord::from_bits(packed));
        core::array::from_fn(|l| t.lane_traces()[l].product.to_bits())
    }

    fn same(x: u16, y: u16) -> bool {
        let fx = Fp16::from_bits(x);
        let fy = Fp16::from_bits(y);
        (fx.is_nan() && fy.is_nan()) || x == y
    }

    #[test]
    fn matches_behavioral_full_activation_sweep() {
        let mut c = ParallelFpIntCircuit::build();
        // Stride through activations × a few packed words covering all 16
        // codes.
        for &packed in &[0x7530u16, 0xFA86, 0x0000, 0xFFFF, 0x8421] {
            for step in 0u16..=2047 {
                let a = step.wrapping_mul(31).wrapping_add(7);
                let got = c.multiply(a, packed);
                let want = behavioral(a, packed);
                for l in 0..4 {
                    assert!(
                        same(got[l], want[l]),
                        "A={a:04x} packed={packed:04x} lane {l}: rtl {:04x} behav {:04x}",
                        got[l],
                        want[l]
                    );
                }
            }
        }
    }

    /// All 2^16 activations × packed words covering all 16 codes (run
    /// with `cargo test -p pacq-rtl --release -- --ignored`).
    #[test]
    #[ignore = "exhaustive; run in release"]
    fn matches_behavioral_exhaustive() {
        let mut c = ParallelFpIntCircuit::build();
        for &packed in &[0x3210u16, 0x7654, 0xBA98, 0xFEDC] {
            for a in 0u16..=u16::MAX {
                let got = c.multiply(a, packed);
                let want = behavioral(a, packed);
                for l in 0..4 {
                    assert!(
                        same(got[l], want[l]),
                        "A={a:04x} packed={packed:04x} lane {l}"
                    );
                }
            }
        }
    }

    /// INT2: eight lanes against the behavioral model, sweeping
    /// activations and packed words covering all 4 codes.
    #[test]
    fn int2_matches_behavioral_sweep() {
        let mut c = ParallelFpIntCircuit::build_int2();
        assert_eq!(c.lanes(), 8);
        let unit = ParallelFpIntMultiplier::with_subnormal_mode(
            WeightPrecision::Int2,
            SubnormalMode::FlushToZero,
        );
        for &packed in &[0x1B1Bu16, 0xE4E4, 0x0000, 0xFFFF] {
            for step in 0u16..=2047 {
                let a = step.wrapping_mul(29).wrapping_add(3);
                let got = c.multiply_all(a, packed);
                let t = unit.multiply(Fp16::from_bits(a), PackedWord::from_bits(packed));
                for (l, lt) in t.lane_traces().iter().enumerate() {
                    assert!(
                        same(got[l], lt.product.to_bits()),
                        "A={a:04x} packed={packed:04x} lane {l}: rtl {:04x} behav {:04x}",
                        got[l],
                        lt.product.to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn specials_propagate() {
        let mut c = ParallelFpIntCircuit::build();
        let packed = 0x7530;
        for p in c.multiply(0x7E00, packed) {
            assert!(Fp16::from_bits(p).is_nan());
        }
        for p in c.multiply(0xFC00, packed) {
            assert_eq!(p, 0xFC00);
        }
        for p in c.multiply(0x8000, packed) {
            assert_eq!(p, 0x8000);
        }
        // Subnormal activation flushes.
        for p in c.multiply(0x0001, packed) {
            assert_eq!(p, 0x0000);
        }
    }

    #[test]
    fn lane_products_are_biased_multiples() {
        let mut c = ParallelFpIntCircuit::build();
        // A = 2.0, codes {0,5,10,15} → products 2×(1024+code).
        let packed = 0xFA50; // nibbles 0,5,10,15
        let got = c.multiply(Fp16::from_f32(2.0).to_bits(), packed);
        for (l, &code) in [0u32, 5, 10, 15].iter().enumerate() {
            assert_eq!(
                Fp16::from_bits(got[l]).to_f32(),
                2.0 * (1024.0 + code as f32),
                "lane {l}"
            );
        }
    }

    #[test]
    fn shares_hardware_with_the_baseline_shape() {
        // The parallel unit's gate count must be well below 4 baseline
        // multipliers (the whole point of the reuse story).
        let base = crate::Fp16MulCircuit::build();
        let par = ParallelFpIntCircuit::build();
        let ratio =
            par.netlist.gate_counts().total() as f64 / base.netlist.gate_counts().total() as f64;
        assert!(ratio < 2.5, "parallel/baseline gates = {ratio}");
    }
}
