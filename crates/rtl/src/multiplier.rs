//! Mantissa multiplier arrays: the baseline 11×11 shift-add array
//! ("INT11 MUL: 10 INT16 adders") and the parallel four-lane 11×4 array
//! of Figure 5(c) ("Parallel INT11 MUL: 12 INT16 adders, 4 INT6 adders"),
//! plus the Figure 5(d) product assembly.

use crate::adder::{incrementer, ripple_adder};
use crate::netlist::{Bus, Netlist, NodeId};

/// Shift-add multiplier: `a` (width `wa`) × `b` (width `wb`) → product of
/// `wa + wb` bits.
///
/// Structure: partial product rows `a & b[i]` reduced by a running-sum
/// chain — after row `i`, result bit `i` is final and the upper `wa` bits
/// ripple on. Row 0 needs no adder, so an 11×11 multiply uses exactly the
/// 10 adders Table I counts (and 11×4 uses 3 per lane → 12 across the
/// four lanes).
///
/// # Panics
///
/// Panics if either operand is empty.
pub fn shift_add_multiplier(n: &mut Netlist, a: &[NodeId], b: &[NodeId]) -> Bus {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "multiplier operands must be non-empty"
    );
    let wa = a.len();
    let zero = n.constant(false);

    // Row 0: initialize the (wa+1)-bit running sum (no adder needed).
    let mut running: Bus = a.iter().map(|&ai| n.and(ai, b[0])).collect();
    running.push(zero);
    let mut result: Bus = Vec::with_capacity(wa + b.len());

    for &bi in &b[1..] {
        // The running sum's LSB is final: retire it as a result bit.
        result.push(running[0]);
        // Partial product row.
        let pp: Bus = a.iter().map(|&ai| n.and(ai, bi)).collect();
        // new running = running[wa:1] + pp (one wa-bit adder per row).
        let upper: Bus = running[1..].to_vec();
        let (mut sum, cout) = ripple_adder(n, &pp, &upper, zero);
        sum.push(cout);
        running = sum;
        debug_assert_eq!(running.len(), wa + 1);
    }
    result.extend_from_slice(&running);
    result.truncate(wa + b.len());
    result
}

/// The Figure 5(d) assembly: `(sig_a << 10) + i` where `sig_a` is the
/// 11-bit activation significand and `i` the 15-bit `sig_a × y` product.
/// Returns the 22-bit biased significand product.
///
/// Structure: `i[9:0]` passes through; `i[14:10]` adds to `sig_a[5:0]` in
/// one INT6 adder; the carry ripples into `sig_a[10:6]` via an
/// incrementer.
///
/// # Panics
///
/// Panics unless `sig_a` is 11 bits and `i` is 15 bits.
pub fn assemble_biased_product(n: &mut Netlist, sig_a: &[NodeId], i: &[NodeId]) -> Bus {
    assert_eq!(sig_a.len(), 11, "sig_a must be 11 bits");
    assert_eq!(i.len(), 15, "intermediate product must be 15 bits");
    let zero = n.constant(false);

    let mut out: Bus = i[..10].to_vec();

    // INT6 adder: sig_a[5:0] + {0, i[14:10]}.
    let mut i_hi: Bus = i[10..15].to_vec();
    i_hi.push(zero);
    let (mid, c6) = ripple_adder(n, &sig_a[..6], &i_hi, zero);
    out.extend_from_slice(&mid);

    // Carry ripple into sig_a[10:6].
    let (hi, c_top) = incrementer(n, &sig_a[6..11], c6);
    out.extend_from_slice(&hi);
    out.push(c_top);
    debug_assert_eq!(out.len(), 22);
    out
}

/// The baseline INT11 multiplier: 11×11 → 22 bits.
///
/// # Panics
///
/// Panics unless both operands are 11 bits.
pub fn int11_multiplier(n: &mut Netlist, a: &[NodeId], b: &[NodeId]) -> Bus {
    assert_eq!(a.len(), 11, "a must be 11 bits");
    assert_eq!(b.len(), 11, "b must be 11 bits");
    let p = shift_add_multiplier(n, a, b);
    debug_assert_eq!(p.len(), 22);
    p
}

/// The parallel INT11 multiplier of Figure 5(c): four 11×4 products of
/// one significand against four weight nibbles, each assembled into the
/// full 22-bit biased product.
///
/// # Panics
///
/// Panics unless `sig_a` is 11 bits and 4 nibbles of 4 bits are given.
pub fn parallel_int11_multiplier(
    n: &mut Netlist,
    sig_a: &[NodeId],
    nibbles: &[Bus; 4],
) -> [Bus; 4] {
    assert_eq!(sig_a.len(), 11, "sig_a must be 11 bits");
    core::array::from_fn(|lane| {
        let y = &nibbles[lane];
        assert_eq!(y.len(), 4, "weight nibble must be 4 bits");
        let mut i = shift_add_multiplier(n, sig_a, y);
        debug_assert_eq!(i.len(), 15);
        i.truncate(15);
        assemble_biased_product(n, sig_a, &i)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(v: u64, w: usize) -> Vec<bool> {
        (0..w).map(|i| (v >> i) & 1 == 1).collect()
    }

    #[test]
    fn small_multiplier_exhaustive() {
        let mut n = Netlist::new();
        let a = n.input_bus(4);
        let b = n.input_bus(4);
        let p = shift_add_multiplier(&mut n, &a, &b);
        assert_eq!(p.len(), 8);
        for x in 0u64..16 {
            for y in 0u64..16 {
                let mut inputs = bits(x, 4);
                inputs.extend(bits(y, 4));
                n.simulate(&inputs);
                assert_eq!(n.read_bus(&p), x * y, "{x} × {y}");
            }
        }
    }

    #[test]
    fn int11_multiplier_randomized() {
        let mut n = Netlist::new();
        let a = n.input_bus(11);
        let b = n.input_bus(11);
        let p = int11_multiplier(&mut n, &a, &b);
        let mut x: u64 = 0xBEEF;
        for _ in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let va = x & 0x7FF;
            let vb = (x >> 11) & 0x7FF;
            let mut inputs = bits(va, 11);
            inputs.extend(bits(vb, 11));
            n.simulate(&inputs);
            assert_eq!(n.read_bus(&p), va * vb, "{va} × {vb}");
        }
    }

    #[test]
    fn int11_boundary_cases() {
        let mut n = Netlist::new();
        let a = n.input_bus(11);
        let b = n.input_bus(11);
        let p = int11_multiplier(&mut n, &a, &b);
        for (va, vb) in [
            (0, 0),
            (0x7FF, 0x7FF),
            (0x400, 0x400),
            (1, 0x7FF),
            (0x7FF, 1),
        ] {
            let mut inputs = bits(va, 11);
            inputs.extend(bits(vb, 11));
            n.simulate(&inputs);
            assert_eq!(n.read_bus(&p), va * vb);
        }
    }

    #[test]
    fn assembly_equals_shifted_add_exhaustively_on_nibbles() {
        let mut n = Netlist::new();
        let sig_a = n.input_bus(11);
        let y = n.input_bus(4);
        let mut i = shift_add_multiplier(&mut n, &sig_a, &y);
        i.truncate(15);
        let out = assemble_biased_product(&mut n, &sig_a, &i);
        let mut x: u64 = 7;
        for _ in 0..1500 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let va = (x & 0x7FF) | 0x400; // normalized significand
            let vy = (x >> 11) & 0xF;
            let mut inputs = bits(va, 11);
            inputs.extend(bits(vy, 4));
            n.simulate(&inputs);
            assert_eq!(n.read_bus(&out), (va << 10) + va * vy, "sig {va} y {vy}");
        }
    }

    #[test]
    fn parallel_array_matches_behavioral_intermediates() {
        let mut n = Netlist::new();
        let sig_a = n.input_bus(11);
        let nib: [Bus; 4] = core::array::from_fn(|_| n.input_bus(4));
        let outs = parallel_int11_multiplier(&mut n, &sig_a, &nib);
        let codes = [3u64, 0, 15, 8];
        for va in [0x400u64, 0x555, 0x7FF, 0x6AB] {
            let mut inputs = bits(va, 11);
            for &c in &codes {
                inputs.extend(bits(c, 4));
            }
            n.simulate(&inputs);
            for (lane, &c) in codes.iter().enumerate() {
                assert_eq!(
                    n.read_bus(&outs[lane]),
                    va * (1024 + c),
                    "sig {va} code {c}"
                );
            }
        }
    }

    #[test]
    fn adder_budget_matches_table_i() {
        // The 11×11 array burns 10 adder rows; the four 11×4 lanes burn
        // 3 each. XOR gates are a good adder proxy (2 per full-adder bit).
        let mut base = Netlist::new();
        let a = base.input_bus(11);
        let b = base.input_bus(11);
        let _ = int11_multiplier(&mut base, &a, &b);

        let mut par = Netlist::new();
        let sig = par.input_bus(11);
        let nib: [Bus; 4] = core::array::from_fn(|_| par.input_bus(4));
        let _ = parallel_int11_multiplier(&mut par, &sig, &nib);

        // Parallel array: 12 narrow adders + the Figure 5(d) assembly vs
        // 10 wide adders. The gate-level ratio (~1.5) brackets the
        // calibrated area model's 820/600 ≈ 1.37 for the same pair.
        let (gb, gp) = (base.gate_counts().total(), par.gate_counts().total());
        let ratio = gp as f64 / gb as f64;
        assert!(
            (1.1..1.7).contains(&ratio),
            "parallel/baseline gate ratio {ratio} ({gb} vs {gp})"
        );
    }
}
