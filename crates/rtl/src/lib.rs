//! # pacq-rtl — gate-level netlist models of the PacQ arithmetic units
//!
//! The paper's hardware numbers come from RTL synthesis; this crate
//! carries an actual gate-level description of the Table I units:
//!
//! * [`netlist`] — a minimal combinational netlist with topological
//!   simulation, gate counting and toggle (switching-activity) counting;
//! * [`adder`] — full adders, ripple-carry adders, incrementers;
//! * [`multiplier`] — the 11×11 shift-add array (10 adders, as Table I
//!   counts) and the Figure 5(c) four-lane 11×4 parallel array
//!   (12 + 4 adders) with the Figure 5(d) assembly;
//! * [`fp16_mul`] — the complete baseline FP16 multiplier;
//! * [`parallel_mul`] — the complete parallel FP-INT multiplier.
//!
//! Every circuit is proved bit-exact against the behavioral models of
//! `pacq-fp16` (flush-to-zero subnormal handling, as hardware
//! multipliers commonly implement), and the gate counts provide an
//! independent cross-check of the calibrated cost model in
//! `pacq-energy` (see `tests::area_cross_check`).
//!
//! ## Example
//!
//! ```
//! use pacq_rtl::Fp16MulCircuit;
//! use pacq_fp16::Fp16;
//!
//! let mut circuit = Fp16MulCircuit::build();
//! let out = circuit.multiply(
//!     Fp16::from_f32(1.5).to_bits(),
//!     Fp16::from_f32(-2.0).to_bits(),
//! );
//! assert_eq!(Fp16::from_bits(out).to_f32(), -3.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod adder;
pub mod fp16_mul;
pub mod multiplier;
pub mod netlist;
pub mod parallel_mul;
pub mod vcd;

pub use activity::{measure, ActivityProfile, MulKind};
pub use fp16_mul::Fp16MulCircuit;
pub use netlist::{Bus, Gate, GateCounts, Netlist, NodeId, GATE_CLASSES};
pub use parallel_mul::ParallelFpIntCircuit;
pub use vcd::{parse_transition_counts, VcdRecorder};

#[cfg(test)]
mod tests {
    use super::*;

    /// The gate-level area ratio of the parallel FP-INT multiplier over
    /// the baseline FP16 multiplier, computed from actual netlists,
    /// cross-checks the calibrated area model of `pacq-energy`
    /// (812 → 1152 µm², ratio ≈ 1.42).
    #[test]
    fn area_cross_check() {
        let base = Fp16MulCircuit::build();
        let par = ParallelFpIntCircuit::build();
        let rtl_ratio = par.netlist.area_ge() / base.netlist.area_ge();

        let model_ratio = pacq_energy::GemmUnit::ParallelFpIntMul.area_um2()
            / pacq_energy::GemmUnit::BaselineFp16Mul.area_um2();

        assert!(
            (rtl_ratio - model_ratio).abs() / model_ratio < 0.35,
            "gate-level ratio {rtl_ratio:.3} vs calibrated model {model_ratio:.3}"
        );
        // And in absolute terms the parallel unit must cost more silicon
        // but far less than 4 separate multipliers.
        assert!(rtl_ratio > 1.05, "ratio {rtl_ratio}");
        assert!(rtl_ratio < 2.5, "ratio {rtl_ratio}");
    }

    /// Toggle counting gives a dynamic-power proxy: the parallel unit's
    /// switching per produced product is LOWER than the baseline's
    /// (it shares the activation operand across four products) — the
    /// physical root of Figure 8's throughput/watt win.
    #[test]
    fn switching_energy_per_product_favors_parallel() {
        let mut base = Fp16MulCircuit::build();
        let mut par = ParallelFpIntCircuit::build();

        let mut x: u64 = 0x5EED;
        let mut step = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x
        };
        for _ in 0..400 {
            let r = step();
            let a = (r & 0xFFFF) as u16;
            let w = ((r >> 16) & 0xFFFF) as u16;
            base.multiply(a, w);
            par.multiply(a, w);
        }
        let base_tpp = base.netlist.toggles_per_simulation(); // 1 product/sim
        let par_tpp = par.netlist.toggles_per_simulation() / 4.0; // 4 products/sim
        assert!(
            par_tpp < base_tpp,
            "parallel {par_tpp:.1} toggles/product !< baseline {base_tpp:.1}"
        );
    }
}
