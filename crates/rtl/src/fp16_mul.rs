//! Gate-level baseline FP16 multiplier (flush-to-zero), the full
//! Figure 5(a) datapath as a netlist.
//!
//! Bit-exact with the behavioral
//! [`pacq_fp16::Fp16Multiplier`] in [`SubnormalMode::FlushToZero`]
//! (hardware multipliers commonly flush; the IEEE gradual-underflow path
//! would add a leading-zero counter and barrel shifter in front of the
//! array). Proved by sweep tests against the behavioral model.
//!
//! [`SubnormalMode::FlushToZero`]: pacq_fp16::SubnormalMode

use crate::adder::{incrementer, ripple_adder, sub_constant};
use crate::multiplier::int11_multiplier;
use crate::netlist::{Bus, Netlist, NodeId};

/// Handle to the built multiplier: input and output buses.
#[derive(Debug, Clone)]
pub struct Fp16MulCircuit {
    /// The netlist.
    pub netlist: Netlist,
    a: Bus,
    b: Bus,
    out: Bus,
}

impl Fp16MulCircuit {
    /// Builds the circuit.
    pub fn build() -> Self {
        let mut n = Netlist::new();
        let a = n.input_bus(16);
        let b = n.input_bus(16);
        let out = fp16_multiplier(&mut n, &a, &b);
        Fp16MulCircuit {
            netlist: n,
            a,
            b,
            out,
        }
    }

    /// Multiplies two FP16 bit patterns through the netlist.
    pub fn multiply(&mut self, a: u16, b: u16) -> u16 {
        let mut inputs = Vec::with_capacity(32);
        for i in 0..16 {
            inputs.push((a >> i) & 1 == 1);
        }
        for i in 0..16 {
            inputs.push((b >> i) & 1 == 1);
        }
        self.netlist.simulate(&inputs);
        self.netlist.read_bus(&self.out) as u16
    }

    /// The input buses (for external wiring/inspection).
    pub fn inputs(&self) -> (&[NodeId], &[NodeId]) {
        (&self.a, &self.b)
    }
}

/// Field decode helper: returns (sign, exp bus [5], mantissa bus [10]).
fn decode(nl: &Netlist, x: &[NodeId]) -> (NodeId, Bus, Bus) {
    let _ = nl;
    (x[15], x[10..15].to_vec(), x[..10].to_vec())
}

/// Class signals: (is_zeroish, is_inf, is_nan). FTZ treats exp==0 as zero.
fn classify(n: &mut Netlist, exp: &[NodeId], man: &[NodeId]) -> (NodeId, NodeId, NodeId) {
    let exp_any = n.or_reduce(exp);
    let exp_all = n.and_reduce(exp);
    let man_any = n.or_reduce(man);
    let zeroish = n.not(exp_any);
    let man_none = n.not(man_any);
    let inf = n.and(exp_all, man_none);
    let nan = n.and(exp_all, man_any);
    (zeroish, inf, nan)
}

/// Builds the complete FTZ FP16 multiplier; returns the 16-bit output bus.
///
/// # Panics
///
/// Panics unless both inputs are 16-bit buses.
pub fn fp16_multiplier(n: &mut Netlist, a: &[NodeId], b: &[NodeId]) -> Bus {
    assert_eq!(a.len(), 16, "a must be 16 bits");
    assert_eq!(b.len(), 16, "b must be 16 bits");

    let (sa, ea, ma) = decode(n, a);
    let (sb, eb, mb) = decode(n, b);
    let (a_zero, a_inf, a_nan) = classify(n, &ea, &ma);
    let (b_zero, b_inf, b_nan) = classify(n, &eb, &mb);

    // Sign: one XOR gate.
    let sign = n.xor(sa, sb);

    // Significands with hidden bit (exp != 0; FTZ zeros are masked later).
    let ha = n.or_reduce(&ea);
    let hb = n.or_reduce(&eb);
    let mut sig_a = ma.clone();
    sig_a.push(ha);
    let mut sig_b = mb.clone();
    sig_b.push(hb);

    // --- INT11 MUL -----------------------------------------------------
    let product = int11_multiplier(n, &sig_a, &sig_b); // 22 bits

    // --- normalization (1-bit) ------------------------------------------
    let norm = product[21];
    // kept[i] = norm ? product[11+i] : product[10+i], i in 0..11
    let kept: Bus = (0..11)
        .map(|i| n.mux(norm, product[10 + i], product[11 + i]))
        .collect();
    let round_bit = n.mux(norm, product[9], product[10]);
    let sticky_lo = n.or_reduce(&product[..9]);
    let sticky_hi = n.or(sticky_lo, product[9]);
    let sticky = n.mux(norm, sticky_lo, sticky_hi);

    // --- rounding unit (RNE) --------------------------------------------
    let tie_or_up = n.or(sticky, kept[0]);
    let round_up = n.and(round_bit, tie_or_up);
    let (mantissa, round_carry) = incrementer(n, &kept, round_up);

    // --- INT5 exponent adder + adjustments -------------------------------
    // X = ea + eb + norm in 7 bits; biased0 = X − 15 classifies the
    // result BEFORE rounding (the round position depends on it); the
    // normal-path round carry then bumps the exponent.
    let zero = n.constant(false);
    let ea7: Bus = ea.iter().copied().chain([zero, zero]).collect();
    let eb7: Bus = eb.iter().copied().chain([zero, zero]).collect();
    let (x0, _) = ripple_adder(n, &ea7, &eb7, norm);
    let (biased0, no_underflow) = sub_constant(n, &x0, 15); // X >= 15
    let biased_any = n.or_reduce(&biased0);
    let positive = n.and(no_underflow, biased_any); // biased0 >= 1
    let underflow = n.not(positive);

    // Normal-path exponent: biased0 + round_carry.
    let (biased, _) = incrementer(n, &biased0, round_carry);

    // Boundary case biased0 == 0: IEEE rounds one position higher
    // (denormalized), and a product just below 2^-14 can round up INTO
    // the normal range — FTZ keeps that MIN_POSITIVE result. That needs
    // all 11 kept bits set and the denormalized round-up to fire.
    let at_boundary = {
        let b_none = n.not(biased_any);
        n.and(no_underflow, b_none)
    };
    let kept_all_ones = n.and_reduce(&kept);
    let sticky_b = n.or(round_bit, sticky);
    let up_b = {
        // round bit at the boundary is kept[0]; tie breaks on kept[1].
        let t = n.or(sticky_b, kept[1]);
        n.and(kept[0], t)
    };
    let rounds_to_min_positive = {
        let r = n.and(kept_all_ones, up_b);
        n.and(at_boundary, r)
    };
    // Overflow when biased >= 31: bit6 | bit5 | (bits 0..5 all ones).
    let low_all = n.and_reduce(&biased[..5]);
    let hi_or = n.or(biased[5], biased[6]);
    let ge31 = n.or(hi_or, low_all);
    let overflow = n.and(ge31, positive);

    // --- special-case resolution ------------------------------------------
    let az_bz = n.or(a_zero, b_zero);
    let ai_bi = n.or(a_inf, b_inf);
    let zero_times_inf = n.and(az_bz, ai_bi);
    let nan_in = n.or(a_nan, b_nan);
    let nan_out = n.or(nan_in, zero_times_inf);
    let not_nan = n.not(nan_out);
    let inf_in = n.and(ai_bi, not_nan);
    let zero_in = n.and(az_bz, not_nan);
    let not_special = {
        let s = n.or(nan_out, inf_in);
        let s = n.or(s, zero_in);
        n.not(s)
    };
    let inf_out = {
        let ovf = n.and(overflow, not_special);
        n.or(inf_in, ovf)
    };
    let zero_out = {
        let keeps = n.not(rounds_to_min_positive);
        let unf = n.and(underflow, keeps);
        let unf = n.and(unf, not_special);
        n.or(zero_in, unf)
    };
    let min_pos_out = n.and(rounds_to_min_positive, not_special);

    // --- output assembly ----------------------------------------------
    // Normal result: {sign, biased[4:0], mantissa[9:0]}.
    let mut result: Bus = mantissa[..10].to_vec();
    result.extend_from_slice(&biased[..5]);
    result.push(sign);

    // The boundary round-up forces {sign, MIN_POSITIVE}.
    let min_pos_bits = n.constant_bus(0x0400, 15);
    let with_min = n.mux_bus(min_pos_out, &result[..15], &min_pos_bits);

    // zero_out forces {sign, 0, 0}.
    let zero_bits = n.constant_bus(0x0000, 15);
    let mut with_zero = n.mux_bus(zero_out, &with_min, &zero_bits);
    with_zero.push(sign);

    // inf_out forces {sign, 0x7C00}.
    let inf_bits = n.constant_bus(0x7C00, 15);
    let mut with_inf = n.mux_bus(inf_out, &with_zero[..15], &inf_bits);
    with_inf.push(sign);

    // nan forces canonical 0x7E00 (positive quiet NaN).
    let nan_bits = n.constant_bus(0x7E00, 16);
    n.mux_bus(nan_out, &with_inf, &nan_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacq_fp16::{Fp16, Fp16Multiplier, SubnormalMode};

    fn behavioral(a: u16, b: u16) -> u16 {
        Fp16Multiplier::with_subnormal_mode(SubnormalMode::FlushToZero)
            .product(Fp16::from_bits(a), Fp16::from_bits(b))
            .to_bits()
    }

    fn same(x: u16, y: u16) -> bool {
        let fx = Fp16::from_bits(x);
        let fy = Fp16::from_bits(y);
        (fx.is_nan() && fy.is_nan()) || x == y
    }

    #[test]
    fn matches_behavioral_on_full_sweep_of_one_operand() {
        let mut c = Fp16MulCircuit::build();
        // Every A value (stride 1) × a small set of interesting B values.
        for &b in &[0x3C00u16, 0xBC00, 0x3555, 0x7BFF, 0x0000, 0x7C00, 0x6417] {
            for a_hi in 0u16..=255 {
                let a = a_hi << 8 | (a_hi.wrapping_mul(37) & 0xFF);
                let got = c.multiply(a, b);
                let want = behavioral(a, b);
                assert!(
                    same(got, want),
                    "{a:04x} × {b:04x}: rtl {got:04x} behav {want:04x}"
                );
            }
        }
    }

    #[test]
    fn matches_behavioral_on_random_pairs() {
        let mut c = Fp16MulCircuit::build();
        let mut x: u64 = 0xACE1;
        for _ in 0..4000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (x & 0xFFFF) as u16;
            let b = ((x >> 16) & 0xFFFF) as u16;
            let got = c.multiply(a, b);
            let want = behavioral(a, b);
            assert!(
                same(got, want),
                "{a:04x} × {b:04x}: rtl {got:04x} behav {want:04x}"
            );
        }
    }

    /// Full 2^16 × selected-operand equivalence (run with
    /// `cargo test -p pacq-rtl --release -- --ignored`).
    #[test]
    #[ignore = "exhaustive; run in release"]
    fn matches_behavioral_exhaustive() {
        let mut c = Fp16MulCircuit::build();
        for &b in &[0x3C00u16, 0x3555, 0x7BFF, 0x0400, 0x6417, 0xBC01] {
            for a in 0u16..=u16::MAX {
                let got = c.multiply(a, b);
                let want = behavioral(a, b);
                assert!(
                    same(got, want),
                    "{a:04x} × {b:04x}: rtl {got:04x} behav {want:04x}"
                );
            }
        }
    }

    #[test]
    fn special_values() {
        let mut c = Fp16MulCircuit::build();
        // 0 × inf = NaN
        assert!(Fp16::from_bits(c.multiply(0x0000, 0x7C00)).is_nan());
        // inf × -1 = -inf
        assert_eq!(c.multiply(0x7C00, 0xBC00), 0xFC00);
        // subnormal flushes to zero
        assert_eq!(c.multiply(0x0001, 0x3C00), 0x0000);
        assert_eq!(c.multiply(0x8001, 0x3C00), 0x8000);
        // overflow saturates to inf
        assert_eq!(c.multiply(0x7BFF, 0x4000), 0x7C00);
        // underflow flushes
        assert_eq!(c.multiply(0x0400, 0x3800), 0x0000); // 2^-14 × 0.5
    }

    #[test]
    fn rounding_ties_to_even() {
        let mut c = Fp16MulCircuit::build();
        // 1.5 × 1.5 = 2.25 exact.
        assert_eq!(Fp16::from_bits(c.multiply(0x3E00, 0x3E00)).to_f32(), 2.25);
        // (1 + 2^-10) × (1 + 2^-10) = 1 + 2^-9 + 2^-20: RNE keeps 1 + 2^-9.
        let got = c.multiply(0x3C01, 0x3C01);
        assert_eq!(got, 0x3C02);
    }

    #[test]
    fn gate_inventory_is_plausible() {
        let c = Fp16MulCircuit::build();
        let counts = c.netlist.gate_counts();
        // 11×11 array alone: 121 AND + 10 × 11-bit adders (~2 XOR each/bit).
        assert!(counts.and > 200, "{counts}");
        assert!(counts.xor > 200, "{counts}");
        assert!(counts.total() < 3000, "{counts}");
        assert!(c.netlist.area_ge() > 500.0);
    }
}
