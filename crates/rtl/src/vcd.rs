//! VCD (Value Change Dump) export: record bus waveforms from netlist
//! simulations and write them in the IEEE 1364 VCD format readable by
//! GTKWave and other EDA waveform viewers.
//!
//! The recorder samples named buses after each [`crate::Netlist`]
//! simulation step, storing only changes — exactly the VCD model.
//!
//! # Examples
//!
//! ```
//! use pacq_rtl::{Fp16MulCircuit, VcdRecorder};
//!
//! let mut circuit = Fp16MulCircuit::build();
//! let (a_bus, b_bus) = {
//!     let (a, b) = circuit.inputs();
//!     (a.to_vec(), b.to_vec())
//! };
//! let mut vcd = VcdRecorder::new("pacq_fp16_mul");
//! vcd.watch("a", &a_bus);
//! vcd.watch("b", &b_bus);
//! circuit.multiply(0x3C00, 0x4000);
//! vcd.sample(&circuit.netlist);
//! circuit.multiply(0x3E00, 0x3E00);
//! vcd.sample(&circuit.netlist);
//! let text = vcd.render();
//! assert!(text.contains("$var wire 16 ! a $end"));
//! ```

use crate::netlist::{Netlist, NodeId};
use core::fmt::Write as _;

/// One watched bus.
#[derive(Debug, Clone)]
struct Signal {
    name: String,
    nodes: Vec<NodeId>,
    /// VCD identifier code (printable ASCII).
    code: String,
    /// Sampled values per timestep (None = unchanged).
    history: Vec<Option<u64>>,
    last: Option<u64>,
}

/// Records bus waveforms across simulations and renders VCD text.
#[derive(Debug, Clone)]
pub struct VcdRecorder {
    module: String,
    signals: Vec<Signal>,
    steps: u64,
}

impl VcdRecorder {
    /// Creates a recorder for a module scope name (sanitized like
    /// signal names, see [`VcdRecorder::watch`]).
    pub fn new(module: impl Into<String>) -> Self {
        VcdRecorder {
            module: sanitize_name(&module.into()),
            signals: Vec::new(),
            steps: 0,
        }
    }

    /// Registers a bus to watch.
    ///
    /// VCD names are whitespace-delimited tokens, so the name is
    /// sanitized: whitespace, `$` and non-printable characters become
    /// `_`, an empty name becomes `unnamed`, and a name already watched
    /// gets a `_N` suffix — a hostile name must corrupt itself, not the
    /// document.
    ///
    /// # Panics
    ///
    /// Panics if called after sampling started or the bus is empty.
    pub fn watch(&mut self, name: impl Into<String>, nodes: &[NodeId]) {
        assert_eq!(self.steps, 0, "watch() must precede sampling");
        assert!(!nodes.is_empty(), "cannot watch an empty bus");
        let index = self.signals.len();
        let mut name = sanitize_name(&name.into());
        if self.signals.iter().any(|s| s.name == name) {
            name = format!("{name}_{index}");
            // The suffixed form can itself collide with a watched name
            // (e.g. `a_2` watched before the third `a`); extend until
            // free so every `$var` declaration stays unique.
            while self.signals.iter().any(|s| s.name == name) {
                name.push('_');
            }
        }
        self.signals.push(Signal {
            name,
            nodes: nodes.to_vec(),
            code: id_code(index),
            history: Vec::new(),
            last: None,
        });
    }

    /// Samples every watched bus from the netlist's current state.
    pub fn sample(&mut self, netlist: &Netlist) {
        for s in &mut self.signals {
            let v = netlist.read_bus(&s.nodes);
            if s.last == Some(v) {
                s.history.push(None);
            } else {
                s.history.push(Some(v));
                s.last = Some(v);
            }
        }
        self.steps += 1;
    }

    /// Number of sampled timesteps.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Renders the VCD document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$comment pacq-rtl waveform dump $end");
        let _ = writeln!(out, "$timescale 1ns $end");
        let _ = writeln!(out, "$scope module {} $end", self.module);
        for s in &self.signals {
            let _ = writeln!(
                out,
                "$var wire {} {} {} $end",
                s.nodes.len(),
                s.code,
                s.name
            );
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        for t in 0..self.steps {
            let mut changes = String::new();
            for s in &self.signals {
                if let Some(Some(v)) = s.history.get(t as usize) {
                    if s.nodes.len() == 1 {
                        let _ = writeln!(changes, "{}{}", v & 1, s.code);
                    } else {
                        let _ = writeln!(changes, "b{:b} {}", v, s.code);
                    }
                }
            }
            if !changes.is_empty() || t == 0 {
                let _ = writeln!(out, "#{t}");
                out.push_str(&changes);
            }
        }
        let _ = writeln!(out, "#{}", self.steps);
        out
    }
}

/// Collapses a raw name onto the single whitespace-delimited token VCD
/// grammar allows: anything non-printable, whitespace or `$` (the
/// keyword sigil) becomes `_`; an empty result becomes `unnamed`.
fn sanitize_name(raw: &str) -> String {
    let name: String = raw
        .chars()
        .map(|c| {
            if c.is_ascii_graphic() && c != '$' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if name.is_empty() {
        "unnamed".to_string()
    } else {
        name
    }
}

/// VCD identifier codes: printable ASCII 33..=126, multi-char as needed.
fn id_code(mut index: usize) -> String {
    let mut code = String::new();
    loop {
        code.push((33 + (index % 94)) as u8 as char);
        index /= 94;
        if index == 0 {
            break;
        }
        index -= 1;
    }
    code
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fp16MulCircuit;

    #[test]
    fn records_and_renders_changes_only() {
        let mut c = Fp16MulCircuit::build();
        let (a_bus, b_bus) = {
            let (a, b) = c.inputs();
            (a.to_vec(), b.to_vec())
        };
        let mut vcd = VcdRecorder::new("dut");
        vcd.watch("a", &a_bus);
        vcd.watch("b", &b_bus);

        c.multiply(0x3C00, 0x4000);
        vcd.sample(&c.netlist);
        c.multiply(0x3C00, 0x4000); // identical: no change records
        vcd.sample(&c.netlist);
        c.multiply(0x3E00, 0x3E00);
        vcd.sample(&c.netlist);

        let text = vcd.render();
        assert!(text.contains("$scope module dut $end"));
        assert!(text.contains("$var wire 16 ! a $end"));
        assert!(text.contains("$var wire 16 \" b $end"));
        // Initial values at #0.
        assert!(text.contains("b11110000000000 !"), "{text}");
        // Timestep 1 has no change block; timestep 2 does.
        assert!(!text.contains("#1\nb"), "{text}");
        assert!(text.contains("#2"), "{text}");
        assert_eq!(vcd.steps(), 3);
    }

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let c = id_code(i);
            assert!(c.chars().all(|ch| (33..=126).contains(&(ch as u32))));
            assert!(seen.insert(c), "duplicate code at {i}");
        }
        assert_eq!(id_code(0), "!");
        assert_eq!(id_code(93), "~");
        assert_eq!(id_code(94), "!!");
    }

    #[test]
    #[should_panic(expected = "watch() must precede sampling")]
    fn late_watch_rejected() {
        let mut c = Fp16MulCircuit::build();
        let mut vcd = VcdRecorder::new("dut");
        let (a, _) = c.inputs();
        let bus = a.to_vec();
        vcd.watch("a", &bus);
        c.multiply(1, 2);
        vcd.sample(&c.netlist);
        vcd.watch("late", &bus);
    }

    #[test]
    fn single_bit_signals_use_scalar_format() {
        let mut c = Fp16MulCircuit::build();
        let (a, _) = c.inputs();
        let sign = vec![a[15]];
        let mut vcd = VcdRecorder::new("dut");
        vcd.watch("sign_a", &sign);
        c.multiply(0x8000, 0x3C00);
        vcd.sample(&c.netlist);
        let text = vcd.render();
        assert!(text.contains("$var wire 1 ! sign_a $end"));
        assert!(text.contains("\n1!"), "{text}");
    }
}
