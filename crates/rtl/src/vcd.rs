//! VCD (Value Change Dump) export: record bus waveforms from netlist
//! simulations and write them in the IEEE 1364 VCD format readable by
//! GTKWave and other EDA waveform viewers.
//!
//! The recorder samples named buses after each [`crate::Netlist`]
//! simulation step, storing only changes — exactly the VCD model.
//!
//! # Examples
//!
//! ```
//! use pacq_rtl::{Fp16MulCircuit, VcdRecorder};
//!
//! let mut circuit = Fp16MulCircuit::build();
//! let (a_bus, b_bus) = {
//!     let (a, b) = circuit.inputs();
//!     (a.to_vec(), b.to_vec())
//! };
//! let mut vcd = VcdRecorder::new("pacq_fp16_mul");
//! vcd.watch("a", &a_bus);
//! vcd.watch("b", &b_bus);
//! circuit.multiply(0x3C00, 0x4000);
//! vcd.sample(&circuit.netlist);
//! circuit.multiply(0x3E00, 0x3E00);
//! vcd.sample(&circuit.netlist);
//! let text = vcd.render();
//! assert!(text.contains("$var wire 16 ! a $end"));
//! ```

use crate::netlist::{Netlist, NodeId};
use core::fmt::Write as _;
use pacq_error::{PacqError, PacqResult};

/// One watched bus.
#[derive(Debug, Clone)]
struct Signal {
    name: String,
    nodes: Vec<NodeId>,
    /// VCD identifier code (printable ASCII).
    code: String,
    /// Sampled values per timestep (None = unchanged).
    history: Vec<Option<u64>>,
    last: Option<u64>,
}

/// Records bus waveforms across simulations and renders VCD text.
#[derive(Debug, Clone)]
pub struct VcdRecorder {
    module: String,
    signals: Vec<Signal>,
    steps: u64,
}

impl VcdRecorder {
    /// Creates a recorder for a module scope name (sanitized like
    /// signal names, see [`VcdRecorder::watch`]).
    pub fn new(module: impl Into<String>) -> Self {
        VcdRecorder {
            module: sanitize_name(&module.into()),
            signals: Vec::new(),
            steps: 0,
        }
    }

    /// Registers a bus to watch.
    ///
    /// VCD names are whitespace-delimited tokens, so the name is
    /// sanitized: whitespace, `$` and non-printable characters become
    /// `_`, an empty name becomes `unnamed`, and a name already watched
    /// gets a `_N` suffix — a hostile name must corrupt itself, not the
    /// document.
    ///
    /// # Panics
    ///
    /// Panics if called after sampling started or the bus is empty.
    pub fn watch(&mut self, name: impl Into<String>, nodes: &[NodeId]) {
        assert_eq!(self.steps, 0, "watch() must precede sampling");
        assert!(!nodes.is_empty(), "cannot watch an empty bus");
        let index = self.signals.len();
        let mut name = sanitize_name(&name.into());
        if self.signals.iter().any(|s| s.name == name) {
            name = format!("{name}_{index}");
            // The suffixed form can itself collide with a watched name
            // (e.g. `a_2` watched before the third `a`); extend until
            // free so every `$var` declaration stays unique.
            while self.signals.iter().any(|s| s.name == name) {
                name.push('_');
            }
        }
        self.signals.push(Signal {
            name,
            nodes: nodes.to_vec(),
            code: id_code(index),
            history: Vec::new(),
            last: None,
        });
    }

    /// Samples every watched bus from the netlist's current state.
    pub fn sample(&mut self, netlist: &Netlist) {
        for s in &mut self.signals {
            let v = netlist.read_bus(&s.nodes);
            if s.last == Some(v) {
                s.history.push(None);
            } else {
                s.history.push(Some(v));
                s.last = Some(v);
            }
        }
        self.steps += 1;
    }

    /// Watches every node of the netlist as an individual 1-bit signal
    /// named `g{id}`, so an exported dump carries the complete per-node
    /// transition record — the stimulus-independent ground truth the
    /// activity calibration property tests replay against
    /// [`Netlist::toggles_of`].
    ///
    /// # Panics
    ///
    /// Panics if called after sampling started (see
    /// [`VcdRecorder::watch`]).
    pub fn watch_all_nodes(&mut self, netlist: &Netlist) {
        for id in 0..netlist.node_count() {
            let node = [id as NodeId];
            self.watch(format!("g{id}"), &node);
        }
    }

    /// Number of sampled timesteps.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Renders the VCD document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$comment pacq-rtl waveform dump $end");
        let _ = writeln!(out, "$timescale 1ns $end");
        let _ = writeln!(out, "$scope module {} $end", self.module);
        for s in &self.signals {
            let _ = writeln!(
                out,
                "$var wire {} {} {} $end",
                s.nodes.len(),
                s.code,
                s.name
            );
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        for t in 0..self.steps {
            let mut changes = String::new();
            for s in &self.signals {
                if let Some(Some(v)) = s.history.get(t as usize) {
                    if s.nodes.len() == 1 {
                        let _ = writeln!(changes, "{}{}", v & 1, s.code);
                    } else {
                        let _ = writeln!(changes, "b{:b} {}", v, s.code);
                    }
                }
            }
            if !changes.is_empty() || t == 0 {
                let _ = writeln!(out, "#{t}");
                out.push_str(&changes);
            }
        }
        let _ = writeln!(out, "#{}", self.steps);
        out
    }
}

/// Collapses a raw name onto the single whitespace-delimited token VCD
/// grammar allows: anything non-printable, whitespace or `$` (the
/// keyword sigil) becomes `_`; an empty result becomes `unnamed`.
fn sanitize_name(raw: &str) -> String {
    let name: String = raw
        .chars()
        .map(|c| {
            if c.is_ascii_graphic() && c != '$' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if name.is_empty() {
        "unnamed".to_string()
    } else {
        name
    }
}

/// VCD identifier codes: printable ASCII 33..=126, multi-char as needed.
fn id_code(mut index: usize) -> String {
    let mut code = String::new();
    loop {
        code.push((33 + (index % 94)) as u8 as char);
        index /= 94;
        if index == 0 {
            break;
        }
        index -= 1;
    }
    code
}

/// Recovers per-signal transition counts from a rendered VCD document.
///
/// Counts value *changes* after each signal's first dump: the first
/// record per signal establishes the baseline and is not counted, which
/// matches [`Netlist`] toggle accounting exactly when the dump covers
/// the full simulation (the recorder emits every watched signal's
/// initial value at `#0`).
///
/// Returns `(name, transitions)` pairs in declaration order.
///
/// # Errors
///
/// Returns a typed [`PacqError`] (never panics) when the document is
/// truncated (no `$enddefinitions`), a `$var` declaration is malformed
/// or duplicates an identifier code, a value-change record references
/// an undeclared identifier, or a binary vector value is malformed.
pub fn parse_transition_counts(text: &str) -> PacqResult<Vec<(String, u64)>> {
    const CONTEXT: &str = "rtl::vcd::parse";
    let err = |message: String| PacqError::invalid_input(CONTEXT, message);
    if text.trim().is_empty() {
        return Err(err("empty VCD document".to_string()));
    }
    // Header: collect $var declarations until $enddefinitions.
    let mut names: Vec<String> = Vec::new();
    let mut codes: Vec<String> = Vec::new();
    let mut lines = text.lines();
    let mut definitions_done = false;
    for line in lines.by_ref() {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens.first().copied() {
            Some("$enddefinitions") => {
                definitions_done = true;
                break;
            }
            Some("$var") => {
                // $var wire <width> <code> <name> $end
                if tokens.len() != 6 || tokens[5] != "$end" {
                    return Err(err(format!("malformed $var declaration `{line}`")));
                }
                let width: u64 = tokens[2]
                    .parse()
                    .map_err(|_| err(format!("malformed $var width `{}`", tokens[2])))?;
                if width == 0 || width > 64 {
                    return Err(err(format!("unsupported $var width {width}")));
                }
                let code = tokens[3].to_string();
                if codes.contains(&code) {
                    return Err(err(format!("duplicate identifier code `{code}`")));
                }
                names.push(tokens[4].to_string());
                codes.push(code);
            }
            _ => {}
        }
    }
    if !definitions_done {
        return Err(err(
            "truncated VCD document: missing $enddefinitions".to_string()
        ));
    }
    // Body: scalar (`0!`/`1!`) and vector (`b101 !`) change records.
    let mut last: Vec<Option<u64>> = vec![None; codes.len()];
    let mut transitions: Vec<u64> = vec![0; codes.len()];
    let mut record = |code: &str, value: u64, line: &str| -> PacqResult<()> {
        let index = codes.iter().position(|c| c == code).ok_or_else(|| {
            err(format!(
                "change record `{line}` names undeclared code `{code}`"
            ))
        })?;
        if let Some(prev) = last[index] {
            if prev != value {
                transitions[index] += 1;
            }
        }
        last[index] = Some(value);
        Ok(())
    };
    for line in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('$') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('b') {
            let (bits, code) = rest
                .split_once(' ')
                .ok_or_else(|| err(format!("malformed vector record `{line}`")))?;
            let value = u64::from_str_radix(bits, 2)
                .map_err(|_| err(format!("malformed binary value in `{line}`")))?;
            record(code, value, line)?;
        } else if let Some(code) = line.strip_prefix('0') {
            record(code, 0, line)?;
        } else if let Some(code) = line.strip_prefix('1') {
            record(code, 1, line)?;
        } else {
            return Err(err(format!("unrecognized change record `{line}`")));
        }
    }
    Ok(names.into_iter().zip(transitions).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fp16MulCircuit;

    #[test]
    fn records_and_renders_changes_only() {
        let mut c = Fp16MulCircuit::build();
        let (a_bus, b_bus) = {
            let (a, b) = c.inputs();
            (a.to_vec(), b.to_vec())
        };
        let mut vcd = VcdRecorder::new("dut");
        vcd.watch("a", &a_bus);
        vcd.watch("b", &b_bus);

        c.multiply(0x3C00, 0x4000);
        vcd.sample(&c.netlist);
        c.multiply(0x3C00, 0x4000); // identical: no change records
        vcd.sample(&c.netlist);
        c.multiply(0x3E00, 0x3E00);
        vcd.sample(&c.netlist);

        let text = vcd.render();
        assert!(text.contains("$scope module dut $end"));
        assert!(text.contains("$var wire 16 ! a $end"));
        assert!(text.contains("$var wire 16 \" b $end"));
        // Initial values at #0.
        assert!(text.contains("b11110000000000 !"), "{text}");
        // Timestep 1 has no change block; timestep 2 does.
        assert!(!text.contains("#1\nb"), "{text}");
        assert!(text.contains("#2"), "{text}");
        assert_eq!(vcd.steps(), 3);
    }

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let c = id_code(i);
            assert!(c.chars().all(|ch| (33..=126).contains(&(ch as u32))));
            assert!(seen.insert(c), "duplicate code at {i}");
        }
        assert_eq!(id_code(0), "!");
        assert_eq!(id_code(93), "~");
        assert_eq!(id_code(94), "!!");
    }

    #[test]
    #[should_panic(expected = "watch() must precede sampling")]
    fn late_watch_rejected() {
        let mut c = Fp16MulCircuit::build();
        let mut vcd = VcdRecorder::new("dut");
        let (a, _) = c.inputs();
        let bus = a.to_vec();
        vcd.watch("a", &bus);
        c.multiply(1, 2);
        vcd.sample(&c.netlist);
        vcd.watch("late", &bus);
    }

    #[test]
    fn parser_recovers_transition_counts_from_rendered_dump() {
        let mut c = Fp16MulCircuit::build();
        let (a_bus, b_bus) = {
            let (a, b) = c.inputs();
            (a.to_vec(), b.to_vec())
        };
        let mut vcd = VcdRecorder::new("dut");
        vcd.watch("a", &a_bus);
        vcd.watch("b", &b_bus);
        c.multiply(0x3C00, 0x4000);
        vcd.sample(&c.netlist);
        c.multiply(0x3C00, 0x4000); // unchanged
        vcd.sample(&c.netlist);
        c.multiply(0x3E00, 0x4000); // a changes, b does not
        vcd.sample(&c.netlist);
        c.multiply(0x3C00, 0x3555); // both change
        vcd.sample(&c.netlist);
        let counts = parse_transition_counts(&vcd.render()).expect("valid dump parses");
        assert_eq!(counts, vec![("a".to_string(), 2), ("b".to_string(), 1)]);
    }

    #[test]
    fn parser_counts_per_node_transitions_like_the_netlist() {
        let mut c = Fp16MulCircuit::build();
        let mut vcd = VcdRecorder::new("dut");
        vcd.watch_all_nodes(&c.netlist);
        for (a, b) in [(0x3C00, 0x4000), (0x3E00, 0x3E00), (0x0001, 0xBC00)] {
            c.multiply(a, b);
            vcd.sample(&c.netlist);
        }
        let counts = parse_transition_counts(&vcd.render()).expect("valid dump parses");
        assert_eq!(counts.len(), c.netlist.node_count());
        for (id, (name, transitions)) in counts.iter().enumerate() {
            assert_eq!(name, &format!("g{id}"));
            assert_eq!(
                *transitions,
                c.netlist.toggles_of(id as NodeId),
                "node {id} VCD transitions must equal netlist toggles"
            );
        }
    }

    #[test]
    fn parser_rejects_truncated_and_corrupt_documents() {
        let full = "$var wire 1 ! x $end\n$enddefinitions $end\n#0\n0!\n#1\n1!\n#2\n";
        assert_eq!(
            parse_transition_counts(full).expect("well-formed"),
            vec![("x".to_string(), 1)]
        );
        // Truncated before $enddefinitions.
        let truncated = &full[..full.find("$enddefinitions").unwrap()];
        let e = parse_transition_counts(truncated).unwrap_err();
        assert!(e.to_string().contains("truncated"), "{e}");
        // Corrupt change record.
        let corrupt = full.replace("1!", "z!");
        assert!(parse_transition_counts(&corrupt).is_err());
        // Undeclared identifier code.
        let undeclared = full.replace("0!", "0?");
        let e = parse_transition_counts(&undeclared).unwrap_err();
        assert!(e.to_string().contains("undeclared"), "{e}");
        // Malformed binary vector value.
        let bad_vec = "$var wire 2 ! x $end\n$enddefinitions $end\n#0\nb12 !\n";
        assert!(parse_transition_counts(bad_vec).is_err());
        // Duplicate identifier code.
        let dup = "$var wire 1 ! x $end\n$var wire 1 ! y $end\n$enddefinitions $end\n";
        assert!(parse_transition_counts(dup).is_err());
        // Empty document.
        assert!(parse_transition_counts("  \n ").is_err());
    }

    #[test]
    fn single_bit_signals_use_scalar_format() {
        let mut c = Fp16MulCircuit::build();
        let (a, _) = c.inputs();
        let sign = vec![a[15]];
        let mut vcd = VcdRecorder::new("dut");
        vcd.watch("sign_a", &sign);
        c.multiply(0x8000, 0x3C00);
        vcd.sample(&c.netlist);
        let text = vcd.render();
        assert!(text.contains("$var wire 1 ! sign_a $end"));
        assert!(text.contains("\n1!"), "{text}");
    }
}
