//! Switching-activity measurement over the multiplier netlists.
//!
//! Drives the baseline FP16 multiplier and the parallel FP-INT
//! multiplier with deterministic, precision-representative operand
//! streams and reports the per-gate-class toggle histogram — the raw
//! material the activity-calibrated energy model in `pacq-energy`
//! prices into pJ/op figures.
//!
//! The stimulus is an LCG-driven stream shaped like inference traffic:
//! activations are normal-range FP16 values, baseline weights carry
//! only as many mantissa bits as a dequantized `b`-bit code provides,
//! and the parallel unit consumes fully random packed words (every
//! lane a uniform code). Same seed ⇒ same stream ⇒ same histogram, on
//! any host: the foundation of the determinism guarantees `pacq audit
//! --activity` makes.

use crate::{Fp16MulCircuit, ParallelFpIntCircuit};
use pacq_error::{PacqError, PacqResult};
use pacq_fp16::WeightPrecision;

/// Which multiplier netlist a measurement drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MulKind {
    /// The sequential baseline FP16 multiplier (one product per cycle).
    Baseline,
    /// The parallel FP-INT multiplier (one product per lane per cycle).
    Parallel,
}

impl MulKind {
    /// Both kinds, in audit order.
    pub const ALL: [MulKind; 2] = [MulKind::Baseline, MulKind::Parallel];

    /// Stable lowercase token used in manifests and audit counters.
    pub const fn token(self) -> &'static str {
        match self {
            MulKind::Baseline => "baseline",
            MulKind::Parallel => "parallel",
        }
    }
}

/// The result of one activity measurement: toggle statistics for a
/// multiplier netlist over a deterministic operand stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityProfile {
    /// Which multiplier was driven.
    pub kind: MulKind,
    /// Weight precision the stimulus represented.
    pub precision: WeightPrecision,
    /// Number of simulated operations (netlist evaluations).
    pub ops: u64,
    /// LCG seed the stream was derived from.
    pub seed: u64,
    /// Products produced per operation (1 for baseline, lane count for
    /// the parallel unit).
    pub lanes: u64,
    /// Per-gate-class toggle totals over the whole stream, in
    /// [`crate::netlist::GATE_CLASSES`] order.
    pub toggles_by_class: Vec<(&'static str, u64)>,
    /// Total toggles over every node, inputs included.
    pub total_toggles: u64,
    /// Number of nodes in the netlist (inputs and constants included).
    pub nodes: u64,
    /// Gate-equivalent area of the netlist (NAND2-equivalent units).
    pub area_ge: f64,
}

impl ActivityProfile {
    /// Number of observable transitions in the stream: the first
    /// operation establishes the baseline state, so `ops` simulations
    /// expose `ops - 1` transitions.
    pub fn transitions(&self) -> u64 {
        self.ops - 1
    }

    /// Toggles attributed to logic gates (the class histogram sum;
    /// excludes input nodes, which carry no cell).
    pub fn logic_toggles(&self) -> u64 {
        self.toggles_by_class.iter().map(|(_, t)| t).sum()
    }

    /// Mean logic toggles per operation (per netlist evaluation).
    pub fn logic_toggles_per_op(&self) -> f64 {
        self.logic_toggles() as f64 / self.transitions() as f64
    }
}

/// Simulates `kind`'s netlist over `ops` operations of the
/// deterministic precision-representative stream for `precision` and
/// returns its toggle statistics.
///
/// # Errors
///
/// Returns a typed [`PacqError`] when `ops < 2`: a zero- or one-entry
/// stimulus stream exposes no transitions, so there is no activity to
/// measure.
pub fn measure(
    kind: MulKind,
    precision: WeightPrecision,
    ops: u64,
    seed: u64,
) -> PacqResult<ActivityProfile> {
    if ops < 2 {
        return Err(PacqError::invalid_input(
            "rtl::activity",
            format!(
                "activity measurement needs at least 2 operations to \
                 observe a transition (got {ops})"
            ),
        ));
    }
    let mut stream = Stream::new(seed);
    let (netlist, lanes) = match kind {
        MulKind::Baseline => {
            let mut c = Fp16MulCircuit::build();
            for _ in 0..ops {
                let a = stream.activation();
                let w = stream.dequantized_weight(precision);
                c.multiply(a, w);
            }
            (c.netlist, 1u64)
        }
        MulKind::Parallel => {
            let mut c = match precision {
                WeightPrecision::Int4 => ParallelFpIntCircuit::build(),
                WeightPrecision::Int2 => ParallelFpIntCircuit::build_int2(),
            };
            for _ in 0..ops {
                let a = stream.activation();
                let packed = stream.packed_word();
                c.multiply_all(a, packed);
            }
            let lanes = c.lanes() as u64;
            (c.netlist, lanes)
        }
    };
    Ok(ActivityProfile {
        kind,
        precision,
        ops,
        seed,
        lanes,
        toggles_by_class: netlist.toggles_by_class(),
        total_toggles: netlist.total_toggles(),
        nodes: netlist.node_count() as u64,
        area_ge: netlist.area_ge(),
    })
}

/// Deterministic operand stream (Knuth MMIX LCG).
struct Stream {
    x: u64,
}

impl Stream {
    fn new(seed: u64) -> Self {
        Stream { x: seed }
    }

    fn next(&mut self) -> u64 {
        self.x = self
            .x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.x
    }

    /// A normal-range FP16 activation: random sign and mantissa, biased
    /// exponent drawn from 1..=30 (no zeros, subnormals, infinities or
    /// NaNs — representative of inference-tensor traffic).
    fn activation(&mut self) -> u16 {
        let r = self.next();
        let sign = ((r >> 40) & 1) as u16;
        let exponent = 1 + ((r >> 32) % 30) as u16;
        let mantissa = (r & 0x3FF) as u16;
        (sign << 15) | (exponent << 10) | mantissa
    }

    /// A normal-range FP16 weight whose mantissa carries only the top
    /// `bits` bits — the value set a dequantized `bits`-bit integer
    /// code reaches, which is what the baseline multiplier sees after
    /// dequantization.
    fn dequantized_weight(&mut self, precision: WeightPrecision) -> u16 {
        let bits = precision.bits();
        let r = self.next();
        let sign = ((r >> 40) & 1) as u16;
        let exponent = 1 + ((r >> 32) % 30) as u16;
        let code = (r & ((1 << bits) - 1)) as u16;
        let mantissa = code << (10 - bits);
        (sign << 15) | (exponent << 10) | mantissa
    }

    /// A fully random packed word (every lane a uniform code).
    fn packed_word(&mut self) -> u16 {
        (self.next() & 0xFFFF) as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_is_deterministic_for_a_seed() {
        for kind in MulKind::ALL {
            let a = measure(kind, WeightPrecision::Int4, 32, 0x5EED).unwrap();
            let b = measure(kind, WeightPrecision::Int4, 32, 0x5EED).unwrap();
            assert_eq!(a, b, "{kind:?} must be reproducible");
            let c = measure(kind, WeightPrecision::Int4, 32, 0x5EEE).unwrap();
            assert_ne!(
                a.total_toggles, c.total_toggles,
                "{kind:?} must respond to the seed"
            );
        }
    }

    #[test]
    fn short_streams_are_typed_errors() {
        for ops in [0, 1] {
            let e = measure(MulKind::Baseline, WeightPrecision::Int4, ops, 1).unwrap_err();
            let msg = e.to_string();
            assert!(msg.contains("rtl::activity"), "{msg}");
            assert!(!msg.contains('\n'), "one-line invariant: {msg}");
        }
    }

    #[test]
    fn lanes_track_the_precision() {
        let b2 = measure(MulKind::Baseline, WeightPrecision::Int2, 8, 1).unwrap();
        assert_eq!(b2.lanes, 1);
        let p4 = measure(MulKind::Parallel, WeightPrecision::Int4, 8, 1).unwrap();
        assert_eq!(p4.lanes, 4);
        let p2 = measure(MulKind::Parallel, WeightPrecision::Int2, 8, 1).unwrap();
        assert_eq!(p2.lanes, 8);
        assert!(
            p2.nodes > p4.nodes,
            "the INT2 build instantiates two 4-lane arrays"
        );
    }

    #[test]
    fn profile_arithmetic_is_consistent() {
        let p = measure(MulKind::Baseline, WeightPrecision::Int4, 16, 0x5EED).unwrap();
        assert_eq!(p.transitions(), 15);
        assert!(p.logic_toggles() <= p.total_toggles);
        assert!(p.logic_toggles() > 0, "a live stream must switch gates");
        let per_op = p.logic_toggles_per_op();
        assert!((per_op - p.logic_toggles() as f64 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn dequantized_weights_carry_limited_mantissas() {
        let mut s = Stream::new(7);
        for _ in 0..64 {
            let w = s.dequantized_weight(WeightPrecision::Int2);
            assert_eq!(w & 0x00FF, 0, "INT2 weights keep only 2 mantissa bits");
            let exp = (w >> 10) & 0x1F;
            assert!((1..=30).contains(&exp), "normal range, got exponent {exp}");
        }
    }
}
