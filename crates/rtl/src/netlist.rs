//! A minimal combinational netlist: typed gates, topological simulation,
//! gate counting and toggle counting.
//!
//! The paper's unit costs come from RTL synthesis; this module lets the
//! repository carry an actual gate-level description of each Table I
//! unit, simulate it bit-exactly against the behavioral models, and
//! derive gate counts / switching activity as an *independent*
//! cross-check of the calibrated cost model in `pacq-energy`.
//!
//! Construction doubles as topological ordering: every gate may only
//! reference previously created nodes, so simulation is a single forward
//! pass.

use core::fmt;

/// Index of a node (gate output) in the netlist.
pub type NodeId = u32;

/// A bundle of nodes interpreted LSB-first.
pub type Bus = Vec<NodeId>;

/// Gate kinds supported by the netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gate {
    /// External input.
    Input,
    /// Constant driver.
    Const(bool),
    /// Inverter.
    Not(NodeId),
    /// 2-input AND.
    And(NodeId, NodeId),
    /// 2-input OR.
    Or(NodeId, NodeId),
    /// 2-input XOR.
    Xor(NodeId, NodeId),
    /// 2:1 multiplexer: `sel ? hi : lo`.
    Mux {
        /// Select input.
        sel: NodeId,
        /// Output when `sel` is 0.
        lo: NodeId,
        /// Output when `sel` is 1.
        hi: NodeId,
    },
}

impl Gate {
    /// Area in NAND2 gate equivalents (standard-cell rules of thumb).
    pub fn area_ge(&self) -> f64 {
        match self {
            Gate::Input | Gate::Const(_) => 0.0,
            Gate::Not(_) => 0.5,
            Gate::And(..) | Gate::Or(..) => 1.0,
            Gate::Xor(..) => 2.5,
            Gate::Mux { .. } => 2.0,
        }
    }

    /// The stable gate-class token used by toggle histograms and the
    /// activity energy BOM (`None` for inputs and constant drivers,
    /// which carry no cell of their own).
    pub fn class_name(&self) -> Option<&'static str> {
        match self {
            Gate::Input | Gate::Const(_) => None,
            Gate::Not(_) => Some("not"),
            Gate::And(..) => Some("and"),
            Gate::Or(..) => Some("or"),
            Gate::Xor(..) => Some("xor"),
            Gate::Mux { .. } => Some("mux"),
        }
    }
}

/// The gate-class tokens of [`Gate::class_name`] in stable histogram
/// order.
pub const GATE_CLASSES: [&str; 5] = ["not", "and", "or", "xor", "mux"];

/// Aggregate gate statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GateCounts {
    /// Inverters.
    pub not: u64,
    /// AND gates.
    pub and: u64,
    /// OR gates.
    pub or: u64,
    /// XOR gates.
    pub xor: u64,
    /// Multiplexers.
    pub mux: u64,
}

impl GateCounts {
    /// Total logic gates (inputs/constants excluded).
    pub fn total(&self) -> u64 {
        self.not + self.and + self.or + self.xor + self.mux
    }
}

impl fmt::Display for GateCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} gates (not {}, and {}, or {}, xor {}, mux {})",
            self.total(),
            self.not,
            self.and,
            self.or,
            self.xor,
            self.mux
        )
    }
}

/// A combinational netlist with simulation state.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    gates: Vec<Gate>,
    value: Vec<bool>,
    toggles: Vec<u64>,
    inputs: Vec<NodeId>,
    simulations: u64,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, gate: Gate) -> NodeId {
        // Topological-order invariant: operands must already exist.
        let next = self.gates.len() as NodeId;
        match gate {
            Gate::Not(a) => debug_assert!(a < next),
            Gate::And(a, b) | Gate::Or(a, b) | Gate::Xor(a, b) => {
                debug_assert!(a < next && b < next);
            }
            Gate::Mux { sel, lo, hi } => {
                debug_assert!(sel < next && lo < next && hi < next);
            }
            _ => {}
        }
        self.gates.push(gate);
        self.value.push(false);
        self.toggles.push(0);
        next
    }

    /// Adds an external input.
    pub fn input(&mut self) -> NodeId {
        let id = self.push(Gate::Input);
        self.inputs.push(id);
        id
    }

    /// Adds a bus of `width` external inputs (LSB first).
    pub fn input_bus(&mut self, width: usize) -> Bus {
        (0..width).map(|_| self.input()).collect()
    }

    /// Adds a constant driver.
    pub fn constant(&mut self, v: bool) -> NodeId {
        self.push(Gate::Const(v))
    }

    /// Adds a constant bus holding `value` (LSB first).
    pub fn constant_bus(&mut self, value: u64, width: usize) -> Bus {
        (0..width)
            .map(|i| self.constant((value >> i) & 1 == 1))
            .collect()
    }

    /// NOT gate.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        self.push(Gate::Not(a))
    }

    /// AND gate.
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::And(a, b))
    }

    /// OR gate.
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Or(a, b))
    }

    /// XOR gate.
    pub fn xor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Xor(a, b))
    }

    /// 2:1 mux (`sel ? hi : lo`).
    pub fn mux(&mut self, sel: NodeId, lo: NodeId, hi: NodeId) -> NodeId {
        self.push(Gate::Mux { sel, lo, hi })
    }

    /// Bus-wide mux.
    ///
    /// # Panics
    ///
    /// Panics if the bus widths differ.
    pub fn mux_bus(&mut self, sel: NodeId, lo: &[NodeId], hi: &[NodeId]) -> Bus {
        assert_eq!(lo.len(), hi.len(), "mux bus width mismatch");
        lo.iter()
            .zip(hi)
            .map(|(&l, &h)| self.mux(sel, l, h))
            .collect()
    }

    /// Reduction OR over a bus (returns constant 0 for an empty bus).
    pub fn or_reduce(&mut self, bus: &[NodeId]) -> NodeId {
        match bus.split_first() {
            None => self.constant(false),
            Some((&first, rest)) => {
                let mut acc = first;
                for &b in rest {
                    acc = self.or(acc, b);
                }
                acc
            }
        }
    }

    /// Reduction AND over a bus (returns constant 1 for an empty bus).
    pub fn and_reduce(&mut self, bus: &[NodeId]) -> NodeId {
        match bus.split_first() {
            None => self.constant(true),
            Some((&first, rest)) => {
                let mut acc = first;
                for &b in rest {
                    acc = self.and(acc, b);
                }
                acc
            }
        }
    }

    /// Simulates the netlist for one input vector (LSB-first order of
    /// `input()` calls), updating toggle counts.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the declared input count.
    pub fn simulate(&mut self, inputs: &[bool]) {
        assert_eq!(inputs.len(), self.inputs.len(), "input width mismatch");
        let mut next_input = 0usize;
        for i in 0..self.gates.len() {
            let v = match self.gates[i] {
                Gate::Input => {
                    let v = inputs[next_input];
                    next_input += 1;
                    v
                }
                Gate::Const(c) => c,
                Gate::Not(a) => !self.value[a as usize],
                Gate::And(a, b) => self.value[a as usize] & self.value[b as usize],
                Gate::Or(a, b) => self.value[a as usize] | self.value[b as usize],
                Gate::Xor(a, b) => self.value[a as usize] ^ self.value[b as usize],
                Gate::Mux { sel, lo, hi } => {
                    if self.value[sel as usize] {
                        self.value[hi as usize]
                    } else {
                        self.value[lo as usize]
                    }
                }
            };
            if self.simulations > 0 && v != self.value[i] {
                self.toggles[i] += 1;
            }
            self.value[i] = v;
        }
        self.simulations += 1;
    }

    /// The current value of a node (after [`Self::simulate`]).
    pub fn node(&self, id: NodeId) -> bool {
        self.value[id as usize]
    }

    /// Reads a bus as an integer (LSB first).
    pub fn read_bus(&self, bus: &[NodeId]) -> u64 {
        bus.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &id)| acc | (u64::from(self.node(id)) << i))
    }

    /// Gate statistics.
    pub fn gate_counts(&self) -> GateCounts {
        let mut c = GateCounts::default();
        for g in &self.gates {
            match g {
                Gate::Not(_) => c.not += 1,
                Gate::And(..) => c.and += 1,
                Gate::Or(..) => c.or += 1,
                Gate::Xor(..) => c.xor += 1,
                Gate::Mux { .. } => c.mux += 1,
                _ => {}
            }
        }
        c
    }

    /// Area in NAND2 gate equivalents.
    pub fn area_ge(&self) -> f64 {
        self.gates.iter().map(Gate::area_ge).sum()
    }

    /// Total output toggles across all simulations so far (a dynamic-
    /// power proxy: energy ∝ toggles × C·V²).
    pub fn total_toggles(&self) -> u64 {
        self.toggles.iter().sum()
    }

    /// Number of nodes (gate outputs, inputs and constants included).
    pub fn node_count(&self) -> usize {
        self.gates.len()
    }

    /// The gate driving a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn gate(&self, id: NodeId) -> Gate {
        self.gates[id as usize]
    }

    /// Output toggles of one node across all simulations so far.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn toggles_of(&self, id: NodeId) -> u64 {
        self.toggles[id as usize]
    }

    /// Toggle histogram by gate class, in [`GATE_CLASSES`] order (every
    /// class present, zero included). Input and constant nodes toggle
    /// too but carry no cell, so they are excluded — this histogram is
    /// exactly what the activity energy BOM prices.
    pub fn toggles_by_class(&self) -> Vec<(&'static str, u64)> {
        let mut hist: Vec<(&'static str, u64)> = GATE_CLASSES.iter().map(|&c| (c, 0u64)).collect();
        for (gate, &toggles) in self.gates.iter().zip(&self.toggles) {
            if let Some(class) = gate.class_name() {
                if let Some(slot) = hist.iter_mut().find(|(c, _)| *c == class) {
                    slot.1 += toggles;
                }
            }
        }
        hist
    }

    /// Number of simulations run.
    pub fn simulations(&self) -> u64 {
        self.simulations
    }

    /// Average toggles per simulation (NaN before the second run).
    pub fn toggles_per_simulation(&self) -> f64 {
        if self.simulations <= 1 {
            f64::NAN
        } else {
            self.total_toggles() as f64 / (self.simulations - 1) as f64
        }
    }

    /// Resets simulation state (values, toggles, counters).
    pub fn reset_activity(&mut self) {
        self.value.iter_mut().for_each(|v| *v = false);
        self.toggles.iter_mut().for_each(|t| *t = 0);
        self.simulations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_gates_evaluate() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let and = n.and(a, b);
        let or = n.or(a, b);
        let xor = n.xor(a, b);
        let na = n.not(a);
        let mux = n.mux(a, b, na);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            n.simulate(&[va, vb]);
            assert_eq!(n.node(and), va & vb);
            assert_eq!(n.node(or), va | vb);
            assert_eq!(n.node(xor), va ^ vb);
            assert_eq!(n.node(na), !va);
            assert_eq!(n.node(mux), if va { !va } else { vb });
        }
    }

    #[test]
    fn buses_read_back() {
        let mut n = Netlist::new();
        let bus = n.input_bus(8);
        let k = n.constant_bus(0xA5, 8);
        n.simulate(&[true, false, true, false, false, true, false, true]);
        assert_eq!(n.read_bus(&bus), 0b1010_0101);
        assert_eq!(n.read_bus(&k), 0xA5);
    }

    #[test]
    fn reductions() {
        let mut n = Netlist::new();
        let bus = n.input_bus(4);
        let any = n.or_reduce(&bus);
        let all = n.and_reduce(&bus);
        n.simulate(&[true, false, false, false]);
        assert!(n.node(any));
        assert!(!n.node(all));
        n.simulate(&[true, true, true, true]);
        assert!(n.node(all));
    }

    #[test]
    fn toggles_count_changes_only() {
        let mut n = Netlist::new();
        let a = n.input();
        let inv = n.not(a);
        n.simulate(&[false]);
        n.simulate(&[false]); // no change
        assert_eq!(n.total_toggles(), 0);
        n.simulate(&[true]); // a toggles, inv toggles
        assert_eq!(n.total_toggles(), 2);
        assert_eq!(n.simulations(), 3);
        let _ = inv;
    }

    #[test]
    fn class_histogram_partitions_logic_toggles() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let x = n.xor(a, b);
        let inv = n.not(x);
        let m = n.mux(a, b, inv);
        n.simulate(&[false, false]);
        n.simulate(&[true, false]);
        n.simulate(&[true, true]);
        let hist = n.toggles_by_class();
        assert_eq!(hist.len(), GATE_CLASSES.len());
        assert_eq!(
            hist.iter().map(|(c, _)| *c).collect::<Vec<_>>(),
            GATE_CLASSES
        );
        // The histogram covers logic gates only; inputs toggle but are
        // excluded, so the class sum plus input toggles is the total.
        let logic: u64 = hist.iter().map(|(_, t)| t).sum();
        let inputs = n.toggles_of(a) + n.toggles_of(b);
        assert_eq!(logic + inputs, n.total_toggles());
        let class_of = |c: &str| hist.iter().find(|(k, _)| *k == c).map(|(_, t)| *t);
        assert_eq!(
            class_of("xor"),
            Some(n.toggles_of(x)),
            "xor class holds exactly the xor gate's toggles"
        );
        assert_eq!(class_of("not"), Some(n.toggles_of(inv)));
        assert_eq!(class_of("mux"), Some(n.toggles_of(m)));
        assert_eq!(class_of("and"), Some(0));
    }

    #[test]
    fn gate_counts_and_area() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let x = n.xor(a, b);
        let _ = n.and(x, a);
        let c = n.gate_counts();
        assert_eq!(c.xor, 1);
        assert_eq!(c.and, 1);
        assert_eq!(c.total(), 2);
        assert!((n.area_ge() - 3.5).abs() < 1e-9);
    }
}
