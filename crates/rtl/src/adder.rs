//! Adder building blocks: full adders, ripple-carry adders and
//! incrementers — the primitives Table I counts ("INT16 adder",
//! "INT6 adder", "INT5 adder").

use crate::netlist::{Bus, Netlist, NodeId};

/// One full adder; returns `(sum, carry)`.
pub fn full_adder(n: &mut Netlist, a: NodeId, b: NodeId, cin: NodeId) -> (NodeId, NodeId) {
    let axb = n.xor(a, b);
    let sum = n.xor(axb, cin);
    let t1 = n.and(axb, cin);
    let t2 = n.and(a, b);
    let carry = n.or(t1, t2);
    (sum, carry)
}

/// Ripple-carry adder over equal-width buses; returns `(sum, carry_out)`.
///
/// # Panics
///
/// Panics if the bus widths differ.
pub fn ripple_adder(n: &mut Netlist, a: &[NodeId], b: &[NodeId], cin: NodeId) -> (Bus, NodeId) {
    assert_eq!(a.len(), b.len(), "adder operand width mismatch");
    let mut carry = cin;
    let mut sum = Vec::with_capacity(a.len());
    for (&ai, &bi) in a.iter().zip(b) {
        let (s, c) = full_adder(n, ai, bi, carry);
        sum.push(s);
        carry = c;
    }
    (sum, carry)
}

/// Adds a bus and an unsigned constant; returns `(sum, carry_out)`.
pub fn add_constant(n: &mut Netlist, a: &[NodeId], value: u64) -> (Bus, NodeId) {
    let k = n.constant_bus(value, a.len());
    let zero = n.constant(false);
    ripple_adder(n, a, &k, zero)
}

/// Incrementer: adds `inc` (a single bit) to the bus; returns
/// `(sum, carry_out)`.
pub fn incrementer(n: &mut Netlist, a: &[NodeId], inc: NodeId) -> (Bus, NodeId) {
    let mut carry = inc;
    let mut sum = Vec::with_capacity(a.len());
    for &ai in a {
        let s = n.xor(ai, carry);
        carry = n.and(ai, carry);
        sum.push(s);
    }
    (sum, carry)
}

/// Subtracts a constant from a bus via two's complement; returns
/// `(difference, no_borrow)` where `no_borrow` is the adder carry-out
/// (1 when `a >= value`).
pub fn sub_constant(n: &mut Netlist, a: &[NodeId], value: u64) -> (Bus, NodeId) {
    let width = a.len();
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let k = n.constant_bus((!value) & mask, width);
    let one = n.constant(true);
    ripple_adder(n, a, &k, one)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ripple_adder_matches_integer_addition_exhaustively() {
        let mut n = Netlist::new();
        let a = n.input_bus(6);
        let b = n.input_bus(6);
        let zero = n.constant(false);
        let (sum, cout) = ripple_adder(&mut n, &a, &b, zero);
        for x in 0u64..64 {
            for y in 0u64..64 {
                let mut inputs = Vec::new();
                for i in 0..6 {
                    inputs.push((x >> i) & 1 == 1);
                }
                for i in 0..6 {
                    inputs.push((y >> i) & 1 == 1);
                }
                n.simulate(&inputs);
                let got = n.read_bus(&sum) | (u64::from(n.node(cout)) << 6);
                assert_eq!(got, x + y, "{x} + {y}");
            }
        }
    }

    #[test]
    fn wide_adder_randomized() {
        let mut n = Netlist::new();
        let a = n.input_bus(16);
        let b = n.input_bus(16);
        let zero = n.constant(false);
        let (sum, cout) = ripple_adder(&mut n, &a, &b, zero);
        let mut x: u64 = 0x1234;
        for _ in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let va = x & 0xFFFF;
            let vb = (x >> 16) & 0xFFFF;
            let mut inputs = Vec::new();
            for i in 0..16 {
                inputs.push((va >> i) & 1 == 1);
            }
            for i in 0..16 {
                inputs.push((vb >> i) & 1 == 1);
            }
            n.simulate(&inputs);
            let got = n.read_bus(&sum) | (u64::from(n.node(cout)) << 16);
            assert_eq!(got, va + vb);
        }
    }

    #[test]
    fn incrementer_and_constants() {
        let mut n = Netlist::new();
        let a = n.input_bus(5);
        let inc = n.input();
        let (plus, _) = incrementer(&mut n, &a, inc);
        let (plus7, _) = add_constant(&mut n, &a, 7);
        let (minus3, no_borrow) = sub_constant(&mut n, &a, 3);
        for v in 0u64..32 {
            for i in [false, true] {
                let mut inputs: Vec<bool> = (0..5).map(|t| (v >> t) & 1 == 1).collect();
                inputs.push(i);
                n.simulate(&inputs);
                assert_eq!(n.read_bus(&plus), (v + u64::from(i)) & 31);
                assert_eq!(n.read_bus(&plus7), (v + 7) & 31);
                assert_eq!(n.read_bus(&minus3), v.wrapping_sub(3) & 31);
                assert_eq!(n.node(no_borrow), v >= 3);
            }
        }
    }
}
