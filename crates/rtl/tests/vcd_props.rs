//! Property tests for the VCD writer: whatever names, bus widths and
//! stimulus the recorder is fed, the rendered document must stay
//! parseable — declarations before use, strictly monotone timestamps,
//! change records only for declared identifiers, values within the
//! declared bus width. These are the invariants GTKWave-class viewers
//! rely on; a hostile signal name must corrupt itself, not the file.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::collections::{HashMap, HashSet};

use pacq_rtl::{Netlist, VcdRecorder};

/// Names spanning the space a caller might plausibly produce: plain
/// identifiers, empty strings, embedded whitespace, VCD keywords and
/// arbitrary unicode — with enough duplicates in the pool to exercise
/// the collision-suffix path.
fn arb_name() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "clk".to_string(),
        "bus_a".to_string(),
        String::new(),
        "two words".to_string(),
        "$end".to_string(),
        "a\tb\nc".to_string(),
        "éclair∅".to_string(),
        "a".to_string(),
        "a_2".to_string(),
    ])
}

/// Structural check of a rendered VCD document.
fn check_wellformed(text: &str, expected_signals: usize) -> Result<(), TestCaseError> {
    let mut declared_codes: HashSet<String> = HashSet::new();
    let mut declared_names: HashSet<String> = HashSet::new();
    let mut widths: HashMap<String, usize> = HashMap::new();
    let mut last_ts: Option<u64> = None;
    let mut past_definitions = false;

    for line in text.lines() {
        if line.starts_with("$var") {
            prop_assert!(!past_definitions, "declaration after $enddefinitions");
            let toks: Vec<&str> = line.split_whitespace().collect();
            // `$var wire <width> <code> <name> $end` — exactly six
            // tokens; an unsanitized name with spaces would add more.
            prop_assert_eq!(toks.len(), 6, "malformed $var: {}", line);
            prop_assert_eq!(toks[1], "wire");
            prop_assert_eq!(toks[5], "$end");
            let width: usize = toks[2]
                .parse()
                .map_err(|_| TestCaseError::Fail(format!("bad width in {line}")))?;
            prop_assert!(width >= 1);
            prop_assert!(
                declared_codes.insert(toks[3].to_string()),
                "duplicate id code: {}",
                line
            );
            prop_assert!(
                declared_names.insert(toks[4].to_string()),
                "duplicate signal name: {}",
                line
            );
            prop_assert!(
                toks[4].chars().all(|c| c.is_ascii_graphic() && c != '$'),
                "unsanitized name: {}",
                line
            );
            widths.insert(toks[3].to_string(), width);
        } else if line.starts_with("$enddefinitions") {
            past_definitions = true;
        } else if let Some(ts) = line.strip_prefix('#') {
            prop_assert!(past_definitions, "timestamp inside the header");
            let ts: u64 = ts
                .parse()
                .map_err(|_| TestCaseError::Fail(format!("bad timestamp {line}")))?;
            prop_assert!(
                last_ts.is_none_or(|prev| ts > prev),
                "timestamps must be strictly monotone: #{ts} after #{:?}",
                last_ts
            );
            last_ts = Some(ts);
        } else if let Some(rest) = line.strip_prefix('b') {
            prop_assert!(last_ts.is_some(), "vector change before any timestamp");
            let (value, code) = rest
                .split_once(' ')
                .ok_or_else(|| TestCaseError::Fail(format!("malformed change {line}")))?;
            prop_assert!(
                declared_codes.contains(code),
                "change for undeclared id `{code}`"
            );
            prop_assert!(value.chars().all(|c| c == '0' || c == '1'), "{}", line);
            prop_assert!(
                value.len() <= widths[code],
                "value wider than declared bus: {}",
                line
            );
        } else if !line.starts_with('$') && !line.is_empty() {
            // Scalar change: `<0|1><code>`.
            prop_assert!(last_ts.is_some(), "scalar change before any timestamp");
            prop_assert!(line.starts_with('0') || line.starts_with('1'), "{}", line);
            let code = &line[1..];
            prop_assert!(
                declared_codes.contains(code),
                "change for undeclared id `{code}`"
            );
            prop_assert_eq!(widths[code], 1, "scalar change on a vector bus: {}", line);
        }
    }
    prop_assert_eq!(declared_codes.len(), expected_signals);
    prop_assert!(last_ts.is_some(), "document must end with a timestamp");
    Ok(())
}

proptest! {
    /// Any mix of names (hostile included), widths and stimulus renders
    /// a well-formed document.
    #[test]
    fn rendered_vcd_is_wellformed(
        names in prop::collection::vec(arb_name(), 1..6),
        widths in prop::collection::vec(1usize..17, 1..6),
        stimulus in prop::collection::vec(prop::collection::vec(any::<u64>(), 1..6), 1..8),
    ) {
        let mut net = Netlist::new();
        let buses: Vec<Vec<_>> = names
            .iter()
            .enumerate()
            .map(|(i, _)| net.input_bus(widths[i % widths.len()]))
            .collect();
        let mut vcd = VcdRecorder::new("dut");
        for (name, bus) in names.iter().zip(&buses) {
            vcd.watch(name.clone(), bus);
        }
        for step in &stimulus {
            let mut bits = Vec::new();
            for (i, bus) in buses.iter().enumerate() {
                let v = step[i % step.len()];
                bits.extend((0..bus.len()).map(|bit| (v >> bit) & 1 == 1));
            }
            net.simulate(&bits);
            vcd.sample(&net);
        }
        let text = vcd.render();
        check_wellformed(&text, names.len())?;
    }

    /// A constant stimulus never records a change after #0 — the dump is
    /// change-based, not sample-based.
    #[test]
    fn constant_stimulus_records_once(
        width in 1usize..17,
        value in any::<u64>(),
        steps in 2usize..8,
    ) {
        let mut net = Netlist::new();
        let bus = net.input_bus(width);
        let mut vcd = VcdRecorder::new("dut");
        vcd.watch("x", &bus);
        let bits: Vec<bool> = (0..width).map(|b| (value >> b) & 1 == 1).collect();
        for _ in 0..steps {
            net.simulate(&bits);
            vcd.sample(&net);
        }
        let text = vcd.render();
        check_wellformed(&text, 1)?;
        // Exactly two timestamps survive: the initial value and the
        // closing marker.
        let stamps = text.lines().filter(|l| l.starts_with('#')).count();
        prop_assert_eq!(stamps, 2, "{}", text);
    }
}
