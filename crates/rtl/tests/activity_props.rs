//! Property tests for the toggle counter (ISSUE satellite): the
//! per-gate toggle counts a netlist simulation accumulates must equal
//! the transition counts recovered by parsing the exported VCD for the
//! same stimulus — over random operand streams, for both multipliers
//! and both weight precisions.
//!
//! This pins the equivalence the activity calibration rests on: the
//! energy mode prices simulation-side toggle histograms, and the VCD
//! parse is the independent, format-level witness that those counts
//! describe the waveforms a viewer would see.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

use pacq_fp16::WeightPrecision;
use pacq_rtl::{
    measure, parse_transition_counts, Fp16MulCircuit, MulKind, Netlist, NodeId,
    ParallelFpIntCircuit, VcdRecorder,
};

/// Replays `counts` (per-node VCD transitions, declaration order
/// `g{id}`) against the netlist's own toggle counters.
fn assert_counts_match(netlist: &Netlist, counts: &[(String, u64)]) -> Result<(), TestCaseError> {
    prop_assert_eq!(counts.len(), netlist.node_count());
    let mut vcd_total = 0u64;
    for (id, (name, transitions)) in counts.iter().enumerate() {
        let expected_name = format!("g{id}");
        prop_assert_eq!(name.as_str(), expected_name.as_str());
        prop_assert_eq!(
            *transitions,
            netlist.toggles_of(id as NodeId),
            "node {} transitions diverge",
            id
        );
        vcd_total += transitions;
    }
    prop_assert_eq!(vcd_total, netlist.total_toggles());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Baseline FP16 multiplier: VCD transitions == netlist toggles for
    /// any random operand stream.
    #[test]
    fn baseline_vcd_transitions_equal_netlist_toggles(
        ops in prop::collection::vec((any::<u16>(), any::<u16>()), 1..24),
    ) {
        let mut c = Fp16MulCircuit::build();
        let mut vcd = VcdRecorder::new("dut");
        vcd.watch_all_nodes(&c.netlist);
        for &(a, w) in &ops {
            c.multiply(a, w);
            vcd.sample(&c.netlist);
        }
        let counts = parse_transition_counts(&vcd.render())
            .map_err(|e| TestCaseError::Fail(format!("parse failed: {e}")))?;
        assert_counts_match(&c.netlist, &counts)?;
    }

    /// Parallel FP-INT multiplier, both precisions (4-lane INT4 build
    /// and 8-lane INT2 build): VCD transitions == netlist toggles.
    #[test]
    fn parallel_vcd_transitions_equal_netlist_toggles(
        int2 in any::<bool>(),
        ops in prop::collection::vec((any::<u16>(), any::<u16>()), 1..16),
    ) {
        let mut c = if int2 {
            ParallelFpIntCircuit::build_int2()
        } else {
            ParallelFpIntCircuit::build()
        };
        let mut vcd = VcdRecorder::new("dut");
        vcd.watch_all_nodes(&c.netlist);
        for &(a, packed) in &ops {
            c.multiply_all(a, packed);
            vcd.sample(&c.netlist);
        }
        let counts = parse_transition_counts(&vcd.render())
            .map_err(|e| TestCaseError::Fail(format!("parse failed: {e}")))?;
        assert_counts_match(&c.netlist, &counts)?;
    }

    /// The calibration stimulus itself (both multipliers × both
    /// precisions over the precision-representative stream): the
    /// measured class histogram totals agree with the VCD replay of the
    /// identical stream.
    #[test]
    fn measured_streams_agree_with_their_vcd_replay(
        seed in any::<u64>(),
        ops in 2u64..20,
    ) {
        for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
            for kind in MulKind::ALL {
                let profile = measure(kind, precision, ops, seed)
                    .map_err(|e| TestCaseError::Fail(format!("measure: {e}")))?;
                // Replay the same stream against a fresh circuit with a
                // recorder attached; the dump must reproduce the exact
                // toggle totals the measurement reported.
                let (netlist, text) = replay_with_vcd(kind, precision, ops, seed);
                let counts = parse_transition_counts(&text)
                    .map_err(|e| TestCaseError::Fail(format!("parse: {e}")))?;
                assert_counts_match(&netlist, &counts)?;
                prop_assert_eq!(netlist.total_toggles(), profile.total_toggles);
                prop_assert_eq!(netlist.toggles_by_class(), profile.toggles_by_class);
            }
        }
    }
}

/// Drives the same deterministic stream [`measure`] uses, with every
/// node watched, returning the simulated netlist and the rendered dump.
fn replay_with_vcd(
    kind: MulKind,
    precision: WeightPrecision,
    ops: u64,
    seed: u64,
) -> (Netlist, String) {
    // The stream construction mirrors `pacq_rtl::activity`: same LCG,
    // same operand shaping — byte-identical operands by construction
    // (asserted via the toggle totals in the property above).
    let mut x = seed;
    let mut step = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x
    };
    let normal = |r: u64, mantissa_bits: u32| -> u16 {
        let sign = ((r >> 40) & 1) as u16;
        let exponent = 1 + ((r >> 32) % 30) as u16;
        let mantissa = if mantissa_bits >= 10 {
            (r & 0x3FF) as u16
        } else {
            ((r & ((1 << mantissa_bits) - 1)) as u16) << (10 - mantissa_bits)
        };
        (sign << 15) | (exponent << 10) | mantissa
    };
    match kind {
        MulKind::Baseline => {
            let mut c = Fp16MulCircuit::build();
            let mut vcd = VcdRecorder::new("dut");
            vcd.watch_all_nodes(&c.netlist);
            for _ in 0..ops {
                let a = normal(step(), 10);
                let w = normal(step(), precision.bits());
                c.multiply(a, w);
                vcd.sample(&c.netlist);
            }
            let text = vcd.render();
            (c.netlist, text)
        }
        MulKind::Parallel => {
            let mut c = match precision {
                WeightPrecision::Int4 => ParallelFpIntCircuit::build(),
                WeightPrecision::Int2 => ParallelFpIntCircuit::build_int2(),
            };
            let mut vcd = VcdRecorder::new("dut");
            vcd.watch_all_nodes(&c.netlist);
            for _ in 0..ops {
                let a = normal(step(), 10);
                let packed = (step() & 0xFFFF) as u16;
                c.multiply_all(a, packed);
                vcd.sample(&c.netlist);
            }
            let text = vcd.render();
            (c.netlist, text)
        }
    }
}
