//! Dump a VCD waveform of the parallel FP-INT multiplier processing a
//! short activation stream — open `pacq_parallel_mul.vcd` in GTKWave.
//!
//! Run with: `cargo run --release -p pacq-rtl --example waveform`

use pacq_fp16::Fp16;
use pacq_rtl::{ParallelFpIntCircuit, VcdRecorder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut circuit = ParallelFpIntCircuit::build();

    // Rebuild to grab the input node ids (the circuit owns its netlist).
    let mut netlist_probe = pacq_rtl::Netlist::new();
    let a_bus = netlist_probe.input_bus(16);
    let packed_bus = netlist_probe.input_bus(16);
    let outs =
        pacq_rtl::parallel_mul::parallel_fp_int_multiplier(&mut netlist_probe, &a_bus, &packed_bus);

    let mut vcd = VcdRecorder::new("parallel_fp_int_mul");
    vcd.watch("a", &a_bus);
    vcd.watch("packed_b", &packed_bus);
    for (lane, out) in outs.iter().enumerate() {
        vcd.watch(format!("product_{lane}"), out);
    }

    // Drive a stream of activations against one packed word (codes
    // 0, 5, 10, 15 → biased weights 1024, 1029, 1034, 1039).
    let packed = 0xFA50u16;
    let activations = [0.5f32, 1.0, -1.5, 2.0, 2.0, 0.25, -8.0, 60.0];
    let mut inputs = Vec::with_capacity(32);
    for &x in &activations {
        let a = Fp16::from_f32(x).to_bits();
        inputs.clear();
        for i in 0..16 {
            inputs.push((a >> i) & 1 == 1);
        }
        for i in 0..16 {
            inputs.push((packed >> i) & 1 == 1);
        }
        netlist_probe.simulate(&inputs);
        vcd.sample(&netlist_probe);
        // Also run the member circuit to show they agree.
        let products = circuit.multiply(a, packed);
        for (lane, &p) in products.iter().enumerate() {
            assert_eq!(p as u64, netlist_probe.read_bus(&outs[lane]), "lane {lane}");
        }
    }

    let path = "pacq_parallel_mul.vcd";
    std::fs::write(path, vcd.render())?;
    println!(
        "wrote {path}: {} signals x {} timesteps ({} gates simulated)",
        6,
        vcd.steps(),
        netlist_probe.gate_counts().total()
    );
    println!("open it with: gtkwave {path}");
    Ok(())
}
