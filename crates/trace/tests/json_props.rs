//! Property tests for the dependency-free JSON model (DESIGN.md §11):
//! every rendering form — pretty (`render`), embedded
//! (`render_compact`), and single-line NDJSON frame (`render_line`) —
//! must parse back to an equal document, and the lossless
//! u64-as-string counter encoding used by `pacq-cache` entries and the
//! `pacq-serve/v1` protocol must survive the trip bit-exactly.

use pacq_trace::Json;
use proptest::prelude::*;

/// A leaf value drawn from the vocabulary every pacq artifact uses:
/// nulls, booleans, integers in and beyond f64's exact range (as the
/// u64-as-string encoding), shortest-form floats, and strings with the
/// characters that stress the escaper (quotes, backslashes, newlines,
/// control bytes, non-ASCII).
fn any_leaf() -> impl Strategy<Value = Json> {
    prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        // Integers that must survive as JSON numbers (within 2^53).
        (0u64..(1 << 53)).prop_map(|n| Json::Num(n as f64)),
        // Counters beyond f64's exact-integer range travel as decimal
        // strings — the pacq-cache / pacq-serve lossless encoding.
        any::<u64>().prop_map(|n| Json::Str(n.to_string())),
        // Finite floats of any shape (subnormals included via division).
        (any::<u32>(), 1u32..1000).prop_map(|(a, b)| Json::Num(f64::from(a) / f64::from(b))),
        any_string().prop_map(Json::Str),
    ]
}

fn any_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop::sample::select(vec![
            "a", "B", "7", " ", "\"", "\\", "\n", "\r", "\t", "\u{1}", "π", "é", "€", "𝄞", "/",
            "{", "}", "[", "]", ":", ",",
        ]),
        0..12,
    )
    .prop_map(|parts| parts.concat())
}

/// A document tree up to three levels deep with object keys drawn from
/// the same hostile alphabet as values.
fn any_doc() -> impl Strategy<Value = Json> {
    let leaf = any_leaf();
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Json::Arr),
            proptest::collection::vec((any_string(), inner), 0..6).prop_map(|entries| {
                // Duplicate keys would make `set`-based comparison
                // ambiguous; keep first occurrence like Json::set does.
                let mut obj = Json::object();
                for (k, v) in entries {
                    if obj.get(&k).is_none() {
                        obj.set(&k, v);
                    }
                }
                obj
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// parse ∘ render is the identity for all three rendering forms, and
    /// rendering is deterministic (render twice, same bytes).
    #[test]
    fn every_rendering_form_round_trips(doc in any_doc()) {
        for (form, text) in [
            ("render", doc.render()),
            ("render_compact", doc.render_compact()),
            ("render_line", doc.render_line()),
        ] {
            let back = Json::parse(&text)
                .unwrap_or_else(|e| panic!("{form} output must parse: {e}\n{text}"));
            prop_assert_eq!(&back, &doc, "{} drifted", form);
        }
        prop_assert_eq!(doc.render(), doc.render(), "render is deterministic");
    }

    /// The single-line form never contains a raw newline — the framing
    /// invariant of every NDJSON consumer of this writer.
    #[test]
    fn render_line_never_embeds_a_newline(doc in any_doc()) {
        let line = doc.render_line();
        prop_assert!(!line.contains('\n'), "embedded newline in {line:?}");
        prop_assert!(!line.contains('\r'), "embedded CR in {line:?}");
    }

    /// The u64-as-string counter encoding is lossless for every u64,
    /// including values beyond f64's 2^53 exact-integer ceiling, through
    /// both the pretty and the single-line writer.
    #[test]
    fn u64_as_string_counters_round_trip_bit_exactly(value in any::<u64>()) {
        let mut doc = Json::object();
        doc.set("counter", Json::Str(value.to_string()));
        for text in [doc.render(), doc.render_line()] {
            let back = Json::parse(&text).unwrap();
            let decoded: u64 = back
                .get("counter")
                .and_then(Json::as_str)
                .and_then(|s| s.parse().ok())
                .expect("counter decodes");
            prop_assert_eq!(decoded, value);
        }
    }

    /// Finite f64 payloads round-trip bit-exactly: the writer emits the
    /// shortest form that parses back to the identical bits (the
    /// property the cache's "hit ≡ fresh" guarantee rests on).
    #[test]
    fn finite_floats_round_trip_bit_exactly(bits in any::<u64>()) {
        let value = f64::from_bits(bits);
        prop_assume!(value.is_finite());
        let mut doc = Json::object();
        doc.set("x", Json::Num(value));
        for text in [doc.render(), doc.render_line()] {
            let back = Json::parse(&text).unwrap();
            let decoded = back.get("x").and_then(Json::as_num).expect("numeric");
            prop_assert_eq!(
                decoded.to_bits(),
                value.to_bits(),
                "{} decoded as {}",
                value,
                decoded
            );
        }
    }
}
