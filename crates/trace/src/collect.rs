//! The process-wide metrics collector: named counters, per-phase
//! wall-clock spans, and structured result records.
//!
//! Instrumentation sites across the workspace call [`span`] and
//! [`add_counter`] unconditionally; when collection is disabled (the
//! default) both are a single relaxed atomic load — no clock reads, no
//! locking, no allocation — so the hot paths of DESIGN.md §9 keep their
//! measured throughput. The `pacq` CLI and every figure binary enable
//! collection only when `--metrics <path>` is given.

use crate::json::Json;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<State>> = Mutex::new(None);

/// Spans retained verbatim per phase name. Beyond this the collector
/// folds further same-named spans into one aggregate tally instead of
/// storing them, so a long-lived process (a `pacq serve` instance
/// answering millions of requests, each wrapped in a `core.analyze`
/// span) cannot grow its memory or its `--metrics` manifest without
/// bound. The folded call count and total duration are preserved and
/// surfaced as `trace.spans_folded.*` counters by the manifest gather.
pub const MAX_SPANS_PER_NAME: usize = 1024;

struct State {
    epoch: Instant,
    spans: Vec<SpanRecord>,
    /// Per-name `(recorded, folded, folded_dur_us)` tallies backing the
    /// [`MAX_SPANS_PER_NAME`] cap. Linear scan: a run has a handful of
    /// distinct phase names.
    span_tallies: Vec<(&'static str, u64, u64, u64)>,
    counters: Vec<(&'static str, u64)>,
    results: Vec<(String, Json)>,
}

impl State {
    fn new() -> State {
        State {
            epoch: Instant::now(),
            spans: Vec::new(),
            span_tallies: Vec::new(),
            counters: Vec::new(),
            results: Vec::new(),
        }
    }
}

/// One completed wall-clock span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Phase name, dotted by subsystem (`simt.simulate`, `quant.rtn`).
    pub name: &'static str,
    /// Start offset from collection start, in microseconds.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// Aggregate of same-named spans folded once a phase exceeded
/// [`MAX_SPANS_PER_NAME`] recorded spans. Nothing is lost silently: the
/// folded call count and their summed wall-clock survive here and land
/// in the manifest as counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanOverflow {
    /// Phase name, identical to the retained spans it overflows.
    pub name: &'static str,
    /// How many spans were folded instead of recorded.
    pub folded: u64,
    /// Summed duration of the folded spans, in microseconds.
    pub folded_dur_us: u64,
}

/// Enables collection and clears any previously recorded data.
pub fn enable() {
    let mut state = lock();
    *state = Some(State::new());
    ENABLED.store(true, Ordering::Release);
}

/// Disables collection (recorded data stays until the next [`enable`]).
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// `true` while collection is active.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn lock() -> std::sync::MutexGuard<'static, Option<State>> {
    // A poisoned collector must never take the simulation down with it;
    // metrics are best-effort by design.
    STATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Starts a wall-clock span for a phase; the span is recorded when the
/// returned guard drops. When collection is disabled this is one atomic
/// load and returns an inert guard.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { name, start: None };
    }
    SpanGuard {
        name,
        start: Some(Instant::now()),
    }
}

/// Guard returned by [`span`]; records the span on drop.
#[must_use = "a span is recorded when its guard drops"]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let mut state = lock();
        let Some(state) = state.as_mut() else { return };
        let start_us = start
            .saturating_duration_since(state.epoch)
            .as_micros()
            .min(u128::from(u64::MAX)) as u64;
        let dur_us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        let tally = match state
            .span_tallies
            .iter_mut()
            .find(|(n, _, _, _)| *n == self.name)
        {
            Some(tally) => tally,
            None => {
                state.span_tallies.push((self.name, 0, 0, 0));
                match state.span_tallies.last_mut() {
                    Some(tally) => tally,
                    // Unreachable: the push above guarantees a last element.
                    None => return,
                }
            }
        };
        if (tally.1 as usize) < MAX_SPANS_PER_NAME {
            tally.1 += 1;
            state.spans.push(SpanRecord {
                name: self.name,
                start_us,
                dur_us,
            });
        } else {
            tally.2 += 1;
            tally.3 = tally.3.saturating_add(dur_us);
        }
    }
}

/// Adds `delta` to a named counter. One relaxed atomic load when
/// collection is disabled.
#[inline]
pub fn add_counter(name: &'static str, delta: u64) {
    if !is_enabled() {
        return;
    }
    let mut state = lock();
    let Some(state) = state.as_mut() else { return };
    if let Some(slot) = state.counters.iter_mut().find(|(n, _)| *n == name) {
        slot.1 += delta;
    } else {
        state.counters.push((name, delta));
    }
}

/// Records one structured result (a simulated GEMM report, an audit
/// point, ...) under a sort key. Results are emitted into the manifest
/// sorted by key, so parallel sweeps produce deterministic manifests.
pub fn record_result(sort_key: impl Into<String>, value: Json) {
    if !is_enabled() {
        return;
    }
    let mut state = lock();
    if let Some(state) = state.as_mut() {
        state.results.push((sort_key.into(), value));
    }
}

/// Drains everything recorded since [`enable`]: `(spans, counters,
/// results, overflows)` with results stable-sorted by key and one
/// [`SpanOverflow`] per phase name that blew past
/// [`MAX_SPANS_PER_NAME`]. Collection stays enabled with a fresh epoch.
pub fn drain() -> DrainedMetrics {
    let mut state = lock();
    let Some(state) = state.as_mut() else {
        return (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    };
    let spans = std::mem::take(&mut state.spans);
    let counters = std::mem::take(&mut state.counters);
    let mut results = std::mem::take(&mut state.results);
    results.sort_by(|a, b| a.0.cmp(&b.0));
    let overflows = std::mem::take(&mut state.span_tallies)
        .into_iter()
        .filter(|(_, _, folded, _)| *folded > 0)
        .map(|(name, _, folded, folded_dur_us)| SpanOverflow {
            name,
            folded,
            folded_dur_us,
        })
        .collect();
    (
        spans,
        counters,
        results.into_iter().map(|(_, v)| v).collect(),
        overflows,
    )
}

/// Everything [`drain`] hands back in one pass.
pub type DrainedMetrics = (
    Vec<SpanRecord>,
    Vec<(&'static str, u64)>,
    Vec<Json>,
    Vec<SpanOverflow>,
);

#[cfg(test)]
mod tests {
    use super::*;

    /// Collector tests share process-wide state; serialize them.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let _guard = test_lock();
        enable();
        disable();
        {
            let _s = span("test.phase");
        }
        add_counter("test.counter", 3);
        record_result("k", Json::Null);
        enable();
        let (spans, counters, results, overflows) = drain();
        assert!(spans.is_empty());
        assert!(counters.is_empty());
        assert!(results.is_empty());
        assert!(overflows.is_empty());
        disable();
    }

    #[test]
    fn spans_and_counters_accumulate() {
        let _guard = test_lock();
        enable();
        {
            let _s = span("test.outer");
            let _inner = span("test.inner");
        }
        add_counter("test.calls", 1);
        add_counter("test.calls", 2);
        let (spans, counters, _, overflows) = drain();
        // Inner drops before outer, so it is recorded first.
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "test.inner");
        assert_eq!(spans[1].name, "test.outer");
        assert!(spans[1].start_us <= spans[0].start_us + spans[0].dur_us + 1_000_000);
        assert_eq!(counters, vec![("test.calls", 3)]);
        assert!(overflows.is_empty(), "nothing folded below the cap");
        disable();
    }

    #[test]
    fn results_are_sorted_by_key() {
        let _guard = test_lock();
        enable();
        record_result("b", Json::from("second"));
        record_result("a", Json::from("first"));
        let (_, _, results, _) = drain();
        assert_eq!(results[0].as_str(), Some("first"));
        assert_eq!(results[1].as_str(), Some("second"));
        disable();
    }

    #[test]
    fn spans_fold_beyond_the_per_name_cap() {
        let _guard = test_lock();
        enable();
        // A serving process records the same phase millions of times;
        // the collector must stay bounded while losing no accounting.
        for _ in 0..MAX_SPANS_PER_NAME + 7 {
            let _s = span("test.hot_phase");
        }
        {
            let _s = span("test.rare_phase");
        }
        let (spans, _, _, overflows) = drain();
        let hot = spans.iter().filter(|s| s.name == "test.hot_phase").count();
        let rare = spans.iter().filter(|s| s.name == "test.rare_phase").count();
        assert_eq!(hot, MAX_SPANS_PER_NAME, "retained spans stop at the cap");
        assert_eq!(rare, 1, "the cap is per name, not global");
        assert_eq!(
            overflows,
            vec![SpanOverflow {
                name: "test.hot_phase",
                folded: 7,
                folded_dur_us: overflows.first().map_or(0, |o| o.folded_dur_us),
            }]
        );
        // Draining resets the tallies: the same phase records afresh.
        {
            let _s = span("test.hot_phase");
        }
        let (spans, _, _, overflows) = drain();
        assert_eq!(spans.len(), 1);
        assert!(overflows.is_empty());
        disable();
    }

    #[test]
    fn gathered_manifest_stays_bounded_and_accounts_for_folds() {
        let _guard = test_lock();
        enable();
        for _ in 0..MAX_SPANS_PER_NAME + 3 {
            let _s = span("test.served");
        }
        let mut m = crate::manifest::RunManifest::new("serve", &[]);
        m.gather();
        disable();
        let doc = m.to_json();
        crate::manifest::validate_manifest(&doc).expect("folded manifest is schema-valid");
        let spans = match doc.get("spans") {
            Some(Json::Arr(items)) => items.len(),
            other => panic!("spans must be an array, got {other:?}"),
        };
        assert_eq!(spans, MAX_SPANS_PER_NAME);
        let folded = doc
            .get("counters")
            .and_then(|c| c.get("trace.spans_folded.test.served"))
            .and_then(Json::as_num);
        assert_eq!(folded, Some(3.0));
        assert!(doc
            .get("counters")
            .and_then(|c| c.get("trace.spans_folded_dur_us.test.served"))
            .and_then(Json::as_num)
            .is_some());
    }
}
