//! The process-wide metrics collector: named counters, per-phase
//! wall-clock spans, and structured result records.
//!
//! Instrumentation sites across the workspace call [`span`] and
//! [`add_counter`] unconditionally; when collection is disabled (the
//! default) both are a single relaxed atomic load — no clock reads, no
//! locking, no allocation — so the hot paths of DESIGN.md §9 keep their
//! measured throughput. The `pacq` CLI and every figure binary enable
//! collection only when `--metrics <path>` is given.

use crate::json::Json;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<State>> = Mutex::new(None);

struct State {
    epoch: Instant,
    spans: Vec<SpanRecord>,
    counters: Vec<(&'static str, u64)>,
    results: Vec<(String, Json)>,
}

impl State {
    fn new() -> State {
        State {
            epoch: Instant::now(),
            spans: Vec::new(),
            counters: Vec::new(),
            results: Vec::new(),
        }
    }
}

/// One completed wall-clock span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Phase name, dotted by subsystem (`simt.simulate`, `quant.rtn`).
    pub name: &'static str,
    /// Start offset from collection start, in microseconds.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// Enables collection and clears any previously recorded data.
pub fn enable() {
    let mut state = lock();
    *state = Some(State::new());
    ENABLED.store(true, Ordering::Release);
}

/// Disables collection (recorded data stays until the next [`enable`]).
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// `true` while collection is active.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn lock() -> std::sync::MutexGuard<'static, Option<State>> {
    // A poisoned collector must never take the simulation down with it;
    // metrics are best-effort by design.
    STATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Starts a wall-clock span for a phase; the span is recorded when the
/// returned guard drops. When collection is disabled this is one atomic
/// load and returns an inert guard.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { name, start: None };
    }
    SpanGuard {
        name,
        start: Some(Instant::now()),
    }
}

/// Guard returned by [`span`]; records the span on drop.
#[must_use = "a span is recorded when its guard drops"]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let mut state = lock();
        let Some(state) = state.as_mut() else { return };
        let start_us = start
            .saturating_duration_since(state.epoch)
            .as_micros()
            .min(u128::from(u64::MAX)) as u64;
        let dur_us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        state.spans.push(SpanRecord {
            name: self.name,
            start_us,
            dur_us,
        });
    }
}

/// Adds `delta` to a named counter. One relaxed atomic load when
/// collection is disabled.
#[inline]
pub fn add_counter(name: &'static str, delta: u64) {
    if !is_enabled() {
        return;
    }
    let mut state = lock();
    let Some(state) = state.as_mut() else { return };
    if let Some(slot) = state.counters.iter_mut().find(|(n, _)| *n == name) {
        slot.1 += delta;
    } else {
        state.counters.push((name, delta));
    }
}

/// Records one structured result (a simulated GEMM report, an audit
/// point, ...) under a sort key. Results are emitted into the manifest
/// sorted by key, so parallel sweeps produce deterministic manifests.
pub fn record_result(sort_key: impl Into<String>, value: Json) {
    if !is_enabled() {
        return;
    }
    let mut state = lock();
    if let Some(state) = state.as_mut() {
        state.results.push((sort_key.into(), value));
    }
}

/// Drains everything recorded since [`enable`]: `(spans, counters,
/// results)` with results stable-sorted by key. Collection stays enabled
/// with a fresh epoch.
pub fn drain() -> (Vec<SpanRecord>, Vec<(&'static str, u64)>, Vec<Json>) {
    let mut state = lock();
    let Some(state) = state.as_mut() else {
        return (Vec::new(), Vec::new(), Vec::new());
    };
    let spans = std::mem::take(&mut state.spans);
    let counters = std::mem::take(&mut state.counters);
    let mut results = std::mem::take(&mut state.results);
    results.sort_by(|a, b| a.0.cmp(&b.0));
    (
        spans,
        counters,
        results.into_iter().map(|(_, v)| v).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Collector tests share process-wide state; serialize them.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let _guard = test_lock();
        enable();
        disable();
        {
            let _s = span("test.phase");
        }
        add_counter("test.counter", 3);
        record_result("k", Json::Null);
        enable();
        let (spans, counters, results) = drain();
        assert!(spans.is_empty());
        assert!(counters.is_empty());
        assert!(results.is_empty());
        disable();
    }

    #[test]
    fn spans_and_counters_accumulate() {
        let _guard = test_lock();
        enable();
        {
            let _s = span("test.outer");
            let _inner = span("test.inner");
        }
        add_counter("test.calls", 1);
        add_counter("test.calls", 2);
        let (spans, counters, _) = drain();
        // Inner drops before outer, so it is recorded first.
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "test.inner");
        assert_eq!(spans[1].name, "test.outer");
        assert!(spans[1].start_us <= spans[0].start_us + spans[0].dur_us + 1_000_000);
        assert_eq!(counters, vec![("test.calls", 3)]);
        disable();
    }

    #[test]
    fn results_are_sorted_by_key() {
        let _guard = test_lock();
        enable();
        record_result("b", Json::from("second"));
        record_result("a", Json::from("first"));
        let (_, _, results) = drain();
        assert_eq!(results[0].as_str(), Some("first"));
        assert_eq!(results[1].as_str(), Some("second"));
        disable();
    }
}
