//! A minimal JSON document model with a writer and a strict parser.
//!
//! The workspace builds hermetically with no registry access (DESIGN.md
//! §8), so `serde`/`serde_json` are substituted by this module: a small
//! ordered value tree, a pretty printer, and a recursive-descent parser
//! that round-trips everything the manifest and trace exporters emit.
//! Object key order is preserved (insertion order), which keeps emitted
//! manifests diffable across runs.

use pacq_error::{PacqError, PacqResult};

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 survive
    /// round-tripping exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts (or replaces) a key in an object; no-op on non-objects.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        let value = value.into();
        if let Json::Obj(entries) = self {
            if let Some(slot) = entries.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value;
            } else {
                entries.push((key.to_string(), value));
            }
        }
        self
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// `true` when the value is an object.
    pub fn is_obj(&self) -> bool {
        matches!(self, Json::Obj(_))
    }

    /// Renders the document with two-space indentation and a trailing
    /// newline — the canonical on-disk form of every pacq artifact.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders without the trailing newline (for embedding). Nested
    /// arrays and objects still span lines; for newline-delimited
    /// protocols use [`Json::render_line`].
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Renders the document as exactly one line, with no interior
    /// newlines or indentation — the frame form of the `pacq-serve/v1`
    /// protocol, where one JSON value per `\n`-terminated line is the
    /// framing contract. String contents are escaped (`\n` → `\\n`), so
    /// the output never contains a raw newline byte. Parses back to an
    /// equal document ([`Json::parse`] is whitespace-agnostic).
    pub fn render_line(&self) -> String {
        let mut out = String::new();
        self.write_line(&mut out);
        out
    }

    fn write_line(&self, out: &mut String) {
        match self {
            Json::Null | Json::Bool(_) | Json::Num(_) | Json::Str(_) => self.write(out, 0),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_line(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_line(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&render_number(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::InvalidInput`] naming the byte offset of the
    /// first syntax error, including trailing garbage after the value.
    pub fn parse(text: &str) -> PacqResult<Json> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(v)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

/// Renders a number the way the parser reads it back: integers without a
/// fraction, everything else via the shortest `f64` form. Non-finite
/// values (which JSON cannot represent) render as `null`.
fn render_number(n: f64) -> String {
    if !n.is_finite() {
        return "null".to_string();
    }
    if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        format!("{}", n as i64)
    } else {
        let mut s = format!("{n}");
        // `{}` on f64 never prints an exponent for normal magnitudes, but
        // guard against forms like `1e-7` lacking a fraction marker.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            s.push_str(".0");
        }
        s
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> PacqError {
        PacqError::invalid_input(
            "trace::Json::parse",
            format!("{message} (at byte {})", self.pos),
        )
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> PacqResult<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {what}")))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> PacqResult<Json> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> PacqResult<Json> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> PacqResult<Json> {
        self.eat(b'[', "`[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> PacqResult<Json> {
        self.eat(b'{', "`{`")?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "`:` after object key")?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> PacqResult<String> {
        self.eat(b'"', "`\"`")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by the
                            // writer; decode lone BMP scalars only.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to a char boundary: take the full UTF-8
                    // sequence starting at pos-1.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> PacqResult<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        Ok(Json::Num(n))
    }
}

const fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        let mut root = Json::object();
        root.set("schema", Json::from("pacq-metrics/v1"));
        root.set("count", Json::from(42u64));
        root.set("ratio", Json::from(0.125));
        root.set("ok", Json::from(true));
        root.set("none", Json::Null);
        root.set(
            "items",
            Json::Arr(vec![Json::from(1u64), Json::from("two"), Json::Bool(false)]),
        );
        let mut nested = Json::object();
        nested.set("quote\"and\\slash", Json::from("line\nbreak\ttab"));
        root.set("nested", nested);
        root
    }

    #[test]
    fn round_trips_exactly() {
        let doc = sample();
        let text = doc.render();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(doc, back);
        // Idempotent: render(parse(render(x))) == render(x).
        assert_eq!(back.render(), text);
    }

    #[test]
    fn large_integers_survive() {
        let doc = Json::from(9_007_199_254_740_991u64); // 2^53 - 1
        let back = Json::parse(&doc.render()).unwrap();
        assert_eq!(back.as_num(), Some(9_007_199_254_740_991.0));
    }

    #[test]
    fn insertion_order_is_preserved() {
        let text = sample().render();
        let schema = text.find("schema").unwrap();
        let count = text.find("count").unwrap();
        let nested = text.find("nested").unwrap();
        assert!(schema < count && count < nested);
    }

    #[test]
    fn set_replaces_existing_keys() {
        let mut o = Json::object();
        o.set("k", Json::from(1u64));
        o.set("k", Json::from(2u64));
        assert_eq!(o.get("k").and_then(Json::as_num), Some(2.0));
        if let Json::Obj(entries) = &o {
            assert_eq!(entries.len(), 1);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\":}", "nul", "1 2", "{\"a\" 1}", "\"x"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v = Json::parse(" { \"π\" : [ 1 , 2.5e1 , \"\\u00e9\" ] } ").unwrap();
        let arr = v.get("π").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[1].as_num(), Some(25.0));
        assert_eq!(arr[2].as_str(), Some("é"));
    }

    #[test]
    fn render_line_is_single_line_and_round_trips() {
        let doc = sample();
        let line = doc.render_line();
        assert!(
            !line.contains('\n') && !line.contains('\r'),
            "NDJSON frame must be one line: {line:?}"
        );
        let back = Json::parse(&line).expect("parses");
        assert_eq!(doc, back);
        // The multi-line and single-line forms parse to the same tree.
        assert_eq!(Json::parse(&doc.render()).unwrap(), back);
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(Json::Num(f64::NAN).render_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render_compact(), "null");
    }
}
