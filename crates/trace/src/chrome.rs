//! Chrome `trace_event` exporter.
//!
//! Produces the JSON Object Format consumed by `chrome://tracing` and
//! Perfetto: `{"traceEvents": [...], "displayTimeUnit": "ms", ...}`
//! with complete (`"ph": "X"`) events. The cycle-resolved pipeline maps
//! one simulated cycle to one microsecond of trace time, so a 100-cycle
//! octet renders as a 100 µs lane — the `metadata.time_unit` field
//! records that convention for tooling.

use crate::json::Json;
use pacq_error::{PacqError, PacqResult};

/// A Chrome trace under construction.
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    events: Vec<Json>,
    metadata: Vec<(String, Json)>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a complete (`ph: "X"`) event: a named interval on lane
    /// `tid` of process `pid`, starting at `ts_us` and lasting
    /// `dur_us` (both in trace microseconds). `args` rows become the
    /// event's `args` object shown in the viewer's detail pane.
    #[allow(clippy::too_many_arguments)]
    pub fn complete_event(
        &mut self,
        name: &str,
        category: &str,
        pid: u64,
        tid: u64,
        ts_us: u64,
        dur_us: u64,
        args: &[(&str, Json)],
    ) {
        let mut event = Json::object();
        event.set("name", Json::from(name));
        event.set("cat", Json::from(category));
        event.set("ph", Json::from("X"));
        event.set("ts", Json::from(ts_us));
        event.set("dur", Json::from(dur_us));
        event.set("pid", Json::from(pid));
        event.set("tid", Json::from(tid));
        if !args.is_empty() {
            let mut obj = Json::object();
            for (key, value) in args {
                obj.set(key, value.clone());
            }
            event.set("args", obj);
        }
        self.events.push(event);
    }

    /// Adds an instant (`ph: "i"`) event — a zero-width marker at
    /// `ts_us` on lane `tid`, thread-scoped.
    pub fn instant_event(&mut self, name: &str, category: &str, pid: u64, tid: u64, ts_us: u64) {
        let mut event = Json::object();
        event.set("name", Json::from(name));
        event.set("cat", Json::from(category));
        event.set("ph", Json::from("i"));
        event.set("s", Json::from("t"));
        event.set("ts", Json::from(ts_us));
        event.set("pid", Json::from(pid));
        event.set("tid", Json::from(tid));
        self.events.push(event);
    }

    /// Names a lane: emits the `thread_name` metadata event the viewer
    /// uses to label `tid` under process `pid`.
    pub fn name_lane(&mut self, pid: u64, tid: u64, name: &str) {
        let mut event = Json::object();
        event.set("name", Json::from("thread_name"));
        event.set("ph", Json::from("M"));
        event.set("pid", Json::from(pid));
        event.set("tid", Json::from(tid));
        let mut args = Json::object();
        args.set("name", Json::from(name));
        event.set("args", args);
        self.events.push(event);
    }

    /// Attaches a top-level metadata field (e.g. `time_unit`, the
    /// simulated shape, the dataflow name).
    pub fn set_metadata(&mut self, key: &str, value: Json) {
        self.metadata.push((key.to_string(), value));
    }

    /// Number of events recorded so far (metadata lane-name events
    /// included).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the trace in the JSON Object Format.
    pub fn to_json(&self) -> Json {
        let mut root = Json::object();
        root.set("traceEvents", Json::Arr(self.events.clone()));
        root.set("displayTimeUnit", Json::from("ms"));
        if !self.metadata.is_empty() {
            let mut meta = Json::object();
            for (key, value) in &self.metadata {
                meta.set(key, value.clone());
            }
            root.set("metadata", meta);
        }
        root
    }

    /// Renders and writes the trace to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::Io`] when the file cannot be written.
    pub fn write_to(&self, path: &str) -> PacqResult<()> {
        std::fs::write(path, self.to_json().render()).map_err(|e| PacqError::Io {
            context: "trace::ChromeTrace::write_to",
            message: format!("cannot write `{path}`: {e}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_events_carry_the_trace_event_contract() {
        let mut trace = ChromeTrace::new();
        trace.name_lane(0, 1, "fetch");
        trace.complete_event(
            "BTile",
            "fetch",
            0,
            1,
            10,
            4,
            &[("bits", Json::from(128u64))],
        );
        trace.instant_event("evict", "buffer", 0, 1, 14);
        trace.set_metadata("time_unit", Json::from("1 trace µs = 1 SM cycle"));
        let doc = trace.to_json();

        let events = match doc.get("traceEvents") {
            Some(Json::Arr(items)) => items.clone(),
            other => panic!("traceEvents must be an array, got {other:?}"),
        };
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("M"));
        let x = &events[1];
        assert_eq!(x.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(x.get("ts").and_then(Json::as_num), Some(10.0));
        assert_eq!(x.get("dur").and_then(Json::as_num), Some(4.0));
        assert_eq!(
            x.get("args")
                .and_then(|a| a.get("bits"))
                .and_then(Json::as_num),
            Some(128.0)
        );
        assert_eq!(events[2].get("ph").and_then(Json::as_str), Some("i"));

        // The rendered document must re-parse to itself.
        let back = Json::parse(&doc.render()).expect("chrome trace parses");
        assert_eq!(doc, back);
    }

    #[test]
    fn empty_trace_is_still_a_valid_document() {
        let trace = ChromeTrace::new();
        assert!(trace.is_empty());
        assert_eq!(trace.len(), 0);
        let doc = trace.to_json();
        assert!(matches!(doc.get("traceEvents"), Some(Json::Arr(v)) if v.is_empty()));
        assert!(Json::parse(&doc.render()).is_ok());
    }
}
