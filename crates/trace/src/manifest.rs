//! The machine-readable **run manifest**: one JSON document per run
//! capturing what was simulated, the counters behind the numbers, the
//! per-phase wall-clock spans, and build/toolchain provenance.
//!
//! Schema `pacq-metrics/v1` (see DESIGN.md §11 for the field-by-field
//! contract):
//!
//! ```json
//! {
//!   "schema": "pacq-metrics/v1",
//!   "tool": { "name": "pacq", "version": "0.1.0",
//!             "git_commit": "abc123… | unknown",
//!             "toolchain": "rustc 1.xx | unknown" },
//!   "invocation": { "binary": "fig7", "args": ["--jobs", "2"], "jobs": 2 },
//!   "results": [ { "kind": "gemm_report", … }, … ],
//!   "counters": { "simt.simulate.calls": 12, … },
//!   "spans": [ { "name": "simt.simulate", "start_us": 0, "dur_us": 41 }, … ],
//!   "created_unix_s": 1754524800
//! }
//! ```
//!
//! Every figure binary and the `pacq` CLI emit this exact shape via
//! [`RunManifest::gather`]; [`validate_manifest`] is the schema gate the
//! audit job runs on the emitted file.

use crate::collect;
use crate::json::Json;
use pacq_error::{PacqError, PacqResult};

/// The manifest schema identifier this build writes and validates.
pub const SCHEMA: &str = "pacq-metrics/v1";

/// A run manifest under construction.
#[derive(Debug, Clone)]
pub struct RunManifest {
    binary: String,
    args: Vec<String>,
    jobs: Option<usize>,
    effective_jobs: Option<usize>,
    backend: Option<String>,
    arch_template: Option<String>,
    results: Vec<Json>,
    counters: Vec<(String, u64)>,
    spans: Vec<collect::SpanRecord>,
}

impl RunManifest {
    /// Starts a manifest for a binary invocation.
    pub fn new(binary: impl Into<String>, args: &[String]) -> Self {
        RunManifest {
            binary: binary.into(),
            args: args.to_vec(),
            jobs: None,
            effective_jobs: None,
            backend: None,
            arch_template: None,
            results: Vec::new(),
            counters: Vec::new(),
            spans: Vec::new(),
        }
    }

    /// Records the user-requested worker count (`--jobs` / `PACQ_JOBS`).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs);
        self
    }

    /// Records the worker count the pool actually ran with — provenance
    /// for "how parallel was this run" even when no count was requested
    /// and the host default applied.
    pub fn with_effective_jobs(mut self, jobs: usize) -> Self {
        self.effective_jobs = Some(jobs);
        self
    }

    /// Records the functional compute backend the run executed with
    /// (`--backend` / `PACQ_BACKEND`) — provenance only, since both
    /// backends produce bit-identical results.
    pub fn with_backend(mut self, backend: impl Into<String>) -> Self {
        self.backend = Some(backend.into());
        self
    }

    /// Records the content digest of the `--arch-template` file the run
    /// simulated under — the provenance that binds the manifest's
    /// numbers to the exact template text that produced them.
    pub fn with_arch_template(mut self, digest: impl Into<String>) -> Self {
        self.arch_template = Some(digest.into());
        self
    }

    /// Appends one structured result record.
    pub fn push_result(&mut self, result: Json) {
        self.results.push(result);
    }

    /// Drains the process-wide collector (spans, counters, recorded
    /// results) into this manifest. Phases that blew past the
    /// collector's per-name span cap arrive as aggregate tallies and
    /// land in `counters` as `trace.spans_folded.<name>` (count) and
    /// `trace.spans_folded_dur_us.<name>` (summed duration) — the
    /// `spans` array stays bounded however long the process served.
    pub fn gather(&mut self) {
        let (spans, counters, results, overflows) = collect::drain();
        self.spans.extend(spans);
        for (name, value) in counters {
            self.counters.push((name.to_string(), value));
        }
        for o in overflows {
            self.counters
                .push((format!("trace.spans_folded.{}", o.name), o.folded));
            self.counters.push((
                format!("trace.spans_folded_dur_us.{}", o.name),
                o.folded_dur_us,
            ));
        }
        self.results.extend(results);
    }

    /// Renders the manifest document.
    pub fn to_json(&self) -> Json {
        let mut root = Json::object();
        root.set("schema", Json::from(SCHEMA));

        let mut tool = Json::object();
        tool.set("name", Json::from("pacq"));
        tool.set("version", Json::from(env!("CARGO_PKG_VERSION")));
        tool.set("git_commit", Json::from(git_commit()));
        tool.set("toolchain", Json::from(toolchain()));
        root.set("tool", tool);

        let mut invocation = Json::object();
        invocation.set("binary", Json::from(self.binary.as_str()));
        invocation.set(
            "args",
            Json::Arr(self.args.iter().map(|a| Json::from(a.as_str())).collect()),
        );
        match self.jobs {
            Some(jobs) => invocation.set("jobs", Json::from(jobs)),
            None => invocation.set("jobs", Json::Null),
        };
        if let Some(jobs) = self.effective_jobs {
            invocation.set("effective_jobs", Json::from(jobs));
        }
        if let Some(backend) = &self.backend {
            invocation.set("backend", Json::from(backend.as_str()));
        }
        if let Some(digest) = &self.arch_template {
            invocation.set("arch_template", Json::from(digest.as_str()));
        }
        root.set("invocation", invocation);

        root.set("results", Json::Arr(self.results.clone()));

        let mut counters = Json::object();
        let mut sorted = self.counters.clone();
        sorted.sort();
        for (name, value) in &sorted {
            counters.set(name, Json::from(*value));
        }
        root.set("counters", counters);

        root.set(
            "spans",
            Json::Arr(
                self.spans
                    .iter()
                    .map(|s| {
                        let mut o = Json::object();
                        o.set("name", Json::from(s.name));
                        o.set("start_us", Json::from(s.start_us));
                        o.set("dur_us", Json::from(s.dur_us));
                        o
                    })
                    .collect(),
            ),
        );

        root.set("created_unix_s", Json::from(unix_time_s()));
        root
    }

    /// Renders and writes the manifest to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::Io`] when the file cannot be written.
    pub fn write_to(&self, path: &str) -> PacqResult<()> {
        let doc = self.to_json();
        // The writer must never emit a document the validator rejects.
        validate_manifest(&doc)?;
        std::fs::write(path, doc.render()).map_err(|e| PacqError::Io {
            context: "trace::RunManifest::write_to",
            message: format!("cannot write `{path}`: {e}"),
        })
    }
}

/// Validates a parsed document against the `pacq-metrics/v1` schema.
///
/// # Errors
///
/// Returns [`PacqError::InvalidInput`] naming the first field that
/// deviates from the contract (missing, wrong type, or wrong schema id).
pub fn validate_manifest(doc: &Json) -> PacqResult<()> {
    let fail = |what: &str| {
        Err(PacqError::invalid_input(
            "trace::validate_manifest",
            what.to_string(),
        ))
    };
    if !doc.is_obj() {
        return fail("manifest must be a JSON object");
    }
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => {
            return Err(PacqError::invalid_input(
                "trace::validate_manifest",
                format!("schema drift: expected `{SCHEMA}`, found `{s}`"),
            ))
        }
        None => return fail("missing string field `schema`"),
    }
    let Some(tool) = doc.get("tool") else {
        return fail("missing object field `tool`");
    };
    for key in ["name", "version", "git_commit", "toolchain"] {
        if tool.get(key).and_then(Json::as_str).is_none() {
            return Err(PacqError::invalid_input(
                "trace::validate_manifest",
                format!("missing string field `tool.{key}`"),
            ));
        }
    }
    let Some(invocation) = doc.get("invocation") else {
        return fail("missing object field `invocation`");
    };
    if invocation.get("binary").and_then(Json::as_str).is_none() {
        return fail("missing string field `invocation.binary`");
    }
    match invocation.get("args") {
        Some(Json::Arr(items)) if items.iter().all(|i| i.as_str().is_some()) => {}
        _ => return fail("`invocation.args` must be an array of strings"),
    }
    // Optional (added after v1 shipped; extra fields are tolerated, but
    // when present the type is part of the contract).
    if let Some(v) = invocation.get("effective_jobs") {
        if v.as_num().is_none() {
            return fail("`invocation.effective_jobs` must be numeric when present");
        }
    }
    if let Some(v) = invocation.get("backend") {
        if v.as_str().is_none() {
            return fail("`invocation.backend` must be a string when present");
        }
    }
    if let Some(v) = invocation.get("arch_template") {
        if v.as_str().is_none() {
            return fail("`invocation.arch_template` must be a string when present");
        }
    }
    match doc.get("results") {
        Some(Json::Arr(items)) if items.iter().all(Json::is_obj) => {}
        _ => return fail("`results` must be an array of objects"),
    }
    match doc.get("counters") {
        Some(Json::Obj(entries)) if entries.iter().all(|(_, v)| v.as_num().is_some()) => {}
        _ => return fail("`counters` must be an object with numeric values"),
    }
    match doc.get("spans") {
        Some(Json::Arr(items)) => {
            for item in items {
                let ok = item.get("name").and_then(Json::as_str).is_some()
                    && item.get("start_us").and_then(Json::as_num).is_some()
                    && item.get("dur_us").and_then(Json::as_num).is_some();
                if !ok {
                    return fail("each span needs `name`, `start_us`, `dur_us`");
                }
            }
        }
        _ => return fail("`spans` must be an array"),
    }
    if doc.get("created_unix_s").and_then(Json::as_num).is_none() {
        return fail("missing numeric field `created_unix_s`");
    }
    Ok(())
}

/// The current commit hash, or `"unknown"` outside a git checkout (the
/// provenance fields are best-effort by design — a missing `git` binary
/// must not fail a run).
fn git_commit() -> String {
    run_capture("git", &["rev-parse", "--short=12", "HEAD"])
}

/// The compiler that would build this tree, best-effort.
fn toolchain() -> String {
    run_capture("rustc", &["--version"])
}

fn run_capture(cmd: &str, args: &[&str]) -> String {
    std::process::Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn unix_time_s() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        let mut m = RunManifest::new("fig7", &["--jobs".to_string(), "2".to_string()]).with_jobs(2);
        let mut r = Json::object();
        r.set("kind", Json::from("gemm_report"));
        r.set("total_cycles", Json::from(1234u64));
        m.push_result(r);
        m
    }

    #[test]
    fn manifest_round_trips_and_validates() {
        let doc = sample().to_json();
        validate_manifest(&doc).expect("writer output is schema-valid");
        let back = Json::parse(&doc.render()).expect("parses");
        validate_manifest(&back).expect("round-tripped manifest is schema-valid");
        assert_eq!(doc, back, "render/parse round trip is lossless");
    }

    #[test]
    fn effective_jobs_is_optional_but_typed() {
        // Absent: valid (pre-existing manifests).
        validate_manifest(&sample().to_json()).unwrap();
        // Present and numeric: valid, and rendered under `invocation`.
        let doc = sample().with_effective_jobs(8).to_json();
        validate_manifest(&doc).unwrap();
        let v = doc
            .get("invocation")
            .and_then(|i| i.get("effective_jobs"))
            .and_then(Json::as_num);
        assert_eq!(v, Some(8.0));
        // Present but non-numeric: rejected.
        let mut bad = sample().to_json();
        if let Some(invocation) = bad.get("invocation").cloned() {
            let mut invocation = invocation;
            invocation.set("effective_jobs", Json::from("eight"));
            bad.set("invocation", invocation);
        }
        assert!(validate_manifest(&bad).is_err());
    }

    #[test]
    fn backend_is_optional_but_typed() {
        // Absent: valid (pre-existing manifests).
        validate_manifest(&sample().to_json()).unwrap();
        // Present and a string: valid, and rendered under `invocation`.
        let doc = sample().with_backend("batched").to_json();
        validate_manifest(&doc).unwrap();
        let v = doc
            .get("invocation")
            .and_then(|i| i.get("backend"))
            .and_then(Json::as_str)
            .map(str::to_string);
        assert_eq!(v.as_deref(), Some("batched"));
        // Present but not a string: rejected.
        let mut bad = sample().to_json();
        if let Some(invocation) = bad.get("invocation").cloned() {
            let mut invocation = invocation;
            invocation.set("backend", Json::from(2u64));
            bad.set("invocation", invocation);
        }
        assert!(validate_manifest(&bad).is_err());
    }

    #[test]
    fn arch_template_is_optional_but_typed() {
        validate_manifest(&sample().to_json()).unwrap();
        let doc = sample().with_arch_template("0123abcd").to_json();
        validate_manifest(&doc).unwrap();
        let v = doc
            .get("invocation")
            .and_then(|i| i.get("arch_template"))
            .and_then(Json::as_str)
            .map(str::to_string);
        assert_eq!(v.as_deref(), Some("0123abcd"));
        let mut bad = sample().to_json();
        if let Some(invocation) = bad.get("invocation").cloned() {
            let mut invocation = invocation;
            invocation.set("arch_template", Json::from(7u64));
            bad.set("invocation", invocation);
        }
        assert!(validate_manifest(&bad).is_err());
    }

    #[test]
    fn validator_rejects_schema_drift() {
        let mut doc = sample().to_json();
        doc.set("schema", Json::from("pacq-metrics/v0"));
        let err = validate_manifest(&doc).unwrap_err();
        assert!(err.to_string().contains("schema drift"), "{err}");
    }

    #[test]
    fn validator_rejects_missing_fields() {
        for field in ["tool", "invocation", "results", "counters", "spans"] {
            let doc = sample().to_json();
            let Json::Obj(entries) = doc else {
                unreachable!()
            };
            let stripped = Json::Obj(entries.into_iter().filter(|(k, _)| k != field).collect());
            assert!(
                validate_manifest(&stripped).is_err(),
                "must reject manifest without `{field}`"
            );
        }
    }

    #[test]
    fn validator_rejects_malformed_spans() {
        let mut doc = sample().to_json();
        let mut bad_span = Json::object();
        bad_span.set("name", Json::from("x"));
        doc.set("spans", Json::Arr(vec![bad_span]));
        assert!(validate_manifest(&doc).is_err());
    }

    #[test]
    fn provenance_is_never_empty() {
        let doc = sample().to_json();
        let tool = doc.get("tool").unwrap();
        for key in ["git_commit", "toolchain"] {
            let v = tool.get(key).and_then(Json::as_str).unwrap();
            assert!(!v.is_empty());
        }
    }
}
