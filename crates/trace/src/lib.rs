//! # pacq-trace — the observability layer of the pacq workspace
//!
//! Every headline number in the PacQ reproduction (Figures 7–12,
//! Tables I–II) is derived from counters. This crate makes those
//! counters observable and machine-checkable:
//!
//! - [`collect`] — a process-wide collector of named counters,
//!   per-phase wall-clock spans, and structured result records.
//!   Zero-cost when disabled: every instrumentation site is a single
//!   relaxed atomic load until `--metrics` turns collection on.
//! - [`json`] — a dependency-free JSON model (the workspace is
//!   hermetic; there is no serde). Strict parser, deterministic
//!   pretty-printer, lossless round trip.
//! - [`manifest`] — the `pacq-metrics/v1` run manifest: shape,
//!   architecture, jobs, counters, timings, git/toolchain provenance.
//!   Written by the `pacq` CLI and all twelve figure binaries;
//!   validated by [`manifest::validate_manifest`].
//! - [`chrome`] — a Chrome `trace_event` exporter so the
//!   cycle-resolved octet pipeline (Figure 3) can be inspected in
//!   `chrome://tracing` / Perfetto.
//!
//! DESIGN.md §11 documents the schema and conventions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod chrome;
pub mod collect;
pub mod json;
pub mod manifest;

pub use chrome::ChromeTrace;
pub use collect::{
    add_counter, disable, drain, enable, is_enabled, record_result, span, SpanOverflow, SpanRecord,
    MAX_SPANS_PER_NAME,
};
pub use json::Json;
pub use manifest::{validate_manifest, RunManifest, SCHEMA};
