//! # pacq-mixgemm — the Mix-GEMM binary-segmentation baseline
//!
//! Model of Mix-GEMM (Reggiani et al., HPCA 2023), the prior
//! mixed-precision GEMM accelerator Figure 12(b) compares against.
//!
//! Mix-GEMM decomposes low-precision integer operands into **bit planes**
//! (binary segmentation): an INT-b weight dot product becomes `b`
//! conditional accumulation passes, one per plane, combined with shifted
//! adds. That is efficient when *both* operands are low-precision
//! integers — the passes are narrow integer adds — but in the
//! hyper-asymmetric regime the activations are FP16, so every plane pass
//! runs through full floating-point alignment/accumulation hardware and a
//! per-element FP overhead dominates regardless of how few planes remain.
//! This is why "the binary segmentation technique performs poorly for
//! hyper-asymmetric GEMM" (§V) and PacQ wins by 4.12× (INT4) / 3.75×
//! (INT2) in throughput per watt.
//!
//! The module provides both a calibrated cost model (for the Figure 12(b)
//! comparison) and a functional binary-segmentation GEMM kernel (for
//! correctness: segmentation is exact).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pacq_energy::GemmUnit;
use pacq_fp16::{Fp16, WeightPrecision};

/// Cost model of a Mix-GEMM-style binary-segmentation unit processing
/// FP16 activations against INT weights.
///
/// Energy per MAC is `fixed + bits × plane`, where `fixed` is the
/// per-element FP16 gather/align/accumulate overhead (independent of the
/// weight precision) and `plane` the incremental cost of one additional
/// bit plane. Both constants are calibrated to Figure 12(b)'s reported
/// ratios (4.12× / 3.75× in PacQ's favour at INT4 / INT2) — see
/// `DESIGN.md` §4 on calibrated substitutions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixGemmModel {
    /// Fixed FP16-side energy per MAC, in normalized units
    /// (baseline FP16 multiplier ≡ 1.0).
    pub fixed_fp_units: f64,
    /// Incremental energy per bit plane per MAC.
    pub plane_units: f64,
}

impl MixGemmModel {
    /// The calibrated Figure 12(b) model.
    pub fn calibrated() -> Self {
        // Solved from: pacq_mac_units × 4.12 = fixed + 4·plane and
        // pacq_mac_units × 3.75 = fixed + 2·plane, with pacq_mac_units =
        // ParallelDp(4,2) power / 8 MACs-per-cycle ≈ 1.804.
        MixGemmModel {
            fixed_fp_units: 6.11,
            plane_units: 0.331,
        }
    }

    /// Energy per MAC in normalized units for the given weight precision.
    pub fn energy_per_mac_units(&self, precision: WeightPrecision) -> f64 {
        self.fixed_fp_units + precision.bits() as f64 * self.plane_units
    }

    /// Throughput per watt in MACs per cycle per power-unit.
    pub fn throughput_per_watt(&self, precision: WeightPrecision) -> f64 {
        1.0 / self.energy_per_mac_units(precision)
    }
}

impl Default for MixGemmModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

/// PacQ's DP-level energy per MAC (parallel DP-4, duplication 2): power
/// divided by its steady-state 8 MACs/cycle.
pub fn pacq_energy_per_mac_units() -> f64 {
    GemmUnit::PARALLEL_DP4.power_units() / 8.0
}

/// Figure 12(b): PacQ's throughput-per-watt advantage over Mix-GEMM for
/// the given weight precision.
///
/// # Examples
///
/// ```
/// use pacq_mixgemm::pacq_advantage_over_mixgemm;
/// use pacq_fp16::WeightPrecision;
///
/// let adv = pacq_advantage_over_mixgemm(WeightPrecision::Int4);
/// assert!((adv - 4.12).abs() < 0.1); // paper: 4.12×
/// ```
pub fn pacq_advantage_over_mixgemm(precision: WeightPrecision) -> f64 {
    let mix = MixGemmModel::calibrated();
    (1.0 / pacq_energy_per_mac_units()) / mix.throughput_per_watt(precision)
}

/// Functional binary-segmentation dot product: computes
/// `Σ a_k · code_k` by bit planes of the *biased* codes, then removes the
/// bias — exactly the arithmetic a Mix-GEMM unit performs (in f64 here,
/// since segmentation itself is exact; the inefficiency is in hardware
/// cost, not accuracy).
///
/// # Panics
///
/// Panics if slice lengths differ or a code is out of range.
pub fn binary_segmentation_dot(a: &[Fp16], codes: &[i8], precision: WeightPrecision) -> f64 {
    assert_eq!(a.len(), codes.len(), "operand lengths must match");
    let bias = precision.bias();
    let bits = precision.bits();

    let mut plane_sums = vec![0f64; bits as usize];
    let mut sum_a = 0f64;
    for (&ak, &ck) in a.iter().zip(codes) {
        assert!(
            ck >= precision.min_value() && ck <= precision.max_value(),
            "code {ck} out of range for {precision}"
        );
        let biased = (ck as i32 + bias) as u32;
        let av = ak.to_f32() as f64;
        sum_a += av;
        for (b, plane) in plane_sums.iter_mut().enumerate() {
            if (biased >> b) & 1 == 1 {
                *plane += av;
            }
        }
    }
    // Shifted combine of the planes, then bias removal (the same ΣA trick
    // PacQ's Eq. (1) uses).
    let biased_total: f64 = plane_sums
        .iter()
        .enumerate()
        .map(|(b, s)| s * (1u32 << b) as f64)
        .sum();
    biased_total - bias as f64 * sum_a
}

/// Number of plane-accumulation operations a segmentation unit performs
/// for a dot product of length `k` (the throughput-side cost).
pub fn segmentation_ops(k: usize, precision: WeightPrecision) -> u64 {
    k as u64 * precision.bits() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advantage_matches_fig12b() {
        let a4 = pacq_advantage_over_mixgemm(WeightPrecision::Int4);
        assert!((a4 - 4.12).abs() < 0.1, "INT4 advantage = {a4}");
        let a2 = pacq_advantage_over_mixgemm(WeightPrecision::Int2);
        assert!((a2 - 3.75).abs() < 0.1, "INT2 advantage = {a2}");
    }

    #[test]
    fn fewer_planes_help_mixgemm_only_marginally() {
        // The hyper-asymmetric pathology: halving the weight bits barely
        // improves Mix-GEMM because the FP16 fixed cost dominates.
        let mix = MixGemmModel::calibrated();
        let gain = mix.throughput_per_watt(WeightPrecision::Int2)
            / mix.throughput_per_watt(WeightPrecision::Int4);
        assert!(gain > 1.0 && gain < 1.2, "INT2/INT4 gain = {gain}");
    }

    #[test]
    fn segmentation_dot_is_exact() {
        let a: Vec<Fp16> = [0.5f32, -1.25, 3.0, 0.125, 2.0, -0.75, 1.5, -2.5]
            .iter()
            .map(|&v| Fp16::from_f32(v))
            .collect();
        let codes: Vec<i8> = vec![-8, -3, 0, 1, 7, 5, -1, 2];
        let got = binary_segmentation_dot(&a, &codes, WeightPrecision::Int4);
        let want: f64 = a
            .iter()
            .zip(&codes)
            .map(|(&x, &c)| x.to_f32() as f64 * c as f64)
            .sum();
        assert!((got - want).abs() < 1e-9, "got {got}, want {want}");
    }

    #[test]
    fn segmentation_dot_int2() {
        let a: Vec<Fp16> = (0..16)
            .map(|i| Fp16::from_f32(i as f32 * 0.25 - 2.0))
            .collect();
        let codes: Vec<i8> = (0..16).map(|i| (i % 4) as i8 - 2).collect();
        let got = binary_segmentation_dot(&a, &codes, WeightPrecision::Int2);
        let want: f64 = a
            .iter()
            .zip(&codes)
            .map(|(&x, &c)| x.to_f32() as f64 * c as f64)
            .sum();
        assert!((got - want).abs() < 1e-9);
    }

    #[test]
    fn ops_scale_with_bits_and_k() {
        assert_eq!(segmentation_ops(128, WeightPrecision::Int4), 512);
        assert_eq!(segmentation_ops(128, WeightPrecision::Int2), 256);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_code_rejected() {
        binary_segmentation_dot(&[Fp16::ONE], &[9], WeightPrecision::Int4);
    }
}
