//! Offline drop-in subset of the `proptest` API.
//!
//! Hermetic build environments cannot fetch crates.io dependencies, so
//! the workspace's property tests run on this in-tree re-implementation
//! (see `DESIGN.md` §8). It keeps proptest's authoring surface — the
//! [`proptest!`] macro, [`Strategy`] combinators, `prop::collection` /
//! `prop::array` / `prop::sample`, `prop_assert*` / [`prop_assume!`] —
//! with two deliberate simplifications:
//!
//! * **No shrinking.** A failing case is reported verbatim (its `Debug`
//!   form and the RNG seed); turn interesting failures into explicit
//!   unit tests rather than relying on minimized counterexamples.
//! * **Deterministic seeding.** Each property derives its RNG seed from
//!   the property name, so a run is reproducible without a
//!   `proptest-regressions` persistence file (those files are ignored).
//!
//! Strategies generate values directly from a [`test_runner::TestRng`];
//! every combinator used anywhere in the workspace is implemented, and
//! new ones are a few lines each.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::new(self)
    }

    /// Recursive strategies: `self` is the leaf case, and `recurse`
    /// builds one level of branching from a strategy for the level
    /// below. `depth` bounds the nesting; at every level the generator
    /// picks uniformly between bottoming out at a leaf and descending,
    /// so trees of every depth up to the bound occur. The
    /// `desired_size` / `expected_branch_size` hints from the real
    /// proptest API are accepted for signature compatibility but
    /// ignored (no shrinking here — see the crate docs).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            strat = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        strat
    }
}

/// A type-erased, cheaply clonable strategy (what [`prop_oneof!`]
/// unions over and [`Strategy::prop_recursive`] threads through its
/// branching closure). Reference-counted, like the real crate's
/// `BoxedStrategy`, so it is `Clone` even though `Strategy` isn't.
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

impl<T> BoxedStrategy<T> {
    fn new<S: Strategy<Value = T> + 'static>(strategy: S) -> Self {
        BoxedStrategy(std::rc::Rc::new(strategy))
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

/// A strategy producing one fixed (cloned) value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives (see [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.index(self.options.len());
        self.options[i].generate(rng)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.f32_in(self.start, self.end)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.f64_in(self.start, self.end)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = rng.bounded(span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty integer range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let off = rng.bounded(span);
                (*self.start() as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The unconstrained strategy for `T`: `any::<u16>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Something usable as a `vec` length: a fixed size or a range.
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    // Unsuffixed literal lengths fall back to `i32`; accept them so
    // `vec(strategy, 8)` works without a `usize` suffix.
    impl SizeRange for i32 {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            usize::try_from(*self).expect("vec length must be non-negative")
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec-length range");
            self.start + rng.index(self.end - self.start)
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, len)` — `len` may be a `usize`
    /// or a `Range<usize>`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Fixed-size array strategies (`prop::array`).
pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy for `[T; N]` drawing every element from one strategy.
    pub struct UniformArrayStrategy<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            core::array::from_fn(|_| self.element.generate(rng))
        }
    }

    /// `[T; 4]` with each element from `element`.
    pub fn uniform4<S: Strategy>(element: S) -> UniformArrayStrategy<S, 4> {
        UniformArrayStrategy { element }
    }

    /// `[T; 8]` with each element from `element`.
    pub fn uniform8<S: Strategy>(element: S) -> UniformArrayStrategy<S, 8> {
        UniformArrayStrategy { element }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniform choice from a fixed option list.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.index(self.options.len())].clone()
        }
    }

    /// `prop::sample::select(options)` — uniform draw from `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }
}

/// Per-property execution settings.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Case execution, RNG, and failure reporting.
pub mod test_runner {
    use super::ProptestConfig;
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use std::fmt::Debug;

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed — the property is falsified.
        Fail(String),
        /// A `prop_assume!` precondition was unmet — draw a fresh case.
        Reject,
    }

    /// Result type of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic per-property RNG (xoshiro via the in-tree `rand`).
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Seeds from a property name (FNV-1a), so each property has a
        /// stable, independent stream.
        pub fn for_property(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h),
            }
        }

        /// Next raw 64 bits.
        #[allow(clippy::should_implement_trait)]
        pub fn next(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform index in `[0, n)`.
        pub fn index(&mut self, n: usize) -> usize {
            assert!(n > 0, "cannot index an empty set");
            self.bounded(n as u128) as usize
        }

        /// Uniform value in `[0, span)` for `span <= 2^64`.
        pub fn bounded(&mut self, span: u128) -> u64 {
            debug_assert!(span > 0 && span <= 1u128 << 64);
            ((self.next() as u128 * span) >> 64) as u64
        }

        /// Uniform `f32` in `[lo, hi)`.
        pub fn f32_in(&mut self, lo: f32, hi: f32) -> f32 {
            assert!(lo < hi, "empty f32 range strategy");
            let unit = (self.next() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
            lo + (hi - lo) * unit
        }

        /// Uniform `f64` in `[lo, hi)`.
        pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
            assert!(lo < hi, "empty f64 range strategy");
            let unit = (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            lo + (hi - lo) * unit
        }
    }

    /// Drives one property: draws cases from `strategy` until `config`
    /// is satisfied, retrying rejected cases (with a cap) and panicking
    /// with the offending input's `Debug` form on failure.
    pub fn run<S, F>(config: &ProptestConfig, name: &str, strategy: &S, test: F)
    where
        S: Strategy,
        S::Value: Debug,
        F: Fn(S::Value) -> TestCaseResult,
    {
        let mut rng = TestRng::for_property(name);
        let mut accepted: u32 = 0;
        let mut rejected: u64 = 0;
        let reject_cap = config.cases as u64 * 64 + 1024;
        while accepted < config.cases {
            let value = strategy.generate(&mut rng);
            let repr = format!("{value:?}");
            match test(value) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    assert!(
                        rejected <= reject_cap,
                        "property `{name}`: too many rejected cases \
                         ({rejected}); loosen the strategy or the prop_assume!"
                    );
                }
                Err(TestCaseError::Fail(msg)) => panic!(
                    "property `{name}` falsified after {accepted} passing \
                     case(s)\n  input: {repr}\n  {msg}\n  (no shrinking: \
                     promote this input to a unit test to investigate)"
                ),
            }
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running [`test_runner::run`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$attr:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*
    ) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let strategy = ($($strategy,)+);
            $crate::test_runner::run(
                &config,
                stringify!($name),
                &strategy,
                |($($arg,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), left, right
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Rejects the current case (drawing a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_property("bounds");
        for _ in 0..1000 {
            let f = (-100.0f32..100.0).generate(&mut rng);
            assert!((-100.0..100.0).contains(&f));
            let i = (-8i8..=7).generate(&mut rng);
            assert!((-8..=7).contains(&i));
            let u = (1u64..5).generate(&mut rng);
            assert!((1..5).contains(&u));
        }
    }

    #[test]
    fn oneof_covers_every_arm() {
        let strat = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = crate::test_runner::TestRng::for_property("arms");
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(strat.generate(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn collection_vec_respects_length_range() {
        let strat = prop::collection::vec(0u64..10, 2..5);
        let mut rng = crate::test_runner::TestRng::for_property("lens");
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn deterministic_per_property_name() {
        let strat = prop::array::uniform4(any::<u16>());
        let mut a = crate::test_runner::TestRng::for_property("same");
        let mut b = crate::test_runner::TestRng::for_property("same");
        for _ in 0..32 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro pipeline itself: tuples, maps, assume, assert.
        #[test]
        fn macro_roundtrip(
            x in (0u64..100).prop_map(|v| v * 2),
            flip in any::<bool>(),
            choice in prop::sample::select(vec![10usize, 20, 30]),
        ) {
            prop_assume!(x != 4);
            prop_assert!(x % 2 == 0, "x = {x}");
            prop_assert_eq!(choice % 10, 0);
            let _ = flip;
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failing_property_panics_with_input() {
        let config = ProptestConfig::with_cases(16);
        crate::test_runner::run(&config, "always_small", &(0u64..100,), |(x,)| {
            prop_assert!(x < 5, "x = {x} too big");
            Ok(())
        });
    }
}
