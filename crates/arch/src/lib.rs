//! Declarative architecture templates for the PacQ simulator.
//!
//! A `pacq-arch/v1` template is a small TOML (or JSON) document that
//! fully describes one simulated machine: memory hierarchy, datapath,
//! clock and dataflow. [`ArchTemplate`] parses, validates and renders
//! templates, derives the simulator's `SmConfig` / `EnergyModel` /
//! `Architecture` objects from them, and computes the content digest
//! that binds every derived artifact (cache entries, sweep checkpoints,
//! run manifests) back to the exact template that produced it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod template;
pub mod toml;

pub use template::{ArchTemplate, Dataflow, MemLevel, Packing, TEMPLATE_SCHEMA};
