//! A strict parser for the TOML subset `pacq-arch/v1` templates use.
//!
//! The workspace builds hermetically with no registry access (DESIGN.md
//! §8), so instead of a `toml` crate dependency this module parses the
//! subset the schema needs — `[section]` / `[a.b]` table headers and
//! `key = value` pairs where a value is a double-quoted string, a
//! number (including `inf`), or a boolean — into the same ordered
//! [`Json`] value tree the JSON template path produces. One downstream
//! decoder then serves both syntaxes.
//!
//! The parser is deliberately strict: unknown syntax, duplicate keys
//! and duplicate table headers are typed [`PacqError::Template`]
//! errors, never silent last-wins — a template that parses is a
//! template whose every line took effect.

use pacq_error::{PacqError, PacqResult};
use pacq_trace::Json;

/// Parses the `pacq-arch/v1` TOML subset into an ordered [`Json`] tree.
///
/// # Errors
///
/// Returns [`PacqError::Template`] (with `context` naming the input)
/// for any line that is not a table header, a `key = value` pair, a
/// comment or blank, and for duplicate keys or table headers.
pub fn parse_toml(text: &str, context: &str) -> PacqResult<Json> {
    let mut root = Json::object();
    // The `.`-separated path of the open table ([] = top level).
    let mut path: Vec<String> = Vec::new();
    for (index, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim().to_string();
        let fail = |message: String| -> PacqError {
            PacqError::template(context, format!("line {}: {message}", index + 1))
        };
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header
                .strip_suffix(']')
                .ok_or_else(|| fail(format!("unterminated table header `{line}`")))?
                .trim();
            let segments: Vec<String> = header.split('.').map(|s| s.trim().to_string()).collect();
            if segments.iter().any(String::is_empty) {
                return Err(fail(format!("malformed table name `[{header}]`")));
            }
            open_table(&mut root, &segments)
                .map_err(|m| fail(format!("table `[{header}]` {m}")))?;
            path = segments;
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| fail(format!("expected `key = value`, got `{line}`")))?;
        let key = key.trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(fail(format!("malformed key `{key}`")));
        }
        let value = parse_scalar(value.trim()).map_err(|m| fail(format!("key `{key}`: {m}")))?;
        insert(&mut root, &path, key, value).map_err(|m| fail(format!("key `{key}` {m}")))?;
    }
    Ok(root)
}

/// Drops a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses one scalar: `"string"`, `true`/`false`, or a number
/// (`inf` included — TOML's literal for the unbounded-DRAM default).
fn parse_scalar(text: &str) -> Result<Json, String> {
    if let Some(body) = text.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string {text}"))?;
        if body.contains(['"', '\\']) {
            return Err(format!("escapes are not supported in `{text}`"));
        }
        return Ok(Json::Str(body.to_string()));
    }
    match text {
        "true" => return Ok(Json::Bool(true)),
        "false" => return Ok(Json::Bool(false)),
        "inf" | "+inf" => return Ok(Json::Num(f64::INFINITY)),
        _ => {}
    }
    // Underscore separators (TOML `400_000_000`) are cosmetic.
    let cleaned = text.replace('_', "");
    cleaned
        .parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("unrecognized value `{text}` (string, number, inf, or bool)"))
}

/// Creates the nested table at `segments`, rejecting a duplicate header
/// or a path through a non-table value.
fn open_table(root: &mut Json, segments: &[String]) -> Result<(), String> {
    let mut node = root;
    for (depth, seg) in segments.iter().enumerate() {
        let Json::Obj(entries) = node else {
            return Err("passes through a non-table key".to_string());
        };
        let last = depth + 1 == segments.len();
        let pos = entries.iter().position(|(k, _)| k == seg);
        if last && pos.is_some() {
            return Err("is declared twice".to_string());
        }
        let pos = match pos {
            Some(p) => p,
            None => {
                entries.push((seg.clone(), Json::object()));
                entries.len() - 1
            }
        };
        node = &mut entries[pos].1;
    }
    Ok(())
}

/// Inserts `key = value` into the table at `path`, rejecting duplicates.
fn insert(root: &mut Json, path: &[String], key: &str, value: Json) -> Result<(), String> {
    let mut node = root;
    for seg in path {
        let Json::Obj(entries) = node else {
            return Err("is in a non-table".to_string());
        };
        node = entries
            .iter_mut()
            .find(|(k, _)| k == seg)
            .map(|(_, v)| v)
            .ok_or_else(|| "is in an undeclared table".to_string())?;
    }
    let Json::Obj(entries) = node else {
        return Err("is in a non-table".to_string());
    };
    if entries.iter().any(|(k, _)| k == key) {
        return Err("is set twice".to_string());
    }
    entries.push((key.to_string(), value));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_keys_and_scalar_kinds() {
        let doc = parse_toml(
            "schema = \"pacq-arch/v1\" # trailing comment\n\
             flag = true\n\n\
             [compute]\n\
             cores = 8\n\
             clock_hz = 400e6\n\
             grouped = 400_000_000\n\n\
             [memory.dram]\n\
             bandwidth = inf\n",
            "test",
        )
        .unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("pacq-arch/v1"));
        assert_eq!(doc.get("flag"), Some(&Json::Bool(true)));
        let compute = doc.get("compute").unwrap();
        assert_eq!(compute.get("cores").unwrap().as_num(), Some(8.0));
        assert_eq!(compute.get("clock_hz").unwrap().as_num(), Some(400.0e6));
        assert_eq!(compute.get("grouped").unwrap().as_num(), Some(400.0e6));
        let dram = doc.get("memory").unwrap().get("dram").unwrap();
        assert_eq!(dram.get("bandwidth").unwrap().as_num(), Some(f64::INFINITY));
    }

    #[test]
    fn hash_inside_a_string_is_not_a_comment() {
        let doc = parse_toml("name = \"octo#thorpe\"\n", "test").unwrap();
        assert_eq!(doc.get("name").unwrap().as_str(), Some("octo#thorpe"));
    }

    #[test]
    fn duplicates_and_malformed_lines_are_typed_template_errors() {
        let cases = [
            "a = 1\na = 2\n",           // duplicate key
            "[m]\nx = 1\n[m]\ny = 2\n", // duplicate table
            "just words\n",             // not key = value
            "[unclosed\n",              // bad header
            "[]\nx = 1\n",              // empty table name
            "k = \"unterminated\n",     // bad string
            "k = maybe\n",              // unknown scalar
            "bad key = 1\n",            // malformed key
        ];
        for text in cases {
            let err = parse_toml(text, "test").unwrap_err();
            assert_eq!(err.exit_code(), 9, "{text:?}: {err}");
            assert_eq!(err.class(), "template", "{text:?}");
        }
    }
}
