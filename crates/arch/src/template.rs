//! The `pacq-arch/v1` architecture template: a declarative description
//! of one machine design point, following FactorFlow's declarative
//! memory-hierarchy idiom and LLMCompass's
//! `read_architecture_template → compile_and_simulate` split.
//!
//! A template names the memory hierarchy (per-level capacities, optional
//! explicit access energies, DRAM bandwidth), the datapath (DP width,
//! adder-tree duplication, tensor-core counts, clock), and the dataflow
//! triple (weight- or output-stationary movement, packing direction,
//! dequantization) that selects one of the three simulated
//! architectures. Everything downstream — `SmConfig`, `EnergyModel`,
//! `Architecture` — is *derived* from the template, and the template's
//! content digest travels with every derived result (cache keys,
//! checkpoint bindings, run manifests), so an edited template can never
//! satisfy a stale artifact.
//!
//! All schema violations are typed [`PacqError::Template`] errors
//! (exit code 9). See DESIGN.md §18.

use core::fmt;

use crate::toml::parse_toml;
use pacq_energy::{MemoryKind, SramModel};
use pacq_error::{PacqError, PacqResult};
use pacq_simt::{Architecture, EnergyModel, SmConfig};
use pacq_trace::Json;

/// The schema identifier every template must declare.
pub const TEMPLATE_SCHEMA: &str = "pacq-arch/v1";

/// Tile-movement dataflow of the design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataflow {
    /// Weight-stationary (the standard-dequant and packed-k baselines).
    WeightStationary,
    /// Output-stationary (the PacQ flow).
    OutputStationary,
    /// Input-stationary: the activation tile held in the tensor-core
    /// buffers across the n loop, packed-B words and C partial sums
    /// streaming.
    InputStationary,
}

impl Dataflow {
    fn token(self) -> &'static str {
        match self {
            Dataflow::WeightStationary => "ws",
            Dataflow::OutputStationary => "os",
            Dataflow::InputStationary => "is",
        }
    }
}

impl fmt::Display for Dataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// Which matrix extent packed weight words run along (§III of the
/// paper: `P(B_x)_k` vs `P(B_x)_n`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Packing {
    /// Packed along the reduction dimension (baselines).
    AlongK,
    /// Packed along the output dimension (PacQ).
    AlongN,
}

impl Packing {
    fn token(self) -> &'static str {
        match self {
            Packing::AlongK => "k",
            Packing::AlongN => "n",
        }
    }
}

impl fmt::Display for Packing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// One on-chip memory level: a capacity plus an optional explicit
/// access energy overriding the capacity-derived analytical formula.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemLevel {
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Explicit pJ per 16-bit access; `None` derives from capacity.
    pub access_energy_pj_per_word16: Option<f64>,
}

/// A parsed, decodable `pacq-arch/v1` template. Construct via
/// [`ArchTemplate::parse`] (TOML or JSON) or the committed-equivalent
/// builders [`ArchTemplate::volta_like`] / [`ArchTemplate::pacq`], then
/// call [`ArchTemplate::validate`] before deriving simulator objects.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchTemplate {
    /// Human-readable design-point name (letters, digits, `-`, `_`).
    pub name: String,
    /// Tile-movement dataflow.
    pub dataflow: Dataflow,
    /// Weight packing direction.
    pub packing: Packing,
    /// Whether weights are dequantized to FP16 before the tensor cores.
    pub dequant: bool,
    /// Tensor cores per SM.
    pub tensor_cores: usize,
    /// DP units per tensor core.
    pub dp_units_per_tc: usize,
    /// Dot-product unit width (4, 8 or 16).
    pub dp_width: usize,
    /// Adder-tree duplication (1, 2 or 4).
    pub adder_tree_duplication: usize,
    /// General-core unpack+dequant throughput, weights per cycle.
    pub dequant_weights_per_cycle: f64,
    /// Clock frequency in Hz.
    pub clock_hz: f64,
    /// Register-file level.
    pub register_file: MemLevel,
    /// Shared-L1 level.
    pub l1: MemLevel,
    /// Per-buffer operand-buffer capacity in bits.
    pub operand_buffer_bits: u64,
    /// Operand buffers per tensor core.
    pub operand_buffers: usize,
    /// Explicit operand-buffer access energy (pJ per 16-bit word).
    pub operand_buffer_energy_pj_per_word16: Option<f64>,
    /// DRAM bandwidth in bytes per SM cycle (`inf` = unbounded).
    pub dram_bytes_per_cycle: f64,
    /// Explicit DRAM access energy (pJ per 16-bit word).
    pub dram_energy_pj_per_word16: Option<f64>,
    /// Declared tolerance for the `pacq audit --activity` cross-check
    /// (maximum relative error between analytic and activity-derived
    /// multiplier energy). `None` leaves the audit's default in force.
    pub activity_tolerance: Option<f64>,
}

impl ArchTemplate {
    /// The committed-equivalent of the hardcoded Table I machine under
    /// the standard dequantization flow ([`SmConfig::volta_like`] plus
    /// the default per-level energies, bit for bit).
    pub fn volta_like() -> ArchTemplate {
        ArchTemplate {
            name: "volta-like".to_string(),
            dataflow: Dataflow::WeightStationary,
            packing: Packing::AlongK,
            dequant: true,
            tensor_cores: 8,
            dp_units_per_tc: 4,
            dp_width: 4,
            adder_tree_duplication: 2,
            dequant_weights_per_cycle: 8.0,
            clock_hz: 400.0e6,
            register_file: MemLevel {
                capacity_bytes: 256 * 1024,
                access_energy_pj_per_word16: None,
            },
            l1: MemLevel {
                capacity_bytes: 96 * 1024,
                access_energy_pj_per_word16: None,
            },
            operand_buffer_bits: 3072,
            operand_buffers: 2,
            operand_buffer_energy_pj_per_word16: None,
            dram_bytes_per_cycle: f64::INFINITY,
            dram_energy_pj_per_word16: None,
            activity_tolerance: None,
        }
    }

    /// The committed-equivalent PacQ design point: the same Table I
    /// machine, but output-stationary with weights packed along n and no
    /// dequantization (the paper evaluates PacQ as a drop-in datapath on
    /// the Volta-like SM).
    pub fn pacq() -> ArchTemplate {
        ArchTemplate {
            name: "pacq".to_string(),
            dataflow: Dataflow::OutputStationary,
            packing: Packing::AlongN,
            dequant: false,
            ..ArchTemplate::volta_like()
        }
    }

    /// The committed-equivalent input-stationary design point: the Table I
    /// machine with `P(B_x)_k` packing but the activation tile held across
    /// the n loop — the third stationarity class the `pacq-arch/v1` schema
    /// names, between `P(B_x)_k` (A-refetch pathology) and PacQ.
    pub fn input_stationary() -> ArchTemplate {
        ArchTemplate {
            name: "input-stationary".to_string(),
            dataflow: Dataflow::InputStationary,
            packing: Packing::AlongK,
            dequant: false,
            ..ArchTemplate::volta_like()
        }
    }

    /// Parses a template from TOML or JSON text (sniffed: a document
    /// whose first non-space byte is `{` is JSON). `context` names the
    /// input (typically the file path) in every error.
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::Template`] for syntax errors, unknown or
    /// duplicate keys, missing required keys, a wrong `schema`, and
    /// type mismatches. Parsing does *not* validate the design point —
    /// call [`ArchTemplate::validate`] (or [`ArchTemplate::load`]).
    pub fn parse(text: &str, context: &str) -> PacqResult<ArchTemplate> {
        let doc = if text.trim_start().starts_with('{') {
            Json::parse(text)
                .map_err(|e| PacqError::template(context, format!("JSON syntax: {e}")))?
        } else {
            parse_toml(text, context)?
        };
        Self::from_doc(&doc, context)
    }

    /// [`ArchTemplate::parse`] followed by [`ArchTemplate::validate`] —
    /// the one call every consumer of user-supplied template text wants.
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::Template`] as for parse and validate.
    pub fn load(text: &str, context: &str) -> PacqResult<ArchTemplate> {
        let template = Self::parse(text, context)?;
        template.validate(context)?;
        Ok(template)
    }

    /// Decodes a parsed value tree, rejecting unknown keys everywhere
    /// (a typo'd key must never be silently ignored — it would change
    /// the simulated machine without changing the digest... of the
    /// template the author *thought* they wrote).
    fn from_doc(doc: &Json, context: &str) -> PacqResult<ArchTemplate> {
        let fail = |message: String| -> PacqError { PacqError::template(context, message) };
        expect_keys(
            doc,
            "",
            &[
                "schema", "name", "dataflow", "packing", "dequant", "compute", "memory", "audit",
            ],
            context,
        )?;
        let schema = str_of(doc, "", "schema", context)?;
        if schema != TEMPLATE_SCHEMA {
            return Err(fail(format!(
                "schema must be \"{TEMPLATE_SCHEMA}\", got \"{schema}\""
            )));
        }
        let name = str_of(doc, "", "name", context)?.to_string();
        let dataflow = match str_of(doc, "", "dataflow", context)? {
            "ws" => Dataflow::WeightStationary,
            "os" => Dataflow::OutputStationary,
            "is" => Dataflow::InputStationary,
            other => {
                return Err(fail(format!(
                    "dataflow must be ws, os or is, got `{other}`"
                )))
            }
        };
        let packing = match str_of(doc, "", "packing", context)? {
            "k" => Packing::AlongK,
            "n" => Packing::AlongN,
            other => return Err(fail(format!("packing must be k or n, got `{other}`"))),
        };
        let dequant = bool_of(doc, "", "dequant", context)?;

        let compute = section_of(doc, "compute", context)?;
        expect_keys(
            compute,
            "compute.",
            &[
                "tensor_cores",
                "dp_units_per_tc",
                "dp_width",
                "adder_tree_duplication",
                "dequant_weights_per_cycle",
                "clock_hz",
            ],
            context,
        )?;
        let memory = section_of(doc, "memory", context)?;
        expect_keys(
            memory,
            "memory.",
            &["register_file", "l1", "operand_buffer", "dram"],
            context,
        )?;
        let rf = section_of(memory, "register_file", context)?;
        let l1 = section_of(memory, "l1", context)?;
        let buffer = section_of(memory, "operand_buffer", context)?;
        let dram = section_of(memory, "dram", context)?;
        expect_keys(
            rf,
            "memory.register_file.",
            &["capacity_bytes", "access_energy_pj_per_word16"],
            context,
        )?;
        expect_keys(
            l1,
            "memory.l1.",
            &["capacity_bytes", "access_energy_pj_per_word16"],
            context,
        )?;
        expect_keys(
            buffer,
            "memory.operand_buffer.",
            &["capacity_bits", "count", "access_energy_pj_per_word16"],
            context,
        )?;
        expect_keys(
            dram,
            "memory.dram.",
            &["bandwidth_bytes_per_cycle", "access_energy_pj_per_word16"],
            context,
        )?;
        // `[audit]` is optional: absent means the audit defaults apply.
        let activity_tolerance = if doc.get("audit").is_some() {
            let audit = section_of(doc, "audit", context)?;
            expect_keys(audit, "audit.", &["activity_tolerance"], context)?;
            opt_num_of(audit, "audit.", "activity_tolerance", context)?
        } else {
            None
        };

        Ok(ArchTemplate {
            name,
            dataflow,
            packing,
            dequant,
            tensor_cores: uint_of(compute, "compute.", "tensor_cores", context)? as usize,
            dp_units_per_tc: uint_of(compute, "compute.", "dp_units_per_tc", context)? as usize,
            dp_width: uint_of(compute, "compute.", "dp_width", context)? as usize,
            adder_tree_duplication: uint_of(compute, "compute.", "adder_tree_duplication", context)?
                as usize,
            dequant_weights_per_cycle: num_of(
                compute,
                "compute.",
                "dequant_weights_per_cycle",
                context,
            )?,
            clock_hz: num_of(compute, "compute.", "clock_hz", context)?,
            register_file: MemLevel {
                capacity_bytes: uint_of(rf, "memory.register_file.", "capacity_bytes", context)?,
                access_energy_pj_per_word16: opt_num_of(
                    rf,
                    "memory.register_file.",
                    "access_energy_pj_per_word16",
                    context,
                )?,
            },
            l1: MemLevel {
                capacity_bytes: uint_of(l1, "memory.l1.", "capacity_bytes", context)?,
                access_energy_pj_per_word16: opt_num_of(
                    l1,
                    "memory.l1.",
                    "access_energy_pj_per_word16",
                    context,
                )?,
            },
            operand_buffer_bits: uint_of(
                buffer,
                "memory.operand_buffer.",
                "capacity_bits",
                context,
            )?,
            operand_buffers: uint_of(buffer, "memory.operand_buffer.", "count", context)? as usize,
            operand_buffer_energy_pj_per_word16: opt_num_of(
                buffer,
                "memory.operand_buffer.",
                "access_energy_pj_per_word16",
                context,
            )?,
            dram_bytes_per_cycle: num_of(
                dram,
                "memory.dram.",
                "bandwidth_bytes_per_cycle",
                context,
            )?,
            dram_energy_pj_per_word16: opt_num_of(
                dram,
                "memory.dram.",
                "access_energy_pj_per_word16",
                context,
            )?,
            activity_tolerance,
        })
    }

    /// Validates the design point: the dataflow triple must name a
    /// simulated architecture, the datapath domains must hold
    /// ([`SmConfig::validate`]), every declared energy must be positive
    /// and finite, and the resolved per-level energies must respect the
    /// hierarchy ordering `operand buffer < RF < L1 < DRAM` the
    /// dataflow analysis relies on.
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::Template`] naming the first violated rule.
    pub fn validate(&self, context: &str) -> PacqResult<()> {
        let fail = |message: String| -> PacqError { PacqError::template(context, message) };
        if self.name.is_empty()
            || !self
                .name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(fail(format!(
                "name `{}` must be non-empty [A-Za-z0-9_-]",
                self.name
            )));
        }
        self.architecture().map_err(|e| match e {
            PacqError::Template { message, .. } => PacqError::template(context, message),
            other => other,
        })?;
        self.sm_config()
            .validate()
            .map_err(|e| fail(format!("datapath: {e}")))?;
        if !(self.clock_hz > 0.0 && self.clock_hz.is_finite()) {
            return Err(fail(format!(
                "compute.clock_hz must be positive and finite, got {}",
                self.clock_hz
            )));
        }
        // NaN must fail too, hence the negated comparison.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(self.dram_bytes_per_cycle > 0.0) {
            return Err(fail(format!(
                "memory.dram.bandwidth_bytes_per_cycle must be positive (inf = unbounded), got {}",
                self.dram_bytes_per_cycle
            )));
        }
        if self.operand_buffer_bits < 8 || !self.operand_buffer_bits.is_multiple_of(8) {
            return Err(fail(format!(
                "memory.operand_buffer.capacity_bits must be a positive multiple of 8, got {}",
                self.operand_buffer_bits
            )));
        }
        if self.operand_buffers == 0 {
            return Err(fail(
                "memory.operand_buffer.count must be non-zero".to_string(),
            ));
        }
        if self.register_file.capacity_bytes == 0 || self.l1.capacity_bytes == 0 {
            return Err(fail(
                "memory.register_file and memory.l1 capacities must be non-zero".to_string(),
            ));
        }
        if let Some(t) = self.activity_tolerance {
            if !(t > 0.0 && t.is_finite()) {
                return Err(fail(format!(
                    "audit.activity_tolerance must be positive and finite, got {t}"
                )));
            }
        }
        let model = self.energy_model().map_err(|e| match e {
            PacqError::Template { message, .. } => PacqError::template(context, message),
            other => other,
        })?;
        // Hierarchy ordering of the *resolved* energies — the invariant
        // the paper's traffic analysis (RF ≪ L1 ≪ DRAM) rests on.
        let [buffer, rf, l1, dram] = model.levels();
        let ordered = [
            ("operand buffer", buffer.energy_per_word16_pj()),
            ("register file", rf.energy_per_word16_pj()),
            ("L1", l1.energy_per_word16_pj()),
            ("DRAM", dram.energy_per_word16_pj()),
        ];
        for pair in ordered.windows(2) {
            let [(inner, e_inner), (outer, e_outer)] = pair else {
                continue;
            };
            if e_inner >= e_outer {
                return Err(fail(format!(
                    "inconsistent hierarchy: {inner} access energy ({e_inner} pJ) must be \
                     below {outer} ({e_outer} pJ)"
                )));
            }
        }
        Ok(())
    }

    /// The simulated architecture this template's dataflow triple
    /// selects.
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::Template`] when the triple matches none of
    /// the three implemented design points.
    pub fn architecture(&self) -> PacqResult<Architecture> {
        use Dataflow::*;
        use Packing::*;
        match (self.dataflow, self.packing, self.dequant) {
            (WeightStationary, AlongK, true) => Ok(Architecture::StandardDequant),
            (WeightStationary, AlongK, false) => Ok(Architecture::PackedK),
            (OutputStationary, AlongN, false) => Ok(Architecture::Pacq),
            (InputStationary, AlongK, false) => Ok(Architecture::InputStationary),
            (df, p, dq) => Err(PacqError::template(
                "ArchTemplate::architecture",
                format!(
                    "no simulated architecture has dataflow={df}, packing={p}, dequant={dq}; \
                     supported triples: (ws,k,true)=standard-dequant, (ws,k,false)=packed-k, \
                     (os,n,false)=pacq, (is,k,false)=input-stationary"
                ),
            )),
        }
    }

    /// The machine configuration this template describes.
    pub fn sm_config(&self) -> SmConfig {
        SmConfig {
            tensor_cores: self.tensor_cores,
            dp_units_per_tc: self.dp_units_per_tc,
            dp_width: self.dp_width,
            adder_tree_duplication: self.adder_tree_duplication,
            operand_buffer_bits: self.operand_buffer_bits,
            operand_buffers: self.operand_buffers,
            register_file_bytes: self.register_file.capacity_bytes,
            l1_bytes: self.l1.capacity_bytes,
            dequant_weights_per_cycle: self.dequant_weights_per_cycle,
            clock_hz: self.clock_hz,
            dram_bytes_per_cycle: self.dram_bytes_per_cycle,
        }
    }

    /// The per-level energy model: declared access energies where the
    /// template gives them, the capacity-derived analytical defaults
    /// everywhere else — so a template with no overrides prices
    /// bit-identically to [`EnergyModel::new`] over its `SmConfig`.
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::Template`] for non-positive or non-finite
    /// declared energies.
    pub fn energy_model(&self) -> PacqResult<EnergyModel> {
        let level = |kind: MemoryKind, capacity: u64, energy: Option<f64>| match energy {
            Some(e) => SramModel::with_access_energy(kind, capacity, e),
            None => Ok(SramModel::new(kind, capacity)),
        };
        let rf = level(
            MemoryKind::RegisterFile,
            self.register_file.capacity_bytes,
            self.register_file.access_energy_pj_per_word16,
        )?;
        let l1 = level(
            MemoryKind::Cache,
            self.l1.capacity_bytes,
            self.l1.access_energy_pj_per_word16,
        )?;
        let buffer = level(
            MemoryKind::OperandBuffer,
            self.operand_buffer_bits / 8,
            self.operand_buffer_energy_pj_per_word16,
        )?;
        let dram = level(MemoryKind::Dram, 0, self.dram_energy_pj_per_word16)?;
        Ok(EnergyModel::with_levels(
            rf,
            l1,
            dram,
            buffer,
            self.clock_hz,
        ))
    }

    /// The canonical TOML rendering: fixed key order, numbers in Rust's
    /// shortest round-trip form (`inf` for unbounded DRAM), optional
    /// keys present only when set. [`ArchTemplate::parse`] of the
    /// rendering reproduces the template exactly — the digest is taken
    /// over this text, so reformatting a template file never changes
    /// its identity but any content edit does.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let push = |out: &mut String, line: String| {
            out.push_str(&line);
            out.push('\n');
        };
        push(&mut out, format!("schema = \"{TEMPLATE_SCHEMA}\""));
        push(&mut out, format!("name = \"{}\"", self.name));
        push(&mut out, format!("dataflow = \"{}\"", self.dataflow));
        push(&mut out, format!("packing = \"{}\"", self.packing));
        push(&mut out, format!("dequant = {}", self.dequant));
        push(&mut out, String::new());
        push(&mut out, "[compute]".to_string());
        push(&mut out, format!("tensor_cores = {}", self.tensor_cores));
        push(
            &mut out,
            format!("dp_units_per_tc = {}", self.dp_units_per_tc),
        );
        push(&mut out, format!("dp_width = {}", self.dp_width));
        push(
            &mut out,
            format!("adder_tree_duplication = {}", self.adder_tree_duplication),
        );
        push(
            &mut out,
            format!(
                "dequant_weights_per_cycle = {}",
                render_num(self.dequant_weights_per_cycle)
            ),
        );
        push(
            &mut out,
            format!("clock_hz = {}", render_num(self.clock_hz)),
        );
        push(&mut out, String::new());
        push(&mut out, "[memory.register_file]".to_string());
        push(
            &mut out,
            format!("capacity_bytes = {}", self.register_file.capacity_bytes),
        );
        if let Some(e) = self.register_file.access_energy_pj_per_word16 {
            push(
                &mut out,
                format!("access_energy_pj_per_word16 = {}", render_num(e)),
            );
        }
        push(&mut out, String::new());
        push(&mut out, "[memory.l1]".to_string());
        push(
            &mut out,
            format!("capacity_bytes = {}", self.l1.capacity_bytes),
        );
        if let Some(e) = self.l1.access_energy_pj_per_word16 {
            push(
                &mut out,
                format!("access_energy_pj_per_word16 = {}", render_num(e)),
            );
        }
        push(&mut out, String::new());
        push(&mut out, "[memory.operand_buffer]".to_string());
        push(
            &mut out,
            format!("capacity_bits = {}", self.operand_buffer_bits),
        );
        push(&mut out, format!("count = {}", self.operand_buffers));
        if let Some(e) = self.operand_buffer_energy_pj_per_word16 {
            push(
                &mut out,
                format!("access_energy_pj_per_word16 = {}", render_num(e)),
            );
        }
        push(&mut out, String::new());
        push(&mut out, "[memory.dram]".to_string());
        push(
            &mut out,
            format!(
                "bandwidth_bytes_per_cycle = {}",
                render_num(self.dram_bytes_per_cycle)
            ),
        );
        if let Some(e) = self.dram_energy_pj_per_word16 {
            push(
                &mut out,
                format!("access_energy_pj_per_word16 = {}", render_num(e)),
            );
        }
        if let Some(t) = self.activity_tolerance {
            push(&mut out, String::new());
            push(&mut out, "[audit]".to_string());
            push(&mut out, format!("activity_tolerance = {}", render_num(t)));
        }
        out
    }

    /// The JSON rendering of the same content (unbounded values render
    /// as the string `"inf"`, since JSON has no infinity literal).
    /// Parses back identically via [`ArchTemplate::parse`].
    pub fn render_json(&self) -> String {
        let num = |v: f64| -> Json {
            if v.is_infinite() && v > 0.0 {
                Json::Str("inf".to_string())
            } else {
                Json::Num(v)
            }
        };
        let level = |capacity_key: &str, capacity: u64, energy: Option<f64>| -> Json {
            let mut o = Json::object();
            o.set(capacity_key, capacity as f64);
            if let Some(e) = energy {
                o.set("access_energy_pj_per_word16", num(e));
            }
            o
        };
        let mut compute = Json::object();
        compute.set("tensor_cores", self.tensor_cores as f64);
        compute.set("dp_units_per_tc", self.dp_units_per_tc as f64);
        compute.set("dp_width", self.dp_width as f64);
        compute.set("adder_tree_duplication", self.adder_tree_duplication as f64);
        compute.set(
            "dequant_weights_per_cycle",
            num(self.dequant_weights_per_cycle),
        );
        compute.set("clock_hz", num(self.clock_hz));
        let mut buffer = level(
            "capacity_bits",
            self.operand_buffer_bits,
            self.operand_buffer_energy_pj_per_word16,
        );
        // `count` sits between capacity and the optional energy key.
        if let Json::Obj(entries) = &mut buffer {
            entries.insert(
                1,
                ("count".to_string(), Json::Num(self.operand_buffers as f64)),
            );
        }
        let mut dram = Json::object();
        dram.set("bandwidth_bytes_per_cycle", num(self.dram_bytes_per_cycle));
        if let Some(e) = self.dram_energy_pj_per_word16 {
            dram.set("access_energy_pj_per_word16", num(e));
        }
        let mut memory = Json::object();
        memory.set(
            "register_file",
            level(
                "capacity_bytes",
                self.register_file.capacity_bytes,
                self.register_file.access_energy_pj_per_word16,
            ),
        );
        memory.set(
            "l1",
            level(
                "capacity_bytes",
                self.l1.capacity_bytes,
                self.l1.access_energy_pj_per_word16,
            ),
        );
        memory.set("operand_buffer", buffer);
        memory.set("dram", dram);
        let mut doc = Json::object();
        doc.set("schema", TEMPLATE_SCHEMA);
        doc.set("name", self.name.as_str());
        doc.set("dataflow", self.dataflow.token());
        doc.set("packing", self.packing.token());
        doc.set("dequant", self.dequant);
        doc.set("compute", compute);
        doc.set("memory", memory);
        if let Some(t) = self.activity_tolerance {
            let mut audit = Json::object();
            audit.set("activity_tolerance", num(t));
            doc.set("audit", audit);
        }
        doc.render()
    }

    /// The template's content digest: 32 hex characters over the
    /// canonical rendering. This is the identity folded into cache keys
    /// (`tpl:<digest>` in the runner's arch id), checkpoint bindings
    /// and run manifests — any content edit changes it; reformatting,
    /// comments and TOML-vs-JSON syntax do not.
    pub fn digest(&self) -> String {
        let text = self.render();
        format!(
            "{:016x}{:016x}",
            fnv1a(text.as_bytes(), 0xcbf2_9ce4_8422_2325),
            fnv1a(text.as_bytes(), 0x6c62_272e_07bb_0142)
        )
    }
}

/// Renders a number in Rust's shortest round-trip form, with TOML's
/// `inf` literal for the unbounded-DRAM sentinel (f64→text→f64 is
/// bit-exact for finite values under this formatting).
fn render_num(v: f64) -> String {
    if v.is_infinite() && v > 0.0 {
        "inf".to_string()
    } else {
        format!("{v}")
    }
}

fn fnv1a(bytes: &[u8], offset_basis: u64) -> u64 {
    let mut h = offset_basis;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Rejects any key of `doc` outside `allowed` (prefix names the
/// section in errors) and requires `doc` to be a table.
fn expect_keys(doc: &Json, prefix: &str, allowed: &[&str], context: &str) -> PacqResult<()> {
    let Json::Obj(entries) = doc else {
        return Err(PacqError::template(
            context,
            format!("`{}` must be a table/object", prefix.trim_end_matches('.')),
        ));
    };
    for (key, _) in entries {
        if !allowed.contains(&key.as_str()) {
            return Err(PacqError::template(
                context,
                format!(
                    "unknown key `{prefix}{key}` (allowed: {})",
                    allowed.join(", ")
                ),
            ));
        }
    }
    Ok(())
}

fn field<'d>(doc: &'d Json, prefix: &str, key: &str, context: &str) -> PacqResult<&'d Json> {
    doc.get(key).ok_or_else(|| {
        PacqError::template(context, format!("missing required key `{prefix}{key}`"))
    })
}

fn section_of<'d>(doc: &'d Json, key: &str, context: &str) -> PacqResult<&'d Json> {
    let v = field(doc, "", key, context)?;
    if !v.is_obj() {
        return Err(PacqError::template(
            context,
            format!("`{key}` must be a table/object"),
        ));
    }
    Ok(v)
}

fn str_of<'d>(doc: &'d Json, prefix: &str, key: &str, context: &str) -> PacqResult<&'d str> {
    field(doc, prefix, key, context)?
        .as_str()
        .ok_or_else(|| PacqError::template(context, format!("`{prefix}{key}` must be a string")))
}

fn bool_of(doc: &Json, prefix: &str, key: &str, context: &str) -> PacqResult<bool> {
    match field(doc, prefix, key, context)? {
        Json::Bool(b) => Ok(*b),
        _ => Err(PacqError::template(
            context,
            format!("`{prefix}{key}` must be true or false"),
        )),
    }
}

/// A number, with the string `"inf"` accepted as positive infinity (the
/// JSON spelling of TOML's `inf` literal).
fn num_of(doc: &Json, prefix: &str, key: &str, context: &str) -> PacqResult<f64> {
    match field(doc, prefix, key, context)? {
        Json::Num(n) => Ok(*n),
        Json::Str(s) if s == "inf" || s == "+inf" => Ok(f64::INFINITY),
        _ => Err(PacqError::template(
            context,
            format!("`{prefix}{key}` must be a number (or \"inf\")"),
        )),
    }
}

fn opt_num_of(doc: &Json, prefix: &str, key: &str, context: &str) -> PacqResult<Option<f64>> {
    if doc.get(key).is_none() {
        return Ok(None);
    }
    num_of(doc, prefix, key, context).map(Some)
}

/// A non-negative integer stored as a JSON number (exact below 2^53 —
/// far above any plausible capacity or unit count).
fn uint_of(doc: &Json, prefix: &str, key: &str, context: &str) -> PacqResult<u64> {
    let n = num_of(doc, prefix, key, context)?;
    if !(n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n <= (1u64 << 53) as f64) {
        return Err(PacqError::template(
            context,
            format!("`{prefix}{key}` must be a non-negative integer, got {n}"),
        ));
    }
    Ok(n as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_templates_reproduce_the_hardcoded_configs_bit_for_bit() {
        for (template, arch) in [
            (ArchTemplate::volta_like(), Architecture::StandardDequant),
            (ArchTemplate::pacq(), Architecture::Pacq),
            (
                ArchTemplate::input_stationary(),
                Architecture::InputStationary,
            ),
        ] {
            template.validate("builtin").unwrap();
            assert_eq!(template.sm_config(), SmConfig::volta_like());
            assert_eq!(template.architecture().unwrap(), arch);
            let derived = EnergyModel::new(&SmConfig::volta_like());
            assert_eq!(
                template.energy_model().unwrap().energy_canonical(),
                derived.energy_canonical(),
                "no-override template energies must equal the capacity-derived defaults"
            );
        }
    }

    #[test]
    fn committed_examples_reproduce_the_builders_digest_stably() {
        // The committed examples/arch/*.toml files are the user-facing
        // spelling of the builtin design points: each must parse, equal
        // its builder bit for bit, and round-trip through the canonical
        // rendering without moving the digest.
        for (file, builder) in [
            ("volta_like.toml", ArchTemplate::volta_like()),
            ("pacq.toml", ArchTemplate::pacq()),
            ("input_stationary.toml", ArchTemplate::input_stationary()),
        ] {
            let path = format!("{}/../../examples/arch/{file}", env!("CARGO_MANIFEST_DIR"));
            let text = std::fs::read_to_string(&path).unwrap();
            let parsed = ArchTemplate::parse(&text, &path).unwrap();
            parsed.validate(&path).unwrap();
            assert_eq!(parsed, builder, "{file} drifted from its builder");
            assert_eq!(parsed.digest(), builder.digest());
            let reparsed = ArchTemplate::parse(&parsed.render(), &path).unwrap();
            assert_eq!(reparsed.digest(), parsed.digest(), "{file} digest unstable");
            assert_eq!(
                parsed.architecture().unwrap(),
                builder.architecture().unwrap()
            );
        }
    }

    #[test]
    fn toml_and_json_renderings_round_trip_and_share_a_digest() {
        let mut t = ArchTemplate::pacq();
        t.l1.access_energy_pj_per_word16 = Some(2.5);
        let from_toml = ArchTemplate::parse(&t.render(), "toml").unwrap();
        let from_json = ArchTemplate::parse(&t.render_json(), "json").unwrap();
        assert_eq!(from_toml, t);
        assert_eq!(from_json, t);
        assert_eq!(from_toml.digest(), t.digest());
        assert_eq!(from_json.digest(), t.digest());
    }

    #[test]
    fn digest_tracks_content_not_formatting() {
        let t = ArchTemplate::volta_like();
        let mut commented = String::from("# a reformatted copy\n");
        commented.push_str(&t.render().replace("\n\n", "\n\n# section\n"));
        let reparsed = ArchTemplate::parse(&commented, "test").unwrap();
        assert_eq!(reparsed.digest(), t.digest());

        let mut edited = t.clone();
        edited.l1.access_energy_pj_per_word16 = Some(
            EnergyModel::new(&SmConfig::volta_like()).levels()[2].energy_per_word16_pj() + 1.0,
        );
        assert_ne!(edited.digest(), t.digest());
    }

    #[test]
    fn audit_tolerance_round_trips_and_moves_the_digest() {
        let mut t = ArchTemplate::pacq();
        t.activity_tolerance = Some(0.5);
        t.validate("test").unwrap();
        let from_toml = ArchTemplate::parse(&t.render(), "toml").unwrap();
        let from_json = ArchTemplate::parse(&t.render_json(), "json").unwrap();
        assert_eq!(from_toml, t);
        assert_eq!(from_json, t);
        assert!(t.render().contains("[audit]\nactivity_tolerance = 0.5"));
        assert_ne!(
            t.digest(),
            ArchTemplate::pacq().digest(),
            "pinning a tolerance is a content edit"
        );
        // An empty `[audit]` table is allowed and means "defaults".
        let text = format!("{}\n[audit]\n", ArchTemplate::pacq().render());
        let parsed = ArchTemplate::parse(&text, "toml").unwrap();
        assert_eq!(parsed.activity_tolerance, None);
        assert_eq!(parsed.digest(), ArchTemplate::pacq().digest());
    }

    #[test]
    fn audit_section_rejects_unknown_keys_and_bad_tolerances() {
        let mut t = ArchTemplate::pacq();
        t.activity_tolerance = Some(0.5);
        let typo = t.render().replace("activity_tolerance", "activity_tol");
        let err = ArchTemplate::parse(&typo, "test").unwrap_err();
        assert_eq!(err.exit_code(), 9, "{err}");
        assert!(err.to_string().contains("audit.activity_tol"), "{err}");
        for bad in [0.0, -0.5, f64::INFINITY, f64::NAN] {
            t.activity_tolerance = Some(bad);
            let err = t.validate("test").unwrap_err();
            assert_eq!(err.exit_code(), 9, "{err}");
            assert!(err.to_string().contains("activity_tolerance"), "{err}");
        }
    }

    #[test]
    fn dataflow_triple_maps_onto_the_four_architectures() {
        let mut t = ArchTemplate::volta_like();
        assert_eq!(t.architecture().unwrap(), Architecture::StandardDequant);
        t.dequant = false;
        assert_eq!(t.architecture().unwrap(), Architecture::PackedK);
        t.dataflow = Dataflow::InputStationary;
        assert_eq!(t.architecture().unwrap(), Architecture::InputStationary);
        t.dataflow = Dataflow::OutputStationary;
        t.packing = Packing::AlongN;
        assert_eq!(t.architecture().unwrap(), Architecture::Pacq);
        // Unsupported triples are typed template errors naming the
        // supported set — (is,k,false) is in it, the exit-9 stub gone.
        t.dequant = true; // (os, n, true)
        let err = t.architecture().unwrap_err();
        assert_eq!(err.exit_code(), 9);
        assert!(
            err.to_string().contains("(is,k,false)=input-stationary"),
            "{err}"
        );
        // (is, n, false) is NOT implemented: input-stationary movement
        // needs the k-packed words that align with the held A tile.
        t.dataflow = Dataflow::InputStationary;
        t.dequant = false;
        assert_eq!(t.architecture().unwrap_err().exit_code(), 9);
    }

    #[test]
    fn validation_rejects_inconsistent_hierarchies() {
        // An L1 cheaper than the register file breaks the RF < L1 < DRAM
        // ordering the dataflow analysis rests on.
        let mut t = ArchTemplate::pacq();
        t.l1.access_energy_pj_per_word16 = Some(0.001);
        let err = t.validate("test").unwrap_err();
        assert_eq!(err.exit_code(), 9, "{err}");
        assert!(err.to_string().contains("hierarchy"), "{err}");

        let mut t = ArchTemplate::pacq();
        t.dp_width = 5;
        let err = t.validate("test").unwrap_err();
        assert_eq!(err.exit_code(), 9, "{err}");
        assert!(err.to_string().contains("dp_width"), "{err}");

        let mut t = ArchTemplate::pacq();
        t.register_file.access_energy_pj_per_word16 = Some(-1.0);
        assert_eq!(t.validate("test").unwrap_err().exit_code(), 9);

        let mut t = ArchTemplate::pacq();
        t.clock_hz = f64::NAN;
        assert_eq!(t.validate("test").unwrap_err().exit_code(), 9);

        let mut t = ArchTemplate::pacq();
        t.name = "bad name!".to_string();
        assert_eq!(t.validate("test").unwrap_err().exit_code(), 9);
    }

    #[test]
    fn unknown_and_missing_keys_are_rejected_with_the_context() {
        let mut text = ArchTemplate::volta_like().render();
        text.push_str("\n[memory.l2]\ncapacity_bytes = 1\n");
        let err = ArchTemplate::parse(&text, "examples/arch/x.toml").unwrap_err();
        assert_eq!(err.exit_code(), 9);
        assert!(err.to_string().contains("memory.l2"), "{err}");
        assert!(err.to_string().contains("examples/arch/x.toml"), "{err}");

        let missing = "schema = \"pacq-arch/v1\"\nname = \"x\"\n";
        let err = ArchTemplate::parse(missing, "test").unwrap_err();
        assert_eq!(err.exit_code(), 9);
        assert!(err.to_string().contains("dataflow"), "{err}");

        let wrong_schema = ArchTemplate::volta_like()
            .render()
            .replace("pacq-arch/v1", "pacq-arch/v2");
        assert_eq!(
            ArchTemplate::parse(&wrong_schema, "test")
                .unwrap_err()
                .exit_code(),
            9
        );
    }
}
