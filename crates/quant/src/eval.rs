//! Quantization quality metrics.
//!
//! Table II reports WikiText-2/C4 perplexity on Llama2-7B; this module
//! provides the substituted metrics (see DESIGN.md §4): weight-domain
//! error (MSE, SQNR) and GEMM output perturbation, plus helpers shared by
//! the perplexity-proxy model in [`crate::lm`].

use crate::groups::GroupShape;
use crate::matrix::MatrixF32;
use crate::rtn::RtnQuantizer;
use pacq_error::PacqResult;
use pacq_fp16::WeightPrecision;

/// Weight-domain and output-domain error of one quantization configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantError {
    /// Mean squared weight error.
    pub weight_mse: f64,
    /// Signal-to-quantization-noise ratio in dB (weight domain).
    pub weight_sqnr_db: f64,
    /// Relative Frobenius error of `A × W_q` vs `A × W` (output domain).
    pub output_rel_err: f64,
}

/// Evaluates RTN quantization error for one precision/group configuration
/// on the given weights, probing output error with the given activations.
///
/// # Examples
///
/// ```
/// use pacq_quant::{evaluate_rtn, GroupShape, synth::SynthGenerator};
/// use pacq_fp16::WeightPrecision;
///
/// let mut g = SynthGenerator::new(1);
/// let w = g.llm_weights(256, 64);
/// let a = g.llm_activations(8, 256);
/// let e = evaluate_rtn(&w, &a, WeightPrecision::Int4, GroupShape::G128).unwrap();
/// assert!(e.weight_sqnr_db > 10.0); // INT4 RTN keeps usable SQNR
/// ```
pub fn evaluate_rtn(
    weights: &MatrixF32,
    activations: &MatrixF32,
    precision: WeightPrecision,
    group: GroupShape,
) -> PacqResult<QuantError> {
    let q = RtnQuantizer::new(precision, group).quantize(weights)?;
    let deq = q.dequantize();

    let weight_mse = weights.mse(&deq);
    let signal: f64 = weights
        .as_slice()
        .iter()
        .map(|&v| (v as f64) * (v as f64))
        .sum::<f64>()
        / weights.as_slice().len().max(1) as f64;
    let weight_sqnr_db = if weight_mse > 0.0 {
        10.0 * (signal / weight_mse).log10()
    } else {
        f64::INFINITY
    };

    let ref_out = activations.matmul(weights);
    let q_out = activations.matmul(&deq);
    let diff = MatrixF32::from_fn(ref_out.rows(), ref_out.cols(), |r, c| {
        ref_out.get(r, c) - q_out.get(r, c)
    });
    let denom = ref_out.frobenius_norm().max(1e-30);
    let output_rel_err = diff.frobenius_norm() / denom;

    Ok(QuantError {
        weight_mse,
        weight_sqnr_db,
        output_rel_err,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthGenerator;

    fn setup() -> (MatrixF32, MatrixF32) {
        let mut g = SynthGenerator::new(11);
        (g.llm_weights(256, 64), g.llm_activations(8, 256))
    }

    #[test]
    fn int4_beats_int2() {
        let (w, a) = setup();
        let e4 = evaluate_rtn(&w, &a, WeightPrecision::Int4, GroupShape::G128).unwrap();
        let e2 = evaluate_rtn(&w, &a, WeightPrecision::Int2, GroupShape::G128).unwrap();
        assert!(e4.weight_mse < e2.weight_mse);
        assert!(e4.weight_sqnr_db > e2.weight_sqnr_db);
        assert!(e4.output_rel_err < e2.output_rel_err);
    }

    #[test]
    fn smaller_groups_are_at_least_as_good() {
        let (w, a) = setup();
        let e64 = evaluate_rtn(&w, &a, WeightPrecision::Int4, GroupShape::along_k(64)).unwrap();
        let e256 = evaluate_rtn(&w, &a, WeightPrecision::Int4, GroupShape::along_k(256)).unwrap();
        assert!(e64.weight_mse <= e256.weight_mse * 1.05);
    }

    #[test]
    fn table2_equivalence_equal_volume_groups() {
        // The heart of Table II: g128 ≈ g[32,4] and g256 ≈ g[64,4].
        let (w, a) = setup();
        for (g1, g2) in [
            (GroupShape::G128, GroupShape::G32X4),
            (GroupShape::G256, GroupShape::G64X4),
        ] {
            let e1 = evaluate_rtn(&w, &a, WeightPrecision::Int4, g1).unwrap();
            let e2 = evaluate_rtn(&w, &a, WeightPrecision::Int4, g2).unwrap();
            let ratio = e1.weight_mse / e2.weight_mse;
            assert!(
                (0.7..1.4).contains(&ratio),
                "{g1} vs {g2}: MSE ratio {ratio}"
            );
            assert!(
                (e1.output_rel_err - e2.output_rel_err).abs() < 0.3 * e1.output_rel_err.max(1e-9),
                "{g1} vs {g2}: output err {} vs {}",
                e1.output_rel_err,
                e2.output_rel_err
            );
        }
    }

    #[test]
    fn metrics_are_finite_and_positive() {
        let (w, a) = setup();
        let e = evaluate_rtn(&w, &a, WeightPrecision::Int4, GroupShape::G128).unwrap();
        assert!(e.weight_mse > 0.0 && e.weight_mse.is_finite());
        assert!(e.weight_sqnr_db.is_finite());
        assert!(e.output_rel_err > 0.0 && e.output_rel_err < 1.0);
    }
}
