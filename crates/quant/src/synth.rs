//! Synthetic LLM-like data generation.
//!
//! The paper evaluates Table II on Llama2-7B weights with WikiText-2/C4
//! perplexity; neither the weights nor the datasets are available here, so
//! this module generates weight matrices and activations whose statistics
//! match what the quantization literature reports for transformer layers:
//!
//! * weights: near-Gaussian, centered, with per-output-channel scale
//!   variation and a small fraction of heavy-tailed outliers;
//! * activations: Gaussian bulk with rare large-magnitude outliers
//!   (the phenomenon that motivates weight-only quantization in the first
//!   place — §I of the paper).
//!
//! All generators are deterministic given a seed.

use crate::matrix::MatrixF32;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Statistics knobs for synthetic transformer weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightStats {
    /// Base standard deviation of the Gaussian bulk.
    pub sigma: f64,
    /// Relative spread of per-output-channel scales (log-normal-ish).
    pub channel_spread: f64,
    /// Fraction of heavy-tailed outlier weights.
    pub outlier_fraction: f64,
    /// Outlier magnitude multiplier.
    pub outlier_scale: f64,
}

impl Default for WeightStats {
    fn default() -> Self {
        // σ ≈ 0.02 matches initialization-scale transformer FFN weights.
        WeightStats {
            sigma: 0.02,
            channel_spread: 0.3,
            outlier_fraction: 0.001,
            outlier_scale: 8.0,
        }
    }
}

/// Deterministic synthetic data generator.
///
/// # Examples
///
/// ```
/// use pacq_quant::synth::SynthGenerator;
///
/// let mut g = SynthGenerator::new(42);
/// let w = g.llm_weights(128, 64);
/// assert_eq!((w.rows(), w.cols()), (128, 64));
/// // Deterministic: same seed, same data.
/// let w2 = SynthGenerator::new(42).llm_weights(128, 64);
/// assert_eq!(w.as_slice(), w2.as_slice());
/// ```
#[derive(Debug)]
pub struct SynthGenerator {
    rng: StdRng,
    stats: WeightStats,
}

impl SynthGenerator {
    /// Creates a generator with default transformer statistics.
    pub fn new(seed: u64) -> Self {
        SynthGenerator {
            rng: StdRng::seed_from_u64(seed),
            stats: WeightStats::default(),
        }
    }

    /// Creates a generator with custom weight statistics.
    pub fn with_stats(seed: u64, stats: WeightStats) -> Self {
        SynthGenerator {
            rng: StdRng::seed_from_u64(seed),
            stats,
        }
    }

    /// Standard normal via Box–Muller.
    fn normal(&mut self) -> f64 {
        let u1: f64 = self.rng.random_range(1e-12..1.0);
        let u2: f64 = self.rng.random_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
    }

    /// A `[k, n]` transformer-like weight matrix.
    pub fn llm_weights(&mut self, k: usize, n: usize) -> MatrixF32 {
        let stats = self.stats;
        // Per-output-channel scale variation.
        let channel_scale: Vec<f64> = (0..n)
            .map(|_| (self.normal() * stats.channel_spread).exp())
            .collect();
        let mut data = Vec::with_capacity(k * n);
        for _ in 0..k {
            for scale in channel_scale.iter().take(n) {
                let mut v = self.normal() * stats.sigma * scale;
                if self.rng.random_range(0.0..1.0) < stats.outlier_fraction {
                    v *= stats.outlier_scale;
                }
                data.push(v as f32);
            }
        }
        MatrixF32::from_vec(k, n, data)
    }

    /// A `[m, k]` activation matrix with rare salient outliers (the LLM
    /// activation phenomenon of §I). Magnitudes sit in the range where the
    /// PacQ biased datapath stays within FP16 (see pacq-fp16's
    /// EXPERIMENTS notes).
    pub fn llm_activations(&mut self, m: usize, k: usize) -> MatrixF32 {
        let mut data = Vec::with_capacity(m * k);
        for _ in 0..m * k {
            let mut v = self.normal() * 0.5;
            if self.rng.random_range(0.0..1.0) < 0.002 {
                v *= 12.0; // salient channel outlier
            }
            data.push(v as f32);
        }
        MatrixF32::from_vec(m, k, data)
    }

    /// A uniform random matrix in `[-bound, bound]`.
    pub fn uniform(&mut self, rows: usize, cols: usize, bound: f32) -> MatrixF32 {
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(self.rng.random_range(-bound..bound));
        }
        MatrixF32::from_vec(rows, cols, data)
    }

    /// A random token sequence in `[0, vocab)`.
    pub fn tokens(&mut self, len: usize, vocab: usize) -> Vec<usize> {
        (0..len).map(|_| self.rng.random_range(0..vocab)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_centered_and_small() {
        let w = SynthGenerator::new(7).llm_weights(256, 128);
        let mean: f64 =
            w.as_slice().iter().map(|&v| v as f64).sum::<f64>() / w.as_slice().len() as f64;
        let std: f64 = (w
            .as_slice()
            .iter()
            .map(|&v| (v as f64 - mean).powi(2))
            .sum::<f64>()
            / w.as_slice().len() as f64)
            .sqrt();
        assert!(mean.abs() < 0.005, "mean = {mean}");
        assert!((0.005..0.2).contains(&std), "std = {std}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = SynthGenerator::new(1).llm_weights(16, 16);
        let b = SynthGenerator::new(2).llm_weights(16, 16);
        assert_ne!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn activations_have_outliers() {
        let a = SynthGenerator::new(3).llm_activations(64, 1024);
        let max = a.as_slice().iter().fold(0f32, |m, &v| m.max(v.abs()));
        assert!(max > 2.0, "expected salient outliers, max = {max}");
        assert!(max < 60.0, "activations must stay in the biased-FP16 range");
    }

    #[test]
    fn uniform_respects_bound() {
        let u = SynthGenerator::new(4).uniform(32, 32, 0.5);
        assert!(u.as_slice().iter().all(|&v| v.abs() <= 0.5));
    }

    #[test]
    fn tokens_in_vocab() {
        let t = SynthGenerator::new(5).tokens(1000, 256);
        assert!(t.iter().all(|&x| x < 256));
        assert_eq!(t.len(), 1000);
    }
}
