//! Matrix-level weight packing: the paper's `P(B_x)_y` formats.
//!
//! `P(B_4)_k` packs 4 INT4 codes per 16-bit word along the input-feature
//! dimension (what AutoGPTQ/llmc-style frameworks do today);
//! `P(B_4)_n` packs along the output-feature dimension — PacQ's proposal
//! (§III). The packed words store *biased* codes ([`PackedWord`]), i.e.
//! the `B + 8` transformation is applied at pack time so the tensor core
//! never sees a sign bit.

use crate::groups::GroupShape;
use crate::rtn::QuantizedMatrix;
use core::fmt;
use pacq_error::{PacqError, PacqResult};
use pacq_fp16::{PackedWord, WeightPrecision};

/// The dimension along which weights are packed (the `y` of `P(B_x)_y`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PackDim {
    /// Pack along the input-feature dimension (conventional frameworks).
    K,
    /// Pack along the output-feature dimension (PacQ).
    N,
}

impl fmt::Display for PackDim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackDim::K => f.write_str("k"),
            PackDim::N => f.write_str("n"),
        }
    }
}

/// A quantized weight matrix in packed deployable form: packed biased
/// codes plus the group scales needed for dequantization.
///
/// # Examples
///
/// ```
/// use pacq_quant::{GroupShape, MatrixF32, PackDim, PackedMatrix, RtnQuantizer};
/// use pacq_fp16::WeightPrecision;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let w = MatrixF32::from_fn(64, 16, |k, n| (k as f32 - n as f32) / 64.0);
/// let q = RtnQuantizer::new(WeightPrecision::Int4, GroupShape::along_k(32)).quantize(&w)?;
/// let packed = PackedMatrix::pack(&q, PackDim::N)?;
/// assert_eq!(packed.word_cols(), 4); // 16 columns / 4 lanes
/// assert_eq!(packed.unpack().codes(), q.codes());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PackedMatrix {
    precision: WeightPrecision,
    pack_dim: PackDim,
    group: GroupShape,
    k: usize,
    n: usize,
    word_rows: usize,
    word_cols: usize,
    words: Vec<PackedWord>,
    scales: Vec<f32>,
    zero_points: Vec<u8>,
}

impl PackedMatrix {
    /// Packs a quantized matrix along `pack_dim`.
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::Misaligned`] when the extent along `pack_dim`
    /// is not a multiple of the lane count (4 for INT4, 8 for INT2).
    pub fn pack(q: &QuantizedMatrix, pack_dim: PackDim) -> PacqResult<Self> {
        let precision = q.precision();
        let lanes = precision.lanes();
        let (k, n) = (q.k(), q.n());

        let (word_rows, word_cols) = match pack_dim {
            PackDim::K => {
                if k % lanes != 0 {
                    return Err(PacqError::Misaligned {
                        context: "PackedMatrix::pack (k-dimension)",
                        extent: k,
                        multiple: lanes,
                    });
                }
                (k / lanes, n)
            }
            PackDim::N => {
                if n % lanes != 0 {
                    return Err(PacqError::Misaligned {
                        context: "PackedMatrix::pack (n-dimension)",
                        extent: n,
                        multiple: lanes,
                    });
                }
                (k, n / lanes)
            }
        };

        let mut words = Vec::with_capacity(word_rows * word_cols);
        for wr in 0..word_rows {
            for wc in 0..word_cols {
                let mut bits = 0u16;
                for lane in 0..lanes {
                    let (kk, nn) = match pack_dim {
                        PackDim::K => (wr * lanes + lane, wc),
                        PackDim::N => (wr, wc * lanes + lane),
                    };
                    let code = (q.code(kk, nn) as i32 + precision.bias()) as u16;
                    bits |= code << (precision.bits() as usize * lane);
                }
                words.push(PackedWord::from_bits(bits));
            }
        }

        Ok(PackedMatrix {
            precision,
            pack_dim,
            group: q.group(),
            k,
            n,
            word_rows,
            word_cols,
            words,
            scales: q.scales().to_vec(),
            zero_points: q.zero_points().to_vec(),
        })
    }

    /// The weight precision.
    pub fn precision(&self) -> WeightPrecision {
        self.precision
    }

    /// The packing dimension.
    pub fn pack_dim(&self) -> PackDim {
        self.pack_dim
    }

    /// The quantization group geometry the scales follow.
    pub fn group(&self) -> GroupShape {
        self.group
    }

    /// Logical input-feature extent (k).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Logical output-feature extent (n).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Rows of the packed word grid.
    pub fn word_rows(&self) -> usize {
        self.word_rows
    }

    /// Columns of the packed word grid.
    pub fn word_cols(&self) -> usize {
        self.word_cols
    }

    /// Total packed 16-bit words.
    pub fn total_words(&self) -> usize {
        self.words.len()
    }

    /// The packed word at grid position `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn word(&self, row: usize, col: usize) -> PackedWord {
        assert!(
            row < self.word_rows && col < self.word_cols,
            "word ({row},{col}) out of bounds"
        );
        self.words[row * self.word_cols + col]
    }

    /// The signed code of logical weight `(k, n)` read out of its word.
    pub fn code(&self, k: usize, n: usize) -> i8 {
        let lanes = self.precision.lanes();
        let (row, col, lane) = match self.pack_dim {
            PackDim::K => (k / lanes, n, k % lanes),
            PackDim::N => (k, n / lanes, n % lanes),
        };
        self.word(row, col).signed_lane(self.precision, lane)
    }

    /// The scale applying to logical weight `(k, n)`.
    pub fn scale(&self, k: usize, n: usize) -> f32 {
        self.scales[self.group.group_of(k, n, self.n)]
    }

    /// All group scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The zero point (unsigned code) applying to logical weight `(k, n)`.
    pub fn zero_point(&self, k: usize, n: usize) -> u8 {
        self.zero_points[self.group.group_of(k, n, self.n)]
    }

    /// All group zero points.
    pub fn zero_points(&self) -> &[u8] {
        &self.zero_points
    }

    /// Unpacks back into a [`QuantizedMatrix`] (exact round-trip).
    pub fn unpack(&self) -> QuantizedMatrix {
        let mut codes = vec![0i8; self.k * self.n];
        for k in 0..self.k {
            for n in 0..self.n {
                codes[k * self.n + n] = self.code(k, n);
            }
        }
        // Codes read back through lane masks are in range by construction,
        // and the scale/zero-point vectors were validated at pack time.
        QuantizedMatrix::from_parts_trusted(
            self.precision,
            self.group,
            self.k,
            self.n,
            codes,
            self.scales.clone(),
            self.zero_points.clone(),
        )
    }

    /// Packed-weight storage in bits (the memory-traffic win of Figure 1).
    pub fn storage_bits(&self) -> u64 {
        self.words.len() as u64 * 16 + self.scales.len() as u64 * 16
    }
}

impl fmt::Display for PackedMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "P(B_{})_{} {}x{} ({} words)",
            self.precision.lanes(),
            self.pack_dim,
            self.k,
            self.n,
            self.words.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::MatrixF32;
    use crate::rtn::RtnQuantizer;

    fn quantized(k: usize, n: usize, precision: WeightPrecision) -> QuantizedMatrix {
        let w = MatrixF32::from_fn(k, n, |r, c| ((r * 13 + c * 7) % 29) as f32 / 14.0 - 1.0);
        RtnQuantizer::new(precision, GroupShape::along_k(k.min(32)))
            .quantize(&w)
            .unwrap()
    }

    #[test]
    fn pack_along_n_roundtrips() {
        for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
            let q = quantized(32, 16, precision);
            let p = PackedMatrix::pack(&q, PackDim::N).expect("packs");
            assert_eq!(p.unpack().codes(), q.codes());
            assert_eq!(p.word_rows(), 32);
            assert_eq!(p.word_cols(), 16 / precision.lanes());
        }
    }

    #[test]
    fn pack_along_k_roundtrips() {
        for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
            let q = quantized(32, 16, precision);
            let p = PackedMatrix::pack(&q, PackDim::K).expect("packs");
            assert_eq!(p.unpack().codes(), q.codes());
            assert_eq!(p.word_rows(), 32 / precision.lanes());
            assert_eq!(p.word_cols(), 16);
        }
    }

    #[test]
    fn per_element_access_matches_unpacked() {
        let q = quantized(16, 8, WeightPrecision::Int4);
        for dim in [PackDim::K, PackDim::N] {
            let p = PackedMatrix::pack(&q, dim).expect("packs");
            for k in 0..16 {
                for n in 0..8 {
                    assert_eq!(p.code(k, n), q.code(k, n), "({k},{n}) via {dim}");
                    assert_eq!(p.scale(k, n), q.scale(k, n));
                }
            }
        }
    }

    #[test]
    fn misaligned_extent_is_rejected() {
        let q = quantized(30, 8, WeightPrecision::Int4); // k=30 not /4
        let err = PackedMatrix::pack(&q, PackDim::K).unwrap_err();
        assert!(err.to_string().contains("not a multiple"));
        // N is fine (8 % 4 == 0).
        assert!(PackedMatrix::pack(&q, PackDim::N).is_ok());
    }

    #[test]
    fn storage_is_quarter_of_fp16_for_int4() {
        let q = quantized(128, 64, WeightPrecision::Int4);
        let p = PackedMatrix::pack(&q, PackDim::N).expect("packs");
        let fp16_bits = 128 * 64 * 16;
        let ratio = p.storage_bits() as f64 / fp16_bits as f64;
        // 4x code compression + scale overhead (g32 here: 1 scale per 32).
        assert!(ratio < 0.30, "storage ratio = {ratio}");
    }
}
