//! Binary serialization of packed-weight artifacts.
//!
//! A deployable PacQ model ships quantized, packed weights per layer;
//! this module defines a compact little-endian container for one
//! [`PackedMatrix`] so artifacts survive a round trip to disk or over a
//! wire without any external serialization dependency.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic   b"PACQ"        4 B
//! version u8 = 1         1 B
//! prec    u8             1 B  (4 = INT4, 2 = INT2)
//! dim     u8             1 B  (0 = k-packed, 1 = n-packed)
//! pad     u8             1 B
//! g_k     u32            4 B  quantization group k-extent
//! g_n     u32            4 B  quantization group n-extent
//! k, n    u32 × 2        8 B  logical matrix shape
//! words   u16 × (k·n/x)       packed biased codes
//! scales  f32 × groups        group scales
//! zps     u8  × groups        group zero points
//! ```

use crate::groups::GroupShape;
use crate::pack::{PackDim, PackedMatrix};
use crate::rtn::QuantizedMatrix;
use pacq_error::{ArtifactError, PacqResult};
use pacq_fp16::WeightPrecision;

const MAGIC: &[u8; 4] = b"PACQ";
const VERSION: u8 = 1;

/// Serializes a packed matrix into the `PACQ` container.
pub fn to_bytes(packed: &PackedMatrix) -> Vec<u8> {
    let words = packed.word_rows() * packed.word_cols();
    let mut out = Vec::with_capacity(28 + words * 2 + packed.scales().len() * 5);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.push(packed.precision().bits() as u8);
    out.push(match packed.pack_dim() {
        PackDim::K => 0,
        PackDim::N => 1,
    });
    out.push(0); // pad
    out.extend_from_slice(&(packed.group().k_size as u32).to_le_bytes());
    out.extend_from_slice(&(packed.group().n_size as u32).to_le_bytes());
    out.extend_from_slice(&(packed.k() as u32).to_le_bytes());
    out.extend_from_slice(&(packed.n() as u32).to_le_bytes());
    for r in 0..packed.word_rows() {
        for c in 0..packed.word_cols() {
            out.extend_from_slice(&packed.word(r, c).to_bits().to_le_bytes());
        }
    }
    for &s in packed.scales() {
        out.extend_from_slice(&s.to_le_bytes());
    }
    out.extend_from_slice(packed.zero_points());
    out
}

/// Decodes a `PACQ` container back into a packed matrix.
///
/// # Errors
///
/// Returns [`PacqError::Artifact`](pacq_error::PacqError::Artifact) on
/// any malformed input; decoding never panics on untrusted bytes.
pub fn from_bytes(bytes: &[u8]) -> PacqResult<PackedMatrix> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(ArtifactError::BadMagic.into());
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(ArtifactError::BadVersion(version).into());
    }
    let precision = match r.u8()? {
        4 => WeightPrecision::Int4,
        2 => WeightPrecision::Int2,
        _ => return Err(ArtifactError::BadField("precision").into()),
    };
    let dim = match r.u8()? {
        0 => PackDim::K,
        1 => PackDim::N,
        _ => return Err(ArtifactError::BadField("pack_dim").into()),
    };
    let _pad = r.u8()?;
    let g_k = r.u32()? as usize;
    let g_n = r.u32()? as usize;
    if g_k == 0 || g_n == 0 {
        return Err(ArtifactError::BadField("group").into());
    }
    let group = GroupShape::try_new(g_k, g_n)?;
    let k = r.u32()? as usize;
    let n = r.u32()? as usize;
    let lanes = precision.lanes();
    if k == 0 || n == 0 || k.checked_mul(n).is_none_or(|e| e > 1 << 30) {
        return Err(ArtifactError::BadField("shape").into());
    }
    let along = match dim {
        PackDim::K => k,
        PackDim::N => n,
    };
    if along % lanes != 0 {
        return Err(ArtifactError::BadField("shape/lane alignment").into());
    }

    // Rebuild codes by unpacking words, then reconstruct through the
    // public quantized-matrix path (which re-validates code ranges).
    let word_count = k * n / lanes;
    let mut codes = vec![0i8; k * n];
    let bits = precision.bits() as usize;
    for w in 0..word_count {
        let raw = r.u16()?;
        for lane in 0..lanes {
            let code = ((raw >> (bits * lane)) as i32 & ((1 << bits) - 1)) - precision.bias();
            // Word w covers either k-run or n-run lanes.
            let (kk, nn) = match dim {
                PackDim::K => ((w / n) * lanes + lane, w % n),
                PackDim::N => (w / (n / lanes), (w % (n / lanes)) * lanes + lane),
            };
            codes[kk * n + nn] = code as i8;
        }
    }
    let groups = group.group_count(k, n);
    let mut scales = Vec::with_capacity(groups);
    for _ in 0..groups {
        let s = r.f32()?;
        if !s.is_finite() || s <= 0.0 {
            return Err(ArtifactError::BadField("scale").into());
        }
        scales.push(s);
    }
    let max_zp = (1u32 << precision.bits()) - 1;
    let mut zero_points = Vec::with_capacity(groups);
    for _ in 0..groups {
        let z = r.u8()?;
        if z as u32 > max_zp {
            return Err(ArtifactError::BadField("zero point").into());
        }
        zero_points.push(z);
    }

    let q = QuantizedMatrix::from_parts(precision, group, k, n, codes, scales, zero_points)?;
    // Alignment was validated above, so packing cannot fail; propagate
    // rather than unwrap to keep the no-panic contract airtight.
    PackedMatrix::pack(&q, dim)
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], ArtifactError> {
        let end = self.pos.checked_add(len).ok_or(ArtifactError::Truncated)?;
        if end > self.bytes.len() {
            return Err(ArtifactError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ArtifactError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ArtifactError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ArtifactError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn f32(&mut self) -> Result<f32, ArtifactError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtn::RtnQuantizer;
    use crate::synth::SynthGenerator;

    use pacq_error::PacqError;

    fn sample(precision: WeightPrecision, dim: PackDim) -> PackedMatrix {
        let w = SynthGenerator::new(55).llm_weights(64, 32);
        let q = RtnQuantizer::asymmetric(precision, GroupShape::new(32, 4))
            .quantize(&w)
            .expect("quantizes");
        PackedMatrix::pack(&q, dim).expect("aligned")
    }

    #[test]
    fn roundtrip_all_configurations() {
        for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
            for dim in [PackDim::K, PackDim::N] {
                let p = sample(precision, dim);
                let bytes = to_bytes(&p);
                let back = from_bytes(&bytes).expect("decodes");
                assert_eq!(back, p, "{precision} {dim}");
            }
        }
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let p = sample(WeightPrecision::Int4, PackDim::N);
        let mut bytes = to_bytes(&p);
        bytes[0] = b'X';
        assert_eq!(
            from_bytes(&bytes),
            Err(PacqError::Artifact(ArtifactError::BadMagic))
        );
        let mut bytes = to_bytes(&p);
        bytes[4] = 9;
        assert_eq!(
            from_bytes(&bytes),
            Err(PacqError::Artifact(ArtifactError::BadVersion(9)))
        );
    }

    #[test]
    fn truncation_is_detected_everywhere() {
        let p = sample(WeightPrecision::Int4, PackDim::N);
        let bytes = to_bytes(&p);
        for len in 0..bytes.len() {
            let r = from_bytes(&bytes[..len]);
            assert!(r.is_err(), "decoded a {len}-byte prefix");
        }
        assert!(from_bytes(&bytes).is_ok());
    }

    #[test]
    fn corrupted_scale_rejected() {
        let p = sample(WeightPrecision::Int4, PackDim::N);
        let mut bytes = to_bytes(&p);
        // First scale starts after header + words.
        let scale_off = 24 + p.total_words() * 2;
        bytes[scale_off..scale_off + 4].copy_from_slice(&f32::NAN.to_le_bytes());
        assert_eq!(
            from_bytes(&bytes),
            Err(PacqError::Artifact(ArtifactError::BadField("scale")))
        );
    }

    #[test]
    fn decoder_never_panics_on_noise() {
        let mut x: u64 = 0xDEAD;
        for len in [0usize, 3, 7, 24, 64, 257] {
            let mut buf = vec![0u8; len];
            for b in &mut buf {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                *b = (x >> 32) as u8;
            }
            let _ = from_bytes(&buf); // must not panic
                                      // And with a valid-looking prefix.
            if len >= 5 {
                buf[..4].copy_from_slice(b"PACQ");
                buf[4] = 1;
                let _ = from_bytes(&buf);
            }
        }
    }
}
