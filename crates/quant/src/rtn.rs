//! Round-to-nearest (RTN) weight-only post-training quantization.
//!
//! This is the quantization algorithm of Table II: RTN over
//! [`GroupShape`] groups, producing signed INT4/INT2 codes plus one FP
//! scale (and, in asymmetric mode, a zero point) per group. PacQ changes
//! **nothing** about the algorithm itself — only the group geometry
//! (`g128` → `g[32,4]`) is adapted, which is exactly what Table II
//! evaluates.
//!
//! Both [`QuantScheme`]s map onto the same PacQ hardware: the stored
//! code is always the *biased* unsigned code the parallel FP-INT
//! multiplier consumes, and the dequantization identity is
//! `w = s · (q − z)` with `z = bias` (8 / 2) in the symmetric case. The
//! `Σ A` accumulators of Eq. (1) absorb any `z` at zero extra hardware:
//! `Σ A·w = s · (Σ A·(q+1024) − 1024·Σ A − z·Σ A)`.

use crate::groups::GroupShape;
use crate::matrix::MatrixF32;
use core::fmt;
use pacq_error::{PacqError, PacqResult};
use pacq_fp16::WeightPrecision;
use rayon::prelude::*;

/// Scale/zero-point scheme of the RTN quantizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QuantScheme {
    /// `s = max|w| / q_max`, implicit zero point at the precision bias —
    /// what the paper evaluates.
    #[default]
    Symmetric,
    /// `s = (max − min) / (2^b − 1)` with a per-group zero point; better
    /// for skewed weight groups, and free on PacQ hardware (the Σ A
    /// accumulator absorbs the zero point exactly like the +1024 offset).
    Asymmetric,
}

/// An RTN group quantizer.
///
/// # Examples
///
/// ```
/// use pacq_quant::{GroupShape, MatrixF32, RtnQuantizer};
/// use pacq_fp16::WeightPrecision;
///
/// let w = MatrixF32::from_fn(128, 8, |k, n| ((k * 7 + n) % 13) as f32 / 13.0 - 0.5);
/// let q = RtnQuantizer::new(WeightPrecision::Int4, GroupShape::G128).quantize(&w).unwrap();
/// let deq = q.dequantize();
/// assert!(w.mse(&deq) < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtnQuantizer {
    precision: WeightPrecision,
    group: GroupShape,
    scheme: QuantScheme,
}

impl RtnQuantizer {
    /// Creates a symmetric quantizer (the paper's configuration).
    pub fn new(precision: WeightPrecision, group: GroupShape) -> Self {
        RtnQuantizer {
            precision,
            group,
            scheme: QuantScheme::Symmetric,
        }
    }

    /// Creates an asymmetric (zero-point) quantizer.
    pub fn asymmetric(precision: WeightPrecision, group: GroupShape) -> Self {
        RtnQuantizer {
            precision,
            group,
            scheme: QuantScheme::Asymmetric,
        }
    }

    /// The target weight precision.
    pub fn precision(&self) -> WeightPrecision {
        self.precision
    }

    /// The group geometry.
    pub fn group(&self) -> GroupShape {
        self.group
    }

    /// The scale/zero-point scheme.
    pub fn scheme(&self) -> QuantScheme {
        self.scheme
    }

    /// Quantizes a `[k, n]` weight matrix.
    ///
    /// Symmetric: scale per group is `max|w| / q_max`, zero point at the
    /// precision bias. Asymmetric: scale is `(max − min) / (2^b − 1)`
    /// with a per-group zero point. Codes are round-to-nearest, clamped.
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::ZeroDim`] for an empty weight matrix and
    /// [`PacqError::NonFinite`] when any weight is NaN or infinite (a
    /// NaN weight would otherwise poison the group range silently).
    pub fn quantize(&self, weights: &MatrixF32) -> PacqResult<QuantizedMatrix> {
        let _span = pacq_trace::span("quant.rtn");
        pacq_trace::add_counter("quant.rtn.calls", 1);
        let (k_total, n_total) = (weights.rows(), weights.cols());
        if k_total == 0 || n_total == 0 {
            return Err(PacqError::ZeroDim {
                context: "RtnQuantizer::quantize",
            });
        }
        if !weights.as_slice().iter().all(|v| v.is_finite()) {
            return Err(PacqError::NonFinite {
                context: "RtnQuantizer::quantize",
            });
        }
        let group_count = self.group.group_count(k_total, n_total);
        let q_pos = self.precision.max_value() as f32;
        let q_min = self.precision.min_value() as f32;
        let bias = self.precision.bias();
        let levels = (1i32 << self.precision.bits()) - 1; // 2^b − 1

        // Pass 1: per-group range. Row bands compute partial ranges in
        // parallel; min/max merging is exact, so the merged range is
        // identical at any thread count.
        let band = k_total.div_ceil(rayon::current_num_threads().max(1)).max(1);
        let bands: Vec<(usize, usize)> = (0..k_total)
            .step_by(band)
            .map(|s| (s, (s + band).min(k_total)))
            .collect();
        let partials: Vec<(Vec<f32>, Vec<f32>)> = bands
            .into_par_iter()
            .map(|(start, end)| {
                let mut lo = vec![f32::INFINITY; group_count];
                let mut hi = vec![f32::NEG_INFINITY; group_count];
                for k in start..end {
                    for n in 0..n_total {
                        let g = self.group.group_of(k, n, n_total);
                        let w = weights.get(k, n);
                        lo[g] = lo[g].min(w);
                        hi[g] = hi[g].max(w);
                    }
                }
                (lo, hi)
            })
            .collect();
        let mut lo = vec![f32::INFINITY; group_count];
        let mut hi = vec![f32::NEG_INFINITY; group_count];
        for (plo, phi) in &partials {
            for g in 0..group_count {
                lo[g] = lo[g].min(plo[g]);
                hi[g] = hi[g].max(phi[g]);
            }
        }
        let (scales, zero_points): (Vec<f32>, Vec<u8>) = match self.scheme {
            QuantScheme::Symmetric => lo
                .iter()
                .zip(&hi)
                .map(|(&l, &h)| {
                    let m = l.abs().max(h.abs());
                    (if m > 0.0 { m / q_pos } else { 1.0 }, bias as u8)
                })
                .unzip(),
            QuantScheme::Asymmetric => lo
                .iter()
                .zip(&hi)
                .map(|(&l, &h)| {
                    // Extend the range to include zero so the zero point
                    // stays inside the unsigned code range (the standard
                    // INT4 affine convention).
                    let l = l.min(0.0);
                    let h = h.max(0.0);
                    let range = h - l;
                    if range > 0.0 {
                        let s = range / levels as f32;
                        let z = (-l / s).round().clamp(0.0, levels as f32) as u8;
                        (s, z)
                    } else {
                        (1.0, bias as u8)
                    }
                })
                .unzip(),
        };

        // Pass 2: round-to-nearest codes (stored signed; the hardware
        // consumes `signed + bias` as the unsigned biased code). Every
        // code depends only on its own weight, so rows fan out freely.
        let mut codes = vec![0i8; k_total * n_total];
        if n_total > 0 {
            codes
                .par_chunks_mut(n_total)
                .enumerate()
                .for_each(|(k, row)| {
                    for (n, c) in row.iter_mut().enumerate() {
                        let g = self.group.group_of(k, n, n_total);
                        let q = (weights.get(k, n) / scales[g]).round()
                            + (zero_points[g] as i32 - bias) as f32;
                        *c = q.clamp(q_min, q_pos) as i8;
                    }
                });
        }

        Ok(QuantizedMatrix {
            precision: self.precision,
            group: self.group,
            k: k_total,
            n: n_total,
            codes,
            scales,
            zero_points,
        })
    }
}

/// A weight matrix quantized to signed low-precision codes with per-group
/// scales.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    precision: WeightPrecision,
    group: GroupShape,
    k: usize,
    n: usize,
    codes: Vec<i8>,
    scales: Vec<f32>,
    /// Per-group zero points as unsigned codes; the precision bias for
    /// symmetric quantization.
    zero_points: Vec<u8>,
}

impl QuantizedMatrix {
    /// Reassembles a quantized matrix from raw parts (the inverse of
    /// packing; see `pacq_quant::PackedMatrix::unpack`).
    ///
    /// # Errors
    ///
    /// Returns a typed error if `codes.len() != k * n`, if `scales` or
    /// `zero_points` do not match the group count, or if any code is out
    /// of range for `precision`.
    pub fn from_parts(
        precision: WeightPrecision,
        group: GroupShape,
        k: usize,
        n: usize,
        codes: Vec<i8>,
        scales: Vec<f32>,
        zero_points: Vec<u8>,
    ) -> PacqResult<Self> {
        if codes.len() != k * n {
            return Err(PacqError::ShapeMismatch {
                context: "QuantizedMatrix::from_parts (codes length)",
                left: codes.len(),
                right: k * n,
            });
        }
        if scales.len() != group.group_count(k, n) {
            return Err(PacqError::ShapeMismatch {
                context: "QuantizedMatrix::from_parts (scales length)",
                left: scales.len(),
                right: group.group_count(k, n),
            });
        }
        if zero_points.len() != scales.len() {
            return Err(PacqError::ShapeMismatch {
                context: "QuantizedMatrix::from_parts (zero points length)",
                left: zero_points.len(),
                right: scales.len(),
            });
        }
        if !codes
            .iter()
            .all(|&c| c >= precision.min_value() && c <= precision.max_value())
        {
            return Err(PacqError::invalid_input(
                "QuantizedMatrix::from_parts",
                format!("code out of range for {precision}"),
            ));
        }
        Ok(QuantizedMatrix {
            precision,
            group,
            k,
            n,
            codes,
            scales,
            zero_points,
        })
    }

    /// Crate-internal infallible constructor for parts produced by code
    /// that upholds the invariants by construction (e.g. unpacking a
    /// [`crate::PackedMatrix`], whose lane masks guarantee code ranges).
    pub(crate) fn from_parts_trusted(
        precision: WeightPrecision,
        group: GroupShape,
        k: usize,
        n: usize,
        codes: Vec<i8>,
        scales: Vec<f32>,
        zero_points: Vec<u8>,
    ) -> Self {
        debug_assert_eq!(codes.len(), k * n);
        debug_assert_eq!(scales.len(), group.group_count(k, n));
        debug_assert_eq!(zero_points.len(), scales.len());
        QuantizedMatrix {
            precision,
            group,
            k,
            n,
            codes,
            scales,
            zero_points,
        }
    }

    /// The weight precision.
    pub fn precision(&self) -> WeightPrecision {
        self.precision
    }

    /// The group geometry used at quantization time.
    pub fn group(&self) -> GroupShape {
        self.group
    }

    /// Input-feature extent (k).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output-feature extent (n).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The signed code of weight `(k, n)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn code(&self, k: usize, n: usize) -> i8 {
        assert!(k < self.k && n < self.n, "index ({k},{n}) out of bounds");
        self.codes[k * self.n + n]
    }

    /// The scale applying to weight `(k, n)`.
    #[inline]
    pub fn scale(&self, k: usize, n: usize) -> f32 {
        self.scales[self.group.group_of(k, n, self.n)]
    }

    /// All group scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The zero point (unsigned code) applying to weight `(k, n)`.
    #[inline]
    pub fn zero_point(&self, k: usize, n: usize) -> u8 {
        self.zero_points[self.group.group_of(k, n, self.n)]
    }

    /// All group zero points (= the precision bias when symmetric).
    pub fn zero_points(&self) -> &[u8] {
        &self.zero_points
    }

    /// All signed codes, row-major `[k, n]`.
    pub fn codes(&self) -> &[i8] {
        &self.codes
    }

    /// The dequantized weight matrix `s · (q − z)` where
    /// `q = code + bias` is the unsigned biased code (for symmetric
    /// quantization `z = bias`, so this is `code × scale`).
    pub fn dequantize(&self) -> MatrixF32 {
        let bias = self.precision.bias();
        MatrixF32::from_fn(self.k, self.n, |k, n| {
            let q = self.code(k, n) as i32 + bias;
            (q - self.zero_point(k, n) as i32) as f32 * self.scale(k, n)
        })
    }

    /// Storage footprint of the packed codes in bits (without scales).
    pub fn code_bits(&self) -> u64 {
        self.codes.len() as u64 * self.precision.bits() as u64
    }

    /// Storage footprint of the scales in bits (FP16 scales).
    pub fn scale_bits(&self) -> u64 {
        self.scales.len() as u64 * 16
    }
}

impl fmt::Display for QuantizedMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "QuantizedMatrix {}x{} {} {} ({} groups)",
            self.k,
            self.n,
            self.precision,
            self.group,
            self.scales.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(k: usize, n: usize) -> MatrixF32 {
        MatrixF32::from_fn(k, n, |r, c| ((r * 31 + c * 17) % 101) as f32 / 50.0 - 1.0)
    }

    #[test]
    fn codes_stay_in_range() {
        for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
            let q = RtnQuantizer::new(precision, GroupShape::along_k(32))
                .quantize(&ramp(64, 8))
                .unwrap();
            for &c in q.codes() {
                assert!(c >= precision.min_value() && c <= precision.max_value());
            }
        }
    }

    #[test]
    fn dequantized_error_is_bounded_by_half_scale() {
        let w = ramp(128, 16);
        let q = RtnQuantizer::new(WeightPrecision::Int4, GroupShape::G128)
            .quantize(&w)
            .unwrap();
        let deq = q.dequantize();
        for k in 0..w.rows() {
            for n in 0..w.cols() {
                let err = (w.get(k, n) - deq.get(k, n)).abs();
                let bound = 0.5 * q.scale(k, n) + 1e-6;
                assert!(err <= bound, "({k},{n}): err {err} > {bound}");
            }
        }
    }

    #[test]
    fn exact_grid_weights_quantize_losslessly() {
        // Weights already on the INT4 grid survive RTN exactly.
        let w = MatrixF32::from_fn(32, 4, |k, n| ((k + n) % 15) as f32 - 7.0);
        let q = RtnQuantizer::new(WeightPrecision::Int4, GroupShape::along_k(32))
            .quantize(&w)
            .unwrap();
        assert!(w.mse(&q.dequantize()) < 1e-12);
    }

    #[test]
    fn zero_group_gets_unit_scale() {
        let w = MatrixF32::zeros(32, 4);
        let q = RtnQuantizer::new(WeightPrecision::Int4, GroupShape::along_k(32))
            .quantize(&w)
            .unwrap();
        for &s in q.scales() {
            assert_eq!(s, 1.0);
        }
        assert!(q.dequantize().mse(&w) < 1e-12);
    }

    #[test]
    fn group_count_matches_shape() {
        let w = ramp(128, 16);
        let q128 = RtnQuantizer::new(WeightPrecision::Int4, GroupShape::G128)
            .quantize(&w)
            .unwrap();
        assert_eq!(q128.scales().len(), 16); // 1 k-group × 16 columns
        let q2d = RtnQuantizer::new(WeightPrecision::Int4, GroupShape::G32X4)
            .quantize(&w)
            .unwrap();
        assert_eq!(q2d.scales().len(), 4 * 4);
    }

    #[test]
    fn equal_volume_groups_have_similar_error() {
        // The essence of Table II: g128 and g[32,4] see statistically
        // similar sub-distributions, so RTN error matches closely.
        let w = ramp(256, 64);
        let e1 = {
            let q = RtnQuantizer::new(WeightPrecision::Int4, GroupShape::G128)
                .quantize(&w)
                .unwrap();
            w.mse(&q.dequantize())
        };
        let e2 = {
            let q = RtnQuantizer::new(WeightPrecision::Int4, GroupShape::G32X4)
                .quantize(&w)
                .unwrap();
            w.mse(&q.dequantize())
        };
        let ratio = e1 / e2;
        assert!((0.5..2.0).contains(&ratio), "error ratio {ratio}");
    }

    #[test]
    fn asymmetric_improves_skewed_groups() {
        // A strictly positive weight distribution wastes half the
        // symmetric range; the zero point recovers it.
        let w = MatrixF32::from_fn(64, 8, |k, n| 0.5 + ((k * 7 + n) % 32) as f32 / 64.0);
        let sym = RtnQuantizer::new(WeightPrecision::Int4, GroupShape::along_k(32))
            .quantize(&w)
            .unwrap();
        let asym = RtnQuantizer::asymmetric(WeightPrecision::Int4, GroupShape::along_k(32))
            .quantize(&w)
            .unwrap();
        let e_sym = w.mse(&sym.dequantize());
        let e_asym = w.mse(&asym.dequantize());
        assert!(
            e_asym < e_sym / 2.0,
            "asymmetric {e_asym} should clearly beat symmetric {e_sym}"
        );
    }

    #[test]
    fn symmetric_zero_points_equal_bias() {
        let q = RtnQuantizer::new(WeightPrecision::Int4, GroupShape::along_k(32))
            .quantize(&ramp(64, 8))
            .unwrap();
        assert!(q.zero_points().iter().all(|&z| z == 8));
        let q2 = RtnQuantizer::new(WeightPrecision::Int2, GroupShape::along_k(32))
            .quantize(&ramp(64, 8))
            .unwrap();
        assert!(q2.zero_points().iter().all(|&z| z == 2));
    }

    #[test]
    fn asymmetric_error_bound_holds() {
        let w = ramp(128, 16);
        let q = RtnQuantizer::asymmetric(WeightPrecision::Int4, GroupShape::G128)
            .quantize(&w)
            .unwrap();
        let deq = q.dequantize();
        for k in 0..w.rows() {
            for n in 0..w.cols() {
                let err = (w.get(k, n) - deq.get(k, n)).abs();
                assert!(err <= 0.5 * q.scale(k, n) + 1e-6, "({k},{n}): err {err}");
            }
        }
    }

    #[test]
    fn asymmetric_zero_points_in_code_range() {
        let q = RtnQuantizer::asymmetric(WeightPrecision::Int4, GroupShape::along_k(32))
            .quantize(&ramp(64, 8))
            .unwrap();
        assert!(q.zero_points().iter().all(|&z| z <= 15));
    }

    #[test]
    fn degenerate_inputs_yield_typed_errors() {
        let q = RtnQuantizer::new(WeightPrecision::Int4, GroupShape::G128);
        assert!(matches!(
            q.quantize(&MatrixF32::zeros(0, 8)),
            Err(PacqError::ZeroDim { .. })
        ));
        assert!(matches!(
            q.quantize(&MatrixF32::zeros(8, 0)),
            Err(PacqError::ZeroDim { .. })
        ));
        let nan = MatrixF32::from_fn(16, 4, |k, n| if k == 3 && n == 1 { f32::NAN } else { 0.5 });
        assert!(matches!(q.quantize(&nan), Err(PacqError::NonFinite { .. })));
        let inf = MatrixF32::from_fn(16, 4, |k, _| if k == 0 { f32::INFINITY } else { 0.5 });
        assert!(matches!(q.quantize(&inf), Err(PacqError::NonFinite { .. })));
    }

    #[test]
    fn from_parts_validates_every_contract() {
        let g = GroupShape::along_k(32);
        let p = WeightPrecision::Int4;
        let ok = QuantizedMatrix::from_parts(p, g, 32, 2, vec![0; 64], vec![1.0; 2], vec![8; 2]);
        assert!(ok.is_ok());
        // Wrong codes length.
        assert!(matches!(
            QuantizedMatrix::from_parts(p, g, 32, 2, vec![0; 63], vec![1.0; 2], vec![8; 2]),
            Err(PacqError::ShapeMismatch { .. })
        ));
        // Wrong scales length.
        assert!(matches!(
            QuantizedMatrix::from_parts(p, g, 32, 2, vec![0; 64], vec![1.0; 3], vec![8; 3]),
            Err(PacqError::ShapeMismatch { .. })
        ));
        // Wrong zero-points length.
        assert!(matches!(
            QuantizedMatrix::from_parts(p, g, 32, 2, vec![0; 64], vec![1.0; 2], vec![8; 1]),
            Err(PacqError::ShapeMismatch { .. })
        ));
        // Out-of-range code.
        assert!(matches!(
            QuantizedMatrix::from_parts(p, g, 32, 2, vec![99; 64], vec![1.0; 2], vec![8; 2]),
            Err(PacqError::InvalidInput { .. })
        ));
    }

    #[test]
    fn storage_footprint() {
        let q = RtnQuantizer::new(WeightPrecision::Int4, GroupShape::G128)
            .quantize(&ramp(128, 8))
            .unwrap();
        assert_eq!(q.code_bits(), 128 * 8 * 4);
        assert_eq!(q.scale_bits(), 8 * 16);
    }
}
