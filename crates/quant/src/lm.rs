//! A tiny residual-MLP language model: the Table II perplexity proxy.
//!
//! Llama2-7B + WikiText-2/C4 are unavailable here, so Table II is
//! reproduced on a structurally faithful miniature: a next-token model
//! with an embedding table, one residual FFN block (the exact layer shape
//! PacQ accelerates) and a tied output projection. Sequences are *sampled
//! from the full-precision model itself*, so the model genuinely predicts
//! its own data (finite perplexity well below vocabulary size), and
//! quantizing the FFN weights degrades that perplexity exactly the way
//! Table II's rows do. What the experiment tests — that equal-volume
//! `g[n,k]` groups are quality-neutral vs k-only groups — is a property
//! of RTN group quantization, which this miniature exercises end to end.

use crate::groups::GroupShape;
use crate::matrix::MatrixF32;
use crate::rtn::RtnQuantizer;
use crate::synth::SynthGenerator;
use pacq_fp16::WeightPrecision;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The miniature next-token model.
///
/// Architecture: `logits(t) = E · norm(E[t] + W2ᵀ·gelu(W1ᵀ·E[t]))` with
/// `E ∈ [vocab, d]`, `W1 ∈ [d, h]`, `W2 ∈ [h, d]`. Only `W1`/`W2` are
/// quantized (weight-only PTQ frameworks exclude embeddings, as does the
/// paper's llmc baseline).
#[derive(Debug, Clone)]
pub struct TinyLm {
    vocab: usize,
    d: usize,
    h: usize,
    embed: MatrixF32,
    w1: MatrixF32,
    w2: MatrixF32,
}

impl TinyLm {
    /// Builds a deterministic model with LLM-like weight statistics.
    ///
    /// Dimensions: `vocab` tokens, embedding width `d`, hidden width `h`.
    /// `d` and `h` should be ≥ 128 so `g128`/`g256` groups are exercised
    /// meaningfully.
    pub fn new(seed: u64, vocab: usize, d: usize, h: usize) -> Self {
        // Mild per-channel spread: Table II's iso-quality between k-only
        // and [n,k] groups holds only when adjacent output channels have
        // similar scales (a 2-D group shares one scale across n_size
        // channels). Trained transformer FFN weights satisfy this; an
        // aggressive synthetic spread would not — a boundary condition we
        // document in EXPERIMENTS.md.
        let stats = crate::synth::WeightStats {
            channel_spread: 0.02,
            ..crate::synth::WeightStats::default()
        };
        let mut g = SynthGenerator::with_stats(seed, stats);
        // Embeddings get a larger scale so logits have usable dynamic
        // range; FFN weights use transformer-like statistics.
        let embed = g.uniform(vocab, d, 1.0);
        let mut w1 = g.llm_weights(d, h);
        let mut w2 = g.llm_weights(h, d);
        // Rescale the FFN so the residual branch meaningfully shapes the
        // distribution (σ≈0.02 would vanish under the residual).
        rescale(&mut w1, 12.0);
        rescale(&mut w2, 12.0);
        TinyLm {
            vocab,
            d,
            h,
            embed,
            w1,
            w2,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// The FFN up-projection `[d, h]` (a PacQ GEMM workload shape).
    pub fn w1(&self) -> &MatrixF32 {
        &self.w1
    }

    /// The FFN down-projection `[h, d]`.
    pub fn w2(&self) -> &MatrixF32 {
        &self.w2
    }

    /// Returns a copy with RTN-quantized (and dequantized) FFN weights.
    ///
    /// # Errors
    ///
    /// Propagates quantizer errors (the model's own weights are always
    /// finite and non-empty, so this only fails for degenerate custom
    /// dimensions).
    pub fn quantize_ffn(
        &self,
        precision: WeightPrecision,
        group: GroupShape,
    ) -> pacq_error::PacqResult<TinyLm> {
        let q1 = RtnQuantizer::new(precision, group).quantize(&self.w1)?;
        let q2 = RtnQuantizer::new(precision, group).quantize(&self.w2)?;
        Ok(TinyLm {
            vocab: self.vocab,
            d: self.d,
            h: self.h,
            embed: self.embed.clone(),
            w1: q1.dequantize(),
            w2: q2.dequantize(),
        })
    }

    /// Next-token logits for token `t`.
    fn logits(&self, t: usize) -> Vec<f64> {
        assert!(t < self.vocab, "token {t} out of vocabulary");
        let x = self.embed.row(t);
        // hidden = gelu(x · W1)
        let mut hidden = vec![0f64; self.h];
        for (j, hj) in hidden.iter_mut().enumerate() {
            let mut acc = 0f64;
            for (i, &xi) in x.iter().enumerate() {
                acc += xi as f64 * self.w1.get(i, j) as f64;
            }
            *hj = gelu(acc);
        }
        // y = x + hidden · W2 (residual)
        let mut y = vec![0f64; self.d];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = x[i] as f64;
            for (j, hj) in hidden.iter().enumerate() {
                acc += hj * self.w2.get(j, i) as f64;
            }
            *yi = acc;
        }
        // RMS norm keeps logits in a stable range.
        let rms = (y.iter().map(|v| v * v).sum::<f64>() / self.d as f64)
            .sqrt()
            .max(1e-9);
        for v in &mut y {
            *v /= rms;
        }
        // logits = y · Eᵀ (tied embedding)
        (0..self.vocab)
            .map(|w| {
                let e = self.embed.row(w);
                y.iter().zip(e).map(|(&yi, &ei)| yi * ei as f64).sum()
            })
            .collect()
    }

    /// Log-softmax probabilities for the next token after `t`.
    fn log_probs(&self, t: usize) -> Vec<f64> {
        let logits = self.logits(t);
        let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let log_z = logits.iter().map(|l| (l - max).exp()).sum::<f64>().ln() + max;
        logits.into_iter().map(|l| l - log_z).collect()
    }

    /// Samples a sequence of `len` tokens from the model (ancestral
    /// sampling), starting from `start`.
    pub fn sample(&self, start: usize, len: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tokens = Vec::with_capacity(len + 1);
        tokens.push(start);
        let mut prev = start;
        for _ in 0..len {
            let lp = self.log_probs(prev);
            let u: f64 = rng.random_range(0.0..1.0);
            let mut cum = 0.0;
            let mut next = self.vocab - 1;
            for (w, l) in lp.iter().enumerate() {
                cum += l.exp();
                if u <= cum {
                    next = w;
                    break;
                }
            }
            tokens.push(next);
            prev = next;
        }
        tokens
    }

    /// Perplexity of the model on a token sequence:
    /// `exp(−mean log p(next | current))`.
    ///
    /// # Panics
    ///
    /// Panics if the sequence has fewer than two tokens.
    pub fn perplexity(&self, tokens: &[usize]) -> f64 {
        assert!(tokens.len() >= 2, "perplexity needs at least two tokens");
        let mut nll = 0f64;
        for w in tokens.windows(2) {
            nll -= self.log_probs(w[0])[w[1]];
        }
        (nll / (tokens.len() - 1) as f64).exp()
    }
}

fn gelu(x: f64) -> f64 {
    // tanh approximation.
    0.5 * x * (1.0 + ((2.0 / core::f64::consts::PI).sqrt() * (x + 0.044715 * x * x * x)).tanh())
}

fn rescale(m: &mut MatrixF32, factor: f32) {
    for r in 0..m.rows() {
        for c in 0..m.cols() {
            m.set(r, c, m.get(r, c) * factor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TinyLm {
        TinyLm::new(1234, 64, 128, 256)
    }

    #[test]
    fn model_predicts_its_own_samples() {
        let lm = model();
        let tokens = lm.sample(0, 400, 99);
        let ppl = lm.perplexity(&tokens);
        // Must be comfortably below uniform perplexity (= vocab size).
        assert!(ppl < 0.8 * lm.vocab() as f64, "ppl = {ppl}");
        assert!(ppl > 1.0);
    }

    #[test]
    fn quantization_degrades_perplexity_mildly() {
        let lm = model();
        let tokens = lm.sample(0, 400, 99);
        let base = lm.perplexity(&tokens);
        let q4 = lm
            .quantize_ffn(WeightPrecision::Int4, GroupShape::G128)
            .unwrap()
            .perplexity(&tokens);
        // Same ordering as Table II: quantized ≥ fp16, within a few %.
        assert!(q4 >= base * 0.999, "q4 {q4} < base {base}");
        assert!(q4 < base * 1.25, "q4 {q4} degrades too much vs {base}");
    }

    #[test]
    fn equal_volume_2d_groups_are_iso_quality() {
        // Table II's claim, on the proxy model.
        let lm = model();
        let tokens = lm.sample(0, 400, 99);
        let p128 = lm
            .quantize_ffn(WeightPrecision::Int4, GroupShape::G128)
            .unwrap()
            .perplexity(&tokens);
        let p32x4 = lm
            .quantize_ffn(WeightPrecision::Int4, GroupShape::G32X4)
            .unwrap()
            .perplexity(&tokens);
        let rel = (p128 - p32x4).abs() / p128;
        assert!(rel < 0.05, "g128 {p128} vs g[32,4] {p32x4}: {rel}");
    }

    #[test]
    fn log_probs_normalize() {
        let lm = model();
        let z: f64 = lm.log_probs(3).iter().map(|l| l.exp()).sum();
        assert!((z - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two tokens")]
    fn short_sequence_rejected() {
        model().perplexity(&[1]);
    }
}
