//! # pacq-quant — weight-only quantization for hyper-asymmetric GEMMs
//!
//! The quantization substrate of the PacQ reproduction: everything needed
//! to turn FP weight matrices into the packed low-precision artifacts the
//! PacQ dataflow consumes.
//!
//! * [`RtnQuantizer`] — symmetric round-to-nearest group PTQ (the Table II
//!   algorithm), with 1-D `g128`-style and 2-D `g[32,4]`-style
//!   [`GroupShape`]s;
//! * [`PackedMatrix`] — the `P(B_x)_y` packing formats of §III, along
//!   either the k or the n dimension ([`PackDim`]);
//! * [`evaluate_rtn`] / [`lm::TinyLm`] — quality metrics and the Table II
//!   perplexity proxy;
//! * [`synth::SynthGenerator`] — deterministic LLM-like synthetic data
//!   (the Llama2 substitution documented in DESIGN.md §4);
//! * [`MatrixF32`] / [`MatrixF16`] — the shared matrix containers.
//!
//! ## Example: quantize and pack for PacQ
//!
//! ```
//! use pacq_quant::{GroupShape, PackDim, PackedMatrix, RtnQuantizer, synth::SynthGenerator};
//! use pacq_fp16::WeightPrecision;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let weights = SynthGenerator::new(0).llm_weights(256, 64);
//! let quant = RtnQuantizer::new(WeightPrecision::Int4, GroupShape::G32X4)
//!     .quantize(&weights)?;
//! let packed = PackedMatrix::pack(&quant, PackDim::N)?; // P(B_4)_n
//! assert_eq!(packed.total_words(), 256 * 64 / 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The no-panic contract (DESIGN.md §10): library code returns
// `Result<_, PacqError>`; only tests may unwrap.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod artifact;
pub mod awq;
pub mod eval;
pub mod gptq;
pub mod groups;
pub mod lm;
pub mod matrix;
pub mod pack;
pub mod rtn;
pub mod synth;

pub use artifact::{from_bytes, to_bytes};
pub use eval::{evaluate_rtn, QuantError};
pub use groups::GroupShape;
pub use matrix::{MatrixF16, MatrixF32};
pub use pack::{PackDim, PackedMatrix};
pub use pacq_error::{ArtifactError, PacqError, PacqResult};
pub use rtn::{QuantScheme, QuantizedMatrix, RtnQuantizer};
