//! Quantization group geometry.
//!
//! Standard weight-only PTQ defines groups along the input-feature (k)
//! dimension only (e.g. `g128`). Section V of the paper proposes spanning
//! groups across **both** `[n, k]` dimensions (e.g. `g[32,4]` = 32 steps
//! along k × 4 along n, same 128-element volume) so that PacQ's n-packed
//! dataflow fetches one scale per packed word group instead of one per
//! lane — Table II shows the change is quality-neutral.

use core::fmt;

use pacq_error::{PacqError, PacqResult};

/// Shape of one quantization group over the `[k, n]` weight matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupShape {
    /// Group extent along the input-feature dimension (k).
    pub k_size: usize,
    /// Group extent along the output-feature dimension (n).
    pub n_size: usize,
}

impl GroupShape {
    /// The conventional `g128` (128 along k, 1 along n).
    pub const G128: GroupShape = GroupShape {
        k_size: 128,
        n_size: 1,
    };
    /// The conventional `g256`.
    pub const G256: GroupShape = GroupShape {
        k_size: 256,
        n_size: 1,
    };
    /// The paper's 2-D `g[32,4]`: 32 along k × 4 along n (volume 128).
    pub const G32X4: GroupShape = GroupShape {
        k_size: 32,
        n_size: 4,
    };
    /// The paper's 2-D `g[64,4]`: 64 along k × 4 along n (volume 256).
    pub const G64X4: GroupShape = GroupShape {
        k_size: 64,
        n_size: 4,
    };

    /// Creates a group shape.
    ///
    /// # Panics
    ///
    /// Panics if either extent is zero. Intended for literal shapes in
    /// code; use [`GroupShape::try_new`] for untrusted input.
    pub fn new(k_size: usize, n_size: usize) -> Self {
        assert!(k_size > 0 && n_size > 0, "group extents must be non-zero");
        GroupShape { k_size, n_size }
    }

    /// Creates a group shape from untrusted extents, rejecting zeros
    /// with a typed error instead of panicking.
    pub fn try_new(k_size: usize, n_size: usize) -> PacqResult<Self> {
        if k_size == 0 || n_size == 0 {
            return Err(PacqError::ZeroDim {
                context: "GroupShape::try_new",
            });
        }
        Ok(GroupShape { k_size, n_size })
    }

    /// A 1-D group along k (the conventional layout).
    pub fn along_k(k_size: usize) -> Self {
        GroupShape::new(k_size, 1)
    }

    /// Number of weights per group.
    pub fn volume(&self) -> usize {
        self.k_size * self.n_size
    }

    /// `true` when the group spans more than one output column — the
    /// paper's PacQ-friendly layout.
    pub fn is_two_dimensional(&self) -> bool {
        self.n_size > 1
    }

    /// The group index of weight `(k, n)`.
    pub fn group_of(&self, k: usize, n: usize, n_total: usize) -> usize {
        let groups_per_row = n_total.div_ceil(self.n_size);
        (k / self.k_size) * groups_per_row + n / self.n_size
    }

    /// Number of groups covering a `[k_total, n_total]` matrix.
    pub fn group_count(&self, k_total: usize, n_total: usize) -> usize {
        k_total.div_ceil(self.k_size) * n_total.div_ceil(self.n_size)
    }

    /// Number of scale-fetch events the general core performs while
    /// consuming the matrix tile by tile: for every `tile_k × lanes`
    /// weight tile (the octet compute granularity of Figure 3), it fetches
    /// one scale per distinct group the tile touches, with no inter-tile
    /// caching.
    ///
    /// This is the quantity the `g[n,k]` layout reduces for PacQ
    /// (Figure 6, step ③): with `n_size ≥ lanes` all lanes of a packed
    /// word share a single scale, so a 4×4 tile needs 1 fetch instead
    /// of 4.
    pub fn scale_fetches_for_tiled_walk(
        &self,
        k_total: usize,
        n_total: usize,
        lanes: usize,
        tile_k: usize,
    ) -> usize {
        assert!(lanes > 0 && tile_k > 0, "tile extents must be non-zero");
        let words_per_row = n_total.div_ceil(lanes);
        let k_tiles = k_total.div_ceil(tile_k);
        let mut fetches = 0usize;
        for kt in 0..k_tiles {
            let k_lo = kt * tile_k;
            let k_hi = ((kt + 1) * tile_k).min(k_total);
            let kg_lo = k_lo / self.k_size;
            let kg_hi = (k_hi - 1) / self.k_size;
            for w in 0..words_per_row {
                let n_lo = w * lanes;
                let n_hi = ((w + 1) * lanes).min(n_total);
                let g_lo = n_lo / self.n_size;
                let g_hi = (n_hi - 1) / self.n_size;
                fetches += (kg_hi - kg_lo + 1) * (g_hi - g_lo + 1);
            }
        }
        fetches
    }
}

impl fmt::Display for GroupShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.n_size == 1 {
            write!(f, "g{}", self.k_size)
        } else {
            write!(f, "g[{},{}]", self.k_size, self.n_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_shapes_have_expected_volumes() {
        assert_eq!(GroupShape::G128.volume(), 128);
        assert_eq!(GroupShape::G32X4.volume(), 128);
        assert_eq!(GroupShape::G256.volume(), 256);
        assert_eq!(GroupShape::G64X4.volume(), 256);
        assert!(!GroupShape::G128.is_two_dimensional());
        assert!(GroupShape::G32X4.is_two_dimensional());
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(GroupShape::G128.to_string(), "g128");
        assert_eq!(GroupShape::G32X4.to_string(), "g[32,4]");
    }

    #[test]
    fn group_indexing_covers_matrix() {
        let g = GroupShape::G32X4;
        let (k_total, n_total) = (64, 16);
        assert_eq!(g.group_count(k_total, n_total), 2 * 4);
        assert_eq!(g.group_of(0, 0, n_total), 0);
        assert_eq!(g.group_of(0, 4, n_total), 1);
        assert_eq!(g.group_of(32, 0, n_total), 4);
        assert_eq!(g.group_of(63, 15, n_total), 7);
    }

    #[test]
    fn two_dimensional_groups_need_fewer_scale_fetches() {
        // The motivation for g[n,k] (Figure 6 ③): a 4×4 octet tile under
        // g128 straddles 4 single-column groups (4 scale fetches); under
        // g[32,4] it lies inside one group (1 fetch) — a 4× reduction.
        let (k_total, n_total, lanes, tile_k) = (4096, 64, 4, 4);
        let f_1d = GroupShape::G128.scale_fetches_for_tiled_walk(k_total, n_total, lanes, tile_k);
        let f_2d = GroupShape::G32X4.scale_fetches_for_tiled_walk(k_total, n_total, lanes, tile_k);
        assert_eq!(
            f_1d,
            f_2d * 4,
            "expected a 4x reduction: 1-D {f_1d}, 2-D {f_2d}"
        );

        // Same for the g256 / g[64,4] pair.
        let f_1d = GroupShape::G256.scale_fetches_for_tiled_walk(k_total, n_total, lanes, tile_k);
        let f_2d = GroupShape::G64X4.scale_fetches_for_tiled_walk(k_total, n_total, lanes, tile_k);
        assert_eq!(f_1d, f_2d * 4);
    }

    #[test]
    #[should_panic(expected = "group extents must be non-zero")]
    fn zero_extent_rejected() {
        GroupShape::new(0, 4);
    }

    #[test]
    fn try_new_returns_typed_error_for_zero_extents() {
        assert!(matches!(
            GroupShape::try_new(0, 4),
            Err(PacqError::ZeroDim { .. })
        ));
        assert!(matches!(
            GroupShape::try_new(4, 0),
            Err(PacqError::ZeroDim { .. })
        ));
        assert_eq!(GroupShape::try_new(32, 4).unwrap(), GroupShape::G32X4);
    }
}
