//! Activation-aware weight scaling (AWQ-style), an optional front-end to
//! the RTN quantizer.
//!
//! Weight-only PTQ error is dominated by the few weight channels that
//! multiply *salient* (large-magnitude) activations — the phenomenon the
//! paper's introduction cites as AWQ (its ref. 10). Scaling weight row `k` up by
//! `s_k = mean|A_k|^α` (and the activations down by the same factor,
//! folded into the previous operator at deployment) shrinks the relative
//! quantization error exactly where it matters. The transformed GEMM is
//! mathematically identical: `A × W = (A ⊘ s) × (s ⊙ W)`.
//!
//! This composes with every PacQ packing/dataflow unchanged — the scaled
//! weights are just another matrix for [`RtnQuantizer`].

use crate::groups::GroupShape;
use crate::matrix::MatrixF32;
use crate::rtn::{QuantizedMatrix, RtnQuantizer};
use pacq_error::{PacqError, PacqResult};
use pacq_fp16::WeightPrecision;
use rayon::prelude::*;

/// Result of an AWQ scale search.
#[derive(Debug, Clone)]
pub struct AwqResult {
    /// The chosen exponent α.
    pub alpha: f64,
    /// Per-input-channel (k) scale factors applied to the weights.
    pub channel_scales: Vec<f32>,
    /// The quantized, scaled weights.
    pub quantized: QuantizedMatrix,
    /// Output-domain relative error of the chosen configuration.
    pub output_rel_err: f64,
}

impl AwqResult {
    /// Applies the inverse scales to an activation matrix `[m, k]` —
    /// what the preceding operator absorbs at deployment.
    ///
    /// # Panics
    ///
    /// Panics if the activation width does not match the scale count.
    pub fn scale_activations(&self, activations: &MatrixF32) -> MatrixF32 {
        assert_eq!(
            activations.cols(),
            self.channel_scales.len(),
            "activation width must match the scaled channels"
        );
        MatrixF32::from_fn(activations.rows(), activations.cols(), |m, k| {
            activations.get(m, k) / self.channel_scales[k]
        })
    }
}

/// AWQ-style scale search over a grid of exponents.
///
/// # Examples
///
/// ```
/// use pacq_quant::{awq::AwqScaler, GroupShape, synth::SynthGenerator};
/// use pacq_fp16::WeightPrecision;
///
/// let mut g = SynthGenerator::new(1);
/// let w = g.llm_weights(128, 32);
/// let a = g.llm_activations(8, 128);
/// let res = AwqScaler::new()
///     .search(&w, &a, WeightPrecision::Int4, GroupShape::along_k(32))
///     .unwrap();
/// // α = 0 reproduces plain RTN, so the search can never be worse.
/// assert!(res.alpha >= 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct AwqScaler {
    alpha_grid: Vec<f64>,
}

impl AwqScaler {
    /// A scaler with the standard α grid `{0, 0.125, …, 1.0}` (α = 0 is
    /// plain RTN, so the search is never worse than the baseline).
    pub fn new() -> Self {
        AwqScaler {
            alpha_grid: (0..=8).map(|i| i as f64 / 8.0).collect(),
        }
    }

    /// A scaler with a custom α grid.
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::EmptySearchSpace`] for an empty grid (a
    /// search over nothing has no winner) and [`PacqError::NonFinite`]
    /// if any exponent is NaN or infinite.
    pub fn with_grid(alpha_grid: Vec<f64>) -> PacqResult<Self> {
        if alpha_grid.is_empty() {
            return Err(PacqError::EmptySearchSpace {
                context: "AwqScaler::with_grid",
            });
        }
        if !alpha_grid.iter().all(|a| a.is_finite()) {
            return Err(PacqError::NonFinite {
                context: "AwqScaler::with_grid",
            });
        }
        Ok(AwqScaler { alpha_grid })
    }

    /// Searches the α grid for the scale vector minimizing the output
    /// error of `activations × dequant(quantize(s ⊙ weights))` against
    /// the full-precision product.
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::ShapeMismatch`] when the activation width
    /// does not equal the weight k-extent, [`PacqError::NonFinite`] for
    /// non-finite activations, and propagates quantizer errors (zero
    /// shapes, non-finite weights) from the underlying RTN pass.
    pub fn search(
        &self,
        weights: &MatrixF32,
        activations: &MatrixF32,
        precision: WeightPrecision,
        group: GroupShape,
    ) -> PacqResult<AwqResult> {
        let _span = pacq_trace::span("quant.awq_search");
        pacq_trace::add_counter("quant.awq.searches", 1);
        if activations.cols() != weights.rows() {
            return Err(PacqError::ShapeMismatch {
                context: "AwqScaler::search (activation width vs weight k-extent)",
                left: activations.cols(),
                right: weights.rows(),
            });
        }
        if !activations.as_slice().iter().all(|v| v.is_finite()) {
            return Err(PacqError::NonFinite {
                context: "AwqScaler::search (activations)",
            });
        }
        let k = weights.rows();

        // Mean |A| per input channel.
        let mut mag = vec![0f64; k];
        for m in 0..activations.rows() {
            for (kk, mg) in mag.iter_mut().enumerate() {
                *mg += activations.get(m, kk).abs() as f64;
            }
        }
        let rows = activations.rows().max(1) as f64;
        for mg in &mut mag {
            *mg = (*mg / rows).max(1e-8);
        }

        let reference = activations.matmul(weights);
        let ref_norm = reference.frobenius_norm().max(1e-30);

        // Grid points are independent; evaluate them on the pool. The
        // winner is picked afterwards in grid order with the same strict
        // ordering, so ties resolve to the earliest α exactly like the
        // serial scan did.
        let candidates: Vec<PacqResult<AwqResult>> = self
            .alpha_grid
            .clone()
            .into_par_iter()
            .map(|alpha| {
                let scales: Vec<f32> = mag.iter().map(|&m| (m.powf(alpha)) as f32).collect();
                let scaled =
                    MatrixF32::from_fn(k, weights.cols(), |kk, n| weights.get(kk, n) * scales[kk]);
                let quantized = RtnQuantizer::new(precision, group).quantize(&scaled)?;
                let deq = quantized.dequantize();
                // Effective weight seen by the original activations.
                let effective =
                    MatrixF32::from_fn(k, weights.cols(), |kk, n| deq.get(kk, n) / scales[kk]);
                let out = activations.matmul(&effective);
                let diff = MatrixF32::from_fn(out.rows(), out.cols(), |r, c| {
                    out.get(r, c) - reference.get(r, c)
                });
                let err = diff.frobenius_norm() / ref_norm;
                Ok(AwqResult {
                    alpha,
                    channel_scales: scales,
                    quantized,
                    output_rel_err: err,
                })
            })
            .collect();
        let mut best: Option<AwqResult> = None;
        for cand in candidates {
            let cand = cand?;
            // NaN-aware total ordering: a NaN error never beats a finite
            // one, and a finite error always beats a NaN incumbent, so the
            // winner does not depend on the order candidates are compared.
            let wins = match &best {
                None => true,
                Some(b) => match (cand.output_rel_err.is_nan(), b.output_rel_err.is_nan()) {
                    (true, _) => false,
                    (false, true) => true,
                    (false, false) => cand.output_rel_err < b.output_rel_err,
                },
            };
            if wins {
                best = Some(cand);
            }
        }
        best.ok_or(PacqError::EmptySearchSpace {
            context: "AwqScaler::search",
        })
    }
}

impl Default for AwqScaler {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_rtn;
    use crate::synth::SynthGenerator;

    /// Outlier-heavy activations: AWQ scaling must beat plain RTN on
    /// output error.
    #[test]
    fn awq_beats_plain_rtn_with_salient_activations() {
        let mut g = SynthGenerator::new(77);
        let w = g.llm_weights(256, 64);
        // Activations with strong per-channel structure: a few channels
        // carry 20× magnitude (the salient-channel phenomenon).
        let base = g.llm_activations(16, 256);
        let a = MatrixF32::from_fn(16, 256, |m, k| {
            let boost = if k % 37 == 0 { 20.0 } else { 1.0 };
            base.get(m, k) * boost
        });

        let plain = evaluate_rtn(&w, &a, WeightPrecision::Int4, GroupShape::G128).unwrap();
        let awq = AwqScaler::new()
            .search(&w, &a, WeightPrecision::Int4, GroupShape::G128)
            .unwrap();
        assert!(
            awq.output_rel_err < plain.output_rel_err,
            "AWQ {} !< RTN {}",
            awq.output_rel_err,
            plain.output_rel_err
        );
        assert!(awq.alpha > 0.0, "expected a non-trivial alpha");
    }

    /// α = 0 reproduces plain RTN exactly, so the search is never worse.
    #[test]
    fn awq_never_worse_than_rtn() {
        let mut g = SynthGenerator::new(78);
        let w = g.llm_weights(128, 32);
        let a = g.llm_activations(8, 128);
        let plain = evaluate_rtn(&w, &a, WeightPrecision::Int4, GroupShape::along_k(32)).unwrap();
        let awq = AwqScaler::new()
            .search(&w, &a, WeightPrecision::Int4, GroupShape::along_k(32))
            .unwrap();
        assert!(awq.output_rel_err <= plain.output_rel_err * 1.0001);
    }

    /// The scaled-activation × scaled-weight product equals the original
    /// GEMM up to quantization error.
    #[test]
    fn transform_is_mathematically_neutral() {
        let mut g = SynthGenerator::new(79);
        let w = g.llm_weights(64, 16);
        let a = g.llm_activations(4, 64);
        let res = AwqScaler::with_grid(vec![0.5])
            .unwrap()
            .search(&w, &a, WeightPrecision::Int4, GroupShape::along_k(32))
            .unwrap();
        let a_scaled = res.scale_activations(&a);
        let out = a_scaled.matmul(&res.quantized.dequantize());
        let reference = a.matmul(&w);
        let diff = MatrixF32::from_fn(out.rows(), out.cols(), |r, c| {
            out.get(r, c) - reference.get(r, c)
        });
        let rel = diff.frobenius_norm() / reference.frobenius_norm().max(1e-30);
        assert!(rel < 0.2, "rel err {rel}");
        assert!((rel - res.output_rel_err).abs() < 1e-6);
    }

    #[test]
    fn empty_grid_is_a_typed_error_not_a_panic() {
        use pacq_error::PacqError;
        assert!(matches!(
            AwqScaler::with_grid(vec![]),
            Err(PacqError::EmptySearchSpace { .. })
        ));
        assert!(matches!(
            AwqScaler::with_grid(vec![0.5, f64::NAN]),
            Err(PacqError::NonFinite { .. })
        ));
    }

    #[test]
    fn mismatched_activation_width_is_a_typed_error() {
        use pacq_error::PacqError;
        let mut g = SynthGenerator::new(80);
        let w = g.llm_weights(64, 16);
        let a = g.llm_activations(4, 32); // 32 != 64
        let err = AwqScaler::new()
            .search(&w, &a, WeightPrecision::Int4, GroupShape::along_k(32))
            .unwrap_err();
        assert!(matches!(err, PacqError::ShapeMismatch { .. }));
    }

    /// A NaN candidate error must never beat a finite one, regardless of
    /// comparison order — the historical `<` scan let NaN win or lose
    /// depending on where it appeared in the grid.
    #[test]
    fn nan_candidates_order_last() {
        let mut g = SynthGenerator::new(81);
        let w = g.llm_weights(64, 16);
        let a = g.llm_activations(4, 64);
        // An extreme α overflows the channel scales to ±inf, which makes
        // the scaled weights non-finite and the candidate an Err — so the
        // search surfaces the failure instead of silently crowning NaN.
        let res = AwqScaler::with_grid(vec![0.0, 4000.0]).unwrap().search(
            &w,
            &a,
            WeightPrecision::Int4,
            GroupShape::along_k(32),
        );
        match res {
            // Either the bad candidate errored out (non-finite weights)...
            Err(e) => assert!(matches!(e, pacq_error::PacqError::NonFinite { .. })),
            // ...or it produced a NaN error and must have lost to α = 0.
            Ok(r) => {
                assert_eq!(r.alpha, 0.0);
                assert!(r.output_rel_err.is_finite());
            }
        }
    }
}
