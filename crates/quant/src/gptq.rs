//! GPTQ: Hessian-aware error-compensated quantization (Frantar et al.,
//! cited by the paper (refs. 2 and 3) — the algorithm behind AutoGPTQ, one of
//! the `P(B_x)_k`-packing frameworks §III discusses).
//!
//! RTN rounds each weight independently; GPTQ rounds the weights of each
//! input row in sequence and *compensates* the incurred error by updating
//! the not-yet-quantized rows, weighted by the inverse Hessian
//! `H = Σ x xᵀ` of the layer inputs. The result is a drop-in
//! [`QuantizedMatrix`] — same codes, scales and packing as RTN, so it
//! flows through every PacQ dataflow unchanged.
//!
//! The implementation follows the standard column-sequential formulation
//! with Cholesky-factored inverse Hessian and diagonal damping.

use crate::groups::GroupShape;
use crate::matrix::MatrixF32;
use crate::rtn::QuantizedMatrix;
use pacq_error::{PacqError, PacqResult};
use pacq_fp16::WeightPrecision;
use rayon::prelude::*;

/// GPTQ quantizer configuration.
///
/// # Examples
///
/// ```
/// use pacq_quant::{gptq::GptqQuantizer, GroupShape, synth::SynthGenerator};
/// use pacq_fp16::WeightPrecision;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = SynthGenerator::new(5);
/// let w = g.llm_weights(64, 16);
/// let calib = g.llm_activations(32, 64);
/// let q = GptqQuantizer::new(WeightPrecision::Int4, GroupShape::along_k(32))?
///     .quantize(&w, &calib)?;
/// assert_eq!(q.k(), 64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GptqQuantizer {
    precision: WeightPrecision,
    group: GroupShape,
    damping: f64,
}

impl GptqQuantizer {
    /// Creates a GPTQ quantizer with 1 % diagonal damping.
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::InvalidInput`] if `group` spans more than
    /// one output column (GPTQ's row-sequential update assumes k-only
    /// groups, like the reference implementation).
    pub fn new(precision: WeightPrecision, group: GroupShape) -> PacqResult<Self> {
        if group.is_two_dimensional() {
            return Err(PacqError::invalid_input(
                "GptqQuantizer::new",
                format!("GPTQ supports k-only quantization groups, got {group}"),
            ));
        }
        Ok(GptqQuantizer {
            precision,
            group,
            damping: 0.01,
        })
    }

    /// Overrides the relative diagonal damping.
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::InvalidInput`] if `damping` is not a
    /// positive finite number.
    pub fn with_damping(mut self, damping: f64) -> PacqResult<Self> {
        if damping <= 0.0 || !damping.is_finite() {
            return Err(PacqError::invalid_input(
                "GptqQuantizer::with_damping",
                format!("damping must be positive and finite, got {damping}"),
            ));
        }
        self.damping = damping;
        Ok(self)
    }

    /// Quantizes `weights` (`[k, n]`) using `calibration` activations
    /// (`[m, k]`) to build the Hessian.
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::ShapeMismatch`] when the calibration width
    /// does not equal the weight k-extent, [`PacqError::ZeroDim`] for an
    /// empty weight matrix, [`PacqError::NonFinite`] for NaN/Inf in
    /// either operand, and [`PacqError::NotPositiveDefinite`] — carrying
    /// the index of the failing Cholesky pivot — when the damped Hessian
    /// cannot be factorized (degenerate calibration data).
    pub fn quantize(
        &self,
        weights: &MatrixF32,
        calibration: &MatrixF32,
    ) -> PacqResult<QuantizedMatrix> {
        let _span = pacq_trace::span("quant.gptq");
        pacq_trace::add_counter("quant.gptq.calls", 1);
        let (k, n) = (weights.rows(), weights.cols());
        if k == 0 || n == 0 {
            return Err(PacqError::ZeroDim {
                context: "GptqQuantizer::quantize",
            });
        }
        if calibration.cols() != k {
            return Err(PacqError::ShapeMismatch {
                context: "GptqQuantizer::quantize (calibration width vs weight k-extent)",
                left: calibration.cols(),
                right: k,
            });
        }
        if !weights.as_slice().iter().all(|v| v.is_finite()) {
            return Err(PacqError::NonFinite {
                context: "GptqQuantizer::quantize (weights)",
            });
        }
        if !calibration.as_slice().iter().all(|v| v.is_finite()) {
            return Err(PacqError::NonFinite {
                context: "GptqQuantizer::quantize (calibration)",
            });
        }

        // H = Σ x xᵀ with relative diagonal damping. Hessian rows are
        // independent, so they fan out; each element keeps the sample
        // order `m` ascending and stays bit-identical to a serial build.
        let mut h = vec![0f64; k * k];
        if k > 0 {
            h.par_chunks_mut(k).enumerate().for_each(|(i, hrow)| {
                for m in 0..calibration.rows() {
                    let row = calibration.row(m);
                    let xi = row[i] as f64;
                    for j in i..k {
                        hrow[j] += xi * row[j] as f64;
                    }
                }
            });
        }
        for i in 0..k {
            for j in 0..i {
                h[i * k + j] = h[j * k + i];
            }
        }
        let mean_diag = (0..k).map(|i| h[i * k + i]).sum::<f64>() / k as f64;
        let damp = self.damping * mean_diag.max(1e-12);
        for i in 0..k {
            h[i * k + i] += damp;
        }

        // Inverse Hessian via Cholesky, then the upper Cholesky factor of
        // the inverse (the standard GPTQ working matrix). Each factorizer
        // reports the index of the pivot that went non-positive so the
        // diagnostic points at the offending calibration direction.
        let chol =
            cholesky_lower(&h, k).map_err(|pivot| PacqError::NotPositiveDefinite { pivot })?;
        let hinv = cholesky_inverse(&chol, k);
        let u =
            upper_cholesky(&hinv, k).map_err(|pivot| PacqError::NotPositiveDefinite { pivot })?;

        let q_pos = self.precision.max_value() as f64;
        let q_min = self.precision.min_value() as f64;
        let g_k = self.group.k_size;

        // The row-sequential sweep touches each output column
        // independently (k-only groups: every scale, code and error
        // update involves a single column), so the columns fan out
        // across the pool. Each task replays exactly the per-column
        // arithmetic of the serial interleaved loop, in the same order —
        // the result is bit-identical at any thread count.
        let per_col: Vec<(Vec<i8>, Vec<f32>)> = (0..n)
            .into_par_iter()
            .map(|col| {
                let mut w: Vec<f64> = (0..k).map(|r| weights.get(r, col) as f64).collect();
                let mut col_codes = vec![0i8; k];
                let mut col_scales = vec![0f32; k.div_ceil(g_k)];
                for i in 0..k {
                    // New k-group: freeze the scale from the *updated*
                    // weights of the group (GPTQ's per-group refresh).
                    if i % g_k == 0 {
                        let hi = (i + g_k).min(k);
                        let mut max_abs = 0f64;
                        for wr in &w[i..hi] {
                            max_abs = max_abs.max(wr.abs());
                        }
                        col_scales[i / g_k] = if max_abs > 0.0 {
                            (max_abs / q_pos) as f32
                        } else {
                            1.0
                        };
                    }

                    let d = u[i * k + i];
                    let s = col_scales[i / g_k] as f64;
                    let q = (w[i] / s).round().clamp(q_min, q_pos);
                    col_codes[i] = q as i8;
                    let err = (w[i] - q * s) / d;
                    // Compensate the not-yet-quantized rows.
                    for j in i + 1..k {
                        w[j] -= err * u[i * k + j];
                    }
                }
                (col_codes, col_scales)
            })
            .collect();

        let mut codes = vec![0i8; k * n];
        let mut scales = vec![0f32; self.group.group_count(k, n)];
        for (col, (col_codes, col_scales)) in per_col.iter().enumerate() {
            for i in 0..k {
                codes[i * n + col] = col_codes[i];
            }
            for (kg, &s) in col_scales.iter().enumerate() {
                scales[self.group.group_of(kg * g_k, col, n)] = s;
            }
        }

        let zero_points = vec![self.precision.bias() as u8; scales.len()];
        QuantizedMatrix::from_parts(self.precision, self.group, k, n, codes, scales, zero_points)
    }
}

/// Lower Cholesky factor of a symmetric positive-definite matrix
/// (row-major `k × k`). Returns `Err(i)` with the index of the first
/// pivot whose square went non-positive (or NaN) when the matrix is not
/// positive definite.
fn cholesky_lower(a: &[f64], k: usize) -> Result<Vec<f64>, usize> {
    let mut l = vec![0f64; k * k];
    for i in 0..k {
        for j in 0..=i {
            let mut sum = a[i * k + j];
            for t in 0..j {
                sum -= l[i * k + t] * l[j * k + t];
            }
            if i == j {
                // NaN pivots are rejected too (not just non-positive
                // ones) so they never flow into sqrt().
                if sum <= 0.0 || sum.is_nan() {
                    return Err(i);
                }
                l[i * k + j] = sum.sqrt();
            } else {
                l[i * k + j] = sum / l[j * k + j];
            }
        }
    }
    Ok(l)
}

/// Inverse of `L Lᵀ` given the lower factor `L` (i.e. `A⁻¹`).
fn cholesky_inverse(l: &[f64], k: usize) -> Vec<f64> {
    // Invert L (lower triangular) by forward substitution, then
    // A⁻¹ = L⁻ᵀ L⁻¹.
    let mut linv = vec![0f64; k * k];
    for i in 0..k {
        linv[i * k + i] = 1.0 / l[i * k + i];
        for j in 0..i {
            let mut sum = 0f64;
            for t in j..i {
                sum -= l[i * k + t] * linv[t * k + j];
            }
            linv[i * k + j] = sum / l[i * k + i];
        }
    }
    let mut inv = vec![0f64; k * k];
    for i in 0..k {
        for j in 0..k {
            let mut sum = 0f64;
            for t in i.max(j)..k {
                sum += linv[t * k + i] * linv[t * k + j];
            }
            inv[i * k + j] = sum;
        }
    }
    inv
}

/// Upper Cholesky factor `U` with `A = Uᵀ U` (what GPTQ iterates over).
/// Returns `Err(i)` with the first failing pivot index, like
/// [`cholesky_lower`].
fn upper_cholesky(a: &[f64], k: usize) -> Result<Vec<f64>, usize> {
    // Compute via the lower factor of the reversed matrix, or directly:
    // u[i][j] for j >= i.
    let mut u = vec![0f64; k * k];
    for i in 0..k {
        for j in i..k {
            let mut sum = a[i * k + j];
            for t in 0..i {
                sum -= u[t * k + i] * u[t * k + j];
            }
            if i == j {
                if sum <= 0.0 || sum.is_nan() {
                    return Err(i);
                }
                u[i * k + j] = sum.sqrt();
            } else {
                u[i * k + j] = sum / u[i * k + i];
            }
        }
    }
    Ok(u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtn::RtnQuantizer;
    use crate::synth::SynthGenerator;

    fn output_err(w: &MatrixF32, deq: &MatrixF32, a: &MatrixF32) -> f64 {
        let r = a.matmul(w);
        let q = a.matmul(deq);
        let d = MatrixF32::from_fn(r.rows(), r.cols(), |i, j| r.get(i, j) - q.get(i, j));
        d.frobenius_norm() / r.frobenius_norm().max(1e-30)
    }

    #[test]
    fn cholesky_roundtrip() {
        // A = M Mᵀ + I is SPD.
        let k = 8;
        let mut a = vec![0f64; k * k];
        for i in 0..k {
            for j in 0..k {
                let mut sum = if i == j { 1.0 } else { 0.0 };
                for t in 0..k {
                    let mi = ((i * 7 + t * 3) % 11) as f64 / 11.0;
                    let mj = ((j * 7 + t * 3) % 11) as f64 / 11.0;
                    sum += mi * mj;
                }
                a[i * k + j] = sum;
            }
        }
        let l = cholesky_lower(&a, k).expect("SPD");
        // L Lᵀ = A.
        for i in 0..k {
            for j in 0..k {
                let mut sum = 0f64;
                for t in 0..k {
                    sum += l[i * k + t] * l[j * k + t];
                }
                assert!((sum - a[i * k + j]).abs() < 1e-9);
            }
        }
        // A · A⁻¹ = I.
        let inv = cholesky_inverse(&l, k);
        for i in 0..k {
            for j in 0..k {
                let mut sum = 0f64;
                for t in 0..k {
                    sum += a[i * k + t] * inv[t * k + j];
                }
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((sum - want).abs() < 1e-8, "({i},{j}): {sum}");
            }
        }
        // Uᵀ U = A⁻¹.
        let u = upper_cholesky(&inv, k).expect("SPD");
        for i in 0..k {
            for j in 0..k {
                let mut sum = 0f64;
                for t in 0..k {
                    sum += u[t * k + i] * u[t * k + j];
                }
                assert!((sum - inv[i * k + j]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn gptq_beats_rtn_on_correlated_inputs() {
        let mut g = SynthGenerator::new(41);
        let w = g.llm_weights(64, 32);
        // Correlated calibration data (shared low-rank structure), the
        // regime where Hessian-aware compensation pays off.
        let basis = g.llm_activations(4, 64);
        let coeff = g.uniform(64, 4, 1.0);
        let calib = MatrixF32::from_fn(64, 64, |m, kk| {
            (0..4)
                .map(|t| coeff.get(m, t) * basis.get(t, kk))
                .sum::<f32>()
                + 0.05 * ((m * 31 + kk * 17) % 13) as f32 / 13.0
        });

        let group = GroupShape::along_k(32);
        let rtn = RtnQuantizer::new(WeightPrecision::Int4, group)
            .quantize(&w)
            .unwrap();
        let gptq = GptqQuantizer::new(WeightPrecision::Int4, group)
            .unwrap()
            .quantize(&w, &calib)
            .expect("factorizes");

        let e_rtn = output_err(&w, &rtn.dequantize(), &calib);
        let e_gptq = output_err(&w, &gptq.dequantize(), &calib);
        assert!(
            e_gptq < e_rtn,
            "GPTQ {e_gptq} should beat RTN {e_rtn} on calibration inputs"
        );
    }

    #[test]
    fn gptq_improves_on_held_out_data_too() {
        let mut g = SynthGenerator::new(42);
        let w = g.llm_weights(64, 16);
        let calib = g.llm_activations(128, 64);
        let held_out = g.llm_activations(32, 64);

        let group = GroupShape::along_k(64);
        let rtn = RtnQuantizer::new(WeightPrecision::Int4, group)
            .quantize(&w)
            .unwrap();
        let gptq = GptqQuantizer::new(WeightPrecision::Int4, group)
            .unwrap()
            .quantize(&w, &calib)
            .expect("ok");

        let e_rtn = output_err(&w, &rtn.dequantize(), &held_out);
        let e_gptq = output_err(&w, &gptq.dequantize(), &held_out);
        // With i.i.d. synthetic held-out data (no structure shared with the
        // calibration set beyond the distribution) GPTQ has nothing to
        // exploit, so parity-within-noise is the expectation here.
        assert!(e_gptq < e_rtn * 1.2, "GPTQ {e_gptq} vs RTN {e_rtn}");
    }

    #[test]
    fn gptq_codes_are_packable() {
        use crate::pack::{PackDim, PackedMatrix};
        let mut g = SynthGenerator::new(43);
        let w = g.llm_weights(32, 16);
        let calib = g.llm_activations(64, 32);
        let q = GptqQuantizer::new(WeightPrecision::Int4, GroupShape::along_k(32))
            .unwrap()
            .quantize(&w, &calib)
            .expect("ok");
        let p = PackedMatrix::pack(&q, PackDim::N).expect("packs");
        assert_eq!(p.unpack().codes(), q.codes());
    }

    #[test]
    fn gptq_int2_runs() {
        let mut g = SynthGenerator::new(44);
        let w = g.llm_weights(32, 8);
        let calib = g.llm_activations(64, 32);
        let q = GptqQuantizer::new(WeightPrecision::Int2, GroupShape::along_k(16))
            .unwrap()
            .quantize(&w, &calib)
            .expect("ok");
        assert!(q.codes().iter().all(|&c| (-2..=1).contains(&c)));
    }

    #[test]
    fn configuration_errors_are_typed_not_panics() {
        let err = GptqQuantizer::new(WeightPrecision::Int4, GroupShape::G32X4).unwrap_err();
        assert!(matches!(err, PacqError::InvalidInput { .. }));
        assert!(err.to_string().contains("k-only"));

        let q = GptqQuantizer::new(WeightPrecision::Int4, GroupShape::G128).unwrap();
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(q.with_damping(bad).is_err(), "damping {bad} accepted");
        }
        assert!(q.with_damping(0.02).is_ok());
    }

    #[test]
    fn degenerate_inputs_yield_typed_errors() {
        let q = GptqQuantizer::new(WeightPrecision::Int4, GroupShape::along_k(32)).unwrap();
        let w = MatrixF32::from_fn(32, 8, |r, c| (r + c) as f32);
        // Mismatched calibration width.
        let narrow = MatrixF32::from_fn(4, 16, |_, _| 1.0);
        assert!(matches!(
            q.quantize(&w, &narrow),
            Err(PacqError::ShapeMismatch { .. })
        ));
        // Empty weights.
        let empty = MatrixF32::from_fn(0, 0, |_, _| 0.0);
        assert!(matches!(
            q.quantize(&empty, &narrow),
            Err(PacqError::ZeroDim { .. })
        ));
        // Non-finite weights and calibration.
        let nan_w = MatrixF32::from_fn(32, 8, |r, c| if r == c { f32::NAN } else { 1.0 });
        let calib = MatrixF32::from_fn(4, 32, |_, _| 1.0);
        assert!(matches!(
            q.quantize(&nan_w, &calib),
            Err(PacqError::NonFinite { .. })
        ));
        let inf_calib = MatrixF32::from_fn(4, 32, |m, _| if m == 0 { f32::INFINITY } else { 1.0 });
        assert!(matches!(
            q.quantize(&w, &inf_calib),
            Err(PacqError::NonFinite { .. })
        ));
    }

    /// Rank-deficient Hessian with negligible damping: the error must
    /// carry the index of the pivot that actually failed, not pivot 0.
    ///
    /// Calibration rows [1,0,1] and [0,1,0] give H = [[1,0,1],[0,1,0],
    /// [1,0,1]] exactly in f64; damping 1e-30 is absorbed by `1.0 + ε`,
    /// so the Cholesky sweep succeeds at pivots 0 and 1 and hits an
    /// exact zero at pivot 2 (1 − 1² − 0² = 0).
    #[test]
    fn rank_deficient_hessian_reports_failing_pivot() {
        let q = GptqQuantizer::new(WeightPrecision::Int4, GroupShape::along_k(3))
            .unwrap()
            .with_damping(1e-30)
            .unwrap();
        let w = MatrixF32::from_fn(3, 4, |r, c| (r as f32 + 1.0) * 0.1 + c as f32 * 0.01);
        let calib = MatrixF32::from_fn(2, 3, |m, kk| match (m, kk) {
            (0, 0) | (0, 2) | (1, 1) => 1.0,
            _ => 0.0,
        });
        let err = q.quantize(&w, &calib).unwrap_err();
        assert_eq!(err, PacqError::NotPositiveDefinite { pivot: 2 });
        assert!(err.to_string().contains("pivot 2"));
    }

    /// The factorizer itself reports the failing pivot index directly.
    #[test]
    fn cholesky_reports_first_failing_pivot() {
        // [[1,1],[1,1]] is PSD but singular: pivot 0 passes (1 > 0),
        // pivot 1 fails (1 − 1² = 0).
        let a = [1.0, 1.0, 1.0, 1.0];
        assert_eq!(cholesky_lower(&a, 2), Err(1));
        assert_eq!(upper_cholesky(&a, 2), Err(1));
        // A NaN on the diagonal fails at its own pivot, not downstream.
        let a = [1.0, 0.0, 0.0, f64::NAN];
        assert_eq!(cholesky_lower(&a, 2), Err(1));
    }
}
