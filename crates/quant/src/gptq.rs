//! GPTQ: Hessian-aware error-compensated quantization (Frantar et al.,
//! cited by the paper (refs. 2 and 3) — the algorithm behind AutoGPTQ, one of
//! the `P(B_x)_k`-packing frameworks §III discusses).
//!
//! RTN rounds each weight independently; GPTQ rounds the weights of each
//! input row in sequence and *compensates* the incurred error by updating
//! the not-yet-quantized rows, weighted by the inverse Hessian
//! `H = Σ x xᵀ` of the layer inputs. The result is a drop-in
//! [`QuantizedMatrix`] — same codes, scales and packing as RTN, so it
//! flows through every PacQ dataflow unchanged.
//!
//! The implementation follows the standard column-sequential formulation
//! with Cholesky-factored inverse Hessian and diagonal damping.

use crate::groups::GroupShape;
use crate::matrix::MatrixF32;
use crate::rtn::QuantizedMatrix;
use core::fmt;
use pacq_fp16::WeightPrecision;
use rayon::prelude::*;

/// Error returned when the calibration Hessian cannot be factorized.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorizeHessianError {
    pivot: usize,
}

impl fmt::Display for FactorizeHessianError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "calibration Hessian is not positive definite at pivot {} (add more \
             calibration samples or increase damping)",
            self.pivot
        )
    }
}

impl std::error::Error for FactorizeHessianError {}

/// GPTQ quantizer configuration.
///
/// # Examples
///
/// ```
/// use pacq_quant::{gptq::GptqQuantizer, GroupShape, synth::SynthGenerator};
/// use pacq_fp16::WeightPrecision;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = SynthGenerator::new(5);
/// let w = g.llm_weights(64, 16);
/// let calib = g.llm_activations(32, 64);
/// let q = GptqQuantizer::new(WeightPrecision::Int4, GroupShape::along_k(32))
///     .quantize(&w, &calib)?;
/// assert_eq!(q.k(), 64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GptqQuantizer {
    precision: WeightPrecision,
    group: GroupShape,
    damping: f64,
}

impl GptqQuantizer {
    /// Creates a GPTQ quantizer with 1 % diagonal damping.
    ///
    /// # Panics
    ///
    /// Panics if `group` spans more than one output column (GPTQ's
    /// row-sequential update assumes k-only groups, like the reference
    /// implementation).
    pub fn new(precision: WeightPrecision, group: GroupShape) -> Self {
        assert!(
            !group.is_two_dimensional(),
            "GPTQ supports k-only quantization groups"
        );
        GptqQuantizer {
            precision,
            group,
            damping: 0.01,
        }
    }

    /// Overrides the relative diagonal damping.
    ///
    /// # Panics
    ///
    /// Panics if `damping` is not positive.
    pub fn with_damping(mut self, damping: f64) -> Self {
        assert!(damping > 0.0, "damping must be positive");
        self.damping = damping;
        self
    }

    /// Quantizes `weights` (`[k, n]`) using `calibration` activations
    /// (`[m, k]`) to build the Hessian.
    ///
    /// # Errors
    ///
    /// Returns [`FactorizeHessianError`] when the damped Hessian is not
    /// positive definite (degenerate calibration data).
    ///
    /// # Panics
    ///
    /// Panics if the calibration width does not equal the weight
    /// k-extent.
    pub fn quantize(
        &self,
        weights: &MatrixF32,
        calibration: &MatrixF32,
    ) -> Result<QuantizedMatrix, FactorizeHessianError> {
        let (k, n) = (weights.rows(), weights.cols());
        assert_eq!(
            calibration.cols(),
            k,
            "calibration width must equal the weight k-extent"
        );

        // H = Σ x xᵀ with relative diagonal damping. Hessian rows are
        // independent, so they fan out; each element keeps the sample
        // order `m` ascending and stays bit-identical to a serial build.
        let mut h = vec![0f64; k * k];
        if k > 0 {
            h.par_chunks_mut(k).enumerate().for_each(|(i, hrow)| {
                for m in 0..calibration.rows() {
                    let row = calibration.row(m);
                    let xi = row[i] as f64;
                    for j in i..k {
                        hrow[j] += xi * row[j] as f64;
                    }
                }
            });
        }
        for i in 0..k {
            for j in 0..i {
                h[i * k + j] = h[j * k + i];
            }
        }
        let mean_diag = (0..k).map(|i| h[i * k + i]).sum::<f64>() / k as f64;
        let damp = self.damping * mean_diag.max(1e-12);
        for i in 0..k {
            h[i * k + i] += damp;
        }

        // Inverse Hessian via Cholesky, then the upper Cholesky factor of
        // the inverse (the standard GPTQ working matrix).
        let chol = cholesky_lower(&h, k).ok_or(FactorizeHessianError { pivot: 0 })?;
        let hinv = cholesky_inverse(&chol, k);
        let u = upper_cholesky(&hinv, k).ok_or(FactorizeHessianError { pivot: 0 })?;

        let q_pos = self.precision.max_value() as f64;
        let q_min = self.precision.min_value() as f64;
        let g_k = self.group.k_size;

        // The row-sequential sweep touches each output column
        // independently (k-only groups: every scale, code and error
        // update involves a single column), so the columns fan out
        // across the pool. Each task replays exactly the per-column
        // arithmetic of the serial interleaved loop, in the same order —
        // the result is bit-identical at any thread count.
        let per_col: Vec<(Vec<i8>, Vec<f32>)> = (0..n)
            .into_par_iter()
            .map(|col| {
                let mut w: Vec<f64> = (0..k).map(|r| weights.get(r, col) as f64).collect();
                let mut col_codes = vec![0i8; k];
                let mut col_scales = vec![0f32; k.div_ceil(g_k)];
                for i in 0..k {
                    // New k-group: freeze the scale from the *updated*
                    // weights of the group (GPTQ's per-group refresh).
                    if i % g_k == 0 {
                        let hi = (i + g_k).min(k);
                        let mut max_abs = 0f64;
                        for wr in &w[i..hi] {
                            max_abs = max_abs.max(wr.abs());
                        }
                        col_scales[i / g_k] = if max_abs > 0.0 {
                            (max_abs / q_pos) as f32
                        } else {
                            1.0
                        };
                    }

                    let d = u[i * k + i];
                    let s = col_scales[i / g_k] as f64;
                    let q = (w[i] / s).round().clamp(q_min, q_pos);
                    col_codes[i] = q as i8;
                    let err = (w[i] - q * s) / d;
                    // Compensate the not-yet-quantized rows.
                    for j in i + 1..k {
                        w[j] -= err * u[i * k + j];
                    }
                }
                (col_codes, col_scales)
            })
            .collect();

        let mut codes = vec![0i8; k * n];
        let mut scales = vec![0f32; self.group.group_count(k, n)];
        for (col, (col_codes, col_scales)) in per_col.iter().enumerate() {
            for i in 0..k {
                codes[i * n + col] = col_codes[i];
            }
            for (kg, &s) in col_scales.iter().enumerate() {
                scales[self.group.group_of(kg * g_k, col, n)] = s;
            }
        }

        let zero_points = vec![self.precision.bias() as u8; scales.len()];
        Ok(QuantizedMatrix::from_parts(
            self.precision,
            self.group,
            k,
            n,
            codes,
            scales,
            zero_points,
        ))
    }
}

/// Lower Cholesky factor of a symmetric positive-definite matrix
/// (row-major `k × k`). Returns `None` if not positive definite.
fn cholesky_lower(a: &[f64], k: usize) -> Option<Vec<f64>> {
    let mut l = vec![0f64; k * k];
    for i in 0..k {
        for j in 0..=i {
            let mut sum = a[i * k + j];
            for t in 0..j {
                sum -= l[i * k + t] * l[j * k + t];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * k + j] = sum.sqrt();
            } else {
                l[i * k + j] = sum / l[j * k + j];
            }
        }
    }
    Some(l)
}

/// Inverse of `L Lᵀ` given the lower factor `L` (i.e. `A⁻¹`).
fn cholesky_inverse(l: &[f64], k: usize) -> Vec<f64> {
    // Invert L (lower triangular) by forward substitution, then
    // A⁻¹ = L⁻ᵀ L⁻¹.
    let mut linv = vec![0f64; k * k];
    for i in 0..k {
        linv[i * k + i] = 1.0 / l[i * k + i];
        for j in 0..i {
            let mut sum = 0f64;
            for t in j..i {
                sum -= l[i * k + t] * linv[t * k + j];
            }
            linv[i * k + j] = sum / l[i * k + i];
        }
    }
    let mut inv = vec![0f64; k * k];
    for i in 0..k {
        for j in 0..k {
            let mut sum = 0f64;
            for t in i.max(j)..k {
                sum += linv[t * k + i] * linv[t * k + j];
            }
            inv[i * k + j] = sum;
        }
    }
    inv
}

/// Upper Cholesky factor `U` with `A = Uᵀ U` (what GPTQ iterates over).
fn upper_cholesky(a: &[f64], k: usize) -> Option<Vec<f64>> {
    // Compute via the lower factor of the reversed matrix, or directly:
    // u[i][j] for j >= i.
    let mut u = vec![0f64; k * k];
    for i in 0..k {
        for j in i..k {
            let mut sum = a[i * k + j];
            for t in 0..i {
                sum -= u[t * k + i] * u[t * k + j];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                u[i * k + j] = sum.sqrt();
            } else {
                u[i * k + j] = sum / u[i * k + i];
            }
        }
    }
    Some(u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtn::RtnQuantizer;
    use crate::synth::SynthGenerator;

    fn output_err(w: &MatrixF32, deq: &MatrixF32, a: &MatrixF32) -> f64 {
        let r = a.matmul(w);
        let q = a.matmul(deq);
        let d = MatrixF32::from_fn(r.rows(), r.cols(), |i, j| r.get(i, j) - q.get(i, j));
        d.frobenius_norm() / r.frobenius_norm().max(1e-30)
    }

    #[test]
    fn cholesky_roundtrip() {
        // A = M Mᵀ + I is SPD.
        let k = 8;
        let mut a = vec![0f64; k * k];
        for i in 0..k {
            for j in 0..k {
                let mut sum = if i == j { 1.0 } else { 0.0 };
                for t in 0..k {
                    let mi = ((i * 7 + t * 3) % 11) as f64 / 11.0;
                    let mj = ((j * 7 + t * 3) % 11) as f64 / 11.0;
                    sum += mi * mj;
                }
                a[i * k + j] = sum;
            }
        }
        let l = cholesky_lower(&a, k).expect("SPD");
        // L Lᵀ = A.
        for i in 0..k {
            for j in 0..k {
                let mut sum = 0f64;
                for t in 0..k {
                    sum += l[i * k + t] * l[j * k + t];
                }
                assert!((sum - a[i * k + j]).abs() < 1e-9);
            }
        }
        // A · A⁻¹ = I.
        let inv = cholesky_inverse(&l, k);
        for i in 0..k {
            for j in 0..k {
                let mut sum = 0f64;
                for t in 0..k {
                    sum += a[i * k + t] * inv[t * k + j];
                }
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((sum - want).abs() < 1e-8, "({i},{j}): {sum}");
            }
        }
        // Uᵀ U = A⁻¹.
        let u = upper_cholesky(&inv, k).expect("SPD");
        for i in 0..k {
            for j in 0..k {
                let mut sum = 0f64;
                for t in 0..k {
                    sum += u[t * k + i] * u[t * k + j];
                }
                assert!((sum - inv[i * k + j]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn gptq_beats_rtn_on_correlated_inputs() {
        let mut g = SynthGenerator::new(41);
        let w = g.llm_weights(64, 32);
        // Correlated calibration data (shared low-rank structure), the
        // regime where Hessian-aware compensation pays off.
        let basis = g.llm_activations(4, 64);
        let coeff = g.uniform(64, 4, 1.0);
        let calib = MatrixF32::from_fn(64, 64, |m, kk| {
            (0..4)
                .map(|t| coeff.get(m, t) * basis.get(t, kk))
                .sum::<f32>()
                + 0.05 * ((m * 31 + kk * 17) % 13) as f32 / 13.0
        });

        let group = GroupShape::along_k(32);
        let rtn = RtnQuantizer::new(WeightPrecision::Int4, group).quantize(&w);
        let gptq = GptqQuantizer::new(WeightPrecision::Int4, group)
            .quantize(&w, &calib)
            .expect("factorizes");

        let e_rtn = output_err(&w, &rtn.dequantize(), &calib);
        let e_gptq = output_err(&w, &gptq.dequantize(), &calib);
        assert!(
            e_gptq < e_rtn,
            "GPTQ {e_gptq} should beat RTN {e_rtn} on calibration inputs"
        );
    }

    #[test]
    fn gptq_improves_on_held_out_data_too() {
        let mut g = SynthGenerator::new(42);
        let w = g.llm_weights(64, 16);
        let calib = g.llm_activations(128, 64);
        let held_out = g.llm_activations(32, 64);

        let group = GroupShape::along_k(64);
        let rtn = RtnQuantizer::new(WeightPrecision::Int4, group).quantize(&w);
        let gptq = GptqQuantizer::new(WeightPrecision::Int4, group)
            .quantize(&w, &calib)
            .expect("ok");

        let e_rtn = output_err(&w, &rtn.dequantize(), &held_out);
        let e_gptq = output_err(&w, &gptq.dequantize(), &held_out);
        // With i.i.d. synthetic held-out data (no structure shared with the
        // calibration set beyond the distribution) GPTQ has nothing to
        // exploit, so parity-within-noise is the expectation here.
        assert!(e_gptq < e_rtn * 1.2, "GPTQ {e_gptq} vs RTN {e_rtn}");
    }

    #[test]
    fn gptq_codes_are_packable() {
        use crate::pack::{PackDim, PackedMatrix};
        let mut g = SynthGenerator::new(43);
        let w = g.llm_weights(32, 16);
        let calib = g.llm_activations(64, 32);
        let q = GptqQuantizer::new(WeightPrecision::Int4, GroupShape::along_k(32))
            .quantize(&w, &calib)
            .expect("ok");
        let p = PackedMatrix::pack(&q, PackDim::N).expect("packs");
        assert_eq!(p.unpack().codes(), q.codes());
    }

    #[test]
    fn gptq_int2_runs() {
        let mut g = SynthGenerator::new(44);
        let w = g.llm_weights(32, 8);
        let calib = g.llm_activations(64, 32);
        let q = GptqQuantizer::new(WeightPrecision::Int2, GroupShape::along_k(16))
            .quantize(&w, &calib)
            .expect("ok");
        assert!(q.codes().iter().all(|&c| (-2..=1).contains(&c)));
    }

    #[test]
    #[should_panic(expected = "k-only quantization groups")]
    fn two_dimensional_groups_rejected() {
        GptqQuantizer::new(WeightPrecision::Int4, GroupShape::G32X4);
    }

    #[test]
    #[should_panic(expected = "damping must be positive")]
    fn non_positive_damping_rejected() {
        GptqQuantizer::new(WeightPrecision::Int4, GroupShape::G128).with_damping(0.0);
    }
}
