//! Minimal row-major matrix containers used across the PacQ stack.
//!
//! GEMM convention follows the paper (Figure 3): `A` is `[m, k]`
//! activations, `B` is `[k, n]` weights, `C` is `[m, n]` outputs.

use core::fmt;
use pacq_fp16::Fp16;

/// A row-major `rows × cols` matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MatrixF32 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl MatrixF32 {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        MatrixF32 {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        MatrixF32 { rows, cols, data }
    }

    /// Builds a matrix element-wise.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        MatrixF32 { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds"
        );
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds"
        );
        self.data[row * self.cols + col] = value;
    }

    /// The underlying row-major slice, mutable. Row `i` occupies
    /// `[i * cols, (i + 1) * cols)` — chunking by `cols` yields rows,
    /// which is how the execution engines fan work out across threads.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// The underlying row-major slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// One row as a slice.
    pub fn row(&self, row: usize) -> &[f32] {
        assert!(row < self.rows, "row {row} out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Rounds every element to FP16 and back (models FP16 storage).
    pub fn quantize_storage_fp16(&self) -> MatrixF32 {
        MatrixF32 {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .map(|&v| Fp16::from_f32(v).to_f32())
                .collect(),
        }
    }

    /// Converts to an FP16 matrix.
    pub fn to_f16(&self) -> MatrixF16 {
        MatrixF16 {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| Fp16::from_f32(v)).collect(),
        }
    }

    /// Reference GEMM `self × rhs` in f64 accumulation (the functional
    /// oracle for every dataflow engine).
    ///
    /// Output rows are independent, so they are fanned out across the
    /// rayon pool; the k-loop stays sequential per element, making the
    /// result bit-identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &MatrixF32) -> MatrixF32 {
        use rayon::prelude::*;
        assert_eq!(self.cols, rhs.rows, "inner dimensions must match");
        let n = rhs.cols;
        let mut out = MatrixF32::zeros(self.rows, n);
        if self.rows == 0 || n == 0 {
            return out;
        }
        out.data.par_chunks_mut(n).enumerate().for_each(|(i, row)| {
            let lhs = self.row(i);
            for (j, cell) in row.iter_mut().enumerate() {
                let mut acc = 0f64;
                for (t, &l) in lhs.iter().enumerate() {
                    acc += l as f64 * rhs.get(t, j) as f64;
                }
                *cell = acc as f32;
            }
        });
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt()
    }

    /// Mean squared difference with another matrix of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mse(&self, other: &MatrixF32) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        if self.data.is_empty() {
            return 0.0;
        }
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| {
                let d = a as f64 - b as f64;
                d * d
            })
            .sum::<f64>()
            / self.data.len() as f64
    }
}

impl fmt::Display for MatrixF32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "MatrixF32 {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            for c in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "…")?;
        }
        Ok(())
    }
}

/// A row-major matrix of FP16 values.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MatrixF16 {
    rows: usize,
    cols: usize,
    data: Vec<Fp16>,
}

impl MatrixF16 {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        MatrixF16 {
            rows,
            cols,
            data: vec![Fp16::ZERO; rows * cols],
        }
    }

    /// Creates from row-major FP16 data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Fp16>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        MatrixF16 { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> Fp16 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds"
        );
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: Fp16) {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of bounds"
        );
        self.data[row * self.cols + col] = value;
    }

    /// One row as a slice.
    pub fn row(&self, row: usize) -> &[Fp16] {
        assert!(row < self.rows, "row {row} out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Converts to f32 (exact).
    pub fn to_f32(&self) -> MatrixF32 {
        MatrixF32 {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v.to_f32()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_manual() {
        let a = MatrixF32::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = MatrixF32::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn from_fn_and_accessors() {
        let m = MatrixF32::from_fn(3, 4, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.get(2, 3), 23.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0, 13.0]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
    }

    #[test]
    fn fp16_storage_rounds() {
        let m = MatrixF32::from_vec(1, 2, vec![1.0, 2049.0]);
        let q = m.quantize_storage_fp16();
        assert_eq!(q.get(0, 0), 1.0);
        assert_eq!(q.get(0, 1), 2048.0); // RNE at the fp16 grid
    }

    #[test]
    fn f16_roundtrip() {
        let m = MatrixF32::from_fn(4, 4, |r, c| (r as f32 - c as f32) * 0.5);
        assert_eq!(m.to_f16().to_f32(), m);
    }

    #[test]
    fn mse_of_identical_is_zero() {
        let m = MatrixF32::from_fn(5, 5, |r, c| (r + c) as f32);
        assert_eq!(m.mse(&m), 0.0);
        assert!(m.frobenius_norm() > 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_checked() {
        MatrixF32::zeros(2, 2).get(2, 0);
    }
}
