//! Offline drop-in subset of the `rand` 0.9 API.
//!
//! The workspace builds in hermetic environments with no crates.io
//! access, so the handful of external dependencies are provided as
//! in-tree shims (see `DESIGN.md` §8). This crate implements exactly the
//! surface the workspace consumes:
//!
//! * [`rngs::StdRng`] — a deterministic, seedable generator,
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::random_range`] over half-open `f32`/`f64`/integer ranges.
//!
//! The generator is xoshiro256++ seeded via splitmix64 — a documented,
//! stable stream, so every `SynthGenerator` fixture in the workspace is
//! reproducible across runs and platforms. It is **not** the same stream
//! as upstream `rand`'s `StdRng` (which is explicitly documented as
//! non-portable across versions); all in-repo fixtures were generated
//! with this stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be built from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed via splitmix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<G: RngCore> Rng for G {}

/// A range that knows how to sample itself from an RNG.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 24 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + (self.end - self.start) * unit
    }
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight
                // bias for astronomically large spans is irrelevant for
                // the synthetic-fixture use here and keeps the stream a
                // pure function of `next_u64`.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_sample_uint!(u64, usize, u32);

macro_rules! impl_sample_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64 - self.start as i64) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i64 + hi as i64) as $t
            }
        }
    )*};
}

impl_sample_int!(i64 => u64, i32 => u32, i8 => u8);

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++ seeded
    /// through splitmix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain reference).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random_range(0.0f64..1.0), b.random_range(0.0f64..1.0));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.random_range(-3.0f32..5.0);
            assert!((-3.0..5.0).contains(&f));
            let d = rng.random_range(1e-12f64..1.0);
            assert!((1e-12..1.0).contains(&d));
            let u = rng.random_range(3usize..17);
            assert!((3..17).contains(&u));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<f64> = (0..8).map(|_| a.random_range(0.0..1.0)).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.random_range(0.0..1.0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn roughly_uniform_mean() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
