//! Low-precision integer weight scalars and the packed `INT16` words the
//! hyper-asymmetric GEMM flow carries through the memory hierarchy.
//!
//! The paper's packing format `P(B_x)_y` packs `x` weights into one 16-bit
//! word along dimension `y`. This module provides the *word-level* types
//! ([`Int4`], [`Int2`], [`PackedWord`]); matrix-level packing (choosing the
//! dimension) lives in the `pacq-quant` crate.

use core::fmt;

use pacq_error::{PacqError, PacqResult};

/// Weight precision of a hyper-asymmetric GEMM (the activation side is
/// always FP16 in this work).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightPrecision {
    /// 4-bit signed weights, 4 per 16-bit word.
    Int4,
    /// 2-bit signed weights, 8 per 16-bit word.
    Int2,
}

impl WeightPrecision {
    /// Number of weights packed into one 16-bit word (`x` in `P(B_x)_y`).
    #[inline]
    pub const fn lanes(self) -> usize {
        match self {
            WeightPrecision::Int4 => 4,
            WeightPrecision::Int2 => 8,
        }
    }

    /// Bit width of one weight.
    #[inline]
    pub const fn bits(self) -> u32 {
        match self {
            WeightPrecision::Int4 => 4,
            WeightPrecision::Int2 => 2,
        }
    }

    /// Smallest representable signed value (-8 or -2).
    #[inline]
    pub const fn min_value(self) -> i8 {
        match self {
            WeightPrecision::Int4 => -8,
            WeightPrecision::Int2 => -2,
        }
    }

    /// Largest representable signed value (7 or 1).
    #[inline]
    pub const fn max_value(self) -> i8 {
        match self {
            WeightPrecision::Int4 => 7,
            WeightPrecision::Int2 => 1,
        }
    }

    /// The unsigned bias added to make the code non-negative (8 or 2).
    ///
    /// Section IV of the paper biases a signed INT4 weight by `+8` so that
    /// `B + 8 + 1024` lands in `[1024, 2048)`.
    #[inline]
    pub const fn bias(self) -> i32 {
        -(self.min_value() as i32)
    }

    /// The FP-domain offset folded out by Eq. (1): `1024 + bias`
    /// (1032 for INT4, 1026 for INT2).
    #[inline]
    pub const fn fp_offset(self) -> i32 {
        1024 + self.bias()
    }
}

impl fmt::Display for WeightPrecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightPrecision::Int4 => f.write_str("INT4"),
            WeightPrecision::Int2 => f.write_str("INT2"),
        }
    }
}

/// A signed 4-bit weight value in `[-8, 7]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Int4(i8);

impl Int4 {
    /// Smallest value (-8).
    pub const MIN: Int4 = Int4(-8);
    /// Largest value (7).
    pub const MAX: Int4 = Int4(7);

    /// Creates an `Int4`, returning `None` when out of range.
    #[inline]
    pub const fn new(value: i8) -> Option<Self> {
        if value >= -8 && value <= 7 {
            Some(Int4(value))
        } else {
            None
        }
    }

    /// Creates an `Int4`, clamping out-of-range inputs.
    #[inline]
    pub const fn saturating(value: i32) -> Self {
        if value < -8 {
            Int4(-8)
        } else if value > 7 {
            Int4(7)
        } else {
            Int4(value as i8)
        }
    }

    /// The signed value.
    #[inline]
    pub const fn value(self) -> i8 {
        self.0
    }

    /// The biased unsigned 4-bit code `value + 8` in `[0, 15]`, i.e. the
    /// `yyyy` nibble of observation ② in the paper.
    #[inline]
    pub const fn biased_code(self) -> u8 {
        (self.0 + 8) as u8
    }

    /// Reconstructs from the biased code, rejecting codes above 15.
    #[inline]
    pub fn from_biased_code(code: u8) -> PacqResult<Self> {
        if code > 15 {
            return Err(PacqError::invalid_input(
                "Int4::from_biased_code",
                format!("biased code {code} out of range [0, 15]"),
            ));
        }
        Ok(Int4(code as i8 - 8))
    }

    /// Reconstructs from the low 4 bits of `code`, ignoring the rest.
    ///
    /// Infallible companion of [`Int4::from_biased_code`] for callers
    /// that have already masked the lane out of a [`PackedWord`].
    #[inline]
    pub const fn from_masked_code(code: u8) -> Self {
        Int4((code & 0xF) as i8 - 8)
    }

    /// Iterator over all 16 representable values.
    pub fn all_values() -> impl Iterator<Item = Int4> {
        (-8..=7).map(Int4)
    }
}

impl fmt::Display for Int4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<i8> for Int4 {
    type Error = WeightRangeError;
    fn try_from(value: i8) -> Result<Self, Self::Error> {
        Int4::new(value).ok_or(WeightRangeError {
            value: value as i32,
            precision: WeightPrecision::Int4,
        })
    }
}

impl From<Int4> for i8 {
    fn from(value: Int4) -> i8 {
        value.value()
    }
}

/// A signed 2-bit weight value in `[-2, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Int2(i8);

impl Int2 {
    /// Smallest value (-2).
    pub const MIN: Int2 = Int2(-2);
    /// Largest value (1).
    pub const MAX: Int2 = Int2(1);

    /// Creates an `Int2`, returning `None` when out of range.
    #[inline]
    pub const fn new(value: i8) -> Option<Self> {
        if value >= -2 && value <= 1 {
            Some(Int2(value))
        } else {
            None
        }
    }

    /// Creates an `Int2`, clamping out-of-range inputs.
    #[inline]
    pub const fn saturating(value: i32) -> Self {
        if value < -2 {
            Int2(-2)
        } else if value > 1 {
            Int2(1)
        } else {
            Int2(value as i8)
        }
    }

    /// The signed value.
    #[inline]
    pub const fn value(self) -> i8 {
        self.0
    }

    /// The biased unsigned 2-bit code `value + 2` in `[0, 3]`.
    #[inline]
    pub const fn biased_code(self) -> u8 {
        (self.0 + 2) as u8
    }

    /// Reconstructs from the biased code, rejecting codes above 3.
    #[inline]
    pub fn from_biased_code(code: u8) -> PacqResult<Self> {
        if code > 3 {
            return Err(PacqError::invalid_input(
                "Int2::from_biased_code",
                format!("biased code {code} out of range [0, 3]"),
            ));
        }
        Ok(Int2(code as i8 - 2))
    }

    /// Reconstructs from the low 2 bits of `code`, ignoring the rest.
    ///
    /// Infallible companion of [`Int2::from_biased_code`] for callers
    /// that have already masked the lane out of a [`PackedWord`].
    #[inline]
    pub const fn from_masked_code(code: u8) -> Self {
        Int2((code & 0x3) as i8 - 2)
    }

    /// Iterator over all 4 representable values.
    pub fn all_values() -> impl Iterator<Item = Int2> {
        (-2..=1).map(Int2)
    }
}

impl fmt::Display for Int2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<i8> for Int2 {
    type Error = WeightRangeError;
    fn try_from(value: i8) -> Result<Self, Self::Error> {
        Int2::new(value).ok_or(WeightRangeError {
            value: value as i32,
            precision: WeightPrecision::Int2,
        })
    }
}

impl From<Int2> for i8 {
    fn from(value: Int2) -> i8 {
        value.value()
    }
}

/// Error returned when a value does not fit the requested weight precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightRangeError {
    value: i32,
    precision: WeightPrecision,
}

impl fmt::Display for WeightRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "value {} does not fit in {} (range [{}, {}])",
            self.value,
            self.precision,
            self.precision.min_value(),
            self.precision.max_value()
        )
    }
}

impl std::error::Error for WeightRangeError {}

/// One 16-bit word holding packed low-precision weights: 4×INT4 or 8×INT2,
/// stored as *biased* codes so the hardware never sees a sign bit (the
/// paper's `B + 8` transformation is applied at pack time).
///
/// Lane 0 occupies the least-significant bits.
///
/// # Examples
///
/// ```
/// use pacq_fp16::{Int4, PackedWord};
///
/// let w = PackedWord::pack_int4([
///     Int4::new(-8).unwrap(),
///     Int4::new(0).unwrap(),
///     Int4::new(3).unwrap(),
///     Int4::new(7).unwrap(),
/// ]);
/// assert_eq!(w.unpack_int4().map(|v| v.value()), [-8, 0, 3, 7]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PackedWord(u16);

impl PackedWord {
    /// Creates a packed word from its raw 16 bits (biased codes).
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        PackedWord(bits)
    }

    /// The raw 16 bits.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Packs four INT4 weights (lane 0 in the low nibble).
    pub fn pack_int4(weights: [Int4; 4]) -> Self {
        let mut bits = 0u16;
        for (lane, w) in weights.iter().enumerate() {
            bits |= (w.biased_code() as u16) << (4 * lane);
        }
        PackedWord(bits)
    }

    /// Unpacks four INT4 weights.
    pub fn unpack_int4(self) -> [Int4; 4] {
        core::array::from_fn(|lane| Int4::from_masked_code(((self.0 >> (4 * lane)) & 0xF) as u8))
    }

    /// Packs eight INT2 weights (lane 0 in the low 2 bits).
    pub fn pack_int2(weights: [Int2; 8]) -> Self {
        let mut bits = 0u16;
        for (lane, w) in weights.iter().enumerate() {
            bits |= (w.biased_code() as u16) << (2 * lane);
        }
        PackedWord(bits)
    }

    /// Unpacks eight INT2 weights.
    pub fn unpack_int2(self) -> [Int2; 8] {
        core::array::from_fn(|lane| Int2::from_masked_code(((self.0 >> (2 * lane)) & 0x3) as u8))
    }

    /// The biased code in `lane` for the given precision.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= precision.lanes()`.
    pub fn biased_lane(self, precision: WeightPrecision, lane: usize) -> u8 {
        assert!(
            lane < precision.lanes(),
            "lane {lane} out of range for {precision}"
        );
        match precision {
            WeightPrecision::Int4 => ((self.0 >> (4 * lane)) & 0xF) as u8,
            WeightPrecision::Int2 => ((self.0 >> (2 * lane)) & 0x3) as u8,
        }
    }

    /// The signed weight value in `lane` for the given precision.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= precision.lanes()`.
    pub fn signed_lane(self, precision: WeightPrecision, lane: usize) -> i8 {
        let code = self.biased_lane(precision, lane) as i32;
        (code - precision.bias()) as i8
    }
}

impl fmt::LowerHex for PackedWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_constants() {
        assert_eq!(WeightPrecision::Int4.lanes(), 4);
        assert_eq!(WeightPrecision::Int2.lanes(), 8);
        assert_eq!(WeightPrecision::Int4.fp_offset(), 1032);
        assert_eq!(WeightPrecision::Int2.fp_offset(), 1026);
        assert_eq!(WeightPrecision::Int4.bias(), 8);
        assert_eq!(WeightPrecision::Int2.bias(), 2);
    }

    #[test]
    fn int4_roundtrip_all_values() {
        for w in Int4::all_values() {
            assert_eq!(Int4::from_biased_code(w.biased_code()), Ok(w));
            assert_eq!(Int4::from_masked_code(w.biased_code()), w);
            assert_eq!(Int4::new(w.value()), Some(w));
        }
        assert_eq!(Int4::new(8), None);
        assert_eq!(Int4::new(-9), None);
        assert_eq!(Int4::saturating(100), Int4::MAX);
        assert_eq!(Int4::saturating(-100), Int4::MIN);
    }

    #[test]
    fn int2_roundtrip_all_values() {
        for w in Int2::all_values() {
            assert_eq!(Int2::from_biased_code(w.biased_code()), Ok(w));
            assert_eq!(Int2::from_masked_code(w.biased_code()), w);
            assert_eq!(Int2::new(w.value()), Some(w));
        }
        assert_eq!(Int2::new(2), None);
        assert_eq!(Int2::saturating(5), Int2::MAX);
    }

    #[test]
    fn packed_word_int4_roundtrip_exhaustive_lanes() {
        for a in Int4::all_values() {
            for b in [Int4::MIN, Int4::MAX, Int4::new(0).unwrap()] {
                let w = PackedWord::pack_int4([a, b, a, b]);
                assert_eq!(w.unpack_int4(), [a, b, a, b]);
                assert_eq!(w.signed_lane(WeightPrecision::Int4, 0), a.value());
                assert_eq!(w.signed_lane(WeightPrecision::Int4, 1), b.value());
            }
        }
    }

    #[test]
    fn packed_word_int2_roundtrip() {
        let ws: [Int2; 8] = core::array::from_fn(|i| Int2::new((i as i8 % 4) - 2).unwrap());
        let w = PackedWord::pack_int2(ws);
        assert_eq!(w.unpack_int2(), ws);
        for (lane, expect) in ws.iter().enumerate() {
            assert_eq!(w.signed_lane(WeightPrecision::Int2, lane), expect.value());
        }
    }

    #[test]
    fn lane0_is_least_significant() {
        let w = PackedWord::pack_int4([
            Int4::new(-8).unwrap(), // code 0
            Int4::new(-7).unwrap(), // code 1
            Int4::new(-6).unwrap(), // code 2
            Int4::new(-5).unwrap(), // code 3
        ]);
        assert_eq!(w.to_bits(), 0x3210);
    }

    #[test]
    #[should_panic(expected = "lane 4 out of range")]
    fn lane_bounds_checked() {
        PackedWord::from_bits(0).biased_lane(WeightPrecision::Int4, 4);
    }

    #[test]
    fn out_of_range_biased_codes_are_rejected_not_panicking() {
        for code in 16u8..=u8::MAX {
            assert!(Int4::from_biased_code(code).is_err(), "code {code}");
        }
        for code in 4u8..=u8::MAX {
            assert!(Int2::from_biased_code(code).is_err(), "code {code}");
        }
    }

    #[test]
    fn try_from_reports_error() {
        let err = Int4::try_from(9i8).unwrap_err();
        assert!(err.to_string().contains("does not fit in INT4"));
    }
}
