//! Correctly-rounded reference arithmetic for [`Fp16`].
//!
//! These routines are the *specification* the hardware datapath models in
//! [`crate::mul`] and [`crate::parallel`] are tested against. They are
//! written as textbook bit-level soft-float (normalize → operate → round to
//! nearest even) with full subnormal, infinity and NaN handling.
//!
//! They are themselves cross-validated against `f32` arithmetic: by
//! Figueroa's double-rounding theorem, evaluating a binary16 `+`/`×` in
//! binary32 and converting back is correctly rounded because
//! `24 ≥ 2·11 + 2`, so `Fp16::from_f32(a.to_f32() * b.to_f32())` is a
//! second, independent oracle (see the exhaustive tests at the bottom).

use crate::bits::{Fp16, EXP_BIAS, EXP_MAX, HIDDEN_BIT, MANT_BITS, MANT_MASK};

/// Correctly-rounded (round-to-nearest-even) binary16 multiplication.
///
/// # Examples
///
/// ```
/// use pacq_fp16::{softfloat, Fp16};
///
/// let p = softfloat::mul(Fp16::from_f32(1.5), Fp16::from_f32(-2.0));
/// assert_eq!(p.to_f32(), -3.0);
/// ```
pub fn mul(a: Fp16, b: Fp16) -> Fp16 {
    let sign = a.sign() ^ b.sign();
    let sign_bits = (sign as u16) << 15;

    // Specials.
    if a.is_nan() || b.is_nan() {
        return Fp16::NAN;
    }
    if a.is_infinite() || b.is_infinite() {
        if a.is_zero() || b.is_zero() {
            return Fp16::NAN; // 0 × inf
        }
        return Fp16::from_bits(sign_bits | Fp16::INFINITY.to_bits());
    }
    if a.is_zero() || b.is_zero() {
        return Fp16::from_bits(sign_bits);
    }

    // Normalize operands into (11-bit significand with bit 10 set, exponent).
    let (sig_a, exp_a) = normalize(a);
    let (sig_b, exp_b) = normalize(b);

    // Exact 22-bit product of two 11-bit significands, value in [2^20, 2^22).
    let prod = (sig_a as u32) * (sig_b as u32);

    // Interpret significands as 1.m (scale 2^-10 each): the product scale is
    // 2^-20, so the product's integer msb is bit 20 (value in [1,4)).
    let mut exp = exp_a + exp_b;
    let mut frac = prod;
    if frac & (1 << 21) != 0 {
        // Product in [2,4): one-bit normalization shift (sticky preserved).
        frac = (frac >> 1) | (frac & 1);
        exp += 1;
    }
    // `frac` now has its msb at bit 20; bits [20:10] are the 11-bit result
    // significand, bits [9:0] are round/sticky material.
    round_pack(sign, exp, frac)
}

/// Correctly-rounded (round-to-nearest-even) binary16 addition.
///
/// # Examples
///
/// ```
/// use pacq_fp16::{softfloat, Fp16};
///
/// let s = softfloat::add(Fp16::from_f32(1.0), Fp16::from_f32(2.0));
/// assert_eq!(s.to_f32(), 3.0);
/// ```
pub fn add(a: Fp16, b: Fp16) -> Fp16 {
    // Specials.
    if a.is_nan() || b.is_nan() {
        return Fp16::NAN;
    }
    match (a.is_infinite(), b.is_infinite()) {
        (true, true) => {
            return if a.sign() == b.sign() { a } else { Fp16::NAN };
        }
        (true, false) => return a,
        (false, true) => return b,
        _ => {}
    }
    if a.is_zero() && b.is_zero() {
        // +0 + -0 = +0 under RNE; -0 + -0 = -0.
        return if a.sign() && b.sign() {
            Fp16::NEG_ZERO
        } else {
            Fp16::ZERO
        };
    }
    if a.is_zero() {
        return b;
    }
    if b.is_zero() {
        return a;
    }

    // Fixed-point path: significand << GUARD, exponent aligned to the larger.
    const GUARD: u32 = 3;
    let (sig_a, exp_a) = normalize_or_subnormal(a);
    let (sig_b, exp_b) = normalize_or_subnormal(b);

    let (mut hi_sig, hi_exp, hi_sign, lo_sig, lo_exp, lo_sign) = if (exp_a, sig_a) >= (exp_b, sig_b)
    {
        (sig_a, exp_a, a.sign(), sig_b, exp_b, b.sign())
    } else {
        (sig_b, exp_b, b.sign(), sig_a, exp_a, a.sign())
    };

    hi_sig <<= GUARD;
    let shift = (hi_exp - lo_exp) as u32;
    let lo_aligned = if shift >= 32 {
        u32::from(lo_sig != 0) // pure sticky
    } else {
        let shifted = ((lo_sig as u64) << GUARD) >> shift;
        let sticky = ((lo_sig as u64) << GUARD) & ((1u64 << shift) - 1) != 0;
        shifted as u32 | u32::from(sticky)
    };

    let (sum, sign) = if hi_sign == lo_sign {
        (hi_sig as u32 + lo_aligned, hi_sign)
    } else {
        let diff = (hi_sig as u32).wrapping_sub(lo_aligned);
        if diff == 0 {
            return Fp16::ZERO; // exact cancellation -> +0 under RNE
        }
        (diff, hi_sign)
    };

    // `sum` represents value = sum × 2^(exp − 10 − GUARD). Rebase so the
    // msb sits at bit 20 and value = frac × 2^(exp − 20), the window
    // `round_pack` expects. The msb is at most bit 14 (11-bit significand
    // + 3 guard bits + 1 carry), so this is always an exact left shift.
    let msb = 31 - sum.leading_zeros(); // sum != 0 here
    let exp = hi_exp + msb as i32 - (MANT_BITS + GUARD) as i32;
    let frac = sum << (20 - msb);
    round_pack(sign, exp, frac)
}

/// Binary16 subtraction: `a - b` as `add(a, -b)`.
pub fn sub(a: Fp16, b: Fp16) -> Fp16 {
    add(a, b.neg())
}

/// A dot product computed as sequential binary16 multiply-then-add, the
/// arithmetic a scalar FP16 pipeline performs.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot_fp16(a: &[Fp16], b: &[Fp16]) -> Fp16 {
    assert_eq!(
        a.len(),
        b.len(),
        "dot product operands must match in length"
    );
    let mut acc = Fp16::ZERO;
    for (&x, &y) in a.iter().zip(b) {
        acc = add(acc, mul(x, y));
    }
    acc
}

/// A dot product with binary32 accumulation (products still correctly
/// rounded to binary16 first), matching tensor-core style mixed-precision
/// accumulate.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot_fp32_acc(a: &[Fp16], b: &[Fp16]) -> f32 {
    assert_eq!(
        a.len(),
        b.len(),
        "dot product operands must match in length"
    );
    let mut acc = 0f32;
    for (&x, &y) in a.iter().zip(b) {
        acc += mul(x, y).to_f32();
    }
    acc
}

/// Normalizes a non-zero finite value to an 11-bit significand with the
/// msb (hidden bit position) set, returning `(significand, exponent)` such
/// that the value is `± significand × 2^(exponent - 10)`.
fn normalize(x: Fp16) -> (u16, i32) {
    debug_assert!(x.is_finite() && !x.is_zero());
    let mut sig = x.significand();
    let mut exp = x.unbiased_exponent();
    // Subnormals: shift until the hidden-bit position is occupied.
    while sig & HIDDEN_BIT == 0 {
        sig <<= 1;
        exp -= 1;
    }
    (sig, exp)
}

/// Like [`normalize`] but used by the adder.
fn normalize_or_subnormal(x: Fp16) -> (u16, i32) {
    normalize(x)
}

/// Packs `(sign, exponent, frac)` where `frac` is a 21-bit window with the
/// msb at bit 20 (value in [1,2) × 2^exponent) and bits [9:0] acting as
/// round/sticky material, applying RNE and the overflow/underflow rules.
fn round_pack(sign: bool, exp: i32, frac: u32) -> Fp16 {
    let sign_bits = (sign as u16) << 15;
    let biased = exp + EXP_BIAS;

    if biased >= EXP_MAX as i32 {
        return Fp16::from_bits(sign_bits | Fp16::INFINITY.to_bits());
    }

    if biased <= 0 {
        // Subnormal result: shift right by the exponent deficit + the 10-bit
        // narrowing, with sticky.
        let shift = (11 - biased) as u32; // >= 12
        if shift > 21 {
            // Even the hidden bit falls below the rounding point.
            // shift == 22 can still round up to MIN_SUBNORMAL when frac is
            // large enough; handle via the generic path below with full
            // sticky collapse.
            if shift > 22 {
                return Fp16::from_bits(sign_bits);
            }
        }
        let shift = shift.min(22);
        let kept = (frac >> shift) as u16;
        let round_bit = (frac >> (shift - 1)) & 1;
        let sticky = frac & ((1 << (shift - 1)) - 1) != 0;
        let mut out = kept;
        if round_bit == 1 && (sticky || kept & 1 == 1) {
            out += 1; // carry into MIN_POSITIVE is the correct behaviour
        }
        return Fp16::from_bits(sign_bits | out);
    }

    // Normal: keep bits [20:10], round on bit 9, sticky below.
    let kept = (frac >> 10) as u16; // 11 bits, msb = hidden
    let round_bit = (frac >> 9) & 1;
    let sticky = frac & 0x1FF != 0;
    let mut sig = kept;
    let mut biased = biased as u16;
    if round_bit == 1 && (sticky || sig & 1 == 1) {
        sig += 1;
        if sig == (1 << (MANT_BITS + 1)) {
            sig >>= 1;
            biased += 1;
            if biased >= EXP_MAX {
                return Fp16::from_bits(sign_bits | Fp16::INFINITY.to_bits());
            }
        }
    }
    Fp16::from_bits(sign_bits | (biased << MANT_BITS) | (sig & MANT_MASK))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The f32 oracle: correctly rounded by the double-rounding theorem.
    fn mul_oracle(a: Fp16, b: Fp16) -> Fp16 {
        Fp16::from_f32(a.to_f32() * b.to_f32())
    }

    fn add_oracle(a: Fp16, b: Fp16) -> Fp16 {
        Fp16::from_f32(a.to_f32() + b.to_f32())
    }

    fn same(x: Fp16, y: Fp16) -> bool {
        (x.is_nan() && y.is_nan()) || x == y
    }

    #[test]
    fn mul_matches_f32_oracle_on_dense_sample() {
        // Stride through all pairs coprime to 2^16 for broad coverage.
        let mut a_bits = 0u16;
        for i in 0..20_000u32 {
            a_bits = a_bits.wrapping_add(24_593);
            let mut b_bits = a_bits.wrapping_mul(7);
            for _ in 0..16 {
                b_bits = b_bits.wrapping_add(40_961);
                let a = Fp16::from_bits(a_bits);
                let b = Fp16::from_bits(b_bits);
                let got = mul(a, b);
                let want = mul_oracle(a, b);
                assert!(
                    same(got, want),
                    "mul({:04x}, {:04x}) = {:04x}, oracle {:04x} (iter {i})",
                    a_bits,
                    b_bits,
                    got.to_bits(),
                    want.to_bits()
                );
            }
        }
    }

    #[test]
    fn add_matches_f32_oracle_on_dense_sample() {
        let mut a_bits = 0u16;
        for i in 0..20_000u32 {
            a_bits = a_bits.wrapping_add(28_657);
            let mut b_bits = a_bits.wrapping_mul(13);
            for _ in 0..16 {
                b_bits = b_bits.wrapping_add(52_363);
                let a = Fp16::from_bits(a_bits);
                let b = Fp16::from_bits(b_bits);
                let got = add(a, b);
                let want = add_oracle(a, b);
                assert!(
                    same(got, want),
                    "add({:04x}, {:04x}) = {:04x}, oracle {:04x} (iter {i})",
                    a_bits,
                    b_bits,
                    got.to_bits(),
                    want.to_bits()
                );
            }
        }
    }

    #[test]
    fn mul_exhaustive_against_oracle_for_one_operand_sweep() {
        // Fix a handful of interesting multiplicands and sweep ALL 65536
        // values of the other operand (this is the regime the parallel
        // FP-INT unit lives in: one full-range activation, few weights).
        let fixed = [
            0x0000, 0x8000, 0x0001, 0x03FF, 0x0400, 0x3C00, 0x3BFF, 0x7BFF, 0x7C00, 0x7E01,
            0x6400, // 1024.0
            0x6408, // 1032.0
            0x6417, // 1047.0 = 1032 + 15
        ];
        for &f in &fixed {
            let b = Fp16::from_bits(f);
            for a in Fp16::all_values() {
                let got = mul(a, b);
                let want = mul_oracle(a, b);
                assert!(
                    same(got, want),
                    "mul({:04x}, {:04x}) = {:04x}, oracle {:04x}",
                    a.to_bits(),
                    f,
                    got.to_bits(),
                    want.to_bits()
                );
            }
        }
    }

    #[test]
    fn add_exhaustive_against_oracle_for_one_operand_sweep() {
        let fixed = [
            0x0000, 0x8000, 0x0001, 0x8001, 0x03FF, 0x0400, 0x3C00, 0xBC00, 0x7BFF, 0xFBFF, 0x7C00,
            0xFC00, 0x7E01,
        ];
        for &f in &fixed {
            let b = Fp16::from_bits(f);
            for a in Fp16::all_values() {
                let got = add(a, b);
                let want = add_oracle(a, b);
                assert!(
                    same(got, want),
                    "add({:04x}, {:04x}) = {:04x}, oracle {:04x}",
                    a.to_bits(),
                    f,
                    got.to_bits(),
                    want.to_bits()
                );
            }
        }
    }

    #[test]
    fn mul_special_cases() {
        assert!(mul(Fp16::ZERO, Fp16::INFINITY).is_nan());
        assert!(mul(Fp16::NAN, Fp16::ONE).is_nan());
        assert_eq!(mul(Fp16::INFINITY, Fp16::NEG_ONE), Fp16::NEG_INFINITY);
        assert_eq!(mul(Fp16::NEG_ZERO, Fp16::ONE), Fp16::NEG_ZERO);
        assert_eq!(mul(Fp16::NEG_ZERO, Fp16::NEG_ONE), Fp16::ZERO);
    }

    #[test]
    fn add_special_cases() {
        assert!(add(Fp16::INFINITY, Fp16::NEG_INFINITY).is_nan());
        assert_eq!(add(Fp16::INFINITY, Fp16::MAX), Fp16::INFINITY);
        assert_eq!(add(Fp16::NEG_ZERO, Fp16::ZERO), Fp16::ZERO);
        assert_eq!(add(Fp16::NEG_ZERO, Fp16::NEG_ZERO), Fp16::NEG_ZERO);
        // Exact cancellation yields +0 under round-to-nearest.
        assert_eq!(add(Fp16::ONE, Fp16::NEG_ONE), Fp16::ZERO);
    }

    #[test]
    fn mul_subnormal_results() {
        // MIN_POSITIVE * 0.5 lands exactly on a subnormal.
        let got = mul(Fp16::MIN_POSITIVE, Fp16::from_f32(0.5));
        assert_eq!(got.to_f32(), 2.0_f32.powi(-15));
        assert!(got.is_subnormal());
        // Underflow to zero.
        let got = mul(Fp16::MIN_SUBNORMAL, Fp16::MIN_SUBNORMAL);
        assert_eq!(got, Fp16::ZERO);
    }

    #[test]
    fn mul_overflow_saturates_to_infinity() {
        assert_eq!(mul(Fp16::MAX, Fp16::from_f32(2.0)), Fp16::INFINITY);
        assert_eq!(
            mul(Fp16::MAX.neg(), Fp16::from_f32(2.0)),
            Fp16::NEG_INFINITY
        );
    }

    #[test]
    fn dot_products_agree_with_manual_sequence() {
        let a: Vec<Fp16> = [1.0f32, 2.0, 3.0, 4.0]
            .iter()
            .map(|&v| Fp16::from_f32(v))
            .collect();
        let b: Vec<Fp16> = [0.5f32, -1.0, 2.0, 0.25]
            .iter()
            .map(|&v| Fp16::from_f32(v))
            .collect();
        let d = dot_fp16(&a, &b);
        assert_eq!(d.to_f32(), 0.5 - 2.0 + 6.0 + 1.0);
        let d32 = dot_fp32_acc(&a, &b);
        assert_eq!(d32, 5.5);
    }
}
