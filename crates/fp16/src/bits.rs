//! The [`Fp16`] storage type: IEEE 754 binary16 implemented from scratch.
//!
//! PacQ's contribution is a bit-level hardware datapath, so this crate does
//! not depend on an external half-precision library: every conversion and
//! field accessor is spelled out so the datapath models in [`crate::mul`]
//! and [`crate::parallel`] can be audited against the IEEE 754 layout shown
//! in Figure 2 of the paper:
//!
//! ```text
//!   [15]   [14:10]     [9:0]
//!   sign   exponent    mantissa (10 stored bits, hidden bit = 1 when normal)
//! ```

use core::cmp::Ordering;
use core::fmt;

/// Width of the stored mantissa field in bits.
pub const MANT_BITS: u32 = 10;
/// Width of the exponent field in bits.
pub const EXP_BITS: u32 = 5;
/// Exponent bias (15 for binary16).
pub const EXP_BIAS: i32 = 15;
/// Maximum biased exponent value (all ones => inf/NaN).
pub const EXP_MAX: u16 = (1 << EXP_BITS) - 1;
/// Mask selecting the stored mantissa bits.
pub const MANT_MASK: u16 = (1 << MANT_BITS) - 1;
/// The implicit hidden bit position (bit 10 of the 11-bit significand).
pub const HIDDEN_BIT: u16 = 1 << MANT_BITS;

/// Classification of a binary16 value, mirroring [`core::num::FpCategory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fp16Class {
    /// Positive or negative zero.
    Zero,
    /// Subnormal (biased exponent 0, non-zero mantissa).
    Subnormal,
    /// Normal number (hidden bit = 1).
    Normal,
    /// Positive or negative infinity.
    Infinite,
    /// Not a number.
    Nan,
}

/// An IEEE 754 binary16 (half precision) value stored as its raw bit
/// pattern.
///
/// `Fp16` is a plain 16-bit storage type: all arithmetic lives in
/// [`crate::softfloat`] (the correctly-rounded reference) and in the
/// hardware datapath models. Two `Fp16`s compare equal iff their bit
/// patterns are equal (so `NaN == NaN` at this level and `+0 != -0`);
/// use [`Fp16::total_cmp`] or convert [`Fp16::to_f32`] for numeric
/// comparisons.
///
/// # Examples
///
/// ```
/// use pacq_fp16::Fp16;
///
/// let x = Fp16::from_f32(1.5);
/// assert_eq!(x.to_bits(), 0x3E00);
/// assert_eq!(x.to_f32(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fp16(u16);

impl Fp16 {
    /// Positive zero.
    pub const ZERO: Fp16 = Fp16(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: Fp16 = Fp16(0x8000);
    /// One.
    pub const ONE: Fp16 = Fp16(0x3C00);
    /// Negative one.
    pub const NEG_ONE: Fp16 = Fp16(0xBC00);
    /// Positive infinity.
    pub const INFINITY: Fp16 = Fp16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: Fp16 = Fp16(0xFC00);
    /// A canonical quiet NaN.
    pub const NAN: Fp16 = Fp16(0x7E00);
    /// Largest finite value (65504).
    pub const MAX: Fp16 = Fp16(0x7BFF);
    /// Smallest positive normal value (2^-14).
    pub const MIN_POSITIVE: Fp16 = Fp16(0x0400);
    /// Smallest positive subnormal value (2^-24).
    pub const MIN_SUBNORMAL: Fp16 = Fp16(0x0001);

    /// Creates a value from its raw IEEE 754 binary16 bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        Fp16(bits)
    }

    /// Returns the raw IEEE 754 binary16 bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Sign bit: `true` for negative (including -0 and negative NaNs).
    #[inline]
    pub const fn sign(self) -> bool {
        self.0 >> 15 != 0
    }

    /// The raw 5-bit biased exponent field.
    #[inline]
    pub const fn biased_exponent(self) -> u16 {
        (self.0 >> MANT_BITS) & EXP_MAX
    }

    /// The raw 10-bit stored mantissa field (without the hidden bit).
    #[inline]
    pub const fn mantissa(self) -> u16 {
        self.0 & MANT_MASK
    }

    /// The 11-bit significand including the hidden bit (0 for zero,
    /// `mantissa` for subnormals, `0x400 | mantissa` for normals).
    ///
    /// This is the integer the hardware mantissa multiplier consumes
    /// (right side of Figure 2 in the paper).
    #[inline]
    pub const fn significand(self) -> u16 {
        if self.biased_exponent() == 0 {
            self.mantissa()
        } else {
            HIDDEN_BIT | self.mantissa()
        }
    }

    /// Unbiased exponent of the significand interpreted as `1.m` (normals)
    /// or `0.m` scaled (subnormals share the minimum exponent).
    #[inline]
    pub const fn unbiased_exponent(self) -> i32 {
        let e = self.biased_exponent() as i32;
        if e == 0 {
            1 - EXP_BIAS
        } else {
            e - EXP_BIAS
        }
    }

    /// Classifies the value.
    #[inline]
    pub const fn classify(self) -> Fp16Class {
        let e = self.biased_exponent();
        let m = self.mantissa();
        match (e, m) {
            (0, 0) => Fp16Class::Zero,
            (0, _) => Fp16Class::Subnormal,
            (EXP_MAX, 0) => Fp16Class::Infinite,
            (EXP_MAX, _) => Fp16Class::Nan,
            _ => Fp16Class::Normal,
        }
    }

    /// `true` if the value is NaN.
    #[inline]
    pub const fn is_nan(self) -> bool {
        matches!(self.classify(), Fp16Class::Nan)
    }

    /// `true` if the value is +inf or -inf.
    #[inline]
    pub const fn is_infinite(self) -> bool {
        matches!(self.classify(), Fp16Class::Infinite)
    }

    /// `true` if the value is neither infinite nor NaN.
    #[inline]
    pub const fn is_finite(self) -> bool {
        self.biased_exponent() != EXP_MAX
    }

    /// `true` for +0 and -0.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 & 0x7FFF == 0
    }

    /// `true` for subnormal values.
    #[inline]
    pub const fn is_subnormal(self) -> bool {
        matches!(self.classify(), Fp16Class::Subnormal)
    }

    /// `true` for normal values (hidden bit = 1).
    #[inline]
    pub const fn is_normal(self) -> bool {
        matches!(self.classify(), Fp16Class::Normal)
    }

    /// Returns the value with the sign bit cleared.
    #[inline]
    pub const fn abs(self) -> Fp16 {
        Fp16(self.0 & 0x7FFF)
    }

    /// Returns the value with the sign bit flipped.
    #[inline]
    pub const fn neg(self) -> Fp16 {
        Fp16(self.0 ^ 0x8000)
    }

    /// Converts an `f32` to binary16 with round-to-nearest-even, the IEEE
    /// 754 default. Overflow produces infinity; underflow produces
    /// (possibly subnormal) small values, exactly as a hardware `F32 -> F16`
    /// conversion unit would.
    #[inline]
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mant = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf or NaN. Preserve NaN-ness; quiet the payload's top bit so
            // a signaling payload that would truncate to zero stays NaN.
            return if mant == 0 {
                Fp16(sign | 0x7C00)
            } else {
                Fp16(sign | 0x7E00 | ((mant >> 13) as u16 & 0x01FF))
            };
        }

        // Unbiased exponent in f32 terms; subnormal f32 inputs are far below
        // the f16 subnormal range and round to zero below.
        let unbiased = exp - 127;
        let half_exp = unbiased + EXP_BIAS;

        if half_exp >= EXP_MAX as i32 {
            // Overflow -> infinity.
            return Fp16(sign | 0x7C00);
        }

        // 24-bit significand with hidden bit (0 for f32 subnormals).
        let sig = if exp == 0 { mant } else { mant | 0x0080_0000 };

        if half_exp <= 0 {
            // Result is subnormal (or zero) in f16: shift the significand
            // right by the deficit plus the normal 13-bit narrowing.
            let shift = 14 - half_exp; // total right shift from bit 23 down
            if shift > 24 {
                return Fp16(sign); // rounds to zero even after RNE
            }
            let shift = shift as u32;
            let kept = (sig >> shift) as u16;
            let round_bit = (sig >> (shift - 1)) & 1;
            let sticky = (sig & ((1 << (shift - 1)) - 1)) != 0;
            let mut out = kept;
            if round_bit == 1 && (sticky || (kept & 1) == 1) {
                out += 1; // may carry into the normal range: that is correct
            }
            return Fp16(sign | out);
        }

        // Normal range: round 23-bit mantissa to 10 bits (RNE).
        let kept = (mant >> 13) as u16;
        let round_bit = (mant >> 12) & 1;
        let sticky = (mant & 0x0FFF) != 0;
        let mut out = ((half_exp as u16) << MANT_BITS) | kept;
        if round_bit == 1 && (sticky || (kept & 1) == 1) {
            out += 1; // mantissa carry bumps the exponent correctly
        }
        Fp16(sign | out)
    }

    /// Converts to `f32`. The conversion is exact: every binary16 value is
    /// representable in binary32.
    #[inline]
    pub fn to_f32(self) -> f32 {
        let sign = (self.0 as u32 & 0x8000) << 16;
        let exp = self.biased_exponent() as u32;
        let mant = self.mantissa() as u32;

        let bits = if exp == 0 {
            if mant == 0 {
                sign
            } else {
                // Normalize the subnormal: value = mant × 2^-24 with the
                // msb of `mant` at bit position p, i.e. 1.f × 2^(p-24).
                let p = 31 - mant.leading_zeros(); // 0..=9
                let exp = 127 - 24 + p;
                let frac = (mant << (23 - p)) & 0x007F_FFFF;
                sign | (exp << 23) | frac
            }
        } else if exp == EXP_MAX as u32 {
            sign | 0x7F80_0000 | (mant << 13)
        } else {
            sign | ((exp + 127 - 15) << 23) | (mant << 13)
        };
        f32::from_bits(bits)
    }

    /// Total ordering over bit patterns per IEEE 754 `totalOrder`:
    /// `-NaN < -inf < ... < -0 < +0 < ... < +inf < +NaN`.
    #[inline]
    pub fn total_cmp(self, other: Fp16) -> Ordering {
        // Map to a monotone signed key.
        #[inline]
        fn key(x: Fp16) -> i32 {
            let b = x.to_bits() as i32;
            if b & 0x8000 != 0 {
                0x8000 - b
            } else {
                b + 0x8000
            }
        }
        key(self).cmp(&key(other))
    }

    /// Iterator over every one of the 65 536 binary16 bit patterns.
    ///
    /// Exhaustive verification is cheap at this width, and the datapath
    /// tests in this crate lean on that.
    pub fn all_values() -> impl Iterator<Item = Fp16> {
        (0u16..=u16::MAX).map(Fp16::from_bits)
    }
}

impl From<f32> for Fp16 {
    fn from(value: f32) -> Self {
        Fp16::from_f32(value)
    }
}

impl From<Fp16> for f32 {
    fn from(value: Fp16) -> Self {
        value.to_f32()
    }
}

impl fmt::Display for Fp16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl fmt::LowerHex for Fp16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Fp16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Fp16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_have_expected_bits() {
        assert_eq!(Fp16::ZERO.to_bits(), 0x0000);
        assert_eq!(Fp16::NEG_ZERO.to_bits(), 0x8000);
        assert_eq!(Fp16::ONE.to_bits(), 0x3C00);
        assert_eq!(Fp16::INFINITY.to_bits(), 0x7C00);
        assert_eq!(Fp16::MAX.to_f32(), 65504.0);
        assert_eq!(Fp16::MIN_POSITIVE.to_f32(), 2.0_f32.powi(-14));
        assert_eq!(Fp16::MIN_SUBNORMAL.to_f32(), 2.0_f32.powi(-24));
    }

    #[test]
    fn field_accessors_match_layout() {
        // 1.5 = sign 0, exponent 15 (biased), mantissa 0b1000000000
        let x = Fp16::from_bits(0x3E00);
        assert!(!x.sign());
        assert_eq!(x.biased_exponent(), 15);
        assert_eq!(x.mantissa(), 0x200);
        assert_eq!(x.significand(), 0x600);
        assert_eq!(x.unbiased_exponent(), 0);
    }

    #[test]
    fn classify_covers_all_cases() {
        assert_eq!(Fp16::ZERO.classify(), Fp16Class::Zero);
        assert_eq!(Fp16::NEG_ZERO.classify(), Fp16Class::Zero);
        assert_eq!(Fp16::MIN_SUBNORMAL.classify(), Fp16Class::Subnormal);
        assert_eq!(Fp16::ONE.classify(), Fp16Class::Normal);
        assert_eq!(Fp16::INFINITY.classify(), Fp16Class::Infinite);
        assert_eq!(Fp16::NAN.classify(), Fp16Class::Nan);
    }

    #[test]
    fn roundtrip_f32_is_exact_for_all_values() {
        for x in Fp16::all_values() {
            let back = Fp16::from_f32(x.to_f32());
            if x.is_nan() {
                assert!(back.is_nan(), "NaN {:04x} lost NaN-ness", x.to_bits());
            } else {
                assert_eq!(back, x, "roundtrip failed for {:04x}", x.to_bits());
            }
        }
    }

    #[test]
    fn from_f32_rounds_to_nearest_even() {
        // 2049 is exactly between 2048 and 2050 in f16; RNE picks 2048.
        assert_eq!(Fp16::from_f32(2049.0).to_f32(), 2048.0);
        // 2051 is between 2050 and 2052; RNE picks 2052 (even mantissa).
        assert_eq!(Fp16::from_f32(2051.0).to_f32(), 2052.0);
        // Just above the tie rounds up.
        assert_eq!(Fp16::from_f32(2049.001).to_f32(), 2050.0);
    }

    #[test]
    fn from_f32_overflow_and_underflow() {
        assert_eq!(Fp16::from_f32(1.0e6), Fp16::INFINITY);
        assert_eq!(Fp16::from_f32(-1.0e6), Fp16::NEG_INFINITY);
        assert_eq!(Fp16::from_f32(65520.0), Fp16::INFINITY); // rounds past MAX
        assert_eq!(Fp16::from_f32(65504.0), Fp16::MAX);
        assert_eq!(Fp16::from_f32(1.0e-9), Fp16::ZERO);
        assert_eq!(Fp16::from_f32(-1.0e-9), Fp16::NEG_ZERO);
        // Largest f32 that rounds to the smallest subnormal.
        let tiny = 2.0_f32.powi(-24);
        assert_eq!(Fp16::from_f32(tiny), Fp16::MIN_SUBNORMAL);
        // Halfway to the smallest subnormal rounds to zero (even).
        assert_eq!(Fp16::from_f32(tiny / 2.0), Fp16::ZERO);
    }

    #[test]
    fn from_f32_subnormal_range() {
        for bits in 1u16..0x400 {
            let x = Fp16::from_bits(bits);
            assert!(x.is_subnormal());
            assert_eq!(Fp16::from_f32(x.to_f32()), x);
        }
    }

    #[test]
    fn nan_propagates_through_conversion() {
        assert!(Fp16::from_f32(f32::NAN).is_nan());
        assert!(Fp16::NAN.to_f32().is_nan());
    }

    #[test]
    fn total_cmp_orders_all_values_monotonically() {
        // Spot-check the documented ordering.
        let order = [
            Fp16::from_bits(0xFC01), // -NaN-ish (negative NaN)
            Fp16::NEG_INFINITY,
            Fp16::from_f32(-2.0),
            Fp16::NEG_ZERO,
            Fp16::ZERO,
            Fp16::from_f32(2.0),
            Fp16::INFINITY,
            Fp16::NAN,
        ];
        for w in order.windows(2) {
            assert_eq!(w[0].total_cmp(w[1]), Ordering::Less);
        }
    }

    #[test]
    fn significand_of_subnormal_has_no_hidden_bit() {
        let x = Fp16::from_bits(0x0155);
        assert_eq!(x.significand(), 0x155);
        assert_eq!(x.unbiased_exponent(), -14);
    }

    #[test]
    fn abs_and_neg() {
        assert_eq!(Fp16::NEG_ONE.abs(), Fp16::ONE);
        assert_eq!(Fp16::ONE.neg(), Fp16::NEG_ONE);
        assert_eq!(Fp16::ZERO.neg(), Fp16::NEG_ZERO);
    }
}
