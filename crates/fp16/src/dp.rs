//! Dot-product units: the baseline FP16 DP-4 and the parallel FP-INT DP-4
//! (Table I), with the adder-tree duplication knob of Figure 11 and the
//! DP-8/DP-16 width knob of Figure 12(a).
//!
//! Besides the cycle/timing model the units compute *functionally*, using
//! the bit-accurate datapaths, so the numeric fidelity of PacQ's biased
//! arithmetic can be measured (see [`NumericsMode`]).

use crate::bits::Fp16;
use crate::mul::{Fp16Multiplier, RoundingMode};
use crate::packed::{PackedWord, WeightPrecision};
use crate::parallel::{ParallelFpIntMultiplier, MAX_LANES};
use crate::softfloat;
use pacq_error::{PacqError, PacqResult};

/// Precision of the running dot-product accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccPrecision {
    /// Accumulate in binary16, like a pure-FP16 adder tree chain.
    Fp16,
    /// Accumulate in binary32, the common tensor-core configuration.
    #[default]
    Fp32,
}

/// Whether lane products are rounded to FP16 before accumulation.
///
/// The paper's Figure 5(d) rounds every lane product to FP16 ("passed to
/// the rounding units and truncated to 10 bits"). Because the biased
/// product `A × (B + 1032)` is ~1032× larger than the true term `A × B`,
/// that rounding erases low-order bits *where the true term lives*, which
/// the later `− 1032·ΣA` subtraction cannot restore. [`NumericsMode::Wide`]
/// keeps the exact 22-bit product (as a binary32 value, which holds it
/// exactly) so the recovery is error-free — quantifying this difference is
/// one of this reproduction's findings (see EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NumericsMode {
    /// Round each lane product to FP16 first, exactly as the paper's
    /// rounding units do.
    #[default]
    PaperRounded,
    /// Carry the exact significand product into the accumulator.
    Wide,
}

/// Resource inventory of a dot-product unit (Table I rows "FP-16 DP-4" and
/// "Parallel FP-INT-16 DP-4").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DpResources {
    /// Scalar FP16 multipliers (baseline only).
    pub fp16_multipliers: u32,
    /// Parallel FP-INT multipliers (PacQ only).
    pub parallel_multipliers: u32,
    /// FP16 adders (tree + accumulate).
    pub fp16_adders: u32,
    /// Small Σ A accumulators (PacQ only).
    pub sum_accumulators: u32,
}

/// The `Σ A_k` side accumulator of Figure 6 ("small accumulators"),
/// enabling the fused bias removal of Eq. (1):
///
/// `Σ A_k·B_k = Σ A_k·(B_k + offset) − offset · Σ A_k`
///
/// # Examples
///
/// ```
/// use pacq_fp16::{Fp16, SumAccumulator};
///
/// let mut acc = SumAccumulator::new();
/// acc.add(Fp16::from_f32(1.5));
/// acc.add(Fp16::from_f32(-0.25));
/// assert_eq!(acc.total(), 1.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SumAccumulator {
    total: f64,
    count: u64,
}

impl SumAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one activation.
    pub fn add(&mut self, a: Fp16) {
        self.total += a.to_f32() as f64;
        self.count += 1;
    }

    /// The running sum.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of accumulated values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Resets to empty.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Largest supported DP width; sizes the stack scratch buffers of the
/// allocation-free dot-product paths.
pub(crate) const MAX_WIDTH: usize = 16;

/// Supported dot-product widths (Figure 12(a) studies DP-8 and DP-16).
pub(crate) fn validate_width(width: usize) -> PacqResult<()> {
    if matches!(width, 4 | 8 | 16) {
        Ok(())
    } else {
        Err(PacqError::invalid_input(
            "DP unit",
            format!("width must be 4, 8 or 16, got {width}"),
        ))
    }
}

/// Tree depth of a `width`-input reduction.
fn tree_levels(width: usize) -> u32 {
    width.trailing_zeros()
}

/// The baseline FP16 DP-4/8/16 (Table I: "4 FP16 MUL, 4 FP16 adders" at
/// width 4).
///
/// Timing: the pipeline issues one `width`-element dot product per cycle
/// with a depth of `1 (multiply) + log2(width) (tree) + 1 (accumulate)`
/// stages, which reproduces the paper's "11 cycles to generate 8 FP16
/// outputs" for DP-4 (8 + 4 − 1 = 11).
///
/// # Examples
///
/// ```
/// use pacq_fp16::{BaselineDpUnit, Fp16};
///
/// let dp = BaselineDpUnit::new(4).unwrap();
/// assert_eq!(dp.cycles_for_outputs(8), 11); // paper, Figure 8 discussion
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineDpUnit {
    width: usize,
    acc: AccPrecision,
    mul: Fp16Multiplier,
}

impl BaselineDpUnit {
    /// Creates a baseline unit of the given width with FP32 accumulation.
    ///
    /// Returns an error if `width` is not 4, 8 or 16.
    pub fn new(width: usize) -> PacqResult<Self> {
        validate_width(width)?;
        Ok(BaselineDpUnit {
            width,
            acc: AccPrecision::Fp32,
            mul: Fp16Multiplier::new(),
        })
    }

    /// Sets the accumulator precision.
    pub fn with_acc_precision(mut self, acc: AccPrecision) -> Self {
        self.acc = acc;
        self
    }

    /// The unit width (4, 8 or 16).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Resource inventory: `width` FP16 multipliers + `width` FP16 adders
    /// (a `width−1`-adder tree plus one accumulate adder).
    pub fn resources(&self) -> DpResources {
        DpResources {
            fp16_multipliers: self.width as u32,
            parallel_multipliers: 0,
            fp16_adders: self.width as u32,
            sum_accumulators: 0,
        }
    }

    /// Pipeline depth in cycles (multiply, tree levels, accumulate).
    pub fn pipeline_depth(&self) -> u64 {
        1 + tree_levels(self.width) as u64 + 1
    }

    /// Cycles between successive dot-product issues (1: fully pipelined).
    pub fn issue_interval(&self) -> u64 {
        1
    }

    /// Total cycles to produce `outputs` dot products back to back.
    pub fn cycles_for_outputs(&self, outputs: u64) -> u64 {
        if outputs == 0 {
            return 0;
        }
        outputs * self.issue_interval() + self.pipeline_depth() - 1
    }

    /// One `width`-element dot product through the modeled datapath:
    /// FP16 products, FP16 tree reduction, accumulate into `c`.
    ///
    /// Returns the updated accumulator (in f32 domain so both accumulator
    /// precisions share a signature; with [`AccPrecision::Fp16`] the value
    /// is always exactly an FP16).
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` length differs from the unit width.
    pub fn dot_acc(&self, c: f32, a: &[Fp16], b: &[Fp16]) -> f32 {
        assert_eq!(a.len(), self.width, "a operand width mismatch");
        assert_eq!(b.len(), self.width, "b operand width mismatch");
        let mut products = [Fp16::ZERO; MAX_WIDTH];
        for (slot, (&x, &y)) in products.iter_mut().zip(a.iter().zip(b)) {
            *slot = self.mul.product(x, y);
        }
        let tree = reduce_tree_in_place(&mut products[..self.width]);
        match self.acc {
            AccPrecision::Fp16 => softfloat::add(Fp16::from_f32(c), tree).to_f32(),
            AccPrecision::Fp32 => c + tree.to_f32(),
        }
    }
}

/// Result of a parallel packed dot product: per-lane biased sums plus the
/// Σ A needed for bias removal.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedDotResult {
    /// `Σ_k A_k × (B_k,lane + offset)` per lane, in accumulator precision.
    pub lane_sums: Vec<f32>,
    /// The side accumulator's `Σ_k A_k`.
    pub sum_a: f64,
    /// The precision's FP-domain offset (1032 or 1026).
    pub offset: i32,
}

impl PackedDotResult {
    /// Recovers the true dot products `Σ A·B` per lane via Eq. (1).
    pub fn recover(&self) -> Vec<f32> {
        let mut out = vec![0f32; self.lane_sums.len()];
        self.recover_into(&mut out);
        out
    }

    /// Allocation-free core of [`Self::recover`]: writes the recovered
    /// lanes into the front of `out` (caller-provided scratch for the
    /// GEMM hot paths).
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than `lane_sums`.
    pub fn recover_into(&self, out: &mut [f32]) {
        assert!(
            out.len() >= self.lane_sums.len(),
            "recovery scratch holds {} lanes, need {}",
            out.len(),
            self.lane_sums.len()
        );
        for (dst, &s) in out.iter_mut().zip(&self.lane_sums) {
            *dst = (s as f64 - self.offset as f64 * self.sum_a) as f32;
        }
    }

    /// Recovers and applies a quantization scale per lane.
    pub fn recover_scaled(&self, scales: &[f32]) -> Vec<f32> {
        let mut out = vec![0f32; self.lane_sums.len().min(scales.len())];
        self.recover_scaled_into(scales, &mut out);
        out
    }

    /// Allocation-free core of [`Self::recover_scaled`]: recovery and
    /// per-lane scaling into caller-provided scratch.
    pub fn recover_scaled_into(&self, scales: &[f32], out: &mut [f32]) {
        for ((dst, &s), &scale) in out.iter_mut().zip(&self.lane_sums).zip(scales) {
            *dst = (s as f64 - self.offset as f64 * self.sum_a) as f32 * scale;
        }
    }
}

/// The parallel FP-INT DP unit (Table I row "Parallel FP-INT-16 DP-4": 4
/// parallel FP-INT-16 MUL, 8 FP16 adders at duplication 2).
///
/// Each cycle the `width` parallel multipliers consume `width` activations
/// and `width` packed words and emit `width × lanes` products; the
/// duplicated adder trees then reduce `duplication` lanes per cycle, so
/// the issue interval is `lanes / duplication`. With the paper's defaults
/// (width 4, duplication 2) this reproduces "the inner product of 16
/// values in 2 cycles for INT4" and "19 (35) cycles to generate 32 (64)
/// FP16 outputs" for the `m2n4k4` workload of Figure 8.
///
/// # Examples
///
/// ```
/// use pacq_fp16::{ParallelDpUnit, WeightPrecision};
///
/// let dp = ParallelDpUnit::new(4, 2, WeightPrecision::Int4).unwrap();
/// assert_eq!(dp.cycles_for_batches(8), 19); // 32 outputs, Figure 8
///
/// let dp2 = ParallelDpUnit::new(4, 2, WeightPrecision::Int2).unwrap();
/// assert_eq!(dp2.cycles_for_batches(8), 35); // 64 outputs, Figure 8
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelDpUnit {
    width: usize,
    duplication: usize,
    precision: WeightPrecision,
    acc: AccPrecision,
    numerics: NumericsMode,
    mul: ParallelFpIntMultiplier,
}

impl ParallelDpUnit {
    /// Creates a parallel unit.
    ///
    /// `duplication` is the adder-tree duplication level of Figure 11
    /// (1, 2 or 4; the paper's design point is 2).
    ///
    /// Returns an error if `width` is not 4/8/16 or `duplication` not
    /// 1/2/4.
    pub fn new(width: usize, duplication: usize, precision: WeightPrecision) -> PacqResult<Self> {
        validate_width(width)?;
        if !matches!(duplication, 1 | 2 | 4) {
            return Err(PacqError::invalid_input(
                "DP unit",
                format!("adder tree duplication must be 1, 2 or 4, got {duplication}"),
            ));
        }
        Ok(ParallelDpUnit {
            width,
            duplication,
            precision,
            acc: AccPrecision::Fp32,
            numerics: NumericsMode::PaperRounded,
            mul: ParallelFpIntMultiplier::new(precision),
        })
    }

    /// Sets the accumulator precision.
    pub fn with_acc_precision(mut self, acc: AccPrecision) -> Self {
        self.acc = acc;
        self
    }

    /// Sets the product-rounding behaviour (see [`NumericsMode`]).
    pub fn with_numerics(mut self, numerics: NumericsMode) -> Self {
        self.numerics = numerics;
        self
    }

    /// Replaces the rounding units of the parallel multipliers (the
    /// RNE-vs-truncate design-space study; see [`RoundingMode`]).
    pub fn with_rounding(mut self, rounding: RoundingMode) -> Self {
        self.mul = self.mul.with_rounding(rounding);
        self
    }

    /// The unit width (4, 8 or 16).
    pub fn width(&self) -> usize {
        self.width
    }

    /// The adder-tree duplication level.
    pub fn duplication(&self) -> usize {
        self.duplication
    }

    /// The weight precision.
    pub fn precision(&self) -> WeightPrecision {
        self.precision
    }

    /// Resource inventory: `width` parallel multipliers plus
    /// `width × duplication` FP16 adders (Table I at width 4 /
    /// duplication 2: 8 FP16 adders), plus one Σ A accumulator.
    pub fn resources(&self) -> DpResources {
        DpResources {
            fp16_multipliers: 0,
            parallel_multipliers: self.width as u32,
            fp16_adders: (self.width * self.duplication) as u32,
            sum_accumulators: 1,
        }
    }

    /// Cycles between successive batch issues: the duplicated trees retire
    /// `duplication` of the `lanes` per-lane reductions per cycle.
    pub fn issue_interval(&self) -> u64 {
        let lanes = self.precision.lanes();
        (lanes as u64).div_ceil(self.duplication as u64)
    }

    /// Pipeline depth (multiply, tree levels, accumulate).
    pub fn pipeline_depth(&self) -> u64 {
        1 + tree_levels(self.width) as u64 + 1
    }

    /// Total cycles for `batches` back-to-back issues. One batch consumes
    /// `width` activations × `width` packed words and produces `lanes`
    /// partial dot products.
    pub fn cycles_for_batches(&self, batches: u64) -> u64 {
        if batches == 0 {
            return 0;
        }
        batches * self.issue_interval() + self.pipeline_depth() - 1
    }

    /// Outputs produced per batch (= lanes of the packing).
    pub fn outputs_per_batch(&self) -> u64 {
        self.precision.lanes() as u64
    }

    /// A full packed dot product over `a.len()` k-steps: activation vector
    /// `a` against packed words `b` (one word per k-step, each packing
    /// `lanes` weights along n). Returns the biased per-lane sums and Σ A.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` lengths differ or are not a multiple of the
    /// unit width.
    pub fn dot_packed(&self, a: &[Fp16], b: &[PackedWord]) -> PackedDotResult {
        let mut lane_sums = [0f32; MAX_LANES];
        let sum_a = self.dot_packed_into(a, b, &mut lane_sums);
        PackedDotResult {
            lane_sums: lane_sums[..self.precision.lanes()].to_vec(),
            sum_a,
            offset: self.precision.fp_offset(),
        }
    }

    /// Allocation-free core of [`Self::dot_packed`]: accumulates the
    /// biased per-lane sums into `lane_sums` (only the first
    /// `precision.lanes()` entries are written) and returns `Σ A`.
    ///
    /// This is the functional GEMM hot path — all scratch lives in fixed
    /// stack buffers and the per-lane products come from the value-only
    /// multiplier entry point, so no heap allocation happens per call.
    /// Results are bit-identical to [`Self::dot_packed`].
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` lengths differ or are not a multiple of the
    /// unit width.
    pub fn dot_packed_into(
        &self,
        a: &[Fp16],
        b: &[PackedWord],
        lane_sums: &mut [f32; MAX_LANES],
    ) -> f64 {
        assert_eq!(a.len(), b.len(), "operand k-lengths must match");
        assert!(
            a.len().is_multiple_of(self.width),
            "k-length {} not a multiple of DP width {}",
            a.len(),
            self.width
        );
        let lanes = self.precision.lanes();
        lane_sums[..lanes].fill(0f32);
        let mut lane_sums_fp16 = [Fp16::ZERO; MAX_LANES];
        let mut sum_acc = SumAccumulator::new();
        let mut products = [[Fp16::ZERO; MAX_LANES]; MAX_WIDTH];
        let mut wide = [[0f32; MAX_LANES]; MAX_WIDTH];
        let mut col = [Fp16::ZERO; MAX_WIDTH];

        for (chunk_a, chunk_b) in a.chunks(self.width).zip(b.chunks(self.width)) {
            // One batch: each multiplier takes one k-step.
            for (k, (&ak, &bk)) in chunk_a.iter().zip(chunk_b).enumerate() {
                sum_acc.add(ak);
                match self.numerics {
                    NumericsMode::PaperRounded => {
                        self.mul.multiply_into(ak, bk, &mut products[k]);
                    }
                    NumericsMode::Wide => {
                        let af = ak.to_f32();
                        for (lane, w) in wide[k][..lanes].iter_mut().enumerate() {
                            // The exact biased product fits f32 (22-bit
                            // significand): 1024 + code = B + offset.
                            let code = bk.biased_lane(self.precision, lane);
                            *w = af * (1024.0 + code as f32);
                        }
                    }
                }
            }
            // Per-lane tree reduction + accumulate.
            for lane in 0..lanes {
                match self.numerics {
                    NumericsMode::PaperRounded => {
                        for (k, c) in col[..self.width].iter_mut().enumerate() {
                            *c = products[k][lane];
                        }
                        let tree = reduce_tree_in_place(&mut col[..self.width]);
                        match self.acc {
                            AccPrecision::Fp16 => {
                                lane_sums_fp16[lane] = softfloat::add(lane_sums_fp16[lane], tree);
                            }
                            AccPrecision::Fp32 => {
                                lane_sums[lane] += tree.to_f32();
                            }
                        }
                    }
                    NumericsMode::Wide => {
                        for row in wide[..self.width].iter() {
                            lane_sums[lane] += row[lane];
                        }
                    }
                }
            }
        }

        if self.numerics == NumericsMode::PaperRounded && self.acc == AccPrecision::Fp16 {
            for (dst, src) in lane_sums[..lanes].iter_mut().zip(&lane_sums_fp16) {
                *dst = src.to_f32();
            }
        }
        sum_acc.total()
    }
}

/// Pairwise FP16 tree reduction (hardware adder-tree order), compacting
/// each level into the front of `values` — no allocation. Pairing order
/// is identical to [`reduce_tree_fp16`]: adjacent pairs, odd element
/// carried to the next level.
fn reduce_tree_in_place(values: &mut [Fp16]) -> Fp16 {
    let mut n = values.len();
    if n == 0 {
        return Fp16::ZERO;
    }
    while n > 1 {
        let mut write = 0;
        let mut read = 0;
        while read + 1 < n {
            values[write] = softfloat::add(values[read], values[read + 1]);
            write += 1;
            read += 2;
        }
        if read < n {
            values[write] = values[read];
            write += 1;
        }
        n = write;
    }
    values[0]
}

/// Pairwise FP16 tree reduction (hardware adder-tree order) — the
/// allocating reference implementation the in-place variant is tested
/// against.
#[cfg(test)]
fn reduce_tree_fp16(values: &[Fp16]) -> Fp16 {
    match values.len() {
        0 => Fp16::ZERO,
        1 => values[0],
        n => {
            let mid = n.div_ceil(2);
            let mut level: Vec<Fp16> = Vec::with_capacity(mid);
            for pair in values.chunks(2) {
                level.push(if pair.len() == 2 {
                    softfloat::add(pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            reduce_tree_fp16(&level)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::Int4;

    #[test]
    fn baseline_dp4_timing_matches_paper() {
        let dp = BaselineDpUnit::new(4).unwrap();
        assert_eq!(dp.pipeline_depth(), 4);
        assert_eq!(dp.cycles_for_outputs(8), 11);
        assert_eq!(dp.cycles_for_outputs(0), 0);
        assert_eq!(dp.cycles_for_outputs(1), 4);
    }

    #[test]
    fn parallel_dp4_timing_matches_paper() {
        // INT4 / dup 2: 8 batches (32 outputs) in 19 cycles.
        let dp = ParallelDpUnit::new(4, 2, WeightPrecision::Int4).unwrap();
        assert_eq!(dp.issue_interval(), 2);
        assert_eq!(dp.cycles_for_batches(8), 19);
        // INT2 / dup 2: 8 batches (64 outputs) in 35 cycles.
        let dp = ParallelDpUnit::new(4, 2, WeightPrecision::Int2).unwrap();
        assert_eq!(dp.issue_interval(), 4);
        assert_eq!(dp.cycles_for_batches(8), 35);
    }

    #[test]
    fn duplication_changes_issue_interval() {
        assert_eq!(
            ParallelDpUnit::new(4, 1, WeightPrecision::Int4)
                .unwrap()
                .issue_interval(),
            4
        );
        assert_eq!(
            ParallelDpUnit::new(4, 2, WeightPrecision::Int4)
                .unwrap()
                .issue_interval(),
            2
        );
        assert_eq!(
            ParallelDpUnit::new(4, 4, WeightPrecision::Int4)
                .unwrap()
                .issue_interval(),
            1
        );
        assert_eq!(
            ParallelDpUnit::new(4, 4, WeightPrecision::Int2)
                .unwrap()
                .issue_interval(),
            2
        );
    }

    #[test]
    fn inner_product_16_values_in_2_cycles() {
        // Paper: "accumulation of the inner product of 16 values in 2
        // cycles for INT4 (or 32 values in 4 cycles for INT2)".
        let dp = ParallelDpUnit::new(4, 2, WeightPrecision::Int4).unwrap();
        assert_eq!(dp.issue_interval(), 2); // one batch = 16 products
        let dp = ParallelDpUnit::new(4, 2, WeightPrecision::Int2).unwrap();
        assert_eq!(dp.issue_interval(), 4); // one batch = 32 products
    }

    #[test]
    fn resources_match_table_i() {
        let base = BaselineDpUnit::new(4).unwrap().resources();
        assert_eq!(base.fp16_multipliers, 4);
        assert_eq!(base.fp16_adders, 4);

        let par = ParallelDpUnit::new(4, 2, WeightPrecision::Int4)
            .unwrap()
            .resources();
        assert_eq!(par.parallel_multipliers, 4);
        assert_eq!(par.fp16_adders, 8);
        assert_eq!(par.sum_accumulators, 1);
    }

    #[test]
    fn baseline_dot_matches_reference() {
        let dp = BaselineDpUnit::new(4).unwrap();
        let a: Vec<Fp16> = [1.0f32, -2.0, 0.5, 4.0]
            .iter()
            .map(|&v| Fp16::from_f32(v))
            .collect();
        let b: Vec<Fp16> = [3.0f32, 1.0, -8.0, 0.25]
            .iter()
            .map(|&v| Fp16::from_f32(v))
            .collect();
        let got = dp.dot_acc(0.0, &a, &b);
        assert_eq!(got, 3.0 - 2.0 - 4.0 + 1.0);
    }

    #[test]
    fn packed_dot_recovers_true_dot_products_wide() {
        // With wide products the Eq.(1) recovery is exact for integer-ish
        // activations.
        let dp = ParallelDpUnit::new(4, 2, WeightPrecision::Int4)
            .unwrap()
            .with_numerics(NumericsMode::Wide);
        let a: Vec<Fp16> = [1.0f32, 2.0, -1.5, 0.5]
            .iter()
            .map(|&v| Fp16::from_f32(v))
            .collect();
        let cols: [[i8; 4]; 4] = [
            [1, -3, 5, 7], // lane 0's weights along k
            [0, 2, -8, 4], // lane 1
            [-1, -1, -1, -1],
            [7, 7, 7, 7],
        ];
        // Packed words are per-k: word k contains lane j = cols[j][k].
        let words: Vec<PackedWord> = (0..4)
            .map(|k| {
                PackedWord::pack_int4(core::array::from_fn(|j| Int4::new(cols[j][k]).unwrap()))
            })
            .collect();
        let res = dp.dot_packed(&a, &words);
        let rec = res.recover();
        for (lane, col) in cols.iter().enumerate() {
            let want: f32 = a
                .iter()
                .zip(col)
                .map(|(&x, &w)| x.to_f32() * w as f32)
                .sum();
            assert!(
                (rec[lane] - want).abs() < 1e-3,
                "lane {lane}: got {}, want {want}",
                rec[lane]
            );
        }
    }

    #[test]
    fn paper_rounded_mode_shows_bias_rounding_error() {
        // A single term: A = 1+2^-10, B = 1. The biased product 1034.009…
        // rounds to 1034, so recovery yields 1034 − 1032·A ≈ 0.992 instead
        // of 1.00098 — the numerics finding documented in EXPERIMENTS.md.
        let dp = ParallelDpUnit::new(4, 2, WeightPrecision::Int4).unwrap();
        let a = vec![Fp16::from_f32(1.0 + 2.0f32.powi(-10)); 4];
        let mut weights = [Int4::new(0).unwrap(); 4];
        weights[0] = Int4::new(1).unwrap();
        let words = vec![PackedWord::pack_int4(weights); 4];
        let res = dp.dot_packed(&a, &words);
        let rec = res.recover();
        let want: f32 = 4.0 * (1.0 + 2.0f32.powi(-10));
        // The recovered value is close but NOT exact.
        assert!(
            (rec[0] - want).abs() > 1e-3,
            "expected visible rounding error"
        );
        assert!((rec[0] - want).abs() < 0.5, "error should stay bounded");

        // The wide mode recovers exactly.
        let wide = dp.with_numerics(NumericsMode::Wide);
        let rec = wide.dot_packed(&a, &words).recover();
        assert!((rec[0] - want).abs() < 1e-3);
    }

    #[test]
    fn sum_accumulator_tracks_count_and_total() {
        let mut acc = SumAccumulator::new();
        for i in 0..10 {
            acc.add(Fp16::from_f32(i as f32));
        }
        assert_eq!(acc.total(), 45.0);
        assert_eq!(acc.count(), 10);
        acc.reset();
        assert_eq!(acc.total(), 0.0);
    }

    #[test]
    fn tree_reduction_handles_odd_lengths() {
        let vals: Vec<Fp16> = [1.0f32, 2.0, 3.0]
            .iter()
            .map(|&v| Fp16::from_f32(v))
            .collect();
        assert_eq!(reduce_tree_fp16(&vals).to_f32(), 6.0);
        assert_eq!(reduce_tree_fp16(&[]).to_f32(), 0.0);
        assert_eq!(reduce_tree_in_place(&mut []).to_f32(), 0.0);
    }

    /// The in-place reduction must pair elements exactly like the
    /// recursive reference at every length (FP16 addition is non-
    /// associative, so order IS the contract).
    #[test]
    fn in_place_tree_matches_recursive_reference() {
        // Values chosen so any reordering changes rounding: mix of large
        // and tiny magnitudes with alternating signs.
        let raw = [
            1024.0f32, 0.0625, -768.5, 3.0, 0.00097656, -1024.0, 55.0, -0.3333, 9.5, -2.25, 4096.0,
            0.1, -0.004, 17.0, -17.0, 0.5,
        ];
        for len in 0..=raw.len() {
            let vals: Vec<Fp16> = raw[..len].iter().map(|&v| Fp16::from_f32(v)).collect();
            let want = reduce_tree_fp16(&vals);
            let mut buf = vals.clone();
            let got = reduce_tree_in_place(&mut buf);
            assert_eq!(got.to_bits(), want.to_bits(), "len {len}");
        }
    }

    /// The allocation-free packed-dot core and the Vec-returning wrapper
    /// agree bit-for-bit in every mode combination.
    #[test]
    fn dot_packed_into_matches_dot_packed() {
        let a: Vec<Fp16> = [1.5f32, -0.25, 3.0, 0.125, -2.0, 7.5, -0.5, 1.0]
            .iter()
            .map(|&v| Fp16::from_f32(v))
            .collect();
        let words: Vec<PackedWord> = (0..8)
            .map(|k| {
                PackedWord::pack_int4(core::array::from_fn(|j| {
                    Int4::new(((k * 3 + j * 5) % 16) as i8 - 8).unwrap()
                }))
            })
            .collect();
        for numerics in [NumericsMode::PaperRounded, NumericsMode::Wide] {
            for acc in [AccPrecision::Fp32, AccPrecision::Fp16] {
                let dp = ParallelDpUnit::new(4, 2, WeightPrecision::Int4)
                    .unwrap()
                    .with_numerics(numerics)
                    .with_acc_precision(acc);
                let full = dp.dot_packed(&a, &words);
                let mut sums = [0f32; MAX_LANES];
                let sum_a = dp.dot_packed_into(&a, &words, &mut sums);
                assert_eq!(sum_a, full.sum_a);
                for (lane, &s) in full.lane_sums.iter().enumerate() {
                    assert_eq!(
                        s.to_bits(),
                        sums[lane].to_bits(),
                        "{numerics:?}/{acc:?} lane {lane}"
                    );
                }
            }
        }
    }

    /// The allocation-free recovery variants agree bit-for-bit with the
    /// Vec-returning wrappers.
    #[test]
    fn recover_into_matches_recover() {
        let dp = ParallelDpUnit::new(4, 2, WeightPrecision::Int4).unwrap();
        let a: Vec<Fp16> = [1.5f32, -0.25, 3.0, 0.125]
            .iter()
            .map(|&v| Fp16::from_f32(v))
            .collect();
        let words = vec![PackedWord::from_bits(0xA731); 4];
        let res = dp.dot_packed(&a, &words);
        let scales = [0.5f32, 2.0, -1.25, 0.75];

        let want = res.recover();
        let mut got = [0f32; MAX_LANES];
        res.recover_into(&mut got);
        for (lane, &w) in want.iter().enumerate() {
            assert_eq!(got[lane].to_bits(), w.to_bits(), "recover lane {lane}");
        }

        let want = res.recover_scaled(&scales);
        let mut got = [0f32; MAX_LANES];
        res.recover_scaled_into(&scales, &mut got);
        for (lane, &w) in want.iter().enumerate() {
            assert_eq!(got[lane].to_bits(), w.to_bits(), "scaled lane {lane}");
        }
    }

    #[test]
    fn invalid_width_rejected() {
        let err = BaselineDpUnit::new(5).unwrap_err();
        assert!(err.to_string().contains("width must be 4, 8 or 16"));
        assert!(ParallelDpUnit::new(0, 2, WeightPrecision::Int4).is_err());
    }

    #[test]
    fn invalid_duplication_rejected() {
        let err = ParallelDpUnit::new(4, 3, WeightPrecision::Int4).unwrap_err();
        assert!(err.to_string().contains("duplication must be 1, 2 or 4"));
    }
}
