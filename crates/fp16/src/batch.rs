//! Batched structure-of-arrays kernels: the [`Backend::Batched`] fast
//! path of the functional GEMM layer.
//!
//! The scalar datapath models ([`crate::Fp16Multiplier`],
//! [`crate::ParallelFpIntMultiplier`], [`crate::softfloat`]) pay a
//! per-element price — shift-add significand products, branchy
//! classify/round, one `match` per special case — that is the right
//! shape for auditing bits but the wrong shape for sweeping thousands
//! of GEMM points. This module re-implements the same arithmetic over
//! contiguous lanes with three batched techniques:
//!
//! 1. **Table-driven conversions** — one 64 Ki-entry fp16 → f32 table
//!    turns every activation load into a single indexed read
//!    ([`to_f32_table`]).
//! 2. **Branch-free classify/round** — [`pack_rne`] converts f32 → fp16
//!    with mask arithmetic (kept/round/sticky bits, carry folded into
//!    the exponent field) instead of a per-element `match` over the
//!    float classes, canonicalizing every NaN to the datapaths'
//!    [`Fp16::NAN`]. Because a binary16 product is exact in binary32
//!    and binary32 carries ≥ 2·11 + 2 significand bits, rounding
//!    through f32 is innocuous (Figueroa's double-rounding theorem), so
//!    `pack_rne(a·b)` and `pack_rne(a+b)` are bit-identical to the
//!    shift-add datapaths for **all** 2³² input pairs — the in-module
//!    frontier tests and the three-way equivalence suite pin this.
//! 3. **LUT-assisted FP-INT products** — the parallel multiplier's lane
//!    product depends only on the 16 activation bits and the biased
//!    lane code, so a per-precision `codes × 65536` table built from
//!    the scalar [`crate::ParallelFpIntMultiplier`] replaces the whole
//!    lane datapath with one `u16` load ([`product_lut`]). INT4 costs
//!    2 MiB, INT2 512 KiB; both are built lazily on first batched use.
//!
//! [`BatchedBaselineDp`] and [`BatchedParallelDp`] wrap these kernels
//! in slice-granular entry points ([`BatchedBaselineDp::dot_slice`],
//! [`BatchedParallelDp::dot_packed_into`]) that replicate the scalar
//! units' chunking, adder-tree pairing and accumulation order exactly —
//! FP16 addition is non-associative, so the order IS the contract — and
//! are therefore bit-identical to [`crate::BaselineDpUnit`] /
//! [`crate::ParallelDpUnit`] at their default (IEEE, round-to-nearest-
//! even) configuration in every [`NumericsMode`] × [`AccPrecision`]
//! combination.
//!
//! One caveat scopes that guarantee: when an f32/f64 *accumulator*
//! itself turns NaN (activations containing NaN or an ∞ − ∞
//! cancellation), both backends return NaN but the payload bits may
//! differ — the compiler is free to commute the operands of a float
//! add, which changes which NaN payload propagates. All fp16-domain
//! results (products, tree sums) canonicalize to [`Fp16::NAN`] and stay
//! bit-identical; finite results are bit-identical everywhere.

use crate::bits::Fp16;
use crate::dp::{AccPrecision, NumericsMode, MAX_WIDTH};
use crate::packed::{PackedWord, WeightPrecision};
use crate::parallel::{ParallelFpIntMultiplier, MAX_LANES};
use pacq_error::PacqResult;
use std::fmt;
use std::sync::OnceLock;

/// Which compute backend evaluates the functional GEMM flows.
///
/// Both backends produce bit-identical results (pinned by the
/// three-way scalar ≡ rayon ≡ batched equivalence suite); the choice
/// only trades auditability for throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// The scalar reference datapaths — one element at a time through
    /// the structural multiplier/adder models.
    #[default]
    Scalar,
    /// The batched SoA kernels of this module: table conversions,
    /// branch-free rounding, LUT products.
    Batched,
}

impl Backend {
    /// Every backend, in CLI-token order.
    pub const ALL: [Backend; 2] = [Backend::Scalar, Backend::Batched];

    /// The CLI/env token naming this backend (`scalar` / `batched`).
    pub const fn token(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Batched => "batched",
        }
    }

    /// Parses an exact backend token (callers trim and diagnose).
    pub fn parse(token: &str) -> Option<Backend> {
        Backend::ALL.into_iter().find(|b| b.token() == token)
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// The lazily-built fp16 → f32 conversion table (64 Ki entries,
/// 256 KiB): `table[bits]` is `Fp16::from_bits(bits).to_f32()`.
pub fn to_f32_table() -> &'static [f32; 1 << 16] {
    static TABLE: OnceLock<Box<[f32; 1 << 16]>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = vec![0f32; 1 << 16].into_boxed_slice();
        for (bits, slot) in t.iter_mut().enumerate() {
            *slot = Fp16::from_bits(bits as u16).to_f32();
        }
        // The length is exactly 1 << 16 by construction.
        match t.try_into() {
            Ok(boxed) => boxed,
            Err(_) => unreachable!(),
        }
    })
}

#[inline]
fn lookup(table: &[f32; 1 << 16], x: Fp16) -> f32 {
    table[x.to_bits() as usize]
}

/// Converts f32 → fp16 with round-to-nearest-even using mask arithmetic
/// instead of a per-class `match`, canonicalizing every NaN to
/// [`Fp16::NAN`] (the constant all scalar datapaths return).
///
/// Bit-identical to `Fp16::from_f32` for every non-NaN input; for NaN
/// inputs the payload is dropped, matching the datapath models rather
/// than the payload-preserving storage conversion.
#[inline]
pub fn pack_rne(x: f32) -> Fp16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let abs = bits & 0x7fff_ffff;
    if abs >= 0x4780_0000 {
        // ≥ 2^16 overflows to infinity; NaN canonicalizes (sign dropped).
        return if abs > 0x7f80_0000 {
            Fp16::NAN
        } else {
            Fp16::from_bits(sign | 0x7c00)
        };
    }
    if abs < 0x3880_0000 {
        // Below the normal cutoff 2^-14: scale into the integer window
        // [2^23, 2^23 + 1024) where one f32 ulp is exactly one subnormal
        // step, letting the hardware's RNE do the tie-to-even rounding.
        // (Scaling by 2^24 is exact; a carry to 1024 lands on the
        // hidden bit, i.e. the minimum normal — exactly as required.)
        let mag = (f32::from_bits(abs) * 16_777_216.0 + 8_388_608.0).to_bits() & 0x7ff;
        return Fp16::from_bits(sign | mag as u16);
    }
    // Normal range [2^-14, 2^16): shift the 23-bit mantissa down to 10
    // bits with kept/round/sticky mask arithmetic; a round-up carry
    // propagates into the exponent field (30 → 31 is the correct
    // round-to-infinity at the fp16 ceiling).
    let mant = abs & 0x007f_ffff;
    let exp = (abs >> 23) - 112; // f32 bias 127 → fp16 bias 15
    let kept = mant >> 13;
    let round = (mant >> 12) & 1;
    let sticky = u32::from(mant & 0x0fff != 0);
    let inc = round & (sticky | (kept & 1));
    Fp16::from_bits(sign | ((exp << 10) + kept + inc) as u16)
}

/// Batched fp16 multiply: bit-identical to `softfloat::mul` (and to the
/// default [`crate::Fp16Multiplier`]) for all inputs — the product of
/// two 11-bit significands is exact in f32, so one rounding happens.
#[inline]
fn mul16(table: &[f32; 1 << 16], a: Fp16, b: Fp16) -> Fp16 {
    pack_rne(lookup(table, a) * lookup(table, b))
}

/// Batched fp16 add: bit-identical to `softfloat::add` for all inputs
/// (f32 carries 24 ≥ 2·11 + 2 significand bits, making the double
/// rounding innocuous; zero-sign and NaN rules coincide).
#[inline]
fn add16(table: &[f32; 1 << 16], a: Fp16, b: Fp16) -> Fp16 {
    pack_rne(lookup(table, a) + lookup(table, b))
}

/// Pairwise tree reduction with the batched adder — the same adjacent-
/// pair order as the scalar units' in-place reduction.
#[inline]
fn reduce_tree_batched(table: &[f32; 1 << 16], values: &mut [Fp16]) -> Fp16 {
    let mut n = values.len();
    if n == 0 {
        return Fp16::ZERO;
    }
    while n > 1 {
        let mut write = 0;
        let mut read = 0;
        while read + 1 < n {
            values[write] = add16(table, values[read], values[read + 1]);
            write += 1;
            read += 2;
        }
        if read < n {
            values[write] = values[read];
            write += 1;
        }
        n = write;
    }
    values[0]
}

/// The lazily-built biased-product table for a precision: entry
/// `[code << 16 | a_bits]` holds the fp16 bits of the parallel
/// multiplier's lane product of activation `a_bits` with biased lane
/// code `code`. Built directly from the scalar
/// [`ParallelFpIntMultiplier`] (an all-lanes-same-code word, lane 0
/// read back), so it is bit-exact by construction.
pub fn product_lut(precision: WeightPrecision) -> &'static [u16] {
    static INT4: OnceLock<Vec<u16>> = OnceLock::new();
    static INT2: OnceLock<Vec<u16>> = OnceLock::new();
    let cell = match precision {
        WeightPrecision::Int4 => &INT4,
        WeightPrecision::Int2 => &INT2,
    };
    cell.get_or_init(|| build_product_lut(precision))
}

fn build_product_lut(precision: WeightPrecision) -> Vec<u16> {
    let mul = ParallelFpIntMultiplier::new(precision);
    let codes = 1usize << precision.bits();
    // Replicating the biased code into every lane field makes lane 0's
    // product the product for that code.
    let replicate: u16 = match precision {
        WeightPrecision::Int4 => 0x1111,
        WeightPrecision::Int2 => 0x5555,
    };
    let mut table = vec![0u16; codes << 16];
    let mut out = [Fp16::ZERO; MAX_LANES];
    for code in 0..codes {
        let word = PackedWord::from_bits(code as u16 * replicate);
        debug_assert_eq!(word.biased_lane(precision, 0) as usize, code);
        let row = &mut table[(code << 16)..((code + 1) << 16)];
        for (a_bits, slot) in row.iter_mut().enumerate() {
            mul.multiply_into(Fp16::from_bits(a_bits as u16), word, &mut out);
            *slot = out[0].to_bits();
        }
    }
    table
}

/// Batched counterpart of [`crate::BaselineDpUnit`]: one call evaluates
/// a whole k-slice (any multiple of the unit width) instead of one
/// width-sized chunk, with bit-identical chunking and tree order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchedBaselineDp {
    width: usize,
    acc: AccPrecision,
}

impl BatchedBaselineDp {
    /// Creates a batched baseline unit (FP32 accumulation, like
    /// [`crate::BaselineDpUnit::new`]).
    ///
    /// # Errors
    ///
    /// Returns an error if `width` is not 4, 8 or 16.
    pub fn new(width: usize) -> PacqResult<Self> {
        crate::dp::validate_width(width)?;
        Ok(BatchedBaselineDp {
            width,
            acc: AccPrecision::Fp32,
        })
    }

    /// Sets the accumulator precision.
    pub fn with_acc_precision(mut self, acc: AccPrecision) -> Self {
        self.acc = acc;
        self
    }

    /// The unit width (4, 8 or 16).
    pub fn width(&self) -> usize {
        self.width
    }

    /// A whole-slice dot product: bit-identical to chaining
    /// `BaselineDpUnit::dot_acc` over consecutive width-sized chunks of
    /// `a`/`b` starting from accumulator `c`.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` lengths differ or are not a multiple of
    /// the unit width.
    pub fn dot_slice(&self, c: f32, a: &[Fp16], b: &[Fp16]) -> f32 {
        assert_eq!(a.len(), b.len(), "operand k-lengths must match");
        assert!(
            a.len().is_multiple_of(self.width),
            "k-length {} not a multiple of DP width {}",
            a.len(),
            self.width
        );
        let table = to_f32_table();
        let mut prod = [Fp16::ZERO; MAX_WIDTH];
        match self.acc {
            AccPrecision::Fp32 => {
                let mut acc = c;
                for (ca, cb) in a.chunks_exact(self.width).zip(b.chunks_exact(self.width)) {
                    for (slot, (&x, &y)) in prod.iter_mut().zip(ca.iter().zip(cb)) {
                        *slot = mul16(table, x, y);
                    }
                    let tree = reduce_tree_batched(table, &mut prod[..self.width]);
                    acc += lookup(table, tree);
                }
                acc
            }
            AccPrecision::Fp16 => {
                // The scalar chain's from_f32(to_f32(·)) round trip is the
                // identity on fp16 values, so the accumulator can stay fp16.
                let mut acc = Fp16::from_f32(c);
                for (ca, cb) in a.chunks_exact(self.width).zip(b.chunks_exact(self.width)) {
                    for (slot, (&x, &y)) in prod.iter_mut().zip(ca.iter().zip(cb)) {
                        *slot = mul16(table, x, y);
                    }
                    let tree = reduce_tree_batched(table, &mut prod[..self.width]);
                    acc = add16(table, acc, tree);
                }
                acc.to_f32()
            }
        }
    }
}

/// Batched counterpart of [`crate::ParallelDpUnit`] at its default
/// (IEEE, RNE) multiplier configuration: LUT lane products, table
/// conversions, branch-free rounding — same chunk/tree/accumulate
/// order, so bit-identical per-lane sums and Σ A.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchedParallelDp {
    width: usize,
    precision: WeightPrecision,
    acc: AccPrecision,
    numerics: NumericsMode,
}

impl BatchedParallelDp {
    /// Creates a batched parallel unit (FP32 accumulation, paper-rounded
    /// numerics — the defaults of [`crate::ParallelDpUnit::new`]).
    ///
    /// # Errors
    ///
    /// Returns an error if `width` is not 4, 8 or 16.
    pub fn new(width: usize, precision: WeightPrecision) -> PacqResult<Self> {
        crate::dp::validate_width(width)?;
        Ok(BatchedParallelDp {
            width,
            precision,
            acc: AccPrecision::Fp32,
            numerics: NumericsMode::PaperRounded,
        })
    }

    /// Sets the accumulator precision.
    pub fn with_acc_precision(mut self, acc: AccPrecision) -> Self {
        self.acc = acc;
        self
    }

    /// Sets the product-rounding behaviour (see [`NumericsMode`]).
    pub fn with_numerics(mut self, numerics: NumericsMode) -> Self {
        self.numerics = numerics;
        self
    }

    /// The unit width (4, 8 or 16).
    pub fn width(&self) -> usize {
        self.width
    }

    /// The weight precision.
    pub fn precision(&self) -> WeightPrecision {
        self.precision
    }

    /// Batched counterpart of `ParallelDpUnit::dot_packed_into`: same
    /// signature, same contract, bit-identical lane sums and Σ A.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` lengths differ or are not a multiple of
    /// the unit width.
    pub fn dot_packed_into(
        &self,
        a: &[Fp16],
        b: &[PackedWord],
        lane_sums: &mut [f32; MAX_LANES],
    ) -> f64 {
        assert_eq!(a.len(), b.len(), "operand k-lengths must match");
        assert!(
            a.len().is_multiple_of(self.width),
            "k-length {} not a multiple of DP width {}",
            a.len(),
            self.width
        );
        let lanes = self.precision.lanes();
        let table = to_f32_table();
        lane_sums[..lanes].fill(0f32);
        let mut sum_a = 0f64;
        match self.numerics {
            NumericsMode::PaperRounded => {
                let lut = product_lut(self.precision);
                let mut lane_sums_fp16 = [Fp16::ZERO; MAX_LANES];
                let mut col = [Fp16::ZERO; MAX_WIDTH];
                for (ca, cb) in a.chunks_exact(self.width).zip(b.chunks_exact(self.width)) {
                    for &ak in ca {
                        sum_a += lookup(table, ak) as f64;
                    }
                    for lane in 0..lanes {
                        for (slot, (&ak, &bk)) in col[..self.width]
                            .iter_mut()
                            .zip(ca.iter().zip(cb))
                            .take(self.width)
                        {
                            let code = bk.biased_lane(self.precision, lane) as usize;
                            *slot = Fp16::from_bits(lut[(code << 16) | ak.to_bits() as usize]);
                        }
                        let tree = reduce_tree_batched(table, &mut col[..self.width]);
                        match self.acc {
                            AccPrecision::Fp16 => {
                                lane_sums_fp16[lane] = add16(table, lane_sums_fp16[lane], tree);
                            }
                            AccPrecision::Fp32 => {
                                lane_sums[lane] += lookup(table, tree);
                            }
                        }
                    }
                }
                if self.acc == AccPrecision::Fp16 {
                    for (dst, src) in lane_sums[..lanes].iter_mut().zip(&lane_sums_fp16) {
                        *dst = src.to_f32();
                    }
                }
            }
            NumericsMode::Wide => {
                let mut af = [0f32; MAX_WIDTH];
                for (ca, cb) in a.chunks_exact(self.width).zip(b.chunks_exact(self.width)) {
                    for (slot, &ak) in af.iter_mut().zip(ca) {
                        let v = lookup(table, ak);
                        sum_a += v as f64;
                        *slot = v;
                    }
                    for (lane, sum) in lane_sums[..lanes].iter_mut().enumerate() {
                        for (&v, &bk) in af[..self.width].iter().zip(cb) {
                            // The exact biased product fits f32 (22-bit
                            // significand): 1024 + code = B + offset.
                            let code = bk.biased_lane(self.precision, lane);
                            *sum += v * (1024.0 + code as f32);
                        }
                    }
                }
            }
        }
        sum_a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::{BaselineDpUnit, ParallelDpUnit};
    use crate::softfloat;

    /// A small deterministic generator for f32 bit patterns.
    struct Lcg(u64);

    impl Lcg {
        fn next_u32(&mut self) -> u32 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (self.0 >> 32) as u32
        }
    }

    /// fp16 values that sit on every classify/round frontier.
    fn frontier_values() -> Vec<Fp16> {
        let mut v: Vec<u16> = vec![
            0x0000, 0x8000, // ±0
            0x0001, 0x8001, // min subnormals
            0x03ff, 0x83ff, // max subnormals
            0x0400, 0x8400, // min normals
            0x3bff, 0x3c00, 0x3c01, // around 1.0
            0x7bff, 0xfbff, // ±max finite
            0x7c00, 0xfc00, // ±inf
            0x7e00, 0x7c01, 0xfdff, // NaNs
            0x4c88, 0x64d2, 0x7801, // assorted normals
        ];
        // The RNE carry frontier: all-ones mantissas near the overflow
        // boundary, both signs.
        for exp in 19..=30u16 {
            v.push((exp << 10) | 0x3ff);
            v.push(0x8000 | (exp << 10) | 0x3ff);
        }
        v.into_iter().map(Fp16::from_bits).collect()
    }

    #[test]
    fn pack_rne_matches_from_f32_on_non_nan_inputs() {
        // Crafted boundary payloads in every f32 exponent regime the
        // fp16 conversion distinguishes, plus a big random sample.
        let mantissas = [
            0x000000, 0x000001, 0x000fff, 0x001000, 0x001001, 0x3fffff, 0x400000, 0x7fe000,
            0x7fefff, 0x7ff000, 0x7ff001, 0x7fffff,
        ];
        for exp in 0..=0xfeu32 {
            for &mant in &mantissas {
                for sign in [0u32, 0x8000_0000] {
                    let x = f32::from_bits(sign | (exp << 23) | mant);
                    assert_eq!(
                        pack_rne(x).to_bits(),
                        Fp16::from_f32(x).to_bits(),
                        "x = {x:e} ({:#010x})",
                        x.to_bits()
                    );
                }
            }
        }
        let mut lcg = Lcg(0x9e3779b97f4a7c15);
        for _ in 0..1_000_000 {
            let bits = lcg.next_u32();
            let x = f32::from_bits(bits);
            if x.is_nan() {
                continue;
            }
            assert_eq!(
                pack_rne(x).to_bits(),
                Fp16::from_f32(x).to_bits(),
                "bits {bits:#010x}"
            );
        }
    }

    #[test]
    fn pack_rne_canonicalizes_every_nan() {
        for bits in [
            0x7f80_0001u32,
            0x7fc0_0000,
            0x7fff_ffff,
            0xffc1_2345,
            0xff80_0001,
        ] {
            assert_eq!(
                pack_rne(f32::from_bits(bits)).to_bits(),
                Fp16::NAN.to_bits()
            );
        }
    }

    #[test]
    fn batched_mul_and_add_match_softfloat_on_frontier_pairs() {
        let table = to_f32_table();
        for &a in &frontier_values() {
            for &b in &frontier_values() {
                assert_eq!(
                    mul16(table, a, b).to_bits(),
                    softfloat::mul(a, b).to_bits(),
                    "mul {:#06x} × {:#06x}",
                    a.to_bits(),
                    b.to_bits()
                );
                assert_eq!(
                    add16(table, a, b).to_bits(),
                    softfloat::add(a, b).to_bits(),
                    "add {:#06x} + {:#06x}",
                    a.to_bits(),
                    b.to_bits()
                );
            }
        }
    }

    #[test]
    fn batched_mul_and_add_match_softfloat_on_random_pairs() {
        let table = to_f32_table();
        let mut lcg = Lcg(7);
        for _ in 0..1_000_000 {
            let r = lcg.next_u32();
            let a = Fp16::from_bits(r as u16);
            let b = Fp16::from_bits((r >> 16) as u16);
            assert_eq!(
                mul16(table, a, b).to_bits(),
                softfloat::mul(a, b).to_bits(),
                "mul {:#06x} × {:#06x}",
                a.to_bits(),
                b.to_bits()
            );
            assert_eq!(
                add16(table, a, b).to_bits(),
                softfloat::add(a, b).to_bits(),
                "add {:#06x} + {:#06x}",
                a.to_bits(),
                b.to_bits()
            );
        }
    }

    #[test]
    fn conversion_table_is_exact() {
        let table = to_f32_table();
        for x in Fp16::all_values() {
            let (got, want) = (lookup(table, x), x.to_f32());
            assert!(
                got.to_bits() == want.to_bits() || (got.is_nan() && want.is_nan()),
                "{:#06x}",
                x.to_bits()
            );
        }
    }

    /// The product LUT agrees with every lane of the scalar multiplier
    /// for every activation and every packed word worth of codes.
    #[test]
    fn product_lut_matches_scalar_multiplier_exhaustively() {
        for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
            let lut = product_lut(precision);
            let mul = ParallelFpIntMultiplier::new(precision);
            let mut out = [Fp16::ZERO; MAX_LANES];
            // A word whose lanes enumerate distinct codes exercises the
            // per-lane extraction too.
            let word = PackedWord::from_bits(0xD2B1);
            for a in Fp16::all_values() {
                mul.multiply_into(a, word, &mut out);
                for (lane, got) in out.iter().enumerate().take(precision.lanes()) {
                    let code = word.biased_lane(precision, lane) as usize;
                    assert_eq!(
                        lut[(code << 16) | a.to_bits() as usize],
                        got.to_bits(),
                        "{precision} a={:#06x} lane {lane}",
                        a.to_bits()
                    );
                }
            }
        }
    }

    fn random_operands(seed: u64, len: usize) -> (Vec<Fp16>, Vec<Fp16>, Vec<PackedWord>) {
        let mut lcg = Lcg(seed);
        let a: Vec<Fp16> = (0..len)
            .map(|_| Fp16::from_bits(lcg.next_u32() as u16))
            .collect();
        let b: Vec<Fp16> = (0..len)
            .map(|_| Fp16::from_bits(lcg.next_u32() as u16))
            .collect();
        let w: Vec<PackedWord> = (0..len)
            .map(|_| PackedWord::from_bits(lcg.next_u32() as u16))
            .collect();
        (a, b, w)
    }

    /// Activation vectors that keep sums finite but cross the subnormal
    /// and rounding frontiers (arbitrary bit patterns include NaN/inf,
    /// which the bit-compare above already covers).
    fn frontier_operands(len: usize) -> (Vec<Fp16>, Vec<Fp16>, Vec<PackedWord>) {
        let specials = frontier_values();
        let mut lcg = Lcg(41);
        let pick = |lcg: &mut Lcg| specials[lcg.next_u32() as usize % specials.len()];
        let a: Vec<Fp16> = (0..len).map(|_| pick(&mut lcg)).collect();
        let b: Vec<Fp16> = (0..len).map(|_| pick(&mut lcg)).collect();
        let w: Vec<PackedWord> = (0..len)
            .map(|_| PackedWord::from_bits(lcg.next_u32() as u16))
            .collect();
        (a, b, w)
    }

    #[test]
    fn batched_baseline_matches_scalar_chain() {
        for width in [4usize, 8, 16] {
            for acc in [AccPrecision::Fp32, AccPrecision::Fp16] {
                let scalar = BaselineDpUnit::new(width).unwrap().with_acc_precision(acc);
                let batched = BatchedBaselineDp::new(width)
                    .unwrap()
                    .with_acc_precision(acc);
                for (seed, len) in [(1u64, 4 * width), (2, 16 * width), (3, width)] {
                    let (a, b, _) = random_operands(seed, len);
                    let mut want = 0.5f32;
                    for (ca, cb) in a.chunks(width).zip(b.chunks(width)) {
                        want = scalar.dot_acc(want, ca, cb);
                    }
                    let got = batched.dot_slice(0.5, &a, &b);
                    assert!(
                        got.to_bits() == want.to_bits() || (got.is_nan() && want.is_nan()),
                        "width {width} {acc:?} len {len}: {got} vs {want}"
                    );
                }
                let (a, b, _) = frontier_operands(8 * width);
                let mut want = 0f32;
                for (ca, cb) in a.chunks(width).zip(b.chunks(width)) {
                    want = scalar.dot_acc(want, ca, cb);
                }
                let got = batched.dot_slice(0.0, &a, &b);
                assert!(
                    got.to_bits() == want.to_bits() || (got.is_nan() && want.is_nan()),
                    "frontier width {width} {acc:?}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn batched_parallel_matches_scalar_in_every_mode() {
        for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
            for numerics in [NumericsMode::PaperRounded, NumericsMode::Wide] {
                for acc in [AccPrecision::Fp32, AccPrecision::Fp16] {
                    for width in [4usize, 8] {
                        let scalar = ParallelDpUnit::new(width, 2, precision)
                            .unwrap()
                            .with_numerics(numerics)
                            .with_acc_precision(acc);
                        let batched = BatchedParallelDp::new(width, precision)
                            .unwrap()
                            .with_numerics(numerics)
                            .with_acc_precision(acc);
                        for (seed, len) in [(11u64, 4 * width), (12, 16 * width)] {
                            let (a, _, w) = random_operands(seed, len);
                            let mut want = [0f32; MAX_LANES];
                            let want_sum = scalar.dot_packed_into(&a, &w, &mut want);
                            let mut got = [0f32; MAX_LANES];
                            let got_sum = batched.dot_packed_into(&a, &w, &mut got);
                            // NaN payloads are outside the contract (the
                            // compiler may commute float adds, changing
                            // which payload propagates).
                            assert!(
                                got_sum.to_bits() == want_sum.to_bits()
                                    || (got_sum.is_nan() && want_sum.is_nan()),
                                "ΣA {precision}/{numerics:?}/{acc:?}/w{width}: \
                                 {got_sum} vs {want_sum}"
                            );
                            for lane in 0..precision.lanes() {
                                let (g, s) = (got[lane], want[lane]);
                                assert!(
                                    g.to_bits() == s.to_bits() || (g.is_nan() && s.is_nan()),
                                    "lane {lane} {precision}/{numerics:?}/{acc:?}/w{width}: \
                                     {g} vs {s}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn batched_parallel_matches_scalar_on_frontier_activations() {
        for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
            for numerics in [NumericsMode::PaperRounded, NumericsMode::Wide] {
                let scalar = ParallelDpUnit::new(4, 2, precision)
                    .unwrap()
                    .with_numerics(numerics);
                let batched = BatchedParallelDp::new(4, precision)
                    .unwrap()
                    .with_numerics(numerics);
                let (a, _, w) = frontier_operands(32);
                let mut want = [0f32; MAX_LANES];
                let want_sum = scalar.dot_packed_into(&a, &w, &mut want);
                let mut got = [0f32; MAX_LANES];
                let got_sum = batched.dot_packed_into(&a, &w, &mut got);
                assert!(
                    got_sum.to_bits() == want_sum.to_bits()
                        || (got_sum.is_nan() && want_sum.is_nan()),
                    "ΣA {precision}/{numerics:?}: {got_sum} vs {want_sum}"
                );
                for lane in 0..precision.lanes() {
                    let (g, s) = (got[lane], want[lane]);
                    assert!(
                        g.to_bits() == s.to_bits() || (g.is_nan() && s.is_nan()),
                        "lane {lane} {precision}/{numerics:?}: {g} vs {s}"
                    );
                }
            }
        }
    }

    #[test]
    fn backend_tokens_round_trip() {
        for backend in Backend::ALL {
            assert_eq!(Backend::parse(backend.token()), Some(backend));
            assert_eq!(backend.to_string(), backend.token());
        }
        assert_eq!(Backend::parse("turbo"), None);
        assert_eq!(Backend::parse("Scalar"), None, "tokens are exact");
        assert_eq!(Backend::default(), Backend::Scalar);
    }
}
