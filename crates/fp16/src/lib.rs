//! # pacq-fp16 — bit-accurate FP16 arithmetic and the PacQ datapaths
//!
//! Foundation crate of the PacQ reproduction (Yin, Li, Panda,
//! *"PacQ: A SIMT Microarchitecture for Efficient Dataflow in
//! Hyper-asymmetric GEMMs"*, DAC 2025).
//!
//! It provides, all implemented from scratch so every bit can be audited:
//!
//! * [`Fp16`] — IEEE 754 binary16 storage type and conversions;
//! * [`softfloat`] — correctly-rounded reference multiply/add (the
//!   specification the hardware models are proved against);
//! * [`Fp16Multiplier`] — structural model of the baseline FP16 multiplier
//!   datapath (Figure 5(a), Table I);
//! * [`ParallelFpIntMultiplier`] — **the paper's contribution**: one FP16
//!   activation × 4 packed INT4 (or 8 packed INT2) weights per cycle
//!   (Figure 5(b)–(d)), bit-exact with the reference;
//! * [`BaselineDpUnit`] / [`ParallelDpUnit`] — DP-4/8/16 dot-product units
//!   with the adder-tree duplication knob (Figures 8, 11, 12(a));
//! * [`BatchedBaselineDp`] / [`BatchedParallelDp`] — the batched SoA fast
//!   path ([`Backend::Batched`]): table conversions, branch-free rounding
//!   and LUT lane products, bit-identical to the scalar units;
//! * [`Int4`] / [`Int2`] / [`PackedWord`] — packed low-precision weights.
//!
//! ## Quick example
//!
//! ```
//! use pacq_fp16::{Fp16, Int4, PackedWord, ParallelFpIntMultiplier, WeightPrecision};
//!
//! // Multiply one activation by four INT4 weights in a single cycle.
//! let unit = ParallelFpIntMultiplier::new(WeightPrecision::Int4);
//! let weights = PackedWord::pack_int4([
//!     Int4::new(-8).unwrap(),
//!     Int4::new(-1).unwrap(),
//!     Int4::new(3).unwrap(),
//!     Int4::new(7).unwrap(),
//! ]);
//! let trace = unit.multiply(Fp16::from_f32(0.5), weights);
//! // Products are biased by +1032 and recovered downstream via Eq. (1).
//! let p: Vec<f32> = trace.products().map(|x| x.to_f32()).collect();
//! assert_eq!(p, vec![512.0, 515.5, 517.5, 519.5]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The no-panic contract (DESIGN.md §10): library code returns
// `Result<_, PacqError>`; only tests may unwrap.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod batch;
mod bits;
pub mod dp;
pub mod mul;
mod packed;
pub mod parallel;
pub mod softfloat;

pub use batch::{Backend, BatchedBaselineDp, BatchedParallelDp};
pub use bits::{Fp16, Fp16Class, EXP_BIAS, EXP_MAX, HIDDEN_BIT, MANT_BITS, MANT_MASK};
pub use dp::{
    AccPrecision, BaselineDpUnit, DpResources, NumericsMode, PackedDotResult, ParallelDpUnit,
    SumAccumulator,
};
pub use mul::{Fp16Multiplier, MulTrace, MultiplierResources, RoundingMode, SubnormalMode};
pub use packed::{Int2, Int4, PackedWord, WeightPrecision, WeightRangeError};
pub use parallel::{LaneTrace, ParallelFpIntMultiplier, ParallelMulTrace, MAX_LANES};
