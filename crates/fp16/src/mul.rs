//! Structural model of the baseline FP16 multiplier (Figure 5(a)).
//!
//! The model mirrors the hardware decomposition the paper synthesizes:
//!
//! * sign: 1 XOR gate,
//! * exponent: one 5-bit integer adder (`INT5 adder` in Table I),
//! * mantissa: an 11×11-bit integer multiplier built as a shift-add array
//!   of **10 parallel 16-bit adders** (`INT11 MUL` in Table I),
//! * one normalization unit (1-bit shift when the product reaches `[2,4)`),
//! * one rounding unit (round-to-nearest-even).
//!
//! [`Fp16Multiplier::multiply`] walks those stages explicitly and records
//! the intermediate signals in a [`MulTrace`], so the datapath can be
//! audited and its per-stage activity fed into the energy model. The
//! result is bit-exact with [`crate::softfloat::mul`] (proved exhaustively
//! in the test suite for full one-operand sweeps).

use crate::bits::{Fp16, EXP_BIAS, EXP_MAX, MANT_BITS, MANT_MASK};

/// Rounding implemented by the rounding units.
///
/// Round-to-nearest-even needs an incrementer plus tie detection;
/// truncation is nearly free in hardware. The paper's units are RNE;
/// the truncating variant is modeled as a design-space point (and the
/// numerics study shows why it is a bad idea for PacQ: truncating the
/// ~1032×-inflated biased products injects a *systematic* negative bias
/// that the Eq. (1) recovery turns into signal-sized error).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoundingMode {
    /// IEEE 754 round-to-nearest, ties to even (the paper's units).
    #[default]
    NearestEven,
    /// Round toward zero (drop the low bits) — cheaper hardware.
    Truncate,
}

/// How the datapath treats subnormal inputs and outputs.
///
/// Real GPU multiply datapaths frequently flush subnormals; the IEEE mode
/// adds a leading-zero normalizer in front of the array. Both are modeled
/// so their cost difference can be studied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SubnormalMode {
    /// Full IEEE 754 semantics (gradual underflow).
    #[default]
    Ieee,
    /// Flush subnormal inputs and outputs to (sign-preserving) zero.
    FlushToZero,
}

/// Intermediate signals of one multiplication through the datapath.
///
/// Field names follow Figure 5; everything is observable so tests and the
/// energy model can count toggles per stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MulTrace {
    /// XOR of the operand signs.
    pub sign_out: bool,
    /// Raw biased exponent sum before normalization/rounding adjustment.
    pub exp_sum: i32,
    /// The 11-bit significands fed to the integer multiplier array.
    pub sig_a: u16,
    /// Second multiplier operand.
    pub sig_b: u16,
    /// Exact 22-bit significand product out of the adder array.
    pub raw_product: u32,
    /// Number of partial products that were non-zero (adder array activity).
    pub partial_products_used: u32,
    /// Whether the 1-bit normalization shift fired (product in `[2,4)`).
    pub normalized: bool,
    /// Whether rounding incremented the mantissa.
    pub round_up: bool,
    /// The packed result.
    pub result: Fp16,
}

/// Resource inventory of the baseline multiplier, matching Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiplierResources {
    /// 16-bit adders inside the mantissa multiplier array.
    pub int16_adders: u32,
    /// 6-bit adders (none in the baseline; used by the parallel unit).
    pub int6_adders: u32,
    /// 5-bit exponent adders.
    pub int5_adders: u32,
    /// Normalization units.
    pub normalization_units: u32,
    /// Rounding units.
    pub rounding_units: u32,
}

/// Baseline IEEE 754 FP16 multiplier datapath (Figure 5(a); Table I row
/// "FP16 MUL (baseline)").
///
/// # Examples
///
/// ```
/// use pacq_fp16::{Fp16, Fp16Multiplier};
///
/// let unit = Fp16Multiplier::new();
/// let trace = unit.multiply(Fp16::from_f32(1.5), Fp16::from_f32(2.0));
/// assert_eq!(trace.result.to_f32(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Fp16Multiplier {
    subnormal_mode: SubnormalMode,
    rounding: RoundingMode,
}

impl Fp16Multiplier {
    /// Creates a multiplier with full IEEE semantics.
    pub fn new() -> Self {
        Fp16Multiplier {
            subnormal_mode: SubnormalMode::Ieee,
            rounding: RoundingMode::NearestEven,
        }
    }

    /// Creates a multiplier with the given subnormal handling.
    pub fn with_subnormal_mode(subnormal_mode: SubnormalMode) -> Self {
        Fp16Multiplier {
            subnormal_mode,
            rounding: RoundingMode::NearestEven,
        }
    }

    /// Replaces the rounding units (design-space study).
    pub fn with_rounding(mut self, rounding: RoundingMode) -> Self {
        self.rounding = rounding;
        self
    }

    /// The configured subnormal handling.
    pub fn subnormal_mode(&self) -> SubnormalMode {
        self.subnormal_mode
    }

    /// The configured rounding mode.
    pub fn rounding(&self) -> RoundingMode {
        self.rounding
    }

    /// Pipeline issue interval: one multiply per cycle.
    pub const fn throughput_per_cycle(&self) -> u32 {
        1
    }

    /// Resource inventory (Table I: "1 INT11 MUL [10 INT16 adders],
    /// 1 INT5 adder, 1 normalization unit, 1 rounding unit").
    pub const fn resources(&self) -> MultiplierResources {
        MultiplierResources {
            int16_adders: 10,
            int6_adders: 0,
            int5_adders: 1,
            normalization_units: 1,
            rounding_units: 1,
        }
    }

    /// Runs one multiplication through the datapath.
    pub fn multiply(&self, a: Fp16, b: Fp16) -> MulTrace {
        let sign_out = a.sign() ^ b.sign();
        let sign_bits = (sign_out as u16) << 15;

        // Special handling in front of the array (hardware side-paths).
        if let Some(result) = special_case(a, b, sign_bits, self.subnormal_mode) {
            return MulTrace {
                sign_out,
                exp_sum: 0,
                sig_a: 0,
                sig_b: 0,
                raw_product: 0,
                partial_products_used: 0,
                normalized: false,
                round_up: false,
                result,
            };
        }

        // Operand conditioning: significand with hidden bit; subnormals get
        // renormalized by the leading-zero shifter (IEEE mode only; FTZ
        // inputs were already flushed by `special_case`).
        let (sig_a, exp_a) = condition(a);
        let (sig_b, exp_b) = condition(b);

        // --- INT11 MUL: 11x11 shift-add array over 10 INT16 adders ----
        // Partial product i = sig_a << i when bit i of sig_b is set; the 11
        // partial products reduce through 10 two-input adders.
        let mut raw_product: u32 = 0;
        let mut partial_products_used = 0;
        for bit in 0..=MANT_BITS {
            if (sig_b >> bit) & 1 == 1 {
                raw_product += (sig_a as u32) << bit;
                partial_products_used += 1;
            }
        }
        debug_assert_eq!(raw_product, sig_a as u32 * sig_b as u32);

        // --- INT5 adder: exponent sum (biased domain) -------------------
        let exp_sum = exp_a + exp_b;

        // --- Normalization unit: product is in [1,4) -------------------
        let mut exp = exp_sum;
        let mut frac = raw_product;
        let normalized = frac & (1 << 21) != 0;
        if normalized {
            frac = (frac >> 1) | (frac & 1); // keep sticky
            exp += 1;
        }

        // --- Rounding unit ----------------------------------------------
        let (result, round_up) =
            round_pack(sign_out, exp, frac, self.subnormal_mode, self.rounding);

        MulTrace {
            sign_out,
            exp_sum,
            sig_a,
            sig_b,
            raw_product,
            partial_products_used,
            normalized,
            round_up,
            result,
        }
    }

    /// Convenience wrapper returning just the product.
    pub fn product(&self, a: Fp16, b: Fp16) -> Fp16 {
        self.multiply(a, b).result
    }
}

/// Special-value side paths (zeros, infinities, NaN, flushed subnormals).
fn special_case(a: Fp16, b: Fp16, sign_bits: u16, mode: SubnormalMode) -> Option<Fp16> {
    if a.is_nan() || b.is_nan() {
        return Some(Fp16::NAN);
    }
    if a.is_infinite() || b.is_infinite() {
        if a.is_zero() || b.is_zero() {
            return Some(Fp16::NAN);
        }
        if mode == SubnormalMode::FlushToZero && (a.is_subnormal() || b.is_subnormal()) {
            return Some(Fp16::NAN); // inf × (flushed 0)
        }
        return Some(Fp16::from_bits(sign_bits | Fp16::INFINITY.to_bits()));
    }
    let a_zeroish = a.is_zero() || (mode == SubnormalMode::FlushToZero && a.is_subnormal());
    let b_zeroish = b.is_zero() || (mode == SubnormalMode::FlushToZero && b.is_subnormal());
    if a_zeroish || b_zeroish {
        return Some(Fp16::from_bits(sign_bits));
    }
    None
}

/// Produces the (normalized 11-bit significand, unbiased exponent) pair the
/// array consumes. Subnormals pass through the leading-zero shifter.
fn condition(x: Fp16) -> (u16, i32) {
    let mut sig = x.significand();
    let mut exp = x.unbiased_exponent();
    while sig & (1 << MANT_BITS) == 0 {
        sig <<= 1;
        exp -= 1;
    }
    (sig, exp)
}

/// Round-to-nearest-even packing shared with the parallel unit.
///
/// `frac` is a 21/22-bit window with msb at bit 20 (value `[1,2) × 2^exp`).
/// Returns the packed value and whether rounding incremented.
pub(crate) fn round_pack(
    sign: bool,
    exp: i32,
    frac: u32,
    mode: SubnormalMode,
    rounding: RoundingMode,
) -> (Fp16, bool) {
    let sign_bits = (sign as u16) << 15;
    let biased = exp + EXP_BIAS;

    if biased >= EXP_MAX as i32 {
        return (Fp16::from_bits(sign_bits | Fp16::INFINITY.to_bits()), false);
    }

    if biased <= 0 {
        let shift = (11 - biased) as u32;
        if shift > 22 {
            return (Fp16::from_bits(sign_bits), false);
        }
        let kept = (frac >> shift) as u16;
        let round_bit = (frac >> (shift - 1)) & 1;
        let sticky = frac & ((1 << (shift - 1)) - 1) != 0;
        let mut out = kept;
        let round_up =
            rounding == RoundingMode::NearestEven && round_bit == 1 && (sticky || kept & 1 == 1);
        if round_up {
            out += 1;
        }
        if mode == SubnormalMode::FlushToZero {
            // Round before classifying: a value just below 2^-14 rounds
            // up INTO the normal range and must be kept; only genuinely
            // subnormal results flush. (Found by the exhaustive RTL
            // equivalence sweep — see pacq-rtl.)
            return if out >= crate::bits::HIDDEN_BIT {
                (Fp16::from_bits(sign_bits | out), round_up)
            } else {
                (Fp16::from_bits(sign_bits), false)
            };
        }
        return (Fp16::from_bits(sign_bits | out), round_up);
    }

    let kept = (frac >> 10) as u16;
    let round_bit = (frac >> 9) & 1;
    let sticky = frac & 0x1FF != 0;
    let mut sig = kept;
    let mut biased = biased as u16;
    let round_up =
        rounding == RoundingMode::NearestEven && round_bit == 1 && (sticky || sig & 1 == 1);
    if round_up {
        sig += 1;
        if sig == (1 << (MANT_BITS + 1)) {
            sig >>= 1;
            biased += 1;
            if biased >= EXP_MAX {
                return (Fp16::from_bits(sign_bits | Fp16::INFINITY.to_bits()), true);
            }
        }
    }
    (
        Fp16::from_bits(sign_bits | (biased << MANT_BITS) | (sig & MANT_MASK)),
        round_up,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::softfloat;

    fn same(x: Fp16, y: Fp16) -> bool {
        (x.is_nan() && y.is_nan()) || x == y
    }

    #[test]
    fn datapath_is_bit_exact_with_softfloat_on_operand_sweeps() {
        let unit = Fp16Multiplier::new();
        let fixed = [
            0x0000, 0x8000, 0x0001, 0x03FF, 0x0400, 0x3C00, 0xBC00, 0x3555, 0x7BFF, 0x7C00, 0x7E00,
            0x6400, 0x6408, 0x6417,
        ];
        for &f in &fixed {
            let b = Fp16::from_bits(f);
            for a in Fp16::all_values() {
                let got = unit.product(a, b);
                let want = softfloat::mul(a, b);
                assert!(
                    same(got, want),
                    "datapath({:04x}, {:04x}) = {:04x}, softfloat {:04x}",
                    a.to_bits(),
                    f,
                    got.to_bits(),
                    want.to_bits()
                );
            }
        }
    }

    #[test]
    fn datapath_matches_softfloat_on_random_pairs() {
        let unit = Fp16Multiplier::new();
        let mut a_bits = 0u16;
        for _ in 0..30_000u32 {
            a_bits = a_bits.wrapping_add(24_593);
            let b_bits = a_bits.wrapping_mul(31).wrapping_add(17);
            let a = Fp16::from_bits(a_bits);
            let b = Fp16::from_bits(b_bits);
            assert!(same(unit.product(a, b), softfloat::mul(a, b)));
        }
    }

    #[test]
    fn flush_to_zero_mode() {
        let unit = Fp16Multiplier::with_subnormal_mode(SubnormalMode::FlushToZero);
        // Subnormal input flushes.
        let sub = Fp16::MIN_SUBNORMAL;
        assert_eq!(unit.product(sub, Fp16::ONE), Fp16::ZERO);
        assert_eq!(unit.product(sub.neg(), Fp16::ONE), Fp16::NEG_ZERO);
        // Subnormal output flushes.
        let got = unit.product(Fp16::MIN_POSITIVE, Fp16::from_f32(0.5));
        assert_eq!(got, Fp16::ZERO);
        // Normal results unaffected.
        assert_eq!(
            unit.product(Fp16::from_f32(3.0), Fp16::from_f32(0.5))
                .to_f32(),
            1.5
        );
        // inf × subnormal = inf × 0 = NaN in FTZ.
        assert!(unit.product(Fp16::INFINITY, sub).is_nan());
    }

    #[test]
    fn trace_reports_partial_product_activity() {
        let unit = Fp16Multiplier::new();
        // 1.0 × 1.0: significand 0x400, exactly one partial product each.
        let t = unit.multiply(Fp16::ONE, Fp16::ONE);
        assert_eq!(t.partial_products_used, 1);
        assert!(!t.normalized);
        // 1.5 × 1.5 = 2.25: normalization fires.
        let t = unit.multiply(Fp16::from_f32(1.5), Fp16::from_f32(1.5));
        assert!(t.normalized);
        assert_eq!(t.result.to_f32(), 2.25);
    }

    #[test]
    fn resources_match_table_i() {
        let r = Fp16Multiplier::new().resources();
        assert_eq!(r.int16_adders, 10);
        assert_eq!(r.int5_adders, 1);
        assert_eq!(r.normalization_units, 1);
        assert_eq!(r.rounding_units, 1);
        assert_eq!(r.int6_adders, 0);
    }

    #[test]
    fn truncating_rounding_never_exceeds_rne_magnitude() {
        let rne = Fp16Multiplier::new();
        let trunc = Fp16Multiplier::new().with_rounding(RoundingMode::Truncate);
        let mut a_bits = 0u16;
        for _ in 0..20_000u32 {
            a_bits = a_bits.wrapping_add(24_593);
            let b_bits = a_bits.wrapping_mul(19).wrapping_add(5);
            let a = Fp16::from_bits(a_bits);
            let b = Fp16::from_bits(b_bits);
            let r = rne.product(a, b);
            let t = trunc.product(a, b);
            if r.is_nan() || t.is_nan() || r.is_infinite() {
                continue;
            }
            // Truncation rounds toward zero: |t| <= |r| and within 1 ulp.
            assert!(
                t.abs().to_f32() <= r.abs().to_f32(),
                "{a_bits:04x}x{b_bits:04x}: trunc {t} vs rne {r}"
            );
            // Subnormal results step in fixed 2^-24 increments.
            let ulp = (r.abs().to_f32() * 2.0f32.powi(-10)).max(2.0f32.powi(-24));
            assert!((t.to_f32() - r.to_f32()).abs() <= ulp * 1.01);
        }
    }

    #[test]
    fn truncation_is_exact_on_exact_products() {
        let trunc = Fp16Multiplier::new().with_rounding(RoundingMode::Truncate);
        // 1.5 x 2.0 = 3.0 needs no rounding; both modes agree.
        assert_eq!(
            trunc
                .product(Fp16::from_f32(1.5), Fp16::from_f32(2.0))
                .to_f32(),
            3.0
        );
    }

    #[test]
    fn raw_product_is_exact_integer_multiply() {
        let unit = Fp16Multiplier::new();
        let a = Fp16::from_f32(1.2345);
        let b = Fp16::from_f32(0.789);
        let t = unit.multiply(a, b);
        assert_eq!(t.raw_product, t.sig_a as u32 * t.sig_b as u32);
    }
}
