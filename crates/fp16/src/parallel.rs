//! The parallel FP-INT multiplier — PacQ's core arithmetic contribution
//! (Figure 5(b)–(d)).
//!
//! # The trick
//!
//! Any integer `x ∈ [1024, 2048)` has FP16 exponent `0b11001` (biased 25)
//! and mantissa `x - 1024` in its low 10 bits. A signed INT4 weight
//! `B ∈ [-8, 7]` biased to `B + 8 + 1024 = B + 1032` therefore has:
//!
//! 1. a **constant exponent** `11001`, and
//! 2. a mantissa of the form `0000_00yyyy` where `yyyy = B + 8`.
//!
//! So multiplying an FP16 activation `A` by four packed INT4 weights needs
//! only four 11×4-bit integer multiplications instead of four 11×11-bit
//! ones — cheap enough to do **all four in one cycle** while reusing the
//! baseline multiplier's adder array (~73 % resource reuse). INT2 works the
//! same way with offset `B + 2 + 1024 = B + 1026` and eight 11×2-bit lanes.
//!
//! The `+offset` bias is *not* an approximation: the surrounding dot
//! product removes it algebraically, `Σ A·B = Σ A·(B+offset) − offset·Σ A`
//! (the paper's Eq. (1); see [`crate::dp::SumAccumulator`]).
//!
//! # Normalization
//!
//! Section IV claims output normalization is unnecessary, but the mantissa
//! product `1.m_A × (1024+y)/1024` reaches `[2, 2.03)` whenever `m_A` is
//! near its maximum and `y > 0` (e.g. `0x7FF × 1039 > 2^21`), so a 1-bit
//! normalization shift is required — and indeed Table I lists one
//! normalization unit in the parallel FP-INT-16 MUL. This model implements
//! it; [`ParallelMulTrace::normalized_lanes`] lets tests count how often it
//! fires.
//!
//! Every lane's output is **bit-exact** with the correctly-rounded
//! reference `softfloat::mul(A, Fp16(B + offset))`, verified exhaustively
//! over all 2^16 activations × all weight codes in this crate's tests.

use crate::bits::{Fp16, MANT_BITS};
use crate::mul::{round_pack, MultiplierResources, RoundingMode, SubnormalMode};
use crate::packed::{PackedWord, WeightPrecision};

/// Maximum number of lanes (8 for INT2).
pub const MAX_LANES: usize = 8;

/// Per-lane intermediate signals (Figure 5(c)–(d)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LaneTrace {
    /// The biased weight code `y` fed to the 11×w-bit multiplier.
    pub weight_code: u8,
    /// The intermediate product `i = sig_A × y` (≤ 15 bits).
    pub intermediate: u32,
    /// Result of the 6-bit assembly addition (Figure 5(d)).
    pub assembly_sum: u32,
    /// Whether the post-assembly 1-bit normalization fired.
    pub normalized: bool,
    /// Whether rounding incremented the mantissa.
    pub round_up: bool,
    /// The lane's FP16 product `A × (B + offset)`.
    pub product: Fp16,
}

/// Trace of one parallel multiplication: one FP16 activation times all
/// weights in a packed word, produced in a single cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelMulTrace {
    /// Shared output sign (`sign(A) ⊕ 0`; the biased weights are positive).
    pub sign_out: bool,
    /// Shared unbiased output exponent before per-lane normalization
    /// (`exp(A) + 10`).
    pub exp_shared: i32,
    /// The conditioned 11-bit activation significand.
    pub sig_a: u16,
    /// Per-lane signals; only the first [`Self::lanes`] entries are valid.
    pub lane_traces: [LaneTrace; MAX_LANES],
    /// Number of active lanes (4 for INT4, 8 for INT2).
    pub lanes: usize,
}

impl ParallelMulTrace {
    /// The valid per-lane traces.
    pub fn lane_traces(&self) -> &[LaneTrace] {
        &self.lane_traces[..self.lanes]
    }

    /// The FP16 products, lane 0 first.
    pub fn products(&self) -> impl Iterator<Item = Fp16> + '_ {
        self.lane_traces().iter().map(|l| l.product)
    }

    /// How many lanes needed the 1-bit normalization shift.
    pub fn normalized_lanes(&self) -> usize {
        self.lane_traces().iter().filter(|l| l.normalized).count()
    }
}

/// The parallel FP-INT-16 multiplier unit (Table I row
/// "Parallel FP-INT-16 MUL").
///
/// Multiplies one FP16 activation by 4 packed INT4 weights (or 8 packed
/// INT2 weights) per cycle. Weights arrive as *biased* codes inside a
/// [`PackedWord`]; outputs are `A × (B + offset)` and the offset is removed
/// downstream per Eq. (1).
///
/// # Examples
///
/// ```
/// use pacq_fp16::{Fp16, Int4, PackedWord, ParallelFpIntMultiplier, WeightPrecision};
///
/// let unit = ParallelFpIntMultiplier::new(WeightPrecision::Int4);
/// let weights = PackedWord::pack_int4([
///     Int4::new(-8).unwrap(),
///     Int4::new(-1).unwrap(),
///     Int4::new(0).unwrap(),
///     Int4::new(7).unwrap(),
/// ]);
/// let trace = unit.multiply(Fp16::from_f32(2.0), weights);
/// // Lane 0: 2.0 × (-8 + 1032) = 2048.
/// assert_eq!(trace.lane_traces()[0].product.to_f32(), 2048.0);
/// // Lane 3: 2.0 × (7 + 1032) = 2078.
/// assert_eq!(trace.lane_traces()[3].product.to_f32(), 2078.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelFpIntMultiplier {
    precision: WeightPrecision,
    subnormal_mode: SubnormalMode,
    rounding: RoundingMode,
}

impl ParallelFpIntMultiplier {
    /// Creates a unit for the given weight precision with IEEE subnormal
    /// handling.
    pub fn new(precision: WeightPrecision) -> Self {
        ParallelFpIntMultiplier {
            precision,
            subnormal_mode: SubnormalMode::Ieee,
            rounding: RoundingMode::NearestEven,
        }
    }

    /// Creates a unit with explicit subnormal handling.
    pub fn with_subnormal_mode(precision: WeightPrecision, subnormal_mode: SubnormalMode) -> Self {
        ParallelFpIntMultiplier {
            precision,
            subnormal_mode,
            rounding: RoundingMode::NearestEven,
        }
    }

    /// Replaces the four rounding units (design-space study; see
    /// [`RoundingMode`]).
    pub fn with_rounding(mut self, rounding: RoundingMode) -> Self {
        self.rounding = rounding;
        self
    }

    /// The weight precision this unit is configured for.
    pub fn precision(&self) -> WeightPrecision {
        self.precision
    }

    /// Products produced per cycle (4 for INT4, 8 for INT2) — the paper's
    /// headline throughput of Figure 8.
    pub fn throughput_per_cycle(&self) -> u32 {
        self.precision.lanes() as u32
    }

    /// Resource inventory (Table I: "1 parallel INT11 MUL [12 INT16 adders,
    /// 4 INT6 adders], 1 INT5 adder, 1 normalization unit, 4 rounding
    /// units").
    pub const fn resources(&self) -> MultiplierResources {
        MultiplierResources {
            int16_adders: 12,
            int6_adders: 4,
            int5_adders: 1,
            normalization_units: 1,
            rounding_units: 4,
        }
    }

    /// One lane of the datapath: the 11×w-bit shift-add multiply, the
    /// Figure 5(d) assembly, the shared normalization and the rounding
    /// unit. Returns `(intermediate, assembly_sum, normalized, round_up,
    /// product)` so both the tracing and the value-only entry points walk
    /// the exact same gates.
    #[inline]
    fn lane_datapath(
        &self,
        sign_out: bool,
        exp_shared: i32,
        sig_a: u16,
        y: u8,
    ) -> (u32, u32, bool, bool, Fp16) {
        // --- parallel INT11 MUL: 11×w-bit product ----------------------
        // Shift-add over the weight code's bits; across 4 INT4 lanes this
        // is at most 4 partial products each, reduced by the 12 INT16
        // adders of Table I.
        let mut intermediate: u32 = 0;
        for bit in 0..self.precision.bits() {
            if (y >> bit) & 1 == 1 {
                intermediate += (sig_a as u32) << bit;
            }
        }
        debug_assert_eq!(intermediate, sig_a as u32 * y as u32);

        // --- Figure 5(d) assembly --------------------------------------
        // Full product = sig_a × (1024 + y) = (sig_a << 10) + i.
        // Structurally: i[9:0] passes through; i[14:10] (the top MSBs of
        // i) add to sig_a[5:0] in an INT6 adder; the carry ripples into
        // sig_a[10:6].
        let i_low = intermediate & 0x3FF;
        let i_high = intermediate >> 10; // ≤ 5 bits
        let a_low6 = (sig_a as u32) & 0x3F;
        let assembly_sum = a_low6 + i_high; // INT6 adder (+carry out)
        let a_high5 = (sig_a as u32) >> 6;
        let raw = ((a_high5 << 16) + (assembly_sum << 10)) | i_low;
        debug_assert_eq!(raw, ((sig_a as u32) << 10) + intermediate);

        // --- shared normalization unit ---------------------------------
        let normalized = raw & (1 << 21) != 0;
        let (mut frac, mut exp) = (raw, exp_shared);
        if normalized {
            frac = (frac >> 1) | (frac & 1);
            exp += 1;
        }

        // --- per-lane rounding unit (4 of them in Table I) -------------
        let (product, round_up) =
            round_pack(sign_out, exp, frac, self.subnormal_mode, self.rounding);
        (intermediate, assembly_sum, normalized, round_up, product)
    }

    /// If the activation is a special value (NaN, ±inf, ±0, or a flushed
    /// subnormal), the per-lane product it forces; the biased weights are
    /// always positive finite, so A's class alone decides.
    #[inline]
    fn special_product(&self, a: Fp16) -> Option<Fp16> {
        if a.is_nan() {
            return Some(Fp16::NAN);
        }
        if a.is_infinite() {
            return Some(Fp16::from_bits(
                ((a.sign() as u16) << 15) | Fp16::INFINITY.to_bits(),
            ));
        }
        let flush = self.subnormal_mode == SubnormalMode::FlushToZero && a.is_subnormal();
        if a.is_zero() || flush {
            return Some(Fp16::from_bits((a.sign() as u16) << 15));
        }
        None
    }

    /// Conditions the activation: 11-bit significand with the hidden bit
    /// set plus the shared output exponent (`exp(A) + 10`, observation ①).
    #[inline]
    fn condition_activation(a: Fp16) -> (u16, i32) {
        let mut sig_a = a.significand();
        let mut exp_a = a.unbiased_exponent();
        while sig_a & (1 << MANT_BITS) == 0 {
            sig_a <<= 1;
            exp_a -= 1;
        }
        (sig_a, exp_a + 10)
    }

    /// Multiplies activation `a` by every weight in `packed`, producing all
    /// lane products for this cycle.
    ///
    /// Outputs are `a × (B_lane + offset)` where
    /// `offset = precision.fp_offset()`; each is bit-identical to the
    /// correctly-rounded FP16 product of those two values.
    pub fn multiply(&self, a: Fp16, packed: PackedWord) -> ParallelMulTrace {
        let lanes = self.precision.lanes();
        let mut trace = ParallelMulTrace {
            sign_out: a.sign(),
            exp_shared: 0,
            sig_a: 0,
            lane_traces: [LaneTrace::default(); MAX_LANES],
            lanes,
        };

        // Activation-side special values short-circuit every lane.
        if let Some(product) = self.special_product(a) {
            for lane in 0..lanes {
                trace.lane_traces[lane].weight_code = packed.biased_lane(self.precision, lane);
                trace.lane_traces[lane].product = product;
            }
            return trace;
        }

        // Condition A (subnormal activations pass through the
        // leading-zero shifter in IEEE mode); a single INT5 adder produces
        // the shared output exponent for all lanes.
        let (sig_a, exp_shared) = Self::condition_activation(a);
        trace.sig_a = sig_a;
        trace.exp_shared = exp_shared;

        for lane in 0..lanes {
            let y = packed.biased_lane(self.precision, lane);
            let (intermediate, assembly_sum, normalized, round_up, product) =
                self.lane_datapath(trace.sign_out, exp_shared, sig_a, y);
            trace.lane_traces[lane] = LaneTrace {
                weight_code: y,
                intermediate,
                assembly_sum,
                normalized,
                round_up,
                product,
            };
        }
        trace
    }

    /// Value-only fast path: writes the per-lane FP16 products of
    /// `a × packed` into `out` without assembling a [`ParallelMulTrace`].
    ///
    /// Walks the identical datapath as [`Self::multiply`] (the two share
    /// every gate-level step), so products are bit-identical; only the
    /// per-lane bookkeeping is skipped. This is what the functional GEMM
    /// hot loop calls — the tracing entry point remains for tests, the
    /// pipeline model and the energy counters.
    #[inline]
    pub fn multiply_into(&self, a: Fp16, packed: PackedWord, out: &mut [Fp16; MAX_LANES]) {
        let lanes = self.precision.lanes();
        if let Some(product) = self.special_product(a) {
            out[..lanes].fill(product);
            return;
        }
        let (sig_a, exp_shared) = Self::condition_activation(a);
        let sign_out = a.sign();
        for (lane, slot) in out[..lanes].iter_mut().enumerate() {
            let y = packed.biased_lane(self.precision, lane);
            *slot = self.lane_datapath(sign_out, exp_shared, sig_a, y).4;
        }
    }

    /// The FP16 value of a biased weight code (`code + 1024`), i.e. what
    /// the lane product is mathematically multiplied by.
    ///
    /// Exact: `1024 + code < 2048` always fits the 11-bit significand.
    pub fn biased_weight_value(&self, code: u8) -> Fp16 {
        debug_assert!((code as usize) < (1 << self.precision.bits()));
        Fp16::from_f32(1024.0 + code as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::{Int2, Int4};
    use crate::softfloat;

    fn same(x: Fp16, y: Fp16) -> bool {
        (x.is_nan() && y.is_nan()) || x == y
    }

    /// The headline exhaustive proof: every lane product is bit-identical
    /// to the correctly-rounded FP16 multiply by (B + 1032), for ALL 2^16
    /// activations × all 16 INT4 codes.
    #[test]
    fn int4_bit_exact_exhaustive() {
        let unit = ParallelFpIntMultiplier::new(WeightPrecision::Int4);
        // One packed word covering codes {0,5,10,15}, another {1..}, etc.,
        // so four sweeps cover all 16 codes.
        let words: [[i8; 4]; 4] = [
            [-8, -3, 2, 7],
            [-7, -2, 3, 6],
            [-6, -1, 4, 5],
            [-5, -4, 0, 1],
        ];
        for w in words {
            let packed = PackedWord::pack_int4(w.map(|v| Int4::new(v).unwrap()));
            let refs: Vec<Fp16> = w
                .iter()
                .map(|&v| Fp16::from_f32(v as f32 + 1032.0))
                .collect();
            for a in Fp16::all_values() {
                let trace = unit.multiply(a, packed);
                for (lane, want_b) in refs.iter().enumerate() {
                    let got = trace.lane_traces()[lane].product;
                    let want = softfloat::mul(a, *want_b);
                    assert!(
                        same(got, want),
                        "A={:04x} B={} lane{lane}: got {:04x}, want {:04x}",
                        a.to_bits(),
                        w[lane],
                        got.to_bits(),
                        want.to_bits()
                    );
                }
            }
        }
    }

    /// Same proof for INT2: all 2^16 activations × all 4 codes.
    #[test]
    fn int2_bit_exact_exhaustive() {
        let unit = ParallelFpIntMultiplier::new(WeightPrecision::Int2);
        let w: [i8; 8] = [-2, -1, 0, 1, -2, -1, 0, 1];
        let packed = PackedWord::pack_int2(w.map(|v| Int2::new(v).unwrap()));
        let refs: Vec<Fp16> = w
            .iter()
            .map(|&v| Fp16::from_f32(v as f32 + 1026.0))
            .collect();
        for a in Fp16::all_values() {
            let trace = unit.multiply(a, packed);
            for (lane, want_b) in refs.iter().enumerate() {
                let got = trace.lane_traces()[lane].product;
                let want = softfloat::mul(a, *want_b);
                assert!(
                    same(got, want),
                    "A={:04x} B={} lane{lane}: got {:04x}, want {:04x}",
                    a.to_bits(),
                    w[lane],
                    got.to_bits(),
                    want.to_bits()
                );
            }
        }
    }

    /// The paper's §IV prose says normalization is unnecessary; Table I
    /// includes a normalization unit. This test settles it: the shift DOES
    /// fire (for large mantissas × non-zero codes), so Table I is right.
    #[test]
    fn normalization_fires_and_is_required() {
        let unit = ParallelFpIntMultiplier::new(WeightPrecision::Int4);
        let packed = PackedWord::pack_int4([Int4::MAX; 4]); // code 15
        let mut fired = 0usize;
        for a in Fp16::all_values() {
            if !a.is_normal() {
                continue;
            }
            fired += unit.multiply(a, packed).normalized_lanes();
        }
        assert!(
            fired > 0,
            "normalization never fired; the paper's 'unnecessary' claim would hold"
        );
        // With code 15 the product ≥ 2 iff sig_a × 1039 ≥ 2^21, i.e.
        // sig_a ≥ 2018.47 → sig_a ∈ [2019, 2047]: 29 of 1024 mantissas.
        let normals = Fp16::all_values().filter(|a| a.is_normal()).count();
        assert_eq!(fired % 4, 0);
        assert_eq!(fired / 4, normals * 29 / 1024);
    }

    #[test]
    fn shared_exponent_is_activation_exponent_plus_ten() {
        let unit = ParallelFpIntMultiplier::new(WeightPrecision::Int4);
        let packed = PackedWord::pack_int4([Int4::new(0).unwrap(); 4]);
        let a = Fp16::from_f32(2.0); // unbiased exponent 1
        let t = unit.multiply(a, packed);
        assert_eq!(t.exp_shared, 11);
    }

    #[test]
    fn activation_specials_propagate_to_all_lanes() {
        let unit = ParallelFpIntMultiplier::new(WeightPrecision::Int4);
        let packed = PackedWord::pack_int4([Int4::new(-3).unwrap(); 4]);

        for p in unit.multiply(Fp16::NAN, packed).products() {
            assert!(p.is_nan());
        }
        for p in unit.multiply(Fp16::NEG_INFINITY, packed).products() {
            assert_eq!(p, Fp16::NEG_INFINITY);
        }
        for p in unit.multiply(Fp16::NEG_ZERO, packed).products() {
            assert_eq!(p, Fp16::NEG_ZERO);
        }
    }

    #[test]
    fn subnormal_activation_ieee_vs_ftz() {
        let packed = PackedWord::pack_int4([Int4::MAX; 4]);
        let sub = Fp16::MIN_SUBNORMAL;

        let ieee = ParallelFpIntMultiplier::new(WeightPrecision::Int4);
        let want = softfloat::mul(sub, Fp16::from_f32(1039.0));
        assert_eq!(ieee.multiply(sub, packed).lane_traces()[0].product, want);
        assert!(!want.is_zero());

        let ftz = ParallelFpIntMultiplier::with_subnormal_mode(
            WeightPrecision::Int4,
            SubnormalMode::FlushToZero,
        );
        assert_eq!(
            ftz.multiply(sub, packed).lane_traces()[0].product,
            Fp16::ZERO
        );
    }

    #[test]
    fn sign_is_shared_across_lanes() {
        let unit = ParallelFpIntMultiplier::new(WeightPrecision::Int4);
        // Mixed-sign weights become positive after biasing, so only A's
        // sign matters — the key simplification of Figure 5(b).
        let packed = PackedWord::pack_int4([
            Int4::new(-8).unwrap(),
            Int4::new(7).unwrap(),
            Int4::new(-1).unwrap(),
            Int4::new(1).unwrap(),
        ]);
        let t = unit.multiply(Fp16::from_f32(-3.5), packed);
        assert!(t.sign_out);
        for p in t.products() {
            assert!(p.sign());
        }
    }

    #[test]
    fn throughput_matches_lane_count() {
        assert_eq!(
            ParallelFpIntMultiplier::new(WeightPrecision::Int4).throughput_per_cycle(),
            4
        );
        assert_eq!(
            ParallelFpIntMultiplier::new(WeightPrecision::Int2).throughput_per_cycle(),
            8
        );
    }

    #[test]
    fn resources_match_table_i() {
        let r = ParallelFpIntMultiplier::new(WeightPrecision::Int4).resources();
        assert_eq!(r.int16_adders, 12);
        assert_eq!(r.int6_adders, 4);
        assert_eq!(r.int5_adders, 1);
        assert_eq!(r.normalization_units, 1);
        assert_eq!(r.rounding_units, 4);
    }

    #[test]
    fn truncating_rounding_units_bias_products_toward_zero() {
        use crate::mul::RoundingMode;
        let rne = ParallelFpIntMultiplier::new(WeightPrecision::Int4);
        let trunc = rne.with_rounding(RoundingMode::Truncate);
        let packed = PackedWord::pack_int4([Int4::new(3).unwrap(); 4]);
        let mut strictly_lower = 0usize;
        for a in Fp16::all_values().filter(|a| a.is_normal() && !a.sign()) {
            let r = rne.multiply(a, packed).lane_traces()[0].product;
            let t = trunc.multiply(a, packed).lane_traces()[0].product;
            if r.is_infinite() {
                continue;
            }
            assert!(t.to_f32() <= r.to_f32());
            if t != r {
                strictly_lower += 1;
            }
        }
        // The bias is systematic, not incidental: many products shrink.
        assert!(
            strictly_lower > 1000,
            "only {strictly_lower} products differ"
        );
    }

    /// The value-only fast path and the tracing path share the datapath;
    /// prove it stays that way over every activation (both precisions,
    /// both subnormal modes, mixed codes).
    #[test]
    fn multiply_into_bit_identical_to_trace_path() {
        let words = [
            (
                WeightPrecision::Int4,
                PackedWord::pack_int4([-8, -1, 3, 7].map(|v| Int4::new(v).unwrap())),
            ),
            (
                WeightPrecision::Int2,
                PackedWord::pack_int2([-2, -1, 0, 1, 1, 0, -1, -2].map(|v| Int2::new(v).unwrap())),
            ),
        ];
        for (precision, packed) in words {
            for mode in [SubnormalMode::Ieee, SubnormalMode::FlushToZero] {
                let unit = ParallelFpIntMultiplier::with_subnormal_mode(precision, mode);
                for a in Fp16::all_values() {
                    let trace = unit.multiply(a, packed);
                    let mut fast = [Fp16::ZERO; MAX_LANES];
                    unit.multiply_into(a, packed, &mut fast);
                    for (lane, lt) in trace.lane_traces().iter().enumerate() {
                        assert!(
                            same(lt.product, fast[lane]),
                            "A={:04x} {precision} lane{lane}: trace {:04x} fast {:04x}",
                            a.to_bits(),
                            lt.product.to_bits(),
                            fast[lane].to_bits()
                        );
                    }
                }
            }
        }
    }

    /// The RNE overflow frontier. With weights biased into
    /// `[1024, 2048)` the product exponent is `exp(A) + 10` (+1 when
    /// normalization fires), so products cross `Fp16::MAX` exactly in
    /// the `exp(A) ∈ {4, 5}` binades — above them every product
    /// saturates outright. Exhaustive over both signs × every mantissa
    /// of the frontier-and-above binades × every weight code, for both
    /// precisions: each lane product must match the softfloat reference
    /// bit for bit, the frontier must produce BOTH outcomes (a finite
    /// `MAX` and an infinity), and the subtlest path — an all-ones
    /// mantissa whose round-up carries INTO infinity (`round_pack`'s
    /// post-increment overflow, e.g. `sig_a=2046 × 1025`) — must fire.
    #[test]
    fn rne_carry_to_infinity_frontier_is_bit_exact() {
        for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
            let unit = ParallelFpIntMultiplier::new(precision);
            let codes = 1u8 << precision.bits();
            let (mut finite_max, mut infinite, mut carried) = (0usize, 0usize, 0usize);
            for code in 0..codes {
                let packed = match precision {
                    WeightPrecision::Int4 => {
                        PackedWord::pack_int4([Int4::new(code as i8 - 8).unwrap(); 4])
                    }
                    WeightPrecision::Int2 => {
                        PackedWord::pack_int2([Int2::new(code as i8 - 2).unwrap(); 8])
                    }
                };
                let want_b = unit.biased_weight_value(code);
                for exp_field in 19u16..=30 {
                    for sign in [0u16, 1 << 15] {
                        for mant in 0u16..1024 {
                            let a = Fp16::from_bits(sign | (exp_field << 10) | mant);
                            let lt = unit.multiply(a, packed).lane_traces()[0];
                            let want = softfloat::mul(a, want_b);
                            assert!(
                                same(lt.product, want),
                                "A={:04x} code={code} {precision}: got {:04x}, want {:04x}",
                                a.to_bits(),
                                lt.product.to_bits(),
                                want.to_bits()
                            );
                            if lt.product.is_infinite() {
                                infinite += 1;
                                if lt.round_up {
                                    carried += 1;
                                }
                            } else if lt.product.to_bits() & 0x7FFF == Fp16::MAX.to_bits() {
                                finite_max += 1;
                            }
                        }
                    }
                }
            }
            assert!(finite_max > 0, "{precision}: frontier never lands on MAX");
            assert!(infinite > 0, "{precision}: frontier never overflows");
            assert!(
                carried > 0,
                "{precision}: the round-up-carries-to-infinity path never fired"
            );
        }
    }

    #[test]
    fn biased_weight_value_is_exact() {
        let unit = ParallelFpIntMultiplier::new(WeightPrecision::Int4);
        for code in 0u8..16 {
            let v = unit.biased_weight_value(code);
            assert_eq!(v.to_f32(), 1024.0 + code as f32);
            assert_eq!(v.biased_exponent(), 25); // 0b11001, observation ①
            assert_eq!(v.mantissa(), code as u16); // observation ②
        }
    }
}
