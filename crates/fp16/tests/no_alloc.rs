//! Audit that the dot-product hot paths are allocation-free.
//!
//! The functional GEMM layer calls `dot_acc` / `dot_packed_into` (and
//! their batched counterparts) once per output element per k-segment;
//! a single hidden `Vec` there multiplies into millions of allocator
//! round trips per sweep point. This suite counts allocations through
//! a wrapping global allocator and asserts the hot paths make zero —
//! in debug builds as well as release, so a regression fails `cargo
//! test` before it ever reaches a benchmark.

use pacq_fp16::{
    AccPrecision, BaselineDpUnit, BatchedBaselineDp, BatchedParallelDp, Fp16, NumericsMode,
    PackedWord, ParallelDpUnit, WeightPrecision, MAX_LANES,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Pass-through allocator that counts every allocation.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to the system allocator; the counter is a
// relaxed atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many allocations it made alongside its
/// result.
fn allocations_in<T>(f: impl FnOnce() -> T) -> (u64, T) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, out)
}

fn operands(len: usize) -> (Vec<Fp16>, Vec<Fp16>, Vec<PackedWord>) {
    let a: Vec<Fp16> = (0..len)
        .map(|i| Fp16::from_f32((i as f32 * 0.37 - 3.0).sin()))
        .collect();
    let b: Vec<Fp16> = (0..len)
        .map(|i| Fp16::from_f32((i as f32 * 0.51 + 1.0).cos()))
        .collect();
    let w: Vec<PackedWord> = (0..len)
        .map(|i| PackedWord::from_bits((i as u16).wrapping_mul(0x9e37)))
        .collect();
    (a, b, w)
}

// One single test: the allocation counter is process-global, so
// concurrent test threads would observe each other's setup allocations.
#[test]
fn hot_paths_do_not_allocate() {
    let (a, b, w) = operands(64);
    for acc in [AccPrecision::Fp32, AccPrecision::Fp16] {
        let dp = BaselineDpUnit::new(4).unwrap().with_acc_precision(acc);
        let (n, out) = allocations_in(|| {
            let mut c = 0f32;
            for (ca, cb) in a.chunks(4).zip(b.chunks(4)) {
                c = dp.dot_acc(c, ca, cb);
            }
            c
        });
        assert_eq!(n, 0, "BaselineDpUnit::dot_acc ({acc:?}) allocated");
        std::hint::black_box(out);
    }

    for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
        for numerics in [NumericsMode::PaperRounded, NumericsMode::Wide] {
            let dp = ParallelDpUnit::new(4, 2, precision)
                .unwrap()
                .with_numerics(numerics);
            let mut lane_sums = [0f32; MAX_LANES];
            let (n, out) = allocations_in(|| dp.dot_packed_into(&a, &w, &mut lane_sums));
            assert_eq!(
                n, 0,
                "ParallelDpUnit::dot_packed_into ({precision}/{numerics:?}) allocated"
            );
            std::hint::black_box(out);
        }
    }

    let dp = ParallelDpUnit::new(4, 2, WeightPrecision::Int4).unwrap();
    let result = dp.dot_packed(&a, &w);
    let scales = [0.5f32; MAX_LANES];
    let mut out = [0f32; MAX_LANES];
    let (n, _) = allocations_in(|| {
        result.recover_into(&mut out);
        result.recover_scaled_into(&scales, &mut out);
    });
    assert_eq!(n, 0, "PackedDotResult::recover_into allocated");
    std::hint::black_box(out);

    // Warm the lazily-built conversion and product tables: those one-off
    // builds allocate by design, the per-call kernels must not.
    pacq_fp16::batch::to_f32_table();
    pacq_fp16::batch::product_lut(WeightPrecision::Int4);
    pacq_fp16::batch::product_lut(WeightPrecision::Int2);

    for acc in [AccPrecision::Fp32, AccPrecision::Fp16] {
        let dp = BatchedBaselineDp::new(4).unwrap().with_acc_precision(acc);
        let (n, out) = allocations_in(|| dp.dot_slice(0.0, &a, &b));
        assert_eq!(n, 0, "BatchedBaselineDp::dot_slice ({acc:?}) allocated");
        std::hint::black_box(out);
    }

    for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
        for numerics in [NumericsMode::PaperRounded, NumericsMode::Wide] {
            let dp = BatchedParallelDp::new(4, precision)
                .unwrap()
                .with_numerics(numerics);
            let mut lane_sums = [0f32; MAX_LANES];
            let (n, out) = allocations_in(|| dp.dot_packed_into(&a, &w, &mut lane_sums));
            assert_eq!(
                n, 0,
                "BatchedParallelDp::dot_packed_into ({precision}/{numerics:?}) allocated"
            );
            std::hint::black_box(out);
        }
    }
}
