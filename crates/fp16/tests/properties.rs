//! Property-based tests for the FP16 arithmetic and the PacQ datapaths.

use pacq_fp16::{
    softfloat, BaselineDpUnit, Fp16, Fp16Multiplier, Int2, Int4, NumericsMode, PackedWord,
    ParallelDpUnit, ParallelFpIntMultiplier, SubnormalMode, WeightPrecision,
};
use proptest::prelude::*;

fn same(x: Fp16, y: Fp16) -> bool {
    (x.is_nan() && y.is_nan()) || x == y
}

/// Arbitrary finite, non-NaN fp16 in a friendly numeric range.
fn small_fp16() -> impl Strategy<Value = Fp16> {
    (-100.0f32..100.0).prop_map(Fp16::from_f32)
}

/// Activations small enough that the biased products A × (B + 1032) AND
/// their 4-wide FP16 tree sums stay finite (4 × |A| × 1039 < 65504, so
/// |A| ≲ 15) — a genuine range constraint of the PaperRounded PacQ
/// datapath documented in EXPERIMENTS.md.
fn act_fp16() -> impl Strategy<Value = Fp16> {
    (-10.0f32..10.0).prop_map(Fp16::from_f32)
}

fn any_fp16() -> impl Strategy<Value = Fp16> {
    any::<u16>().prop_map(Fp16::from_bits)
}

fn any_int4() -> impl Strategy<Value = Int4> {
    (-8i8..=7).prop_map(|v| Int4::new(v).expect("in range"))
}

fn any_int2() -> impl Strategy<Value = Int2> {
    (-2i8..=1).prop_map(|v| Int2::new(v).expect("in range"))
}

proptest! {
    /// softfloat multiplication agrees with the f32 oracle on arbitrary
    /// bit patterns (the oracle is correctly rounded by the 2p+2 theorem).
    #[test]
    fn softfloat_mul_matches_oracle(a in any_fp16(), b in any_fp16()) {
        let got = softfloat::mul(a, b);
        let want = Fp16::from_f32(a.to_f32() * b.to_f32());
        prop_assert!(same(got, want), "{:04x} × {:04x}: got {:04x} want {:04x}",
            a.to_bits(), b.to_bits(), got.to_bits(), want.to_bits());
    }

    /// softfloat addition agrees with the f32 oracle.
    #[test]
    fn softfloat_add_matches_oracle(a in any_fp16(), b in any_fp16()) {
        let got = softfloat::add(a, b);
        let want = Fp16::from_f32(a.to_f32() + b.to_f32());
        prop_assert!(same(got, want), "{:04x} + {:04x}: got {:04x} want {:04x}",
            a.to_bits(), b.to_bits(), got.to_bits(), want.to_bits());
    }

    /// Multiplication is commutative.
    #[test]
    fn softfloat_mul_commutes(a in any_fp16(), b in any_fp16()) {
        prop_assert!(same(softfloat::mul(a, b), softfloat::mul(b, a)));
    }

    /// Addition is commutative.
    #[test]
    fn softfloat_add_commutes(a in any_fp16(), b in any_fp16()) {
        prop_assert!(same(softfloat::add(a, b), softfloat::add(b, a)));
    }

    /// Multiplying by one is the identity for finite values.
    #[test]
    fn mul_by_one_is_identity(a in any_fp16()) {
        prop_assume!(!a.is_nan());
        prop_assert_eq!(softfloat::mul(a, Fp16::ONE), a);
    }

    /// x + (-x) is exactly +0 for finite x.
    #[test]
    fn add_inverse_cancels(a in any_fp16()) {
        prop_assume!(a.is_finite());
        prop_assert_eq!(softfloat::add(a, a.neg()), Fp16::ZERO);
    }

    /// The baseline multiplier datapath equals the softfloat reference.
    #[test]
    fn datapath_mul_equals_softfloat(a in any_fp16(), b in any_fp16()) {
        let unit = Fp16Multiplier::new();
        prop_assert!(same(unit.product(a, b), softfloat::mul(a, b)));
    }

    /// FTZ datapath equals IEEE whenever no subnormals are involved.
    #[test]
    fn ftz_equals_ieee_away_from_subnormals(a in any_fp16(), b in any_fp16()) {
        let ieee = Fp16Multiplier::new();
        let ftz = Fp16Multiplier::with_subnormal_mode(SubnormalMode::FlushToZero);
        let want = ieee.product(a, b);
        prop_assume!(!a.is_subnormal() && !b.is_subnormal() && !want.is_subnormal());
        prop_assert!(same(ftz.product(a, b), want));
    }

    /// Parallel FP-INT lane products are bit-exact with the reference
    /// multiply by (B + 1032), for arbitrary activations and weights.
    #[test]
    fn parallel_int4_lane_exactness(
        a in any_fp16(),
        w in prop::array::uniform4(any_int4()),
    ) {
        let unit = ParallelFpIntMultiplier::new(WeightPrecision::Int4);
        let packed = PackedWord::pack_int4(w);
        let trace = unit.multiply(a, packed);
        for (lane, &wi) in w.iter().enumerate() {
            let want = softfloat::mul(a, Fp16::from_f32(wi.value() as f32 + 1032.0));
            let got = trace.lane_traces()[lane].product;
            prop_assert!(same(got, want),
                "A={:04x} B={}: got {:04x} want {:04x}",
                a.to_bits(), wi.value(), got.to_bits(), want.to_bits());
        }
    }

    /// Same for INT2 with offset 1026.
    #[test]
    fn parallel_int2_lane_exactness(
        a in any_fp16(),
        w in prop::array::uniform8(any_int2()),
    ) {
        let unit = ParallelFpIntMultiplier::new(WeightPrecision::Int2);
        let packed = PackedWord::pack_int2(w);
        let trace = unit.multiply(a, packed);
        for (lane, &wi) in w.iter().enumerate() {
            let want = softfloat::mul(a, Fp16::from_f32(wi.value() as f32 + 1026.0));
            let got = trace.lane_traces()[lane].product;
            prop_assert!(same(got, want));
        }
    }

    /// Packed words round-trip through pack/unpack.
    #[test]
    fn packed_word_roundtrip_int4(w in prop::array::uniform4(any_int4())) {
        prop_assert_eq!(PackedWord::pack_int4(w).unpack_int4(), w);
    }

    /// Packed INT2 words round-trip.
    #[test]
    fn packed_word_roundtrip_int2(w in prop::array::uniform8(any_int2())) {
        prop_assert_eq!(PackedWord::pack_int2(w).unpack_int2(), w);
    }

    /// Eq. (1) recovery in Wide mode matches a direct f32 dot product to
    /// tight tolerance (products are exact; only Σ rounding differs).
    #[test]
    fn eq1_recovery_is_accurate_in_wide_mode(
        a in prop::collection::vec(act_fp16(), 8),
        w in prop::collection::vec(prop::array::uniform4(any_int4()), 8),
    ) {
        let dp = ParallelDpUnit::new(4, 2, WeightPrecision::Int4)
            .unwrap()
            .with_numerics(NumericsMode::Wide);
        let words: Vec<PackedWord> = w.iter().map(|&x| PackedWord::pack_int4(x)).collect();
        let res = dp.dot_packed(&a, &words);
        let rec = res.recover();
        for lane in 0..4 {
            let want: f64 = a.iter().zip(&w)
                .map(|(&x, wk)| x.to_f32() as f64 * wk[lane].value() as f64)
                .sum();
            let scale = a.iter().map(|x| x.to_f32().abs() as f64).sum::<f64>().max(1.0);
            prop_assert!(((rec[lane] as f64) - want).abs() <= 1e-2 * scale,
                "lane {lane}: got {} want {want}", rec[lane]);
        }
    }

    /// The PaperRounded error is bounded: each term's rounding error is at
    /// most 0.5 ulp of the biased product ≈ 2^(e_A − 1), so the recovered
    /// dot product deviates by at most Σ 0.5·2^(e_Ak)·(k-dependent slack).
    #[test]
    fn eq1_paper_rounded_error_is_bounded(
        a in prop::collection::vec(act_fp16(), 8),
        w in prop::collection::vec(prop::array::uniform4(any_int4()), 8),
    ) {
        let dp = ParallelDpUnit::new(4, 2, WeightPrecision::Int4).unwrap();
        let words: Vec<PackedWord> = w.iter().map(|&x| PackedWord::pack_int4(x)).collect();
        let res = dp.dot_packed(&a, &words);
        let rec = res.recover();
        for lane in 0..4 {
            let want: f64 = a.iter().zip(&w)
                .map(|(&x, wk)| x.to_f32() as f64 * wk[lane].value() as f64)
                .sum();
            // Budget: per-term product rounding (0.5 ulp of ~2048·|a|,
            // i.e. ≤ 0.5·|a|) plus FP16 tree-add rounding at magnitudes up
            // to 4·1039·max|a| (≤ 2·max|a| per add, 3 adds per batch).
            let sum_abs: f64 = a.iter().map(|x| x.to_f32().abs() as f64).sum();
            let max_abs: f64 = a.iter()
                .map(|x| x.to_f32().abs() as f64)
                .fold(0.0, f64::max);
            let budget: f64 = 0.5 * sum_abs + 6.0 * max_abs * (a.len() as f64 / 4.0) + 1.0;
            prop_assert!(((rec[lane] as f64) - want).abs() <= budget,
                "lane {lane}: got {} want {want} budget {budget}", rec[lane]);
        }
    }

    /// Baseline DP dot product matches an f32 reference within FP16
    /// accumulation tolerance.
    #[test]
    fn baseline_dp_close_to_reference(
        a in prop::array::uniform4(small_fp16()),
        b in prop::array::uniform4(small_fp16()),
    ) {
        let dp = BaselineDpUnit::new(4).unwrap();
        let got = dp.dot_acc(0.0, &a, &b);
        let want: f64 = a.iter().zip(&b)
            .map(|(&x, &y)| x.to_f32() as f64 * y.to_f32() as f64).sum();
        prop_assume!(want.abs() < 60000.0);
        let scale = a.iter().zip(&b)
            .map(|(&x, &y)| (x.to_f32() * y.to_f32()).abs() as f64)
            .sum::<f64>().max(1.0);
        prop_assert!(((got as f64) - want).abs() <= 2e-3 * scale);
    }

    /// Timing model monotonicity: more batches never take fewer cycles,
    /// and higher duplication never increases cycles.
    #[test]
    fn timing_monotone(batches in 1u64..1000) {
        for prec in [WeightPrecision::Int4, WeightPrecision::Int2] {
            let d1 = ParallelDpUnit::new(4, 1, prec).unwrap();
            let d2 = ParallelDpUnit::new(4, 2, prec).unwrap();
            let d4 = ParallelDpUnit::new(4, 4, prec).unwrap();
            prop_assert!(d1.cycles_for_batches(batches) >= d2.cycles_for_batches(batches));
            prop_assert!(d2.cycles_for_batches(batches) >= d4.cycles_for_batches(batches));
            prop_assert!(d2.cycles_for_batches(batches + 1) > d2.cycles_for_batches(batches));
        }
    }
}

/// Historic `baseline_dp_close_to_reference` failure, promoted from the
/// retired `.proptest-regressions` file (the hermetic proptest shim does
/// not read regression files, so the case is pinned here explicitly).
/// Two products of magnitude ≈110k individually overflow FP16's ±65504
/// range before they can cancel, so the baseline DP tree sums
/// `+inf + (-inf)` and returns NaN even though the true dot product
/// (≈ −17834) is representable. This is the overflow hazard that forced
/// `small_fp16` down to ±100 — with that bound, 4-wide products top out
/// at 4 × 10⁴ and stay finite.
#[test]
fn baseline_dp_historic_overflow_case() {
    let a = [56363u16, 0, 57274, 0].map(Fp16::from_bits);
    let b = [24221u16, 0, 55810, 0].map(Fp16::from_bits);
    let dp = BaselineDpUnit::new(4).unwrap();
    let got = dp.dot_acc(0.0, &a, &b);
    let want: f64 = a
        .iter()
        .zip(&b)
        .map(|(&x, &y)| x.to_f32() as f64 * y.to_f32() as f64)
        .sum();
    // The exact answer fits comfortably in FP16...
    assert!(
        want.abs() < 60000.0,
        "true dot product is representable (want = {want})"
    );
    // ...but the intermediate products do not, and the baseline unit has
    // no wide accumulator to save them.
    let max_product = a
        .iter()
        .zip(&b)
        .map(|(&x, &y)| (x.to_f32() * y.to_f32()).abs() as f64)
        .fold(0.0, f64::max);
    assert!(max_product > 65504.0, "intermediate product overflows FP16");
    assert!(
        got.is_nan(),
        "expected NaN from inf + (-inf) in the FP16 tree, got {got}"
    );
}
