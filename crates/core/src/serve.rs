//! `pacq serve` — the long-lived concurrent evaluation server
//! (DESIGN.md §13).
//!
//! The server speaks **`pacq-serve/v1`**: newline-delimited JSON frames
//! over TCP (`--port N`; `--port 0` binds an ephemeral port announced
//! in the ready frame) or over stdin/stdout (`--stdio`). Every frame is
//! one line; every reply echoes the request's `id` so clients may
//! pipeline (replies are **not** ordered across requests — a batch may
//! finish after a later ping).
//!
//! Design rules, in the order they bite:
//!
//! - **Never a panic, never a dropped bystander.** A malformed frame
//!   (bad JSON, unknown `op`, wrong field type, oversized line) is
//!   answered with a typed [`PacqError`] frame on the same connection;
//!   other connections never notice.
//! - **Bounded queue, explicit backpressure.** Work requests pass
//!   through a `sync_channel` of capacity `--queue`; when it is full
//!   the client gets a `queue_full` error frame (exit-code class 8)
//!   instead of the server growing without bound.
//! - **One lossless codec.** Replies embed reports in the
//!   `pacq-cache/v1` entry encoding (u64 counters as decimal strings,
//!   floats as shortest-round-trip numbers), so a served report is
//!   bit-identical to an in-process [`GemmRunner::analyze`] — the
//!   property `tests/serve_conformance.rs` pins.
//! - **Graceful drain, no signals.** The workspace forbids `unsafe`,
//!   so a SIGTERM handler is out of reach; instead a `shutdown` frame
//!   (or stdin EOF in `--stdio` mode) drains: queued requests finish,
//!   replies flush, then the server exits. Supervisors should send the
//!   frame (or close stdin) rather than SIGKILL.

use crate::cli;
use crate::runner::GemmRunner;
use pacq_cache::ReportCache;
use pacq_error::{PacqError, PacqResult};
use pacq_fp16::{Backend, WeightPrecision};
use pacq_quant::GroupShape;
use pacq_simt::{Architecture, SmConfig, Workload};
use pacq_trace::Json;
use rayon::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;

/// The protocol identifier stamped into every frame the server emits.
pub const PROTOCOL: &str = "pacq-serve/v1";

/// Hard cap on one frame line, newline included. Longer lines are
/// answered with a typed protocol error and skipped (the connection
/// survives); the reader never buffers more than this per line.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Hard cap on the number of points in one `batch` frame.
pub const MAX_BATCH_POINTS: usize = 4096;

/// Default `--queue` capacity (pending work requests).
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// Serve-layer tuning knobs (queue capacity and worker count).
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Bounded request-queue capacity; overflow is a `queue_full` frame.
    pub queue_capacity: usize,
    /// Worker threads computing replies. The CLI sizes this from the
    /// shared `--jobs` validator (`par.rs`), so `--jobs`/`PACQ_JOBS`
    /// govern the server exactly like every batch command.
    pub workers: usize,
    /// Functional compute backend for served evaluations. Both backends
    /// answer with bit-identical reports (the conformance suite pins
    /// this), so the knob only affects throughput.
    pub backend: Backend,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            workers: rayon::current_num_threads().max(1),
            backend: Backend::Scalar,
        }
    }
}

/// What a server run did, for the CLI summary line and the manifest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Frames answered `ok: true` (analyze, batch, stats, ping,
    /// shutdown acks).
    pub served: u64,
    /// Typed error frames sent (malformed frames, queue overflow,
    /// simulator errors).
    pub errors: u64,
}

/// One fully-validated evaluation point (the serve-side mirror of the
/// CLI's per-command options).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Point {
    arch: Architecture,
    workload: Workload,
    group: GroupShape,
    dup: usize,
    width: usize,
}

/// A partially-specified point: `batch` frames carry frame-level
/// defaults that entries override; `shape` has no default.
#[derive(Debug, Clone, Copy)]
struct PointSpec {
    shape: Option<pacq_simt::GemmShape>,
    arch: Architecture,
    precision: WeightPrecision,
    group: GroupShape,
    dup: usize,
    width: usize,
}

impl PointSpec {
    /// The CLI's defaults: PacQ architecture, INT4, `g128`, `--dup 2`,
    /// `--width 4`.
    fn base() -> PointSpec {
        PointSpec {
            shape: None,
            arch: Architecture::Pacq,
            precision: WeightPrecision::Int4,
            group: GroupShape::G128,
            dup: 2,
            width: 4,
        }
    }

    fn into_point(self) -> PacqResult<Point> {
        let shape = self
            .shape
            .ok_or_else(|| PacqError::usage("`shape` is required (e.g. \"m16n4096k4096\")"))?;
        Ok(Point {
            arch: self.arch,
            workload: Workload::new(shape, self.precision),
            group: self.group,
            dup: self.dup,
            width: self.width,
        })
    }
}

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq)]
enum Request {
    Analyze(Point),
    Batch(Vec<Point>),
    Stats,
    Ping,
    Shutdown,
}

/// One unit of queued work: the request, the id to echo, and the
/// originating connection's reply channel.
struct Job {
    request: Request,
    id: Json,
    reply: mpsc::Sender<String>,
}

/// Shared server state: the bounded queue, the counters the `stats`
/// endpoint reports, and the handles drain needs.
struct ServerState {
    /// `Some` while accepting work; drain takes it so workers finish
    /// the backlog and exit.
    queue: Mutex<Option<SyncSender<Job>>>,
    draining: AtomicBool,
    served: AtomicU64,
    errors: AtomicU64,
    depth: AtomicUsize,
    options: ServeOptions,
    cache: Option<Arc<ReportCache>>,
    /// Read-half clones of live TCP connections, so drain can unblock
    /// idle readers. Empty in `--stdio` mode.
    conns: Mutex<Vec<TcpStream>>,
    /// The bound address (TCP mode), for the drain wake-up connection.
    addr: Option<SocketAddr>,
}

/// Locks ignoring poisoning: every structure behind these mutexes is
/// valid at all times (a queue handle, a socket list), so a panicking
/// writer cannot leave a broken invariant behind.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl ServerState {
    fn new(
        options: ServeOptions,
        cache: Option<Arc<ReportCache>>,
        addr: Option<SocketAddr>,
    ) -> (Arc<ServerState>, Receiver<Job>) {
        let (tx, rx) = mpsc::sync_channel(options.queue_capacity);
        let state = ServerState {
            queue: Mutex::new(Some(tx)),
            draining: AtomicBool::new(false),
            served: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            depth: AtomicUsize::new(0),
            options,
            cache,
            conns: Mutex::new(Vec::new()),
            addr,
        };
        (Arc::new(state), rx)
    }

    fn summary(&self) -> ServeSummary {
        ServeSummary {
            served: self.served.load(Ordering::SeqCst),
            errors: self.errors.load(Ordering::SeqCst),
        }
    }

    /// Initiates the graceful drain (idempotent): stop accepting work,
    /// let queued jobs finish, unblock idle readers and the acceptor.
    fn drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        // Dropping the only sender lets workers finish the buffered
        // backlog, then exit on the disconnect.
        *lock(&self.queue) = None;
        // Unblock the accept loop (it re-checks the flag per accept).
        if let Some(addr) = self.addr {
            drop(TcpStream::connect(addr));
        }
        // EOF every connection's reader; pending replies still flush
        // through the write halves.
        for conn in lock(&self.conns).iter() {
            let _ = conn.shutdown(Shutdown::Read);
        }
    }
}

// ---------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------

fn base_frame(id: &Json) -> Json {
    let mut frame = Json::object();
    frame.set("schema", PROTOCOL);
    frame.set("id", id.clone());
    frame
}

fn ok_frame(id: &Json) -> Json {
    let mut frame = base_frame(id);
    frame.set("ok", true);
    frame
}

fn error_frame(id: &Json, error: &PacqError) -> Json {
    let mut detail = Json::object();
    detail.set("class", error.class());
    detail.set("exit_code", u64::from(error.exit_code()));
    detail.set("message", error.to_string());
    let mut frame = base_frame(id);
    frame.set("ok", false);
    frame.set("error", detail);
    frame
}

fn stats_frame(id: &Json, state: &ServerState) -> Json {
    let mut stats = Json::object();
    // u64 counters travel as decimal strings, like every other pacq
    // wire format (see crates/cache/src/entry.rs).
    stats.set("served", state.served.load(Ordering::SeqCst).to_string());
    stats.set("errors", state.errors.load(Ordering::SeqCst).to_string());
    stats.set(
        "queue_depth",
        state.depth.load(Ordering::SeqCst).to_string(),
    );
    stats.set("queue_capacity", state.options.queue_capacity.to_string());
    stats.set("workers", state.options.workers.to_string());
    stats.set("backend", state.options.backend.token());
    match &state.cache {
        Some(cache) => {
            stats.set("cache_attached", true);
            stats.set("cache_hits", cache.hits().to_string());
            stats.set("cache_misses", cache.misses().to_string());
        }
        None => {
            stats.set("cache_attached", false);
            stats.set("cache_hits", "0");
            stats.set("cache_misses", "0");
        }
    }
    let mut frame = ok_frame(id);
    frame.set("stats", stats);
    frame
}

/// Sends one reply frame, bumping the served/error counter.
fn send(state: &ServerState, tx: &mpsc::Sender<String>, frame: Json, is_error: bool) {
    if is_error {
        state.errors.fetch_add(1, Ordering::SeqCst);
    } else {
        state.served.fetch_add(1, Ordering::SeqCst);
    }
    // A closed connection just drops the reply; the counters still
    // reflect that the request was answered.
    let _ = tx.send(frame.render_line());
}

// ---------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------

fn proto(message: impl Into<String>) -> PacqError {
    PacqError::protocol("serve::frame", message)
}

/// Rejects unknown fields so typos surface as typed errors instead of
/// silently applying defaults.
fn check_keys(doc: &Json, allowed: &[&str]) -> PacqResult<()> {
    if let Json::Obj(entries) = doc {
        for (key, _) in entries {
            if !allowed.contains(&key.as_str()) {
                return Err(proto(format!("unknown field `{key}`")));
            }
        }
    }
    Ok(())
}

fn field_str<'a>(doc: &'a Json, field: &str) -> PacqResult<Option<&'a str>> {
    match doc.get(field) {
        None => Ok(None),
        Some(value) => value
            .as_str()
            .map(Some)
            .ok_or_else(|| proto(format!("field `{field}` must be a string"))),
    }
}

fn field_usize(doc: &Json, field: &str) -> PacqResult<Option<usize>> {
    match doc.get(field) {
        None => Ok(None),
        Some(value) => {
            let n = value
                .as_num()
                .ok_or_else(|| proto(format!("field `{field}` must be a number")))?;
            if n.fract() != 0.0 || !(0.0..=u32::MAX as f64).contains(&n) {
                return Err(proto(format!("field `{field}` must be a small integer")));
            }
            Ok(Some(n as usize))
        }
    }
}

/// Applies the point-shaping fields of `doc` on top of `base`
/// (analyze frames, batch frame-level defaults, and batch entries all
/// share this).
fn parse_spec(doc: &Json, base: PointSpec) -> PacqResult<PointSpec> {
    let mut spec = base;
    if let Some(text) = field_str(doc, "shape")? {
        spec.shape = Some(cli::parse_shape(text)?);
    }
    if let Some(text) = field_str(doc, "arch")? {
        spec.arch = cli::parse_arch(text)?;
    }
    if let Some(text) = field_str(doc, "precision")? {
        spec.precision = cli::parse_precision(text)?;
    }
    if let Some(text) = field_str(doc, "group")? {
        spec.group = cli::parse_group(text)?;
    }
    if let Some(dup) = field_usize(doc, "dup")? {
        if !matches!(dup, 1 | 2 | 4) {
            return Err(PacqError::usage("`dup` expects 1, 2 or 4"));
        }
        spec.dup = dup;
    }
    if let Some(width) = field_usize(doc, "width")? {
        if !matches!(width, 4 | 8 | 16) {
            return Err(PacqError::usage("`width` expects 4, 8 or 16"));
        }
        spec.width = width;
    }
    Ok(spec)
}

const POINT_KEYS: [&str; 6] = ["shape", "arch", "precision", "group", "dup", "width"];

fn parse_request(doc: &Json) -> PacqResult<Request> {
    let op = doc
        .get("op")
        .ok_or_else(|| proto("missing field `op`"))?
        .as_str()
        .ok_or_else(|| proto("field `op` must be a string"))?;
    match op {
        "analyze" => {
            check_keys(
                doc,
                &[
                    "op",
                    "id",
                    "shape",
                    "arch",
                    "precision",
                    "group",
                    "dup",
                    "width",
                ],
            )?;
            let spec = parse_spec(doc, PointSpec::base())?;
            Ok(Request::Analyze(spec.into_point()?))
        }
        "batch" => {
            check_keys(
                doc,
                &[
                    "op",
                    "id",
                    "requests",
                    "arch",
                    "precision",
                    "group",
                    "dup",
                    "width",
                ],
            )?;
            let defaults = parse_spec(doc, PointSpec::base())?;
            let entries = doc
                .get("requests")
                .ok_or_else(|| proto("batch wants an array field `requests`"))?
                .as_arr()
                .ok_or_else(|| proto("field `requests` must be an array"))?;
            if entries.len() > MAX_BATCH_POINTS {
                return Err(proto(format!(
                    "batch of {} points exceeds the {MAX_BATCH_POINTS}-point cap",
                    entries.len()
                )));
            }
            let mut points = Vec::with_capacity(entries.len());
            for entry in entries {
                if !entry.is_obj() {
                    return Err(proto("every `requests` entry must be a JSON object"));
                }
                check_keys(entry, &POINT_KEYS)?;
                points.push(parse_spec(entry, defaults)?.into_point()?);
            }
            Ok(Request::Batch(points))
        }
        "stats" => {
            check_keys(doc, &["op", "id"])?;
            Ok(Request::Stats)
        }
        "ping" => {
            check_keys(doc, &["op", "id"])?;
            Ok(Request::Ping)
        }
        "shutdown" => {
            check_keys(doc, &["op", "id"])?;
            Ok(Request::Shutdown)
        }
        other => Err(proto(format!("unknown op `{other}`"))),
    }
}

// ---------------------------------------------------------------------
// Request execution (worker side)
// ---------------------------------------------------------------------

fn point_runner(point: &Point, cache: Option<Arc<ReportCache>>, backend: Backend) -> GemmRunner {
    let mut cfg = SmConfig::volta_like();
    cfg.adder_tree_duplication = point.dup;
    cfg.dp_width = point.width;
    GemmRunner::new()
        .with_config(cfg)
        .with_group(point.group)
        .with_cache_opt(cache)
        .with_backend(backend)
}

/// Analyzes one point and renders its report in the lossless
/// `pacq-cache/v1` encoding (the conformance contract).
fn point_report_json(
    point: &Point,
    cache: Option<Arc<ReportCache>>,
    backend: Backend,
) -> PacqResult<Json> {
    let runner = point_runner(point, cache, backend);
    let report = runner.analyze(point.arch, point.workload)?;
    let key = runner.cache_key(point.arch, point.workload);
    Ok(report.to_cached().to_json(&key))
}

fn execute_request(request: &Request, state: &ServerState, id: &Json) -> PacqResult<Json> {
    match request {
        Request::Analyze(point) => {
            let mut frame = ok_frame(id);
            frame.set(
                "report",
                point_report_json(point, state.cache.clone(), state.options.backend)?,
            );
            Ok(frame)
        }
        Request::Batch(points) => {
            // Dedup identical points so one batch never computes (or
            // even cache-probes) the same point twice, then fan the
            // unique points out on the shared worker pool (par.rs).
            let mut unique: Vec<Point> = Vec::new();
            let mut slot = Vec::with_capacity(points.len());
            for point in points {
                match unique.iter().position(|u| u == point) {
                    Some(i) => slot.push(i),
                    None => {
                        slot.push(unique.len());
                        unique.push(*point);
                    }
                }
            }
            let computed = unique
                .clone()
                .into_par_iter()
                .map(|p| point_report_json(&p, state.cache.clone(), state.options.backend))
                .collect::<Vec<PacqResult<Json>>>()
                .into_iter()
                .collect::<PacqResult<Vec<Json>>>()?;
            let mut reports = Vec::with_capacity(slot.len());
            for i in slot {
                let doc = computed
                    .get(i)
                    .ok_or_else(|| proto("internal: batch slot out of range"))?;
                reports.push(doc.clone());
            }
            let mut frame = ok_frame(id);
            frame.set("reports", Json::Arr(reports));
            frame.set("unique_points", unique.len().to_string());
            Ok(frame)
        }
        // Stats/ping/shutdown are answered by the reader; they never
        // reach the queue.
        Request::Stats | Request::Ping | Request::Shutdown => {
            Err(proto("internal: control op routed to a worker"))
        }
    }
}

fn worker_loop(jobs: &Arc<Mutex<Receiver<Job>>>, state: &Arc<ServerState>) {
    loop {
        // Holding the lock while blocked in recv serializes job
        // *pickup* only; execution runs after the guard drops.
        let job = match lock(jobs).recv() {
            Ok(job) => job,
            Err(_) => break, // queue closed and drained
        };
        state.depth.fetch_sub(1, Ordering::SeqCst);
        match execute_request(&job.request, state, &job.id) {
            Ok(frame) => send(state, &job.reply, frame, false),
            Err(e) => send(state, &job.reply, error_frame(&job.id, &e), true),
        }
    }
}

// ---------------------------------------------------------------------
// Connection handling (reader/writer side)
// ---------------------------------------------------------------------

fn writer_loop<W: Write>(rx: Receiver<String>, mut out: W) {
    for line in rx {
        let ok = out
            .write_all(line.as_bytes())
            .and_then(|()| out.write_all(b"\n"))
            .and_then(|()| out.flush());
        if ok.is_err() {
            break; // client gone; senders see a closed channel
        }
    }
}

enum FrameRead {
    Eof,
    Line,
    Oversized,
}

/// Reads one frame line with a hard byte cap; an over-cap line is
/// consumed to its newline so the connection can continue.
fn read_frame<R: BufRead>(reader: &mut R, line: &mut String) -> std::io::Result<FrameRead> {
    line.clear();
    let n = reader
        .by_ref()
        .take(MAX_FRAME_BYTES as u64 + 1)
        .read_line(line)?;
    if n == 0 {
        return Ok(FrameRead::Eof);
    }
    if n > MAX_FRAME_BYTES {
        if !line.ends_with('\n') {
            skip_to_newline(reader)?;
        }
        return Ok(FrameRead::Oversized);
    }
    Ok(FrameRead::Line)
}

fn skip_to_newline<R: BufRead>(reader: &mut R) -> std::io::Result<()> {
    loop {
        let (done, used) = {
            let buf = reader.fill_buf()?;
            if buf.is_empty() {
                return Ok(()); // EOF mid-line
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(pos) => (true, pos + 1),
                None => (false, buf.len()),
            }
        };
        reader.consume(used);
        if done {
            return Ok(());
        }
    }
}

/// Handles one parsed-or-not frame line. Returns `false` when the
/// connection should stop reading (shutdown frame).
fn handle_line(text: &str, state: &Arc<ServerState>, tx: &mpsc::Sender<String>) -> bool {
    let text = text.trim();
    if text.is_empty() {
        return true; // blank keep-alive lines are fine
    }
    let doc = match Json::parse(text) {
        Ok(doc) if doc.is_obj() => doc,
        Ok(_) => {
            let e = proto("frame must be a JSON object");
            send(state, tx, error_frame(&Json::Null, &e), true);
            return true;
        }
        Err(e) => {
            let e = proto(format!("frame is not valid JSON: {e}"));
            send(state, tx, error_frame(&Json::Null, &e), true);
            return true;
        }
    };
    let id = doc.get("id").cloned().unwrap_or(Json::Null);
    match parse_request(&doc) {
        Ok(Request::Stats) => send(state, tx, stats_frame(&id, state), false),
        Ok(Request::Ping) => {
            let mut frame = ok_frame(&id);
            frame.set("pong", true);
            send(state, tx, frame, false);
        }
        Ok(Request::Shutdown) => {
            let mut frame = ok_frame(&id);
            frame.set("draining", true);
            send(state, tx, frame, false);
            state.drain();
            return false;
        }
        Ok(request) => enqueue(state, tx, request, id),
        Err(e) => send(state, tx, error_frame(&id, &e), true),
    }
    true
}

fn enqueue(state: &Arc<ServerState>, tx: &mpsc::Sender<String>, request: Request, id: Json) {
    let guard = lock(&state.queue);
    let Some(queue) = guard.as_ref() else {
        let e = proto("server is draining; no new work accepted");
        send(state, tx, error_frame(&id, &e), true);
        return;
    };
    let job = Job {
        request,
        id,
        reply: tx.clone(),
    };
    match queue.try_send(job) {
        Ok(()) => {
            state.depth.fetch_add(1, Ordering::SeqCst);
        }
        Err(TrySendError::Full(job)) => {
            let e = PacqError::QueueFull {
                capacity: state.options.queue_capacity,
            };
            send(state, tx, error_frame(&job.id, &e), true);
        }
        Err(TrySendError::Disconnected(job)) => {
            let e = proto("server is draining; no new work accepted");
            send(state, tx, error_frame(&job.id, &e), true);
        }
    }
}

fn reader_loop<R: BufRead>(mut reader: R, state: &Arc<ServerState>, tx: &mpsc::Sender<String>) {
    let mut line = String::new();
    loop {
        match read_frame(&mut reader, &mut line) {
            Ok(FrameRead::Eof) => break,
            Ok(FrameRead::Oversized) => {
                let e = proto(format!("frame exceeds the {MAX_FRAME_BYTES}-byte line cap"));
                send(state, tx, error_frame(&Json::Null, &e), true);
            }
            Ok(FrameRead::Line) => {
                if !handle_line(&line, state, tx) {
                    break;
                }
            }
            Err(e) => {
                // Undecodable bytes (e.g. non-UTF-8): answer once and
                // close this connection; everyone else is unaffected.
                let e = proto(format!("unreadable frame: {e}"));
                send(state, tx, error_frame(&Json::Null, &e), true);
                break;
            }
        }
    }
}

fn handle_conn(stream: TcpStream, state: Arc<ServerState>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    if let Ok(drain_handle) = stream.try_clone() {
        lock(&state.conns).push(drain_handle);
    }
    let (tx, rx) = mpsc::channel::<String>();
    let writer = thread::spawn(move || writer_loop(rx, stream));
    reader_loop(BufReader::new(read_half), &state, &tx);
    // Reader done: drop our sender; the writer exits once every queued
    // job's reply clone is dropped too, then the socket closes.
    drop(tx);
    let _ = writer.join();
}

// ---------------------------------------------------------------------
// Server lifecycles
// ---------------------------------------------------------------------

/// A running TCP server. Bind with [`Server::bind`], drive clients at
/// [`Server::addr`], stop with a `shutdown` frame or
/// [`Server::shutdown`], then [`Server::wait`].
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    thread: thread::JoinHandle<ServeSummary>,
}

impl Server {
    /// Binds `addr` (port 0 picks an ephemeral port) and starts the
    /// accept loop and worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::Io`] when the address cannot be bound.
    pub fn bind(
        addr: &str,
        options: ServeOptions,
        cache: Option<Arc<ReportCache>>,
    ) -> PacqResult<Server> {
        let io_err = |e: std::io::Error| PacqError::Io {
            context: "serve::bind",
            message: e.to_string(),
        };
        let listener = TcpListener::bind(addr).map_err(io_err)?;
        let local = listener.local_addr().map_err(io_err)?;
        let (state, jobs) = ServerState::new(options, cache, Some(local));
        let jobs = Arc::new(Mutex::new(jobs));
        let mut workers = Vec::with_capacity(options.workers);
        for _ in 0..options.workers {
            let jobs = Arc::clone(&jobs);
            let state = Arc::clone(&state);
            workers.push(thread::spawn(move || worker_loop(&jobs, &state)));
        }
        let accept_state = Arc::clone(&state);
        let thread = thread::spawn(move || {
            let mut conns = Vec::new();
            for stream in listener.incoming() {
                if accept_state.draining.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else {
                    continue; // transient accept error
                };
                let conn_state = Arc::clone(&accept_state);
                conns.push(thread::spawn(move || handle_conn(stream, conn_state)));
            }
            drop(listener);
            // Belt and braces for externally-triggered shutdowns: drain
            // is idempotent, and every reader must see EOF before join.
            accept_state.drain();
            for conn in conns {
                let _ = conn.join();
            }
            for worker in workers {
                let _ = worker.join();
            }
            accept_state.summary()
        });
        Ok(Server {
            state,
            addr: local,
            thread,
        })
    }

    /// The bound address (useful after `--port 0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Triggers the graceful drain from outside the protocol (the
    /// in-process equivalent of a `shutdown` frame).
    pub fn shutdown(&self) {
        self.state.drain();
    }

    /// Waits for the drain to complete and returns the run's counters.
    ///
    /// # Errors
    ///
    /// Returns a protocol-class error if the server thread died — which
    /// the never-panic design rules out, but the join result must go
    /// somewhere honest.
    pub fn wait(self) -> PacqResult<ServeSummary> {
        self.thread
            .join()
            .map_err(|_| PacqError::protocol("serve::wait", "server thread panicked"))
    }

    /// The frame announced on stdout when the server is ready.
    fn ready_frame(&self) -> Json {
        let mut frame = Json::object();
        frame.set("schema", PROTOCOL);
        frame.set("event", "ready");
        frame.set("addr", self.addr.to_string());
        frame.set("workers", self.state.options.workers.to_string());
        frame.set(
            "queue_capacity",
            self.state.options.queue_capacity.to_string(),
        );
        frame.set("backend", self.state.options.backend.token());
        frame
    }
}

/// Serves `pacq-serve/v1` over stdin/stdout until EOF or a `shutdown`
/// frame, then drains and returns the counters.
///
/// # Errors
///
/// Infallible today (the signature leaves room for future I/O setup
/// errors); client-visible failures travel as error frames instead.
pub fn serve_stdio(
    options: ServeOptions,
    cache: Option<Arc<ReportCache>>,
) -> PacqResult<ServeSummary> {
    let (state, jobs) = ServerState::new(options, cache, None);
    let jobs = Arc::new(Mutex::new(jobs));
    let mut workers = Vec::with_capacity(options.workers);
    for _ in 0..options.workers {
        let jobs = Arc::clone(&jobs);
        let state = Arc::clone(&state);
        workers.push(thread::spawn(move || worker_loop(&jobs, &state)));
    }
    let (tx, rx) = mpsc::channel::<String>();
    let writer = thread::spawn(move || writer_loop(rx, std::io::stdout().lock()));

    let mut ready = Json::object();
    ready.set("schema", PROTOCOL);
    ready.set("event", "ready");
    ready.set("workers", options.workers.to_string());
    ready.set("queue_capacity", options.queue_capacity.to_string());
    ready.set("backend", options.backend.token());
    let _ = tx.send(ready.render_line());

    reader_loop(std::io::stdin().lock(), &state, &tx);
    state.drain();
    for worker in workers {
        let _ = worker.join();
    }
    let summary = state.summary();
    let mut drained = Json::object();
    drained.set("schema", PROTOCOL);
    drained.set("event", "drained");
    drained.set("served", summary.served.to_string());
    drained.set("errors", summary.errors.to_string());
    let _ = tx.send(drained.render_line());
    drop(tx);
    let _ = writer.join();
    Ok(summary)
}

// ---------------------------------------------------------------------
// CLI entry point
// ---------------------------------------------------------------------

/// `pacq serve (--port N | --stdio) [--queue N]` — parses the serve
/// flags and runs the matching lifecycle until drained. The `backend`
/// comes from the global `--backend` / `PACQ_BACKEND` knob the CLI
/// front end already resolved.
///
/// # Errors
///
/// Returns [`PacqError::Usage`] for flag errors and [`PacqError::Io`]
/// when the TCP port cannot be bound.
pub fn run_cli(
    args: &[String],
    cache: Option<Arc<ReportCache>>,
    backend: Backend,
) -> PacqResult<String> {
    let usage = |msg: &str| PacqError::usage(msg.to_string());
    let mut port: Option<u16> = None;
    let mut stdio = false;
    let mut queue_capacity = DEFAULT_QUEUE_CAPACITY;
    let mut it = args.iter().map(String::as_str);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> PacqResult<&str> {
            it.next()
                .ok_or_else(|| PacqError::usage(format!("missing value for {name}")))
        };
        match flag {
            "--port" => {
                port = Some(
                    value("--port")?
                        .parse()
                        .map_err(|_| usage("--port expects 0..65535"))?,
                )
            }
            "--stdio" => stdio = true,
            "--queue" => {
                queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|_| usage("--queue expects a positive request count"))?;
                if queue_capacity == 0 {
                    return Err(usage("--queue expects a positive request count"));
                }
            }
            other => return Err(PacqError::usage(format!("unknown serve option `{other}`"))),
        }
    }
    let options = ServeOptions {
        queue_capacity,
        backend,
        ..ServeOptions::default()
    };
    let summary = match (port, stdio) {
        (Some(_), true) => return Err(usage("--port and --stdio are mutually exclusive")),
        (None, false) => return Err(usage("serve wants --port N or --stdio")),
        (None, true) => serve_stdio(options, cache.clone())?,
        (Some(port), false) => {
            let server = Server::bind(&format!("127.0.0.1:{port}"), options, cache.clone())?;
            // Announce readiness immediately — with --port 0 the client
            // cannot know the port any other way.
            let mut stdout = std::io::stdout().lock();
            let _ = writeln!(stdout, "{}", server.ready_frame().render_line());
            let _ = stdout.flush();
            server.wait()?
        }
    };
    pacq_trace::add_counter("serve.served", summary.served);
    pacq_trace::add_counter("serve.errors", summary.errors);
    if let Some(cache) = &cache {
        pacq_trace::add_counter("serve.cache_hits", cache.hits());
        pacq_trace::add_counter("serve.cache_misses", cache.misses());
    }
    if stdio {
        // Stdout is the protocol channel; the summary already went out
        // as the `drained` event frame.
        Ok(String::new())
    } else {
        Ok(format!(
            "serve: {} replies ({} errors)\n",
            summary.served, summary.errors
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(text: &str) -> PacqResult<Request> {
        parse_request(&Json::parse(text).expect("test frame parses"))
    }

    #[test]
    fn analyze_frames_parse_with_cli_defaults() {
        let req = parse(r#"{"op":"analyze","id":1,"shape":"m16n256k256"}"#).unwrap();
        let Request::Analyze(p) = req else {
            panic!("not analyze")
        };
        assert_eq!(p.arch, Architecture::Pacq);
        assert_eq!(p.workload.precision, WeightPrecision::Int4);
        assert_eq!((p.dup, p.width), (2, 4));
        assert_eq!(p.group, GroupShape::G128);
    }

    #[test]
    fn field_overrides_match_the_cli_vocabulary() {
        let req = parse(
            r#"{"op":"analyze","shape":"m32n256k256","arch":"std","precision":"int2","group":"g64","dup":4,"width":8}"#,
        )
        .unwrap();
        let Request::Analyze(p) = req else {
            panic!("not analyze")
        };
        assert_eq!(p.arch, Architecture::StandardDequant);
        assert_eq!(p.workload.precision, WeightPrecision::Int2);
        assert_eq!((p.dup, p.width), (4, 8));
        assert_eq!(p.group, GroupShape::along_k(64));
    }

    #[test]
    fn malformed_frames_are_typed_protocol_or_usage_errors() {
        for (frame, class) in [
            (r#"{"id":1}"#, "protocol"),                       // missing op
            (r#"{"op":7}"#, "protocol"),                       // non-string op
            (r#"{"op":"frobnicate"}"#, "protocol"),            // unknown op
            (r#"{"op":"analyze"}"#, "usage"),                  // missing shape
            (r#"{"op":"analyze","shape":5}"#, "protocol"),     // wrong type
            (r#"{"op":"analyze","shape":"m1n1k1"}"#, "usage"), // misaligned
            (r#"{"op":"analyze","shape":"m16n16k16","dup":3}"#, "usage"),
            (
                r#"{"op":"analyze","shape":"m16n16k16","bogus":1}"#,
                "protocol",
            ),
            (r#"{"op":"stats","shape":"m16n16k16"}"#, "protocol"), // stray field
            (r#"{"op":"batch"}"#, "protocol"),                     // missing requests
            (r#"{"op":"batch","requests":[3]}"#, "protocol"),      // non-object entry
        ] {
            let err = parse(frame).unwrap_err();
            assert_eq!(err.class(), class, "{frame}: {err}");
        }
    }

    #[test]
    fn batch_defaults_flow_into_entries() {
        let req = parse(
            r#"{"op":"batch","precision":"int2","dup":4,
                "requests":[{"shape":"m16n256k256"},{"shape":"m32n256k256","precision":"int4"}]}"#,
        )
        .unwrap();
        let Request::Batch(points) = req else {
            panic!("not batch")
        };
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].workload.precision, WeightPrecision::Int2);
        assert_eq!(points[0].dup, 4);
        assert_eq!(points[1].workload.precision, WeightPrecision::Int4);
        assert_eq!(points[1].dup, 4);
    }

    /// Drives a full server lifecycle through the generic reader/writer
    /// plumbing without a socket: requests in a cursor, replies from
    /// the channel.
    fn drive(input: &str, options: ServeOptions) -> (Vec<Json>, ServeSummary) {
        let (state, jobs) = ServerState::new(options, None, None);
        let jobs = Arc::new(Mutex::new(jobs));
        let mut workers = Vec::new();
        for _ in 0..options.workers {
            let jobs = Arc::clone(&jobs);
            let state = Arc::clone(&state);
            workers.push(thread::spawn(move || worker_loop(&jobs, &state)));
        }
        let (tx, rx) = mpsc::channel::<String>();
        reader_loop(BufReader::new(Cursor::new(input.to_string())), &state, &tx);
        state.drain();
        for w in workers {
            w.join().unwrap();
        }
        drop(tx);
        let replies = rx
            .into_iter()
            .map(|line| Json::parse(&line).expect("reply frames are valid JSON"))
            .collect();
        (replies, state.summary())
    }

    fn by_id(replies: &[Json], id: f64) -> Json {
        replies
            .iter()
            .find(|r| r.get("id").and_then(Json::as_num) == Some(id))
            .cloned()
            .unwrap_or_else(|| panic!("no reply with id {id}"))
    }

    #[test]
    fn lifecycle_serves_and_drains_in_process() {
        let input = concat!(
            r#"{"op":"ping","id":1}"#,
            "\n",
            r#"{"op":"analyze","id":2,"shape":"m16n256k256"}"#,
            "\n",
            "not json\n",
            r#"{"op":"stats","id":3}"#,
            "\n",
            r#"{"op":"shutdown","id":4}"#,
            "\n",
            r#"{"op":"ping","id":5}"#, // after shutdown: never read
            "\n",
        );
        let (replies, summary) = drive(input, ServeOptions::default());
        assert_eq!(replies.len(), 5, "ping, analyze, parse error, stats, ack");
        assert_eq!(
            summary,
            ServeSummary {
                served: 4,
                errors: 1
            }
        );

        assert_eq!(by_id(&replies, 1.0).get("pong"), Some(&Json::Bool(true)));
        let report = by_id(&replies, 2.0);
        assert_eq!(report.get("ok"), Some(&Json::Bool(true)));
        let report = report.get("report").expect("report payload");
        assert_eq!(
            report.get("schema").and_then(Json::as_str),
            Some("pacq-cache/v1")
        );
        let stats = by_id(&replies, 3.0);
        let stats = stats.get("stats").expect("stats payload");
        assert_eq!(stats.get("cache_attached"), Some(&Json::Bool(false)));
        assert_eq!(
            by_id(&replies, 4.0).get("draining"),
            Some(&Json::Bool(true))
        );
        // The malformed line's error frame is typed and null-id.
        let err = replies
            .iter()
            .find(|r| r.get("ok") == Some(&Json::Bool(false)))
            .expect("error frame");
        assert_eq!(err.get("id"), Some(&Json::Null));
        assert_eq!(
            err.get("error")
                .and_then(|e| e.get("class"))
                .and_then(Json::as_str),
            Some("protocol")
        );
    }

    #[test]
    fn batch_replies_dedup_and_keep_request_order() {
        let input = concat!(
            r#"{"op":"batch","id":9,"requests":[
                {"shape":"m16n256k256"},
                {"shape":"m32n256k256"},
                {"shape":"m16n256k256"}]}"#,
            "\n"
        )
        .replace('\n', " ")
            + "\n";
        let (replies, summary) = drive(&input, ServeOptions::default());
        assert_eq!(summary.errors, 0, "{replies:?}");
        let frame = by_id(&replies, 9.0);
        assert_eq!(frame.get("unique_points").and_then(Json::as_str), Some("2"));
        let reports = frame.get("reports").and_then(Json::as_arr).unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0], reports[2], "duplicate point, identical report");
        assert_ne!(reports[0], reports[1]);
        // Entry 0 and 1 differ only in m; check echo order.
        let m = |r: &Json| {
            r.get("shape")
                .and_then(|s| s.get("m"))
                .and_then(Json::as_str)
                .map(str::to_string)
        };
        assert_eq!(m(&reports[0]).as_deref(), Some("16"));
        assert_eq!(m(&reports[1]).as_deref(), Some("32"));
    }

    #[test]
    fn full_queue_is_a_typed_queue_full_frame() {
        // One worker, capacity 1: stuff the pipeline faster than a
        // single worker can drain it. With 64 work frames in flight at
        // capacity 1 at least one must bounce; every bounce must be the
        // typed queue_full class and every accepted request must get
        // exactly one ok reply.
        let mut input = String::new();
        for i in 0..64 {
            input.push_str(&format!(
                "{{\"op\":\"analyze\",\"id\":{i},\"shape\":\"m16n4096k4096\"}}\n"
            ));
        }
        let options = ServeOptions {
            queue_capacity: 1,
            workers: 1,
            ..ServeOptions::default()
        };
        let (replies, summary) = drive(&input, options);
        assert_eq!(replies.len(), 64, "one reply per frame, none lost");
        let bounced = replies
            .iter()
            .filter(|r| r.get("ok") == Some(&Json::Bool(false)))
            .collect::<Vec<_>>();
        assert!(!bounced.is_empty(), "capacity-1 queue must overflow");
        for frame in &bounced {
            let class = frame
                .get("error")
                .and_then(|e| e.get("class"))
                .and_then(Json::as_str);
            assert_eq!(class, Some("queue_full"), "{frame:?}");
            let code = frame
                .get("error")
                .and_then(|e| e.get("exit_code"))
                .and_then(Json::as_num);
            assert_eq!(code, Some(8.0));
        }
        assert_eq!(summary.served + summary.errors, 64);
    }

    #[test]
    fn oversized_frames_bounce_but_the_connection_survives() {
        let huge = format!(
            "{{\"op\":\"analyze\",\"pad\":\"{}\"}}\n",
            "x".repeat(MAX_FRAME_BYTES)
        );
        let input = format!("{huge}{{\"op\":\"ping\",\"id\":1}}\n");
        let (replies, _) = drive(&input, ServeOptions::default());
        assert_eq!(replies.len(), 2);
        let err = &replies[0];
        assert_eq!(
            err.get("error")
                .and_then(|e| e.get("class"))
                .and_then(Json::as_str),
            Some("protocol"),
            "{err:?}"
        );
        assert_eq!(by_id(&replies, 1.0).get("pong"), Some(&Json::Bool(true)));
    }

    #[test]
    fn serve_cli_flags_are_validated() {
        let argv = |s: &str| s.split_whitespace().map(String::from).collect::<Vec<_>>();
        for bad in [
            "",
            "--port 1 --stdio",
            "--port notaport",
            "--queue 0",
            "--queue",
            "--frobnicate",
        ] {
            let err = run_cli(&argv(bad), None, Backend::Scalar).unwrap_err();
            assert!(err.is_usage(), "`{bad}`: {err}");
        }
    }
}
