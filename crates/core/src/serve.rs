//! `pacq serve` — the long-lived concurrent evaluation server
//! (DESIGN.md §13).
//!
//! The server speaks **`pacq-serve/v1`**: newline-delimited JSON frames
//! over TCP (`--port N`; `--port 0` binds an ephemeral port announced
//! in the ready frame) or over stdin/stdout (`--stdio`). Every frame is
//! one line; every reply echoes the request's `id` so clients may
//! pipeline (replies are **not** ordered across requests — a batch may
//! finish after a later ping).
//!
//! Design rules, in the order they bite:
//!
//! - **Never a panic, never a dropped bystander.** A malformed frame
//!   (bad JSON, unknown `op`, wrong field type, oversized line) is
//!   answered with a typed [`PacqError`] frame on the same connection;
//!   other connections never notice.
//! - **Bounded queue, explicit backpressure.** Work requests pass
//!   through a `sync_channel` of capacity `--queue`; when it is full
//!   the client gets a `queue_full` error frame (exit-code class 8)
//!   instead of the server growing without bound.
//! - **Admission control before worker time.** Each connection owns a
//!   token bucket (`--rate` req/s sustained, `--burst` instantaneous);
//!   work frames beyond it are answered with a typed `rate_limited`
//!   frame (class 8, like `queue_full`) without ever touching the
//!   queue, and `--max-clients` caps concurrent connections at the
//!   accept gate — so one hostile client cannot monopolize the pool.
//!   Control ops (`ping`/`stats`/`shutdown`) are always exempt.
//! - **One lossless codec.** Replies embed reports in the
//!   `pacq-cache/v1` entry encoding (u64 counters as decimal strings,
//!   floats as shortest-round-trip numbers), so a served report is
//!   bit-identical to an in-process [`GemmRunner::analyze`] — the
//!   property `tests/serve_conformance.rs` pins.
//! - **Graceful drain, no signals.** The workspace forbids `unsafe`,
//!   so a SIGTERM handler is out of reach; instead a `shutdown` frame
//!   (or stdin EOF in `--stdio` mode) drains: queued requests finish,
//!   replies flush, then the server exits. Supervisors should send the
//!   frame (or close stdin) rather than SIGKILL.

use crate::cli;
use crate::runner::GemmRunner;
use pacq_cache::ReportCache;
use pacq_error::{PacqError, PacqResult};
use pacq_fp16::{Backend, WeightPrecision};
use pacq_quant::GroupShape;
use pacq_simt::{Architecture, SmConfig, Workload};
use pacq_trace::Json;
use rayon::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;

/// The protocol identifier stamped into every frame the server emits.
pub const PROTOCOL: &str = "pacq-serve/v1";

/// Hard cap on one frame line, newline included. Longer lines are
/// answered with a typed protocol error and skipped (the connection
/// survives); the reader never buffers more than this per line.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Hard cap on the number of points in one `batch` frame.
pub const MAX_BATCH_POINTS: usize = 4096;

/// Default `--queue` capacity (pending work requests).
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// Hard cap on `--queue` (a six-figure backlog is a client bug, not a
/// tuning choice; bound it like `--jobs` bounds the pool).
pub const MAX_QUEUE_CAPACITY: usize = 65_536;

/// Serve-layer tuning knobs (queue capacity, worker count, admission).
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Bounded request-queue capacity; overflow is a `queue_full` frame.
    ///
    /// A value of 0 is pinned up to 1 at channel creation: capacity 0
    /// would make `mpsc::sync_channel` a *rendezvous* channel, silently
    /// coupling reader and worker in lockstep. The CLI rejects
    /// `--queue 0` outright (usage, exit 2); programmatic callers get
    /// the pin. See DESIGN.md §16.
    pub queue_capacity: usize,
    /// Worker threads computing replies. The CLI sizes this from the
    /// shared `--jobs` validator (`par.rs`), so `--jobs`/`PACQ_JOBS`
    /// govern the server exactly like every batch command.
    pub workers: usize,
    /// Functional compute backend for served evaluations. Both backends
    /// answer with bit-identical reports (the conformance suite pins
    /// this), so the knob only affects throughput.
    pub backend: Backend,
    /// Sustained per-connection admission rate in work requests per
    /// second (`--rate`); 0 disables rate limiting (the default).
    pub rate: u64,
    /// Instantaneous per-connection burst allowance (`--burst`, the
    /// token-bucket capacity). Ignored when `rate` is 0; pinned up to 1
    /// otherwise so a configured limiter can always admit something.
    pub burst: u64,
    /// Maximum concurrently-connected clients (`--max-clients`);
    /// connections beyond it are answered with one typed error frame
    /// and closed at the accept gate. 0 means unlimited (the default).
    pub max_clients: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            workers: rayon::current_num_threads().max(1),
            backend: Backend::Scalar,
            rate: 0,
            burst: 0,
            max_clients: 0,
        }
    }
}

/// What a server run did, for the CLI summary line and the manifest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Frames answered `ok: true` (analyze, batch, stats, ping,
    /// shutdown acks).
    pub served: u64,
    /// Typed error frames sent (malformed frames, queue overflow,
    /// rate-limit denials, simulator errors).
    pub errors: u64,
    /// Work frames denied by a connection's token bucket (a subset of
    /// `errors`).
    pub rate_limited: u64,
    /// Connections turned away at the `--max-clients` accept gate.
    pub rejected_conns: u64,
}

/// One fully-validated evaluation point (the serve-side mirror of the
/// CLI's per-command options).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Point {
    arch: Architecture,
    workload: Workload,
    group: GroupShape,
    dup: usize,
    width: usize,
}

/// A partially-specified point: `batch` frames carry frame-level
/// defaults that entries override; `shape` has no default.
#[derive(Debug, Clone, Copy)]
struct PointSpec {
    shape: Option<pacq_simt::GemmShape>,
    arch: Architecture,
    precision: WeightPrecision,
    group: GroupShape,
    dup: usize,
    width: usize,
}

impl PointSpec {
    /// The CLI's defaults: PacQ architecture, INT4, `g128`, `--dup 2`,
    /// `--width 4`.
    fn base() -> PointSpec {
        PointSpec {
            shape: None,
            arch: Architecture::Pacq,
            precision: WeightPrecision::Int4,
            group: GroupShape::G128,
            dup: 2,
            width: 4,
        }
    }

    fn into_point(self) -> PacqResult<Point> {
        let shape = self
            .shape
            .ok_or_else(|| PacqError::usage("`shape` is required (e.g. \"m16n4096k4096\")"))?;
        Ok(Point {
            arch: self.arch,
            workload: Workload::new(shape, self.precision),
            group: self.group,
            dup: self.dup,
            width: self.width,
        })
    }
}

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq)]
enum Request {
    Analyze(Point),
    Batch(Vec<Point>),
    Stats,
    Ping,
    Shutdown,
}

/// One unit of queued work: the request, the id to echo, and the
/// originating connection's reply channel.
struct Job {
    request: Request,
    id: Json,
    reply: mpsc::Sender<String>,
}

/// Per-connection token bucket: `rate` tokens/second refill up to
/// `burst`; each work frame (analyze/batch) costs one token. Owned by
/// the connection's reader thread, so the peer identity is the
/// connection itself and no shared map is needed.
struct TokenBucket {
    tokens: f64,
    last: std::time::Instant,
    rate: f64,
    burst: f64,
}

impl TokenBucket {
    /// Builds the bucket for `options`, or `None` when rate limiting is
    /// off. The bucket starts full so a well-behaved client's opening
    /// burst is admitted.
    fn from_options(options: &ServeOptions) -> Option<TokenBucket> {
        if options.rate == 0 {
            return None;
        }
        let burst = options.burst.max(1) as f64;
        Some(TokenBucket {
            tokens: burst,
            last: std::time::Instant::now(),
            rate: options.rate as f64,
            burst,
        })
    }

    /// Refills for elapsed time, then tries to spend one token.
    fn admit(&mut self) -> bool {
        let now = std::time::Instant::now();
        let dt = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Shared server state: the bounded queue, the counters the `stats`
/// endpoint reports, and the handles drain needs.
struct ServerState {
    /// `Some` while accepting work; drain takes it so workers finish
    /// the backlog and exit.
    queue: Mutex<Option<SyncSender<Job>>>,
    draining: AtomicBool,
    served: AtomicU64,
    errors: AtomicU64,
    rate_limited: AtomicU64,
    rejected_conns: AtomicU64,
    depth: AtomicUsize,
    options: ServeOptions,
    cache: Option<Arc<ReportCache>>,
    /// Read-half clones of live TCP connections keyed by a per-accept
    /// id, so drain can unblock idle readers and teardown can remove
    /// exactly its own entry. Empty in `--stdio` mode; returns to empty
    /// whenever no client is connected (the PR 7 leak regression).
    conns: Mutex<Vec<(u64, TcpStream)>>,
    /// Monotonic id source for `conns` entries.
    conn_seq: AtomicU64,
    /// Currently-connected clients, maintained by the accept loop and
    /// connection teardown; gates `--max-clients`.
    active_conns: AtomicUsize,
    /// The bound address (TCP mode), for the drain wake-up connection.
    addr: Option<SocketAddr>,
}

/// Locks ignoring poisoning: every structure behind these mutexes is
/// valid at all times (a queue handle, a socket list), so a panicking
/// writer cannot leave a broken invariant behind.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl ServerState {
    fn new(
        options: ServeOptions,
        cache: Option<Arc<ReportCache>>,
        addr: Option<SocketAddr>,
    ) -> (Arc<ServerState>, Receiver<Job>) {
        // Capacity 0 would build a rendezvous channel (reader and
        // worker in lockstep); pin it to the smallest real queue. The
        // CLI already rejects `--queue 0` as a usage error.
        let (tx, rx) = mpsc::sync_channel(options.queue_capacity.max(1));
        let state = ServerState {
            queue: Mutex::new(Some(tx)),
            draining: AtomicBool::new(false),
            served: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            rate_limited: AtomicU64::new(0),
            rejected_conns: AtomicU64::new(0),
            depth: AtomicUsize::new(0),
            options,
            cache,
            conns: Mutex::new(Vec::new()),
            conn_seq: AtomicU64::new(0),
            active_conns: AtomicUsize::new(0),
            addr,
        };
        (Arc::new(state), rx)
    }

    fn summary(&self) -> ServeSummary {
        ServeSummary {
            served: self.served.load(Ordering::SeqCst),
            errors: self.errors.load(Ordering::SeqCst),
            rate_limited: self.rate_limited.load(Ordering::SeqCst),
            rejected_conns: self.rejected_conns.load(Ordering::SeqCst),
        }
    }

    /// Initiates the graceful drain (idempotent): stop accepting work,
    /// let queued jobs finish, unblock idle readers and the acceptor.
    fn drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        // Dropping the only sender lets workers finish the buffered
        // backlog, then exit on the disconnect.
        *lock(&self.queue) = None;
        // Unblock the accept loop (it re-checks the flag per accept).
        if let Some(addr) = self.addr {
            drop(TcpStream::connect(addr));
        }
        // EOF every connection's reader; pending replies still flush
        // through the write halves.
        for (_, conn) in lock(&self.conns).iter() {
            let _ = conn.shutdown(Shutdown::Read);
        }
    }
}

// ---------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------

fn base_frame(id: &Json) -> Json {
    let mut frame = Json::object();
    frame.set("schema", PROTOCOL);
    frame.set("id", id.clone());
    frame
}

fn ok_frame(id: &Json) -> Json {
    let mut frame = base_frame(id);
    frame.set("ok", true);
    frame
}

fn error_frame(id: &Json, error: &PacqError) -> Json {
    let mut detail = Json::object();
    detail.set("class", error.class());
    detail.set("exit_code", u64::from(error.exit_code()));
    detail.set("message", error.to_string());
    let mut frame = base_frame(id);
    frame.set("ok", false);
    frame.set("error", detail);
    frame
}

fn stats_frame(id: &Json, state: &ServerState) -> Json {
    let mut stats = Json::object();
    // u64 counters travel as decimal strings, like every other pacq
    // wire format (see crates/cache/src/entry.rs).
    stats.set("served", state.served.load(Ordering::SeqCst).to_string());
    stats.set("errors", state.errors.load(Ordering::SeqCst).to_string());
    stats.set(
        "rate_limited",
        state.rate_limited.load(Ordering::SeqCst).to_string(),
    );
    stats.set(
        "rejected_conns",
        state.rejected_conns.load(Ordering::SeqCst).to_string(),
    );
    stats.set(
        "queue_depth",
        state.depth.load(Ordering::SeqCst).to_string(),
    );
    stats.set("queue_capacity", state.options.queue_capacity.to_string());
    stats.set("workers", state.options.workers.to_string());
    stats.set("backend", state.options.backend.token());
    match &state.cache {
        Some(cache) => {
            stats.set("cache_attached", true);
            stats.set("cache_hits", cache.hits().to_string());
            stats.set("cache_misses", cache.misses().to_string());
            stats.set("hot_hits", cache.hot_hits().to_string());
            stats.set("hot_misses", cache.hot_misses().to_string());
            stats.set("hot_evictions", cache.hot_evictions().to_string());
        }
        None => {
            stats.set("cache_attached", false);
            stats.set("cache_hits", "0");
            stats.set("cache_misses", "0");
            stats.set("hot_hits", "0");
            stats.set("hot_misses", "0");
            stats.set("hot_evictions", "0");
        }
    }
    let mut frame = ok_frame(id);
    frame.set("stats", stats);
    frame
}

/// Sends one reply frame, bumping the served/error counter.
fn send(state: &ServerState, tx: &mpsc::Sender<String>, frame: Json, is_error: bool) {
    if is_error {
        state.errors.fetch_add(1, Ordering::SeqCst);
    } else {
        state.served.fetch_add(1, Ordering::SeqCst);
    }
    // A closed connection just drops the reply; the counters still
    // reflect that the request was answered.
    let _ = tx.send(frame.render_line());
}

// ---------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------

fn proto(message: impl Into<String>) -> PacqError {
    PacqError::protocol("serve::frame", message)
}

/// Rejects unknown fields so typos surface as typed errors instead of
/// silently applying defaults.
fn check_keys(doc: &Json, allowed: &[&str]) -> PacqResult<()> {
    if let Json::Obj(entries) = doc {
        for (key, _) in entries {
            if !allowed.contains(&key.as_str()) {
                return Err(proto(format!("unknown field `{key}`")));
            }
        }
    }
    Ok(())
}

fn field_str<'a>(doc: &'a Json, field: &str) -> PacqResult<Option<&'a str>> {
    match doc.get(field) {
        None => Ok(None),
        Some(value) => value
            .as_str()
            .map(Some)
            .ok_or_else(|| proto(format!("field `{field}` must be a string"))),
    }
}

fn field_usize(doc: &Json, field: &str) -> PacqResult<Option<usize>> {
    match doc.get(field) {
        None => Ok(None),
        Some(value) => {
            let n = value
                .as_num()
                .ok_or_else(|| proto(format!("field `{field}` must be a number")))?;
            if n.fract() != 0.0 || !(0.0..=u32::MAX as f64).contains(&n) {
                return Err(proto(format!("field `{field}` must be a small integer")));
            }
            Ok(Some(n as usize))
        }
    }
}

/// Applies the point-shaping fields of `doc` on top of `base`
/// (analyze frames, batch frame-level defaults, and batch entries all
/// share this).
fn parse_spec(doc: &Json, base: PointSpec) -> PacqResult<PointSpec> {
    let mut spec = base;
    if let Some(text) = field_str(doc, "shape")? {
        spec.shape = Some(cli::parse_shape(text)?);
    }
    if let Some(text) = field_str(doc, "arch")? {
        spec.arch = cli::parse_arch(text)?;
    }
    if let Some(text) = field_str(doc, "precision")? {
        spec.precision = cli::parse_precision(text)?;
    }
    if let Some(text) = field_str(doc, "group")? {
        spec.group = cli::parse_group(text)?;
    }
    if let Some(dup) = field_usize(doc, "dup")? {
        if !matches!(dup, 1 | 2 | 4) {
            return Err(PacqError::usage("`dup` expects 1, 2 or 4"));
        }
        spec.dup = dup;
    }
    if let Some(width) = field_usize(doc, "width")? {
        if !matches!(width, 4 | 8 | 16) {
            return Err(PacqError::usage("`width` expects 4, 8 or 16"));
        }
        spec.width = width;
    }
    Ok(spec)
}

const POINT_KEYS: [&str; 6] = ["shape", "arch", "precision", "group", "dup", "width"];

fn parse_request(doc: &Json) -> PacqResult<Request> {
    let op = doc
        .get("op")
        .ok_or_else(|| proto("missing field `op`"))?
        .as_str()
        .ok_or_else(|| proto("field `op` must be a string"))?;
    match op {
        "analyze" => {
            check_keys(
                doc,
                &[
                    "op",
                    "id",
                    "shape",
                    "arch",
                    "precision",
                    "group",
                    "dup",
                    "width",
                ],
            )?;
            let spec = parse_spec(doc, PointSpec::base())?;
            Ok(Request::Analyze(spec.into_point()?))
        }
        "batch" => {
            check_keys(
                doc,
                &[
                    "op",
                    "id",
                    "requests",
                    "arch",
                    "precision",
                    "group",
                    "dup",
                    "width",
                ],
            )?;
            let defaults = parse_spec(doc, PointSpec::base())?;
            let entries = doc
                .get("requests")
                .ok_or_else(|| proto("batch wants an array field `requests`"))?
                .as_arr()
                .ok_or_else(|| proto("field `requests` must be an array"))?;
            if entries.len() > MAX_BATCH_POINTS {
                return Err(proto(format!(
                    "batch of {} points exceeds the {MAX_BATCH_POINTS}-point cap",
                    entries.len()
                )));
            }
            let mut points = Vec::with_capacity(entries.len());
            for entry in entries {
                if !entry.is_obj() {
                    return Err(proto("every `requests` entry must be a JSON object"));
                }
                check_keys(entry, &POINT_KEYS)?;
                points.push(parse_spec(entry, defaults)?.into_point()?);
            }
            Ok(Request::Batch(points))
        }
        "stats" => {
            check_keys(doc, &["op", "id"])?;
            Ok(Request::Stats)
        }
        "ping" => {
            check_keys(doc, &["op", "id"])?;
            Ok(Request::Ping)
        }
        "shutdown" => {
            check_keys(doc, &["op", "id"])?;
            Ok(Request::Shutdown)
        }
        other => Err(proto(format!("unknown op `{other}`"))),
    }
}

// ---------------------------------------------------------------------
// Request execution (worker side)
// ---------------------------------------------------------------------

fn point_runner(point: &Point, cache: Option<Arc<ReportCache>>, backend: Backend) -> GemmRunner {
    let mut cfg = SmConfig::volta_like();
    cfg.adder_tree_duplication = point.dup;
    cfg.dp_width = point.width;
    // No per-request result records: a server answers an unbounded
    // stream, and recording every analysis would grow the collector
    // (and the `--metrics` manifest) without bound. Traffic shows up
    // in the `serve.*` counters instead.
    GemmRunner::new()
        .with_config(cfg)
        .with_group(point.group)
        .with_cache_opt(cache)
        .with_backend(backend)
        .without_result_recording()
}

/// Analyzes one point and renders its report in the lossless
/// `pacq-cache/v1` encoding (the conformance contract).
fn point_report_json(
    point: &Point,
    cache: Option<Arc<ReportCache>>,
    backend: Backend,
) -> PacqResult<Json> {
    let runner = point_runner(point, cache, backend);
    let report = runner.analyze(point.arch, point.workload)?;
    let key = runner.cache_key(point.arch, point.workload);
    Ok(report.to_cached().to_json(&key))
}

fn execute_request(request: &Request, state: &ServerState, id: &Json) -> PacqResult<Json> {
    match request {
        Request::Analyze(point) => {
            let mut frame = ok_frame(id);
            frame.set(
                "report",
                point_report_json(point, state.cache.clone(), state.options.backend)?,
            );
            Ok(frame)
        }
        Request::Batch(points) => {
            // Dedup identical points so one batch never computes (or
            // even cache-probes) the same point twice, then fan the
            // unique points out on the shared worker pool (par.rs).
            let mut unique: Vec<Point> = Vec::new();
            let mut slot = Vec::with_capacity(points.len());
            for point in points {
                match unique.iter().position(|u| u == point) {
                    Some(i) => slot.push(i),
                    None => {
                        slot.push(unique.len());
                        unique.push(*point);
                    }
                }
            }
            let computed = unique
                .clone()
                .into_par_iter()
                .map(|p| point_report_json(&p, state.cache.clone(), state.options.backend))
                .collect::<Vec<PacqResult<Json>>>()
                .into_iter()
                .collect::<PacqResult<Vec<Json>>>()?;
            let mut reports = Vec::with_capacity(slot.len());
            for i in slot {
                let doc = computed
                    .get(i)
                    .ok_or_else(|| proto("internal: batch slot out of range"))?;
                reports.push(doc.clone());
            }
            let mut frame = ok_frame(id);
            frame.set("reports", Json::Arr(reports));
            frame.set("unique_points", unique.len().to_string());
            Ok(frame)
        }
        // Stats/ping/shutdown are answered by the reader; they never
        // reach the queue.
        Request::Stats | Request::Ping | Request::Shutdown => {
            Err(proto("internal: control op routed to a worker"))
        }
    }
}

fn worker_loop(jobs: &Arc<Mutex<Receiver<Job>>>, state: &Arc<ServerState>) {
    loop {
        // Holding the lock while blocked in recv serializes job
        // *pickup* only; execution runs after the guard drops.
        let job = match lock(jobs).recv() {
            Ok(job) => job,
            Err(_) => break, // queue closed and drained
        };
        state.depth.fetch_sub(1, Ordering::SeqCst);
        match execute_request(&job.request, state, &job.id) {
            Ok(frame) => send(state, &job.reply, frame, false),
            Err(e) => send(state, &job.reply, error_frame(&job.id, &e), true),
        }
    }
}

// ---------------------------------------------------------------------
// Connection handling (reader/writer side)
// ---------------------------------------------------------------------

fn writer_loop<W: Write>(rx: Receiver<String>, mut out: W) {
    for line in rx {
        let ok = out
            .write_all(line.as_bytes())
            .and_then(|()| out.write_all(b"\n"))
            .and_then(|()| out.flush());
        if ok.is_err() {
            break; // client gone; senders see a closed channel
        }
    }
}

enum FrameRead {
    Eof,
    Line,
    Oversized,
}

/// Reads one frame line with a hard byte cap; an over-cap line is
/// consumed to its newline so the connection can continue.
fn read_frame<R: BufRead>(reader: &mut R, line: &mut String) -> std::io::Result<FrameRead> {
    line.clear();
    let n = reader
        .by_ref()
        .take(MAX_FRAME_BYTES as u64 + 1)
        .read_line(line)?;
    if n == 0 {
        return Ok(FrameRead::Eof);
    }
    if n > MAX_FRAME_BYTES {
        if !line.ends_with('\n') {
            skip_to_newline(reader)?;
        }
        return Ok(FrameRead::Oversized);
    }
    Ok(FrameRead::Line)
}

fn skip_to_newline<R: BufRead>(reader: &mut R) -> std::io::Result<()> {
    loop {
        let (done, used) = {
            let buf = reader.fill_buf()?;
            if buf.is_empty() {
                return Ok(()); // EOF mid-line
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(pos) => (true, pos + 1),
                None => (false, buf.len()),
            }
        };
        reader.consume(used);
        if done {
            return Ok(());
        }
    }
}

/// Handles one parsed-or-not frame line. Returns `false` when the
/// connection should stop reading (shutdown frame). `bucket` is this
/// connection's admission bucket (`None` = unlimited); only work
/// requests spend tokens — control ops and malformed frames are
/// answered by the reader itself and never cost worker time.
fn handle_line(
    text: &str,
    state: &Arc<ServerState>,
    tx: &mpsc::Sender<String>,
    bucket: &mut Option<TokenBucket>,
) -> bool {
    let text = text.trim();
    if text.is_empty() {
        return true; // blank keep-alive lines are fine
    }
    let doc = match Json::parse(text) {
        Ok(doc) if doc.is_obj() => doc,
        Ok(_) => {
            let e = proto("frame must be a JSON object");
            send(state, tx, error_frame(&Json::Null, &e), true);
            return true;
        }
        Err(e) => {
            let e = proto(format!("frame is not valid JSON: {e}"));
            send(state, tx, error_frame(&Json::Null, &e), true);
            return true;
        }
    };
    let id = doc.get("id").cloned().unwrap_or(Json::Null);
    match parse_request(&doc) {
        Ok(Request::Stats) => send(state, tx, stats_frame(&id, state), false),
        Ok(Request::Ping) => {
            let mut frame = ok_frame(&id);
            frame.set("pong", true);
            send(state, tx, frame, false);
        }
        Ok(Request::Shutdown) => {
            let mut frame = ok_frame(&id);
            frame.set("draining", true);
            send(state, tx, frame, false);
            state.drain();
            return false;
        }
        Ok(request) => {
            if let Some(bucket) = bucket {
                if !bucket.admit() {
                    state.rate_limited.fetch_add(1, Ordering::SeqCst);
                    let e = PacqError::RateLimited {
                        rate: state.options.rate,
                        burst: state.options.burst.max(1),
                    };
                    send(state, tx, error_frame(&id, &e), true);
                    return true;
                }
            }
            enqueue(state, tx, request, id);
        }
        Err(e) => send(state, tx, error_frame(&id, &e), true),
    }
    true
}

fn enqueue(state: &Arc<ServerState>, tx: &mpsc::Sender<String>, request: Request, id: Json) {
    let guard = lock(&state.queue);
    let Some(queue) = guard.as_ref() else {
        let e = proto("server is draining; no new work accepted");
        send(state, tx, error_frame(&id, &e), true);
        return;
    };
    let job = Job {
        request,
        id,
        reply: tx.clone(),
    };
    match queue.try_send(job) {
        Ok(()) => {
            state.depth.fetch_add(1, Ordering::SeqCst);
        }
        Err(TrySendError::Full(job)) => {
            let e = PacqError::QueueFull {
                capacity: state.options.queue_capacity,
            };
            send(state, tx, error_frame(&job.id, &e), true);
        }
        Err(TrySendError::Disconnected(job)) => {
            let e = proto("server is draining; no new work accepted");
            send(state, tx, error_frame(&job.id, &e), true);
        }
    }
}

fn reader_loop<R: BufRead>(mut reader: R, state: &Arc<ServerState>, tx: &mpsc::Sender<String>) {
    let mut line = String::new();
    let mut bucket = TokenBucket::from_options(&state.options);
    loop {
        match read_frame(&mut reader, &mut line) {
            Ok(FrameRead::Eof) => break,
            Ok(FrameRead::Oversized) => {
                let e = proto(format!("frame exceeds the {MAX_FRAME_BYTES}-byte line cap"));
                send(state, tx, error_frame(&Json::Null, &e), true);
            }
            Ok(FrameRead::Line) => {
                if !handle_line(&line, state, tx, &mut bucket) {
                    break;
                }
            }
            Err(e) => {
                // Undecodable bytes (e.g. non-UTF-8): answer once and
                // close this connection; everyone else is unaffected.
                let e = proto(format!("unreadable frame: {e}"));
                send(state, tx, error_frame(&Json::Null, &e), true);
                break;
            }
        }
    }
}

fn handle_conn(stream: TcpStream, state: Arc<ServerState>) {
    handle_conn_inner(stream, &state);
    // The accept loop counted us in before spawning; count back out so
    // the `--max-clients` gate frees the slot.
    state.active_conns.fetch_sub(1, Ordering::SeqCst);
}

fn handle_conn_inner(stream: TcpStream, state: &Arc<ServerState>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    // Register under a fresh id so teardown removes exactly this
    // connection's drain handle — the registry must return to empty
    // when every client is gone, not grow for the life of the server.
    let conn_id = state.conn_seq.fetch_add(1, Ordering::SeqCst);
    if let Ok(drain_handle) = stream.try_clone() {
        lock(&state.conns).push((conn_id, drain_handle));
    }
    let (tx, rx) = mpsc::channel::<String>();
    let writer = thread::spawn(move || writer_loop(rx, stream));
    reader_loop(BufReader::new(read_half), state, &tx);
    // Reader done: drop our sender; the writer exits once every queued
    // job's reply clone is dropped too, then the socket closes.
    drop(tx);
    let _ = writer.join();
    lock(&state.conns).retain(|(id, _)| *id != conn_id);
}

/// Answers a connection turned away at the `--max-clients` gate: one
/// typed error frame (best effort, with a short write timeout so a
/// non-reading client cannot stall the acceptor), then the stream
/// drops and the socket closes.
fn reject_conn(stream: TcpStream, max_clients: usize) {
    let _ = stream.set_write_timeout(Some(std::time::Duration::from_millis(250)));
    let e = proto(format!(
        "server is at its --max-clients capacity ({max_clients}); retry later"
    ));
    let mut stream = stream;
    let _ = stream.write_all(error_frame(&Json::Null, &e).render_line().as_bytes());
    let _ = stream.write_all(b"\n");
}

// ---------------------------------------------------------------------
// Server lifecycles
// ---------------------------------------------------------------------

/// A running TCP server. Bind with [`Server::bind`], drive clients at
/// [`Server::addr`], stop with a `shutdown` frame or
/// [`Server::shutdown`], then [`Server::wait`].
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    thread: thread::JoinHandle<ServeSummary>,
}

impl Server {
    /// Binds `addr` (port 0 picks an ephemeral port) and starts the
    /// accept loop and worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::Io`] when the address cannot be bound.
    pub fn bind(
        addr: &str,
        options: ServeOptions,
        cache: Option<Arc<ReportCache>>,
    ) -> PacqResult<Server> {
        let io_err = |e: std::io::Error| PacqError::Io {
            context: "serve::bind",
            message: e.to_string(),
        };
        let listener = TcpListener::bind(addr).map_err(io_err)?;
        let local = listener.local_addr().map_err(io_err)?;
        let (state, jobs) = ServerState::new(options, cache, Some(local));
        let jobs = Arc::new(Mutex::new(jobs));
        let mut workers = Vec::with_capacity(options.workers);
        for _ in 0..options.workers {
            let jobs = Arc::clone(&jobs);
            let state = Arc::clone(&state);
            workers.push(thread::spawn(move || worker_loop(&jobs, &state)));
        }
        let accept_state = Arc::clone(&state);
        let thread = thread::spawn(move || {
            let mut conns = Vec::new();
            for stream in listener.incoming() {
                if accept_state.draining.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else {
                    continue; // transient accept error
                };
                let max = accept_state.options.max_clients;
                if max > 0 && accept_state.active_conns.load(Ordering::SeqCst) >= max {
                    accept_state.rejected_conns.fetch_add(1, Ordering::SeqCst);
                    pacq_trace::add_counter("serve.rejected_conns", 1);
                    reject_conn(stream, max);
                    continue;
                }
                accept_state.active_conns.fetch_add(1, Ordering::SeqCst);
                let conn_state = Arc::clone(&accept_state);
                conns.push(thread::spawn(move || handle_conn(stream, conn_state)));
            }
            drop(listener);
            // Belt and braces for externally-triggered shutdowns: drain
            // is idempotent, and every reader must see EOF before join.
            accept_state.drain();
            for conn in conns {
                let _ = conn.join();
            }
            for worker in workers {
                let _ = worker.join();
            }
            accept_state.summary()
        });
        Ok(Server {
            state,
            addr: local,
            thread,
        })
    }

    /// The bound address (useful after `--port 0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of connections currently registered with the drain
    /// machinery. Returns to 0 once every client has disconnected —
    /// the regression surface for the PR 7 handle-leak fix.
    pub fn live_connections(&self) -> usize {
        lock(&self.state.conns).len()
    }

    /// Triggers the graceful drain from outside the protocol (the
    /// in-process equivalent of a `shutdown` frame).
    pub fn shutdown(&self) {
        self.state.drain();
    }

    /// Waits for the drain to complete and returns the run's counters.
    ///
    /// # Errors
    ///
    /// Returns a protocol-class error if the server thread died — which
    /// the never-panic design rules out, but the join result must go
    /// somewhere honest.
    pub fn wait(self) -> PacqResult<ServeSummary> {
        self.thread
            .join()
            .map_err(|_| PacqError::protocol("serve::wait", "server thread panicked"))
    }

    /// The frame announced on stdout when the server is ready.
    fn ready_frame(&self) -> Json {
        let mut frame = Json::object();
        frame.set("schema", PROTOCOL);
        frame.set("event", "ready");
        frame.set("addr", self.addr.to_string());
        frame.set("workers", self.state.options.workers.to_string());
        frame.set(
            "queue_capacity",
            self.state.options.queue_capacity.to_string(),
        );
        frame.set("backend", self.state.options.backend.token());
        frame
    }
}

/// Serves `pacq-serve/v1` over stdin/stdout until EOF or a `shutdown`
/// frame, then drains and returns the counters.
///
/// # Errors
///
/// Infallible today (the signature leaves room for future I/O setup
/// errors); client-visible failures travel as error frames instead.
pub fn serve_stdio(
    options: ServeOptions,
    cache: Option<Arc<ReportCache>>,
) -> PacqResult<ServeSummary> {
    let (state, jobs) = ServerState::new(options, cache, None);
    let jobs = Arc::new(Mutex::new(jobs));
    let mut workers = Vec::with_capacity(options.workers);
    for _ in 0..options.workers {
        let jobs = Arc::clone(&jobs);
        let state = Arc::clone(&state);
        workers.push(thread::spawn(move || worker_loop(&jobs, &state)));
    }
    let (tx, rx) = mpsc::channel::<String>();
    let writer = thread::spawn(move || writer_loop(rx, std::io::stdout().lock()));

    let mut ready = Json::object();
    ready.set("schema", PROTOCOL);
    ready.set("event", "ready");
    ready.set("workers", options.workers.to_string());
    ready.set("queue_capacity", options.queue_capacity.to_string());
    ready.set("backend", options.backend.token());
    let _ = tx.send(ready.render_line());

    reader_loop(std::io::stdin().lock(), &state, &tx);
    state.drain();
    for worker in workers {
        let _ = worker.join();
    }
    let summary = state.summary();
    let mut drained = Json::object();
    drained.set("schema", PROTOCOL);
    drained.set("event", "drained");
    drained.set("served", summary.served.to_string());
    drained.set("errors", summary.errors.to_string());
    let _ = tx.send(drained.render_line());
    drop(tx);
    let _ = writer.join();
    Ok(summary)
}

// ---------------------------------------------------------------------
// CLI entry point
// ---------------------------------------------------------------------

/// Validates a serve counting flag (`--queue`, `--rate`, `--burst`,
/// `--max-clients`): trimmed, plain ASCII digits only (no sign, no
/// decimal point), at least 1, at most `max`. Same discipline as the
/// shared `--jobs` validator in `par.rs` — `source` names the flag so
/// the one-line diagnostic is self-locating.
pub fn validate_serve_count(raw: &str, source: &str, max: u64) -> PacqResult<u64> {
    let text = raw.trim();
    let plain_number = !text.is_empty() && text.bytes().all(|b| b.is_ascii_digit());
    if !plain_number {
        return Err(PacqError::usage(format!(
            "{source} expects a positive integer, got `{raw}`"
        )));
    }
    match text.parse::<u64>() {
        Ok(0) => Err(PacqError::usage(format!("{source} must be at least 1"))),
        Ok(n) if n <= max => Ok(n),
        _ => Err(PacqError::usage(format!(
            "{source} accepts at most {max}, got `{raw}`"
        ))),
    }
}

/// `pacq serve (--port N | --stdio) [--queue N] [--rate N] [--burst N]
/// [--max-clients N]` — parses the serve flags and runs the matching
/// lifecycle until drained. The `backend` comes from the global
/// `--backend` / `PACQ_BACKEND` knob the CLI front end already
/// resolved.
///
/// # Errors
///
/// Returns [`PacqError::Usage`] for flag errors and [`PacqError::Io`]
/// when the TCP port cannot be bound.
pub fn run_cli(
    args: &[String],
    cache: Option<Arc<ReportCache>>,
    backend: Backend,
) -> PacqResult<String> {
    let usage = |msg: &str| PacqError::usage(msg.to_string());
    let mut port: Option<u16> = None;
    let mut stdio = false;
    let mut queue_capacity = DEFAULT_QUEUE_CAPACITY;
    let mut rate = 0u64;
    let mut burst: Option<u64> = None;
    let mut max_clients = 0usize;
    let mut it = args.iter().map(String::as_str);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> PacqResult<&str> {
            it.next()
                .ok_or_else(|| PacqError::usage(format!("missing value for {name}")))
        };
        match flag {
            "--port" => {
                port = Some(
                    value("--port")?
                        .parse()
                        .map_err(|_| usage("--port expects 0..65535"))?,
                )
            }
            "--stdio" => stdio = true,
            "--queue" => {
                queue_capacity =
                    validate_serve_count(value("--queue")?, "--queue", MAX_QUEUE_CAPACITY as u64)?
                        as usize;
            }
            "--rate" => rate = validate_serve_count(value("--rate")?, "--rate", 1_000_000)?,
            "--burst" => {
                burst = Some(validate_serve_count(
                    value("--burst")?,
                    "--burst",
                    1_000_000,
                )?)
            }
            "--max-clients" => {
                max_clients =
                    validate_serve_count(value("--max-clients")?, "--max-clients", 10_000)? as usize
            }
            other => return Err(PacqError::usage(format!("unknown serve option `{other}`"))),
        }
    }
    if burst.is_some() && rate == 0 {
        return Err(usage("--burst only makes sense together with --rate"));
    }
    let options = ServeOptions {
        queue_capacity,
        backend,
        rate,
        burst: burst.unwrap_or(rate),
        max_clients,
        ..ServeOptions::default()
    };
    let summary = match (port, stdio) {
        (Some(_), true) => return Err(usage("--port and --stdio are mutually exclusive")),
        (None, false) => return Err(usage("serve wants --port N or --stdio")),
        (None, true) => serve_stdio(options, cache.clone())?,
        (Some(port), false) => {
            let server = Server::bind(&format!("127.0.0.1:{port}"), options, cache.clone())?;
            // Announce readiness immediately — with --port 0 the client
            // cannot know the port any other way.
            let mut stdout = std::io::stdout().lock();
            let _ = writeln!(stdout, "{}", server.ready_frame().render_line());
            let _ = stdout.flush();
            server.wait()?
        }
    };
    pacq_trace::add_counter("serve.served", summary.served);
    pacq_trace::add_counter("serve.errors", summary.errors);
    pacq_trace::add_counter("serve.rate_limited", summary.rate_limited);
    if let Some(cache) = &cache {
        pacq_trace::add_counter("serve.cache_hits", cache.hits());
        pacq_trace::add_counter("serve.cache_misses", cache.misses());
        pacq_trace::add_counter("serve.hot_hits", cache.hot_hits());
        pacq_trace::add_counter("serve.hot_misses", cache.hot_misses());
        pacq_trace::add_counter("serve.hot_evictions", cache.hot_evictions());
    }
    if stdio {
        // Stdout is the protocol channel; the summary already went out
        // as the `drained` event frame.
        Ok(String::new())
    } else {
        Ok(format!(
            "serve: {} replies ({} errors)\n",
            summary.served, summary.errors
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(text: &str) -> PacqResult<Request> {
        parse_request(&Json::parse(text).expect("test frame parses"))
    }

    #[test]
    fn analyze_frames_parse_with_cli_defaults() {
        let req = parse(r#"{"op":"analyze","id":1,"shape":"m16n256k256"}"#).unwrap();
        let Request::Analyze(p) = req else {
            panic!("not analyze")
        };
        assert_eq!(p.arch, Architecture::Pacq);
        assert_eq!(p.workload.precision, WeightPrecision::Int4);
        assert_eq!((p.dup, p.width), (2, 4));
        assert_eq!(p.group, GroupShape::G128);
    }

    #[test]
    fn field_overrides_match_the_cli_vocabulary() {
        let req = parse(
            r#"{"op":"analyze","shape":"m32n256k256","arch":"std","precision":"int2","group":"g64","dup":4,"width":8}"#,
        )
        .unwrap();
        let Request::Analyze(p) = req else {
            panic!("not analyze")
        };
        assert_eq!(p.arch, Architecture::StandardDequant);
        assert_eq!(p.workload.precision, WeightPrecision::Int2);
        assert_eq!((p.dup, p.width), (4, 8));
        assert_eq!(p.group, GroupShape::along_k(64));
    }

    #[test]
    fn malformed_frames_are_typed_protocol_or_usage_errors() {
        for (frame, class) in [
            (r#"{"id":1}"#, "protocol"),                       // missing op
            (r#"{"op":7}"#, "protocol"),                       // non-string op
            (r#"{"op":"frobnicate"}"#, "protocol"),            // unknown op
            (r#"{"op":"analyze"}"#, "usage"),                  // missing shape
            (r#"{"op":"analyze","shape":5}"#, "protocol"),     // wrong type
            (r#"{"op":"analyze","shape":"m1n1k1"}"#, "usage"), // misaligned
            (r#"{"op":"analyze","shape":"m16n16k16","dup":3}"#, "usage"),
            (
                r#"{"op":"analyze","shape":"m16n16k16","bogus":1}"#,
                "protocol",
            ),
            (r#"{"op":"stats","shape":"m16n16k16"}"#, "protocol"), // stray field
            (r#"{"op":"batch"}"#, "protocol"),                     // missing requests
            (r#"{"op":"batch","requests":[3]}"#, "protocol"),      // non-object entry
        ] {
            let err = parse(frame).unwrap_err();
            assert_eq!(err.class(), class, "{frame}: {err}");
        }
    }

    #[test]
    fn batch_defaults_flow_into_entries() {
        let req = parse(
            r#"{"op":"batch","precision":"int2","dup":4,
                "requests":[{"shape":"m16n256k256"},{"shape":"m32n256k256","precision":"int4"}]}"#,
        )
        .unwrap();
        let Request::Batch(points) = req else {
            panic!("not batch")
        };
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].workload.precision, WeightPrecision::Int2);
        assert_eq!(points[0].dup, 4);
        assert_eq!(points[1].workload.precision, WeightPrecision::Int4);
        assert_eq!(points[1].dup, 4);
    }

    /// Drives a full server lifecycle through the generic reader/writer
    /// plumbing without a socket: requests in a cursor, replies from
    /// the channel.
    fn drive(input: &str, options: ServeOptions) -> (Vec<Json>, ServeSummary) {
        let (state, jobs) = ServerState::new(options, None, None);
        let jobs = Arc::new(Mutex::new(jobs));
        let mut workers = Vec::new();
        for _ in 0..options.workers {
            let jobs = Arc::clone(&jobs);
            let state = Arc::clone(&state);
            workers.push(thread::spawn(move || worker_loop(&jobs, &state)));
        }
        let (tx, rx) = mpsc::channel::<String>();
        reader_loop(BufReader::new(Cursor::new(input.to_string())), &state, &tx);
        state.drain();
        for w in workers {
            w.join().unwrap();
        }
        drop(tx);
        let replies = rx
            .into_iter()
            .map(|line| Json::parse(&line).expect("reply frames are valid JSON"))
            .collect();
        (replies, state.summary())
    }

    fn by_id(replies: &[Json], id: f64) -> Json {
        replies
            .iter()
            .find(|r| r.get("id").and_then(Json::as_num) == Some(id))
            .cloned()
            .unwrap_or_else(|| panic!("no reply with id {id}"))
    }

    #[test]
    fn lifecycle_serves_and_drains_in_process() {
        let input = concat!(
            r#"{"op":"ping","id":1}"#,
            "\n",
            r#"{"op":"analyze","id":2,"shape":"m16n256k256"}"#,
            "\n",
            "not json\n",
            r#"{"op":"stats","id":3}"#,
            "\n",
            r#"{"op":"shutdown","id":4}"#,
            "\n",
            r#"{"op":"ping","id":5}"#, // after shutdown: never read
            "\n",
        );
        let (replies, summary) = drive(input, ServeOptions::default());
        assert_eq!(replies.len(), 5, "ping, analyze, parse error, stats, ack");
        assert_eq!(
            summary,
            ServeSummary {
                served: 4,
                errors: 1,
                ..ServeSummary::default()
            }
        );

        assert_eq!(by_id(&replies, 1.0).get("pong"), Some(&Json::Bool(true)));
        let report = by_id(&replies, 2.0);
        assert_eq!(report.get("ok"), Some(&Json::Bool(true)));
        let report = report.get("report").expect("report payload");
        assert_eq!(
            report.get("schema").and_then(Json::as_str),
            Some("pacq-cache/v1")
        );
        let stats = by_id(&replies, 3.0);
        let stats = stats.get("stats").expect("stats payload");
        assert_eq!(stats.get("cache_attached"), Some(&Json::Bool(false)));
        assert_eq!(
            by_id(&replies, 4.0).get("draining"),
            Some(&Json::Bool(true))
        );
        // The malformed line's error frame is typed and null-id.
        let err = replies
            .iter()
            .find(|r| r.get("ok") == Some(&Json::Bool(false)))
            .expect("error frame");
        assert_eq!(err.get("id"), Some(&Json::Null));
        assert_eq!(
            err.get("error")
                .and_then(|e| e.get("class"))
                .and_then(Json::as_str),
            Some("protocol")
        );
    }

    #[test]
    fn batch_replies_dedup_and_keep_request_order() {
        let input = concat!(
            r#"{"op":"batch","id":9,"requests":[
                {"shape":"m16n256k256"},
                {"shape":"m32n256k256"},
                {"shape":"m16n256k256"}]}"#,
            "\n"
        )
        .replace('\n', " ")
            + "\n";
        let (replies, summary) = drive(&input, ServeOptions::default());
        assert_eq!(summary.errors, 0, "{replies:?}");
        let frame = by_id(&replies, 9.0);
        assert_eq!(frame.get("unique_points").and_then(Json::as_str), Some("2"));
        let reports = frame.get("reports").and_then(Json::as_arr).unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0], reports[2], "duplicate point, identical report");
        assert_ne!(reports[0], reports[1]);
        // Entry 0 and 1 differ only in m; check echo order.
        let m = |r: &Json| {
            r.get("shape")
                .and_then(|s| s.get("m"))
                .and_then(Json::as_str)
                .map(str::to_string)
        };
        assert_eq!(m(&reports[0]).as_deref(), Some("16"));
        assert_eq!(m(&reports[1]).as_deref(), Some("32"));
    }

    #[test]
    fn full_queue_is_a_typed_queue_full_frame() {
        // One worker, capacity 1: stuff the pipeline faster than a
        // single worker can drain it. With 64 work frames in flight at
        // capacity 1 at least one must bounce; every bounce must be the
        // typed queue_full class and every accepted request must get
        // exactly one ok reply.
        let mut input = String::new();
        for i in 0..64 {
            input.push_str(&format!(
                "{{\"op\":\"analyze\",\"id\":{i},\"shape\":\"m16n4096k4096\"}}\n"
            ));
        }
        let options = ServeOptions {
            queue_capacity: 1,
            workers: 1,
            ..ServeOptions::default()
        };
        let (replies, summary) = drive(&input, options);
        assert_eq!(replies.len(), 64, "one reply per frame, none lost");
        let bounced = replies
            .iter()
            .filter(|r| r.get("ok") == Some(&Json::Bool(false)))
            .collect::<Vec<_>>();
        assert!(!bounced.is_empty(), "capacity-1 queue must overflow");
        for frame in &bounced {
            let class = frame
                .get("error")
                .and_then(|e| e.get("class"))
                .and_then(Json::as_str);
            assert_eq!(class, Some("queue_full"), "{frame:?}");
            let code = frame
                .get("error")
                .and_then(|e| e.get("exit_code"))
                .and_then(Json::as_num);
            assert_eq!(code, Some(8.0));
        }
        assert_eq!(summary.served + summary.errors, 64);
    }

    #[test]
    fn oversized_frames_bounce_but_the_connection_survives() {
        let huge = format!(
            "{{\"op\":\"analyze\",\"pad\":\"{}\"}}\n",
            "x".repeat(MAX_FRAME_BYTES)
        );
        let input = format!("{huge}{{\"op\":\"ping\",\"id\":1}}\n");
        let (replies, _) = drive(&input, ServeOptions::default());
        assert_eq!(replies.len(), 2);
        let err = &replies[0];
        assert_eq!(
            err.get("error")
                .and_then(|e| e.get("class"))
                .and_then(Json::as_str),
            Some("protocol"),
            "{err:?}"
        );
        assert_eq!(by_id(&replies, 1.0).get("pong"), Some(&Json::Bool(true)));
    }

    #[test]
    fn serve_cli_flags_are_validated() {
        let argv = |s: &str| s.split_whitespace().map(String::from).collect::<Vec<_>>();
        for bad in [
            "",
            "--port 1 --stdio",
            "--port notaport",
            "--queue 0",
            "--queue",
            "--queue -4",
            "--queue 4.0",
            "--rate 0",
            "--rate nope",
            "--burst 2",                  // burst without rate
            "--stdio --burst 0 --rate 5", // burst still validated
            "--max-clients 0",
            "--frobnicate",
        ] {
            let err = run_cli(&argv(bad), None, Backend::Scalar).unwrap_err();
            assert!(err.is_usage(), "`{bad}`: {err}");
        }
    }

    /// The `--queue 0` boundary, pinned the same way `par.rs` pins
    /// `--jobs`: one shared validator, exercised over every boundary
    /// input. 0 is *rejected* (usage, exit 2) rather than passed to
    /// `mpsc::sync_channel`, where it would silently become a
    /// rendezvous channel; `ServerState::new` additionally pins
    /// programmatic zeros up to 1 (covered below).
    #[test]
    fn queue_validator_agrees_on_every_boundary_input() {
        let max = MAX_QUEUE_CAPACITY as u64;
        let cases: [(&str, Option<u64>); 12] = [
            ("1", Some(1)),
            ("64", Some(64)),
            (" 64 ", Some(64)),
            ("65536", Some(max)),
            ("0", None),
            (" 0 ", None),
            ("65537", None),
            ("+4", None),
            ("-4", None),
            ("4.0", None),
            ("", None),
            ("queue", None),
        ];
        for (raw, want) in cases {
            let got = validate_serve_count(raw, "--queue", max);
            match want {
                Some(n) => assert_eq!(got.unwrap(), n, "`{raw}`"),
                None => {
                    let err = got.unwrap_err();
                    assert!(err.is_usage(), "`{raw}`: {err}");
                    assert_eq!(err.exit_code(), 2, "`{raw}`");
                }
            }
        }
    }

    #[test]
    fn programmatic_queue_capacity_zero_is_pinned_to_one() {
        // A library caller that builds ServeOptions by hand must never
        // get a rendezvous channel: capacity 0 still buffers one job.
        let options = ServeOptions {
            queue_capacity: 0,
            workers: 1,
            ..ServeOptions::default()
        };
        let (state, _rx) = ServerState::new(options, None, None);
        let (tx, _reply_rx) = mpsc::channel::<String>();
        // try_send into a rendezvous channel with no waiting receiver
        // fails even when idle; a 1-slot queue accepts the job.
        enqueue(
            &state,
            &tx,
            Request::Analyze(Point {
                arch: Architecture::Pacq,
                workload: Workload::new(
                    pacq_simt::GemmShape::new(16, 256, 256),
                    WeightPrecision::Int4,
                ),
                group: GroupShape::G128,
                dup: 2,
                width: 4,
            }),
            Json::from(1u64),
        );
        assert_eq!(state.depth.load(Ordering::SeqCst), 1, "job was accepted");
        assert_eq!(state.summary().errors, 0);
    }

    #[test]
    fn rate_limited_clients_get_typed_frames_and_lose_nothing() {
        // rate 1/s, burst 2: ten back-to-back analyze frames can admit
        // at most a handful (2 + refill during the run); the rest must
        // bounce as typed rate_limited frames. Every frame gets exactly
        // one reply either way.
        let mut input = String::new();
        for i in 0..10 {
            input.push_str(&format!(
                "{{\"op\":\"analyze\",\"id\":{i},\"shape\":\"m16n256k256\"}}\n"
            ));
        }
        // Control ops are exempt from admission.
        input.push_str("{\"op\":\"ping\",\"id\":100}\n");
        input.push_str("{\"op\":\"stats\",\"id\":101}\n");
        let options = ServeOptions {
            workers: 2,
            rate: 1,
            burst: 2,
            ..ServeOptions::default()
        };
        let (replies, summary) = drive(&input, options);
        assert_eq!(replies.len(), 12, "one reply per frame, none lost");
        let limited = replies
            .iter()
            .filter(|r| {
                r.get("error")
                    .and_then(|e| e.get("class"))
                    .and_then(Json::as_str)
                    == Some("rate_limited")
            })
            .collect::<Vec<_>>();
        assert!(
            !limited.is_empty(),
            "burst-2 bucket must run dry over 10 frames"
        );
        for frame in &limited {
            let code = frame
                .get("error")
                .and_then(|e| e.get("exit_code"))
                .and_then(Json::as_num);
            assert_eq!(code, Some(8.0), "{frame:?}");
        }
        let ok_count = replies
            .iter()
            .filter(|r| r.get("ok") == Some(&Json::Bool(true)))
            .count();
        assert!(
            ok_count >= 4,
            "burst of 2 + ping + stats must be admitted: {replies:?}"
        );
        assert_eq!(summary.rate_limited, limited.len() as u64);
        assert_eq!(summary.served + summary.errors, 12);
        // The stats frame exposes the tally to remote clients too.
        let stats = by_id(&replies, 101.0);
        let reported = stats
            .get("stats")
            .and_then(|s| s.get("rate_limited"))
            .and_then(Json::as_str)
            .and_then(|s| s.parse::<u64>().ok());
        assert_eq!(reported, Some(summary.rate_limited));
    }

    #[test]
    fn token_bucket_refills_at_the_configured_rate() {
        let options = ServeOptions {
            rate: 1000,
            burst: 1,
            ..ServeOptions::default()
        };
        let mut bucket = TokenBucket::from_options(&options).unwrap();
        assert!(bucket.admit(), "bucket starts full");
        // Drain, then wait ~two token periods; the refill must admit
        // again but never exceed the burst cap.
        while bucket.admit() {}
        thread::sleep(std::time::Duration::from_millis(5));
        assert!(bucket.admit(), "refill after a waiting period");
        assert!(bucket.tokens <= 1.0, "burst cap respected");
        // Unlimited config builds no bucket at all.
        assert!(TokenBucket::from_options(&ServeOptions::default()).is_none());
    }
}
