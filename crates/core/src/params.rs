//! Shared validation for repeatable `--param` flags.
//!
//! Two commands spell search axes through `--param`: `pacq sweep` takes
//! exactly one bare name (`--param batch`), `pacq dse` takes repeated
//! `name=v1,v2,...` specs. Both used to accept silently-broken input —
//! a duplicated parameter name last-wins'd, and an empty value list
//! produced an empty (vacuously "successful") search. This module is
//! the one validator both go through: every malformed spec is a typed
//! usage error (exit code 2) naming the offending flag.

use pacq_error::{PacqError, PacqResult};

/// One validated `--param` occurrence: a parameter name plus its value
/// list (empty for the bare `--param name` spelling).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamSpec {
    /// The parameter name (left of `=`, or the whole flag value).
    pub name: String,
    /// The comma-separated values (right of `=`); empty when the spec
    /// was a bare name.
    pub values: Vec<String>,
}

fn err(msg: impl Into<String>) -> PacqError {
    PacqError::usage(msg)
}

/// Parses and validates every `--param` occurrence of one invocation.
///
/// Rejected with a usage error (exit code 2):
/// - an empty or non-`[A-Za-z0-9_-]` parameter name;
/// - the same parameter named twice (`--param batch --param batch=32`
///   would otherwise silently last-win);
/// - a `name=` spec with an empty value list, or any empty value in
///   the list (`batch=16,,32`) — an empty axis would make the whole
///   search product empty and "succeed" having searched nothing.
///
/// # Errors
///
/// Returns [`PacqError::Usage`] naming the offending spec.
pub fn parse_params(specs: &[String]) -> PacqResult<Vec<ParamSpec>> {
    let mut parsed: Vec<ParamSpec> = Vec::with_capacity(specs.len());
    for spec in specs {
        let (name, values) = match spec.split_once('=') {
            Some((name, list)) => {
                let values: Vec<String> = list.split(',').map(str::to_string).collect();
                if values.iter().any(String::is_empty) {
                    return Err(err(format!(
                        "--param {spec}: empty value list (an empty axis would search nothing)"
                    )));
                }
                (name, values)
            }
            None => (spec.as_str(), Vec::new()),
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(err(format!("--param {spec}: malformed parameter name")));
        }
        if parsed.iter().any(|p| p.name == name) {
            return Err(err(format!(
                "--param {spec}: parameter `{name}` given twice"
            )));
        }
        parsed.push(ParamSpec {
            name: name.to_string(),
            values,
        });
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_names_and_value_lists_parse() {
        let specs = parse_params(&["batch".to_string()]).unwrap();
        assert_eq!(specs[0].name, "batch");
        assert!(specs[0].values.is_empty());

        let specs = parse_params(&["batch=16,32".to_string(), "arch=pacq".to_string()]).unwrap();
        assert_eq!(specs[0].values, ["16", "32"]);
        assert_eq!(specs[1].name, "arch");
        assert_eq!(specs[1].values, ["pacq"]);
    }

    #[test]
    fn duplicates_and_empty_lists_are_usage_errors() {
        // The --param regression table: every case used to pass
        // silently (duplicate last-wins, empty axes searched nothing).
        let cases = [
            (vec!["batch", "batch"], "twice"),
            (vec!["batch=16", "batch=32"], "twice"),
            (vec!["batch", "batch=32"], "twice"),
            (vec!["batch="], "empty value"),
            (vec!["batch=16,,32"], "empty value"),
            (vec!["batch=16,"], "empty value"),
            (vec!["=16"], "malformed"),
            (vec![""], "malformed"),
            (vec!["bad name=1"], "malformed"),
        ];
        for (specs, want) in cases {
            let specs: Vec<String> = specs.iter().map(|s| s.to_string()).collect();
            let e = parse_params(&specs).unwrap_err();
            assert!(e.is_usage(), "{specs:?}: {e}");
            assert_eq!(e.exit_code(), 2, "{specs:?}");
            assert!(e.to_string().contains(want), "{specs:?}: {e}");
        }
    }
}
