//! Roofline analysis: memory-bound vs compute-bound classification.
//!
//! The paper's introduction rests on a roofline argument: single-batch
//! text generation is memory-bound (so weight-only quantization speeds it
//! up by shrinking weight traffic alone), while "real-world LLM serving
//! systems predominantly adopt multi-batch processing", which is
//! compute-bound — and there the conventional flow forfeits all compute
//! savings (§I challenges (2)–(3)). This module makes the argument
//! quantitative for any [`Workload`] on the modeled machine.

use pacq_error::{PacqError, PacqResult};
use pacq_fp16::WeightPrecision;
use pacq_simt::{SmConfig, Workload};

/// Which resource bounds a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bound {
    /// DRAM bandwidth limits throughput (weight-only quantization alone
    /// already helps here).
    MemoryBound,
    /// The tensor cores limit throughput (PacQ's territory: only more
    /// MACs per cycle help).
    ComputeBound,
}

impl core::fmt::Display for Bound {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Bound::MemoryBound => f.write_str("memory-bound"),
            Bound::ComputeBound => f.write_str("compute-bound"),
        }
    }
}

/// Roofline classification of one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundAnalysis {
    /// Arithmetic intensity in MACs per DRAM byte.
    pub intensity: f64,
    /// The machine's ridge point (MACs/cycle ÷ bytes/cycle).
    pub ridge: f64,
    /// The binding resource.
    pub bound: Bound,
    /// DRAM bytes moved (A + packed B + C).
    pub dram_bytes: u64,
    /// Total multiply-accumulates.
    pub macs: u64,
}

/// Modeled DRAM bandwidth in bytes per SM cycle. A Volta-class part
/// delivers ~900 GB/s across 80 SMs at ~1.4 GHz ≈ 8 B/cycle/SM; we keep
/// that per-SM figure at the 400 MHz synthesis clock.
pub const DRAM_BYTES_PER_CYCLE: f64 = 8.0;

/// Classifies a GEMM with explicit weight storage width (16 for
/// unquantized FP16 weights, 4/2 for packed INT weights).
///
/// # Examples
///
/// ```
/// use pacq::roofline::{analyze_with_weight_bits, Bound};
/// use pacq::{GemmShape, SmConfig};
///
/// let cfg = SmConfig::volta_like();
/// let decode = GemmShape::new(16, 4096, 4096); // batch-16 decode step
/// // FP16 weights: the decode GEMM is memory-bound — shrinking weight
/// // traffic (weight-only quantization) speeds it up by itself.
/// assert_eq!(analyze_with_weight_bits(decode, 16, &cfg).bound, Bound::MemoryBound);
/// // INT4 weights: the SAME GEMM becomes compute-bound — further gains
/// // require more MACs per cycle, i.e. PacQ (§I challenge (3)).
/// assert_eq!(analyze_with_weight_bits(decode, 4, &cfg).bound, Bound::ComputeBound);
/// ```
pub fn analyze_with_weight_bits(
    shape: pacq_simt::GemmShape,
    weight_bits: u32,
    config: &SmConfig,
) -> BoundAnalysis {
    let (m, n, k) = (shape.m as u64, shape.n as u64, shape.k as u64);
    let wbits = weight_bits as u64;

    // DRAM traffic: FP16 activations + weights at their storage width +
    // FP16 outputs (each streamed once, as in the dataflow engines).
    let dram_bits = m * k * 16 + n * k * wbits + m * n * 16;
    let dram_bytes = dram_bits / 8;
    let macs = shape.macs();

    let intensity = macs as f64 / dram_bytes.max(1) as f64;
    let ridge = config.baseline_macs_per_cycle() / DRAM_BYTES_PER_CYCLE;
    let bound = if intensity < ridge {
        Bound::MemoryBound
    } else {
        Bound::ComputeBound
    };

    BoundAnalysis {
        intensity,
        ridge,
        bound,
        dram_bytes,
        macs,
    }
}

/// Classifies a packed-weight workload (see [`analyze_with_weight_bits`]).
pub fn analyze(workload: Workload, config: &SmConfig) -> BoundAnalysis {
    analyze_with_weight_bits(workload.shape, workload.precision.bits(), config)
}

/// Largest batch probed by [`crossover_batch`] before concluding a layer
/// never goes compute-bound.
const CROSSOVER_CAP: usize = 1 << 20;

/// The batch size at which a square `n×k` layer crosses from memory- to
/// compute-bound for the given weight precision (the paper's
/// single-batch vs multi-batch distinction, as a number).
///
/// # Errors
///
/// Returns [`PacqError::EmptySearchSpace`] when no batch up to 2²⁰ rows
/// is compute-bound. This is not a corner case: arithmetic intensity is
/// increasing in `m` but *saturates* at `n·k / 2(n+k)` MACs/byte as the
/// activation and output traffic come to dominate, so a small layer
/// whose saturation intensity sits below the machine's ridge point stays
/// memory-bound at **every** batch size. (The previous implementation
/// silently returned the `1 << 20` scan sentinel here, which callers
/// then treated as a real batch size.)
pub fn crossover_batch(
    n: usize,
    k: usize,
    precision: WeightPrecision,
    config: &SmConfig,
) -> PacqResult<usize> {
    crossover_batch_with_weight_bits(n, k, precision.bits(), config)
}

/// [`crossover_batch`] with an explicit weight storage width (16 for
/// unquantized FP16 weights — see [`analyze_with_weight_bits`]).
///
/// # Errors
///
/// Returns [`PacqError::EmptySearchSpace`] when no batch up to 2²⁰ rows
/// is compute-bound (the layer's intensity saturates below the ridge).
pub fn crossover_batch_with_weight_bits(
    n: usize,
    k: usize,
    weight_bits: u32,
    config: &SmConfig,
) -> PacqResult<usize> {
    let compute_bound = |m: usize| {
        let shape = pacq_simt::GemmShape::new(m, n, k);
        analyze_with_weight_bits(shape, weight_bits, config).bound == Bound::ComputeBound
    };
    // The bound predicate is monotone in m (intensity m·nk / (2m(n+k) +
    // nk·wbits/8) is increasing), so gallop to a compute-bound upper
    // bracket in O(log m*) probes, then binary-search the exact
    // crossover on the 16-row warp-tile granule — no off-by-16, no
    // linear scan.
    if compute_bound(16) {
        return Ok(16);
    }
    let mut lo = 16usize; // invariant: memory-bound
    let mut hi = 32usize;
    while !compute_bound(hi) {
        if hi >= CROSSOVER_CAP {
            return Err(PacqError::EmptySearchSpace {
                context: "roofline::crossover_batch (layer saturates memory-bound)",
            });
        }
        lo = hi;
        hi = (hi * 2).min(CROSSOVER_CAP);
    }
    // lo is memory-bound, hi compute-bound; both multiples of 16.
    while hi - lo > 16 {
        let mid = lo + (hi - lo) / 32 * 16;
        if compute_bound(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacq_simt::GemmShape;

    fn cfg() -> SmConfig {
        SmConfig::volta_like()
    }

    #[test]
    fn quantization_flips_decode_from_memory_to_compute_bound() {
        // The paper's §I narrative, quantified: weight-only quantization
        // turns the memory-bound decode GEMM compute-bound, at which
        // point only PacQ-style compute savings help further.
        let decode = GemmShape::new(16, 4096, 4096);
        assert_eq!(
            analyze_with_weight_bits(decode, 16, &cfg()).bound,
            Bound::MemoryBound
        );
        assert_eq!(
            analyze_with_weight_bits(decode, 4, &cfg()).bound,
            Bound::ComputeBound
        );
        // A huge prefill is compute-bound regardless.
        let prefill = GemmShape::new(4096, 4096, 4096);
        assert_eq!(
            analyze_with_weight_bits(prefill, 16, &cfg()).bound,
            Bound::ComputeBound
        );
    }

    #[test]
    fn packing_raises_intensity() {
        // Packed INT4 weights move 4× fewer bits than FP16 weights, so
        // intensity rises — the Figure 1 memory benefit, quantified.
        let shape = GemmShape::new(16, 4096, 4096);
        let int4 = analyze(Workload::new(shape, WeightPrecision::Int4), &cfg());
        let int2 = analyze(Workload::new(shape, WeightPrecision::Int2), &cfg());
        assert!(int2.intensity > int4.intensity);
        // With m ≪ n,k the B traffic dominates: intensity ≈ m·16/wbits.
        let expected = 16.0 * 16.0 / 4.0 / 2.0; // m·16 bits / wbits / 8
        assert!(
            (int4.intensity - expected).abs() / expected < 0.1,
            "intensity {} vs expected {expected}",
            int4.intensity
        );
    }

    #[test]
    fn crossover_shrinks_with_weight_precision() {
        // Lower-precision weights need a SMALLER batch to become
        // compute-bound (less memory traffic to amortize) — which is why
        // multi-batch serving of quantized models is compute-bound, the
        // paper's motivating regime. At INT4/INT2 even batch 16 is
        // already past the ridge.
        let c4 = crossover_batch(4096, 4096, WeightPrecision::Int4, &cfg()).unwrap();
        let c2 = crossover_batch(4096, 4096, WeightPrecision::Int2, &cfg()).unwrap();
        assert!(c2 <= c4, "INT2 crossover {c2} should be <= INT4 {c4}");
        assert_eq!(c4, 16);
    }

    #[test]
    fn crossover_boundary_is_exact() {
        // FP16 weights on the Llama2-7B attention shape: solving
        // intensity(m) = ridge gives m* = 32.5, so the crossover on the
        // 16-row granule is exactly 48 — m = 32 must still classify
        // memory-bound and m = 48 compute-bound. Pins the galloping +
        // binary search against any off-by-16.
        let c = crossover_batch_with_weight_bits(4096, 4096, 16, &cfg()).unwrap();
        assert_eq!(c, 48);
        assert_eq!(
            analyze_with_weight_bits(GemmShape::new(32, 4096, 4096), 16, &cfg()).bound,
            Bound::MemoryBound
        );
        assert_eq!(
            analyze_with_weight_bits(GemmShape::new(48, 4096, 4096), 16, &cfg()).bound,
            Bound::ComputeBound
        );
    }

    #[test]
    fn crossover_agrees_with_reference_linear_scan() {
        // The galloping + binary search must land exactly where the
        // straightforward 16-step scan does, wherever a crossover exists.
        let linear = |n: usize, k: usize, bits: u32| -> Option<usize> {
            (1..=1024).map(|i| i * 16).find(|&m| {
                analyze_with_weight_bits(GemmShape::new(m, n, k), bits, &cfg()).bound
                    == Bound::ComputeBound
            })
        };
        for (n, k, bits) in [
            (4096, 4096, 16),
            (4096, 4096, 4),
            (4096, 4096, 2),
            (11008, 4096, 16),
            (4096, 11008, 16),
            (1024, 1024, 16),
            (500, 700, 16),
        ] {
            let expected = linear(n, k, bits).expect("reference scan finds a crossover");
            let got = crossover_batch_with_weight_bits(n, k, bits, &cfg()).unwrap();
            assert_eq!(got, expected, "n={n} k={k} bits={bits}");
        }
    }

    #[test]
    fn saturating_layer_is_a_typed_error_not_a_sentinel() {
        // n = k = 64 saturates at intensity n·k/2(n+k) = 16 = ridge,
        // approached strictly from below: NO batch is compute-bound. The
        // old linear scan silently returned 1 << 20 here.
        for (n, k) in [(64, 64), (16, 16), (64, 32)] {
            let err = crossover_batch_with_weight_bits(n, k, 16, &cfg()).unwrap_err();
            assert!(
                matches!(err, PacqError::EmptySearchSpace { .. }),
                "n={n} k={k}: {err}"
            );
            assert_eq!(err.exit_code(), 4);
        }
    }

    #[test]
    fn crossover_search_space_boundaries_are_exact() {
        // Pin the gallop + binary search at the four extreme answers of
        // its search space: the floor (16), the first galloped bracket
        // (32), the cap (2^20) and one granule below it (2^20 - 16).
        // The cap cases need configs whose ridge lands INSIDE the
        // sliver of intensity a 16-row step spans near m = 2^20, which
        // forces dp_units_per_tc = 1, dp_width = 4 (ridge granularity
        // 0.5 MACs/byte) and an n = k = 2^20 FP16 layer (intensity
        // window ≈ 2 MACs/byte per granule at the cap). These configs
        // fail `SmConfig::validate`, but the roofline is pure closed-form
        // arithmetic over the config fields and never simulates.

        // m* = 16: volta-like INT4 is compute-bound from the floor.
        assert_eq!(
            crossover_batch_with_weight_bits(4096, 4096, 4, &cfg()).unwrap(),
            16
        );

        // m* = 32: 7 tensor cores drop the ridge to 14 MACs/byte; FP16
        // at m = 16 sits just below (I = 13.47), m = 32 just above
        // (I = 24.38). First bracket of the gallop, no binary search.
        let seven_tc = SmConfig {
            tensor_cores: 7,
            ..cfg()
        };
        assert_eq!(
            crossover_batch_with_weight_bits(4096, 4096, 16, &seven_tc).unwrap(),
            32
        );

        // m* = 2^20 (the cap is a real answer, not only a failure
        // marker): ridge = 349525·4/8 = 174762.5 sits between
        // I(2^20 - 16) = 174761.78 and I(2^20) = 174762.67.
        let cap = 1usize << 20;
        let at_cap = SmConfig {
            tensor_cores: 349_525,
            dp_units_per_tc: 1,
            dp_width: 4,
            ..cfg()
        };
        assert_eq!(
            crossover_batch_with_weight_bits(cap, cap, 16, &at_cap).unwrap(),
            cap
        );
        assert_eq!(
            analyze_with_weight_bits(GemmShape::new(cap - 16, cap, cap), 16, &at_cap).bound,
            Bound::MemoryBound
        );

        // m* = 2^20 - 16 (one granule inside the cap): two fewer tensor
        // cores put the ridge one half-step lower, at 174761.5.
        let near_cap = SmConfig {
            tensor_cores: 349_523,
            dp_units_per_tc: 1,
            dp_width: 4,
            ..cfg()
        };
        assert_eq!(
            crossover_batch_with_weight_bits(cap, cap, 16, &near_cap).unwrap(),
            cap - 16
        );
        assert_eq!(
            analyze_with_weight_bits(GemmShape::new(cap - 32, cap, cap), 16, &near_cap).bound,
            Bound::MemoryBound
        );

        // One more tensor core and the ridge clears even I(2^20): the
        // whole search space is memory-bound, which must be the typed
        // EmptySearchSpace error, not the cap.
        let beyond_cap = SmConfig {
            tensor_cores: 349_526,
            dp_units_per_tc: 1,
            dp_width: 4,
            ..cfg()
        };
        assert!(matches!(
            crossover_batch_with_weight_bits(cap, cap, 16, &beyond_cap),
            Err(PacqError::EmptySearchSpace { .. })
        ));
    }

    #[test]
    fn analysis_fields_are_consistent() {
        let wl = Workload::new(GemmShape::new(64, 1024, 1024), WeightPrecision::Int4);
        let a = analyze(wl, &cfg());
        assert_eq!(a.macs, 64 * 1024 * 1024);
        assert!(a.dram_bytes > 0);
        assert!((a.intensity - a.macs as f64 / a.dram_bytes as f64).abs() < 1e-9);
        assert!(a.ridge > 0.0);
    }
}
