//! Roofline analysis: memory-bound vs compute-bound classification.
//!
//! The paper's introduction rests on a roofline argument: single-batch
//! text generation is memory-bound (so weight-only quantization speeds it
//! up by shrinking weight traffic alone), while "real-world LLM serving
//! systems predominantly adopt multi-batch processing", which is
//! compute-bound — and there the conventional flow forfeits all compute
//! savings (§I challenges (2)–(3)). This module makes the argument
//! quantitative for any [`Workload`] on the modeled machine.

use pacq_fp16::WeightPrecision;
use pacq_simt::{SmConfig, Workload};

/// Which resource bounds a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bound {
    /// DRAM bandwidth limits throughput (weight-only quantization alone
    /// already helps here).
    MemoryBound,
    /// The tensor cores limit throughput (PacQ's territory: only more
    /// MACs per cycle help).
    ComputeBound,
}

impl core::fmt::Display for Bound {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Bound::MemoryBound => f.write_str("memory-bound"),
            Bound::ComputeBound => f.write_str("compute-bound"),
        }
    }
}

/// Roofline classification of one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundAnalysis {
    /// Arithmetic intensity in MACs per DRAM byte.
    pub intensity: f64,
    /// The machine's ridge point (MACs/cycle ÷ bytes/cycle).
    pub ridge: f64,
    /// The binding resource.
    pub bound: Bound,
    /// DRAM bytes moved (A + packed B + C).
    pub dram_bytes: u64,
    /// Total multiply-accumulates.
    pub macs: u64,
}

/// Modeled DRAM bandwidth in bytes per SM cycle. A Volta-class part
/// delivers ~900 GB/s across 80 SMs at ~1.4 GHz ≈ 8 B/cycle/SM; we keep
/// that per-SM figure at the 400 MHz synthesis clock.
pub const DRAM_BYTES_PER_CYCLE: f64 = 8.0;

/// Classifies a GEMM with explicit weight storage width (16 for
/// unquantized FP16 weights, 4/2 for packed INT weights).
///
/// # Examples
///
/// ```
/// use pacq::roofline::{analyze_with_weight_bits, Bound};
/// use pacq::{GemmShape, SmConfig};
///
/// let cfg = SmConfig::volta_like();
/// let decode = GemmShape::new(16, 4096, 4096); // batch-16 decode step
/// // FP16 weights: the decode GEMM is memory-bound — shrinking weight
/// // traffic (weight-only quantization) speeds it up by itself.
/// assert_eq!(analyze_with_weight_bits(decode, 16, &cfg).bound, Bound::MemoryBound);
/// // INT4 weights: the SAME GEMM becomes compute-bound — further gains
/// // require more MACs per cycle, i.e. PacQ (§I challenge (3)).
/// assert_eq!(analyze_with_weight_bits(decode, 4, &cfg).bound, Bound::ComputeBound);
/// ```
pub fn analyze_with_weight_bits(
    shape: pacq_simt::GemmShape,
    weight_bits: u32,
    config: &SmConfig,
) -> BoundAnalysis {
    let (m, n, k) = (shape.m as u64, shape.n as u64, shape.k as u64);
    let wbits = weight_bits as u64;

    // DRAM traffic: FP16 activations + weights at their storage width +
    // FP16 outputs (each streamed once, as in the dataflow engines).
    let dram_bits = m * k * 16 + n * k * wbits + m * n * 16;
    let dram_bytes = dram_bits / 8;
    let macs = shape.macs();

    let intensity = macs as f64 / dram_bytes.max(1) as f64;
    let ridge = config.baseline_macs_per_cycle() / DRAM_BYTES_PER_CYCLE;
    let bound = if intensity < ridge {
        Bound::MemoryBound
    } else {
        Bound::ComputeBound
    };

    BoundAnalysis {
        intensity,
        ridge,
        bound,
        dram_bytes,
        macs,
    }
}

/// Classifies a packed-weight workload (see [`analyze_with_weight_bits`]).
pub fn analyze(workload: Workload, config: &SmConfig) -> BoundAnalysis {
    analyze_with_weight_bits(workload.shape, workload.precision.bits(), config)
}

/// The batch size at which a square `n×k` layer crosses from memory- to
/// compute-bound for the given weight precision (the paper's
/// single-batch vs multi-batch distinction, as a number).
pub fn crossover_batch(n: usize, k: usize, precision: WeightPrecision, config: &SmConfig) -> usize {
    let mut m = 16usize;
    while m < 1 << 20 {
        let wl = Workload::new(pacq_simt::GemmShape::new(m, n, k), precision);
        if analyze(wl, config).bound == Bound::ComputeBound {
            return m;
        }
        m += 16;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacq_simt::GemmShape;

    fn cfg() -> SmConfig {
        SmConfig::volta_like()
    }

    #[test]
    fn quantization_flips_decode_from_memory_to_compute_bound() {
        // The paper's §I narrative, quantified: weight-only quantization
        // turns the memory-bound decode GEMM compute-bound, at which
        // point only PacQ-style compute savings help further.
        let decode = GemmShape::new(16, 4096, 4096);
        assert_eq!(
            analyze_with_weight_bits(decode, 16, &cfg()).bound,
            Bound::MemoryBound
        );
        assert_eq!(
            analyze_with_weight_bits(decode, 4, &cfg()).bound,
            Bound::ComputeBound
        );
        // A huge prefill is compute-bound regardless.
        let prefill = GemmShape::new(4096, 4096, 4096);
        assert_eq!(
            analyze_with_weight_bits(prefill, 16, &cfg()).bound,
            Bound::ComputeBound
        );
    }

    #[test]
    fn packing_raises_intensity() {
        // Packed INT4 weights move 4× fewer bits than FP16 weights, so
        // intensity rises — the Figure 1 memory benefit, quantified.
        let shape = GemmShape::new(16, 4096, 4096);
        let int4 = analyze(Workload::new(shape, WeightPrecision::Int4), &cfg());
        let int2 = analyze(Workload::new(shape, WeightPrecision::Int2), &cfg());
        assert!(int2.intensity > int4.intensity);
        // With m ≪ n,k the B traffic dominates: intensity ≈ m·16/wbits.
        let expected = 16.0 * 16.0 / 4.0 / 2.0; // m·16 bits / wbits / 8
        assert!(
            (int4.intensity - expected).abs() / expected < 0.1,
            "intensity {} vs expected {expected}",
            int4.intensity
        );
    }

    #[test]
    fn crossover_shrinks_with_weight_precision() {
        // Lower-precision weights need a SMALLER batch to become
        // compute-bound (less memory traffic to amortize) — which is why
        // multi-batch serving of quantized models is compute-bound, the
        // paper's motivating regime. At INT4/INT2 even batch 16 is
        // already past the ridge.
        let c4 = crossover_batch(4096, 4096, WeightPrecision::Int4, &cfg());
        let c2 = crossover_batch(4096, 4096, WeightPrecision::Int2, &cfg());
        assert!(c2 <= c4, "INT2 crossover {c2} should be <= INT4 {c4}");
        assert_eq!(c4, 16);
    }

    #[test]
    fn analysis_fields_are_consistent() {
        let wl = Workload::new(GemmShape::new(64, 1024, 1024), WeightPrecision::Int4);
        let a = analyze(wl, &cfg());
        assert_eq!(a.macs, 64 * 1024 * 1024);
        assert!(a.dram_bytes > 0);
        assert!((a.intensity - a.macs as f64 / a.dram_bytes as f64).abs() < 1e-9);
        assert!(a.ridge > 0.0);
    }
}
