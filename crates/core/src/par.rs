//! The `--jobs` knob: one place that turns a CLI flag or the
//! `PACQ_JOBS` environment variable into the global worker count every
//! parallel sweep and execution path fans out to.
//!
//! All parallel decompositions in the workspace distribute independent
//! output rows, columns or sweep points and keep per-element arithmetic
//! order unchanged, so the job count only affects wall-clock time —
//! results are bit-identical at any setting (DESIGN.md §9).

use pacq_error::{PacqError, PacqResult};
use rayon::ThreadPoolBuilder;

/// Environment variable consulted when no explicit job count is given.
pub const JOBS_ENV: &str = "PACQ_JOBS";

/// Upper bound on a user-supplied worker count. Far above any host this
/// simulator runs on; it exists so a typo (`--jobs 40000`) fails loudly
/// instead of asking the thread-pool for forty thousand stacks.
pub const MAX_JOBS: usize = 512;

/// The one validator behind both spellings of the knob (`--jobs N` and
/// `PACQ_JOBS=N`): surrounding whitespace is tolerated, the digits must
/// be plain (no sign — `+4` is a typo, not a count), zero is rejected,
/// and the count is capped at [`MAX_JOBS`]. `source` names the spelling
/// in the error message.
fn validate_jobs(raw: &str, source: &str) -> PacqResult<usize> {
    let v = raw.trim();
    let plain_digits = !v.is_empty() && v.bytes().all(|b| b.is_ascii_digit());
    let n: usize = if plain_digits {
        v.parse()
            .map_err(|_| PacqError::usage(format!("invalid {source} value `{raw}`")))?
    } else {
        return Err(PacqError::usage(format!(
            "invalid {source} value `{raw}` (want a plain positive integer)"
        )));
    };
    if n == 0 {
        return Err(PacqError::usage(format!(
            "{source} must be at least 1 (omit it for the host default)"
        )));
    }
    if n > MAX_JOBS {
        return Err(PacqError::usage(format!(
            "{source} must be at most {MAX_JOBS}, got {n}"
        )));
    }
    Ok(n)
}

/// Installs the global worker count and returns the effective value.
///
/// Precedence: an explicit `jobs` argument (from `--jobs N`), then the
/// [`JOBS_ENV`] environment variable, then the host parallelism.
/// `Some(0)` restores the host default (a programmatic escape hatch; the
/// CLI layer rejects a *user-supplied* zero via [`take_jobs_flag`] /
/// [`validated_env_jobs`] before it ever reaches here).
pub fn configure_jobs(jobs: Option<usize>) -> usize {
    let n = jobs
        .or_else(|| validated_env_jobs().ok().flatten())
        .unwrap_or(0);
    let _ = ThreadPoolBuilder::new().num_threads(n).build_global();
    rayon::current_num_threads()
}

/// Reads and validates the [`JOBS_ENV`] environment variable with the
/// same rules as `--jobs` (one validator, two spellings).
///
/// # Errors
///
/// Returns [`PacqError::Usage`] when the variable is set but is not a
/// plain positive integer at most [`MAX_JOBS`] (zero included — a zero
/// worker count is meaningless as user input; omit the variable for the
/// host default).
pub fn validated_env_jobs() -> PacqResult<Option<usize>> {
    let Ok(raw) = std::env::var(JOBS_ENV) else {
        return Ok(None);
    };
    validate_jobs(&raw, JOBS_ENV).map(Some)
}

/// Splits `--jobs N` / `--jobs=N` out of an argument list, returning the
/// remaining arguments and the parsed count. Shared by the CLI and the
/// figure/table binaries so every entry point spells the knob the same
/// way.
///
/// # Errors
///
/// Returns [`PacqError::Usage`] when the value is missing, not a number,
/// or zero.
pub fn take_jobs_flag(args: &[String]) -> PacqResult<(Vec<String>, Option<usize>)> {
    let mut rest = Vec::with_capacity(args.len());
    let mut jobs = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--jobs" {
            let v = it
                .next()
                .ok_or_else(|| PacqError::usage("missing value for --jobs"))?;
            jobs = Some(parse_jobs(v)?);
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            jobs = Some(parse_jobs(v)?);
        } else {
            rest.push(arg.clone());
        }
    }
    Ok((rest, jobs))
}

fn parse_jobs(v: &str) -> PacqResult<usize> {
    validate_jobs(v, "--jobs")
}

/// Serializes tests that mutate the process-wide worker count.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn explicit_jobs_win() {
        let _guard = test_lock();
        assert_eq!(configure_jobs(Some(3)), 3);
        assert_eq!(rayon::current_num_threads(), 3);
        // 0 restores the host default.
        configure_jobs(Some(0));
        assert!(rayon::current_num_threads() >= 1);
    }

    #[test]
    fn jobs_flag_is_extracted() {
        let (rest, jobs) = take_jobs_flag(&argv("--shape m16n16k16 --jobs 4")).unwrap();
        assert_eq!(jobs, Some(4));
        assert_eq!(rest, argv("--shape m16n16k16"));
        let (rest, jobs) = take_jobs_flag(&argv("--jobs=2 sweep")).unwrap();
        assert_eq!(jobs, Some(2));
        assert_eq!(rest, argv("sweep"));
        let (_, jobs) = take_jobs_flag(&argv("compare")).unwrap();
        assert_eq!(jobs, None);
        assert!(take_jobs_flag(&argv("--jobs")).is_err());
        assert!(take_jobs_flag(&argv("--jobs many")).is_err());
    }

    #[test]
    fn zero_jobs_is_a_usage_error() {
        for argv in [argv("--jobs 0"), argv("--jobs=0")] {
            let err = take_jobs_flag(&argv).unwrap_err();
            assert!(err.is_usage(), "{err}");
            assert!(err.to_string().contains("at least 1"), "{err}");
        }
    }

    #[test]
    fn flag_and_env_agree_on_every_boundary_input() {
        // One validator behind both spellings: any input the flag
        // accepts, the env var accepts with the same value, and any
        // input the flag rejects, the env var rejects.
        let cases: &[(&str, Option<usize>)] = &[
            ("4", Some(4)),
            (" 4 ", Some(4)),   // surrounding whitespace tolerated
            ("\t8\n", Some(8)), // ...in any form
            ("512", Some(MAX_JOBS)),
            ("+4", None), // a sign is a typo, not a count
            ("-4", None),
            ("4.0", None),
            ("0", None),
            ("513", None), // beyond the worker cap
            ("99999999999999999999", None),
            ("", None),
            ("  ", None),
        ];
        for &(input, expect) in cases {
            let flag =
                take_jobs_flag(&["--jobs".to_string(), input.to_string()]).map(|(_, jobs)| jobs);
            let env = validate_jobs(input, JOBS_ENV).map(Some);
            match expect {
                Some(n) => {
                    assert_eq!(flag.as_ref().ok(), Some(&Some(n)), "--jobs `{input}`");
                    assert_eq!(env.as_ref().ok(), Some(&Some(n)), "{JOBS_ENV}=`{input}`");
                }
                None => {
                    assert!(flag.is_err(), "--jobs `{input}` must be rejected");
                    let err = env.unwrap_err();
                    assert!(err.is_usage(), "{err}");
                    assert!(err.to_string().contains(JOBS_ENV), "{err}");
                }
            }
        }
    }

    #[test]
    fn oversized_jobs_name_the_cap() {
        let err = take_jobs_flag(&argv("--jobs 1000")).unwrap_err();
        assert!(err.to_string().contains("512"), "{err}");
    }
}
