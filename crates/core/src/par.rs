//! The `--jobs` knob: one place that turns a CLI flag or the
//! `PACQ_JOBS` environment variable into the global worker count every
//! parallel sweep and execution path fans out to.
//!
//! All parallel decompositions in the workspace distribute independent
//! output rows, columns or sweep points and keep per-element arithmetic
//! order unchanged, so the job count only affects wall-clock time —
//! results are bit-identical at any setting (DESIGN.md §9).

use rayon::ThreadPoolBuilder;

/// Environment variable consulted when no explicit job count is given.
pub const JOBS_ENV: &str = "PACQ_JOBS";

/// Installs the global worker count and returns the effective value.
///
/// Precedence: an explicit `jobs` argument (from `--jobs N`), then the
/// [`JOBS_ENV`] environment variable, then the host parallelism.
/// `Some(0)` restores the host default.
pub fn configure_jobs(jobs: Option<usize>) -> usize {
    let n = jobs.or_else(jobs_from_env).unwrap_or(0);
    let _ = ThreadPoolBuilder::new().num_threads(n).build_global();
    rayon::current_num_threads()
}

fn jobs_from_env() -> Option<usize> {
    std::env::var(JOBS_ENV).ok()?.trim().parse().ok()
}

/// Splits `--jobs N` / `--jobs=N` out of an argument list, returning the
/// remaining arguments and the parsed count. Shared by the CLI and the
/// figure/table binaries so every entry point spells the knob the same
/// way.
///
/// # Errors
///
/// Returns a message when the value is missing or not a number.
pub fn take_jobs_flag(args: &[String]) -> Result<(Vec<String>, Option<usize>), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut jobs = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--jobs" {
            let v = it.next().ok_or("missing value for --jobs")?;
            jobs = Some(
                v.parse()
                    .map_err(|_| format!("invalid --jobs value `{v}`"))?,
            );
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            jobs = Some(
                v.parse()
                    .map_err(|_| format!("invalid --jobs value `{v}`"))?,
            );
        } else {
            rest.push(arg.clone());
        }
    }
    Ok((rest, jobs))
}

/// Serializes tests that mutate the process-wide worker count.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn explicit_jobs_win() {
        let _guard = test_lock();
        assert_eq!(configure_jobs(Some(3)), 3);
        assert_eq!(rayon::current_num_threads(), 3);
        // 0 restores the host default.
        configure_jobs(Some(0));
        assert!(rayon::current_num_threads() >= 1);
    }

    #[test]
    fn jobs_flag_is_extracted() {
        let (rest, jobs) = take_jobs_flag(&argv("--shape m16n16k16 --jobs 4")).unwrap();
        assert_eq!(jobs, Some(4));
        assert_eq!(rest, argv("--shape m16n16k16"));
        let (rest, jobs) = take_jobs_flag(&argv("--jobs=2 sweep")).unwrap();
        assert_eq!(jobs, Some(2));
        assert_eq!(rest, argv("sweep"));
        let (_, jobs) = take_jobs_flag(&argv("compare")).unwrap();
        assert_eq!(jobs, None);
        assert!(take_jobs_flag(&argv("--jobs")).is_err());
        assert!(take_jobs_flag(&argv("--jobs many")).is_err());
    }
}
