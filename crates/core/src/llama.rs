//! Llama2-7B layer shapes — the Figure 10 workload catalog.
//!
//! The paper evaluates EDP on "selected LLM inference workloads"; the
//! named example is `m16n4096k4096`, "a FFN layer in Llama2-7B with 16
//! batches". This module enumerates the GEMM shapes of one Llama2-7B
//! decoder layer (hidden 4096, intermediate 11008) at a configurable
//! batch size.

use pacq_simt::GemmShape;

/// One named GEMM layer of a transformer decoder block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlamaLayer {
    /// Human-readable layer name.
    pub name: &'static str,
    /// The GEMM shape at the requested batch.
    pub shape: GemmShape,
}

/// Llama2-7B hidden size.
pub const LLAMA2_7B_HIDDEN: usize = 4096;
/// Llama2-7B FFN intermediate size.
pub const LLAMA2_7B_INTERMEDIATE: usize = 11008;

/// The GEMM layers of one Llama2-7B decoder block at batch size `m`
/// (tokens in flight).
///
/// # Panics
///
/// Panics if `m` is not a multiple of 16 (warp-tile alignment).
///
/// # Examples
///
/// ```
/// use pacq::llama::llama2_7b_layers;
///
/// let layers = llama2_7b_layers(16);
/// assert!(layers.iter().any(|l| l.shape.to_string() == "m16n4096k4096"));
/// ```
pub fn llama2_7b_layers(m: usize) -> Vec<LlamaLayer> {
    assert!(
        m.is_multiple_of(16),
        "batch must be a multiple of 16, got {m}"
    );
    let h = LLAMA2_7B_HIDDEN;
    let i = LLAMA2_7B_INTERMEDIATE;
    vec![
        LlamaLayer {
            name: "attn.q_proj",
            shape: GemmShape::new(m, h, h),
        },
        LlamaLayer {
            name: "attn.k_proj",
            shape: GemmShape::new(m, h, h),
        },
        LlamaLayer {
            name: "attn.v_proj",
            shape: GemmShape::new(m, h, h),
        },
        LlamaLayer {
            name: "attn.o_proj",
            shape: GemmShape::new(m, h, h),
        },
        LlamaLayer {
            name: "mlp.gate_proj",
            shape: GemmShape::new(m, i, h),
        },
        LlamaLayer {
            name: "mlp.up_proj",
            shape: GemmShape::new(m, i, h),
        },
        LlamaLayer {
            name: "mlp.down_proj",
            shape: GemmShape::new(m, h, i),
        },
    ]
}

/// The Figure 10 headline workload: `m16n4096k4096`.
pub fn fig10_headline() -> GemmShape {
    GemmShape::new(16, LLAMA2_7B_HIDDEN, LLAMA2_7B_HIDDEN)
}

/// A transformer model whose decoder-block GEMMs the simulator can sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// Llama2-7B: hidden 4096, intermediate 11008, MHA.
    Llama2_7b,
    /// Llama2-13B: hidden 5120, intermediate 13824, MHA.
    Llama2_13b,
    /// Llama2-70B: hidden 8192, intermediate 28672, GQA (8 KV heads).
    Llama2_70b,
    /// OPT-6.7B: hidden 4096, FFN 16384, MHA.
    Opt6_7b,
}

impl Model {
    /// Every catalogued model.
    pub const ALL: [Model; 4] = [
        Model::Llama2_7b,
        Model::Llama2_13b,
        Model::Llama2_70b,
        Model::Opt6_7b,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Model::Llama2_7b => "Llama2-7B",
            Model::Llama2_13b => "Llama2-13B",
            Model::Llama2_70b => "Llama2-70B",
            Model::Opt6_7b => "OPT-6.7B",
        }
    }

    /// Number of decoder blocks.
    pub fn blocks(&self) -> usize {
        match self {
            Model::Llama2_7b => 32,
            Model::Llama2_13b => 40,
            Model::Llama2_70b => 80,
            Model::Opt6_7b => 32,
        }
    }

    /// The GEMM layers of one decoder block at batch `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not a multiple of 16.
    pub fn layers(&self, m: usize) -> Vec<LlamaLayer> {
        assert!(
            m.is_multiple_of(16),
            "batch must be a multiple of 16, got {m}"
        );
        match self {
            Model::Llama2_7b => llama2_7b_layers(m),
            Model::Llama2_13b => gqa_layers(m, 5120, 13824, 5120),
            // 70B uses grouped-query attention: K/V project to 1024.
            Model::Llama2_70b => gqa_layers(m, 8192, 28672, 1024),
            Model::Opt6_7b => {
                let h = 4096;
                let f = 16384;
                vec![
                    LlamaLayer {
                        name: "attn.q_proj",
                        shape: GemmShape::new(m, h, h),
                    },
                    LlamaLayer {
                        name: "attn.k_proj",
                        shape: GemmShape::new(m, h, h),
                    },
                    LlamaLayer {
                        name: "attn.v_proj",
                        shape: GemmShape::new(m, h, h),
                    },
                    LlamaLayer {
                        name: "attn.out_proj",
                        shape: GemmShape::new(m, h, h),
                    },
                    LlamaLayer {
                        name: "fc1",
                        shape: GemmShape::new(m, f, h),
                    },
                    LlamaLayer {
                        name: "fc2",
                        shape: GemmShape::new(m, h, f),
                    },
                ]
            }
        }
    }

    /// Total weight count of all catalogued GEMMs (block layers × blocks).
    pub fn gemm_weights(&self) -> u64 {
        self.layers(16)
            .iter()
            .map(|l| (l.shape.n * l.shape.k) as u64)
            .sum::<u64>()
            * self.blocks() as u64
    }
}

/// Analyzes one decoder block of `model` on every architecture in
/// `arches`, fanning the `layers × arches` sweep points out across the
/// worker pool. Returns `(layer, per-arch reports)` pairs in catalog
/// order.
///
/// # Errors
///
/// Propagates the first sweep point's simulator error.
///
/// # Panics
///
/// Panics if `m` is not a multiple of 16.
pub fn analyze_block(
    runner: &crate::runner::GemmRunner,
    model: Model,
    m: usize,
    precision: pacq_fp16::WeightPrecision,
    arches: &[pacq_simt::Architecture],
) -> pacq_error::PacqResult<Vec<(LlamaLayer, Vec<crate::report::GemmReport>)>> {
    let layers = model.layers(m);
    let points: Vec<_> = layers
        .iter()
        .flat_map(|l| {
            arches
                .iter()
                .map(|&a| (a, pacq_simt::Workload::new(l.shape, precision)))
        })
        .collect();
    let reports = runner.analyze_sweep(&points)?;
    Ok(layers
        .into_iter()
        .zip(reports.chunks(arches.len().max(1)))
        .map(|(l, per_arch)| (l, per_arch.to_vec()))
        .collect())
}

fn gqa_layers(m: usize, h: usize, inter: usize, kv: usize) -> Vec<LlamaLayer> {
    vec![
        LlamaLayer {
            name: "attn.q_proj",
            shape: GemmShape::new(m, h, h),
        },
        LlamaLayer {
            name: "attn.k_proj",
            shape: GemmShape::new(m, kv, h),
        },
        LlamaLayer {
            name: "attn.v_proj",
            shape: GemmShape::new(m, kv, h),
        },
        LlamaLayer {
            name: "attn.o_proj",
            shape: GemmShape::new(m, h, h),
        },
        LlamaLayer {
            name: "mlp.gate_proj",
            shape: GemmShape::new(m, inter, h),
        },
        LlamaLayer {
            name: "mlp.up_proj",
            shape: GemmShape::new(m, inter, h),
        },
        LlamaLayer {
            name: "mlp.down_proj",
            shape: GemmShape::new(m, h, inter),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_catalog_is_complete_and_aligned() {
        let layers = llama2_7b_layers(16);
        assert_eq!(layers.len(), 7);
        for l in &layers {
            assert!(l.shape.is_tile_aligned(), "{} misaligned", l.name);
        }
    }

    #[test]
    fn ffn_down_uses_intermediate_k() {
        let layers = llama2_7b_layers(32);
        let down = layers
            .iter()
            .find(|l| l.name == "mlp.down_proj")
            .expect("exists");
        assert_eq!(down.shape.k, 11008);
        assert_eq!(down.shape.n, 4096);
        assert_eq!(down.shape.m, 32);
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn odd_batch_rejected() {
        llama2_7b_layers(10);
    }

    #[test]
    fn model_catalog_shapes_are_aligned() {
        for model in Model::ALL {
            for l in model.layers(16) {
                assert!(l.shape.is_tile_aligned(), "{} {}", model.name(), l.name);
            }
            assert!(model.blocks() >= 32);
        }
    }

    #[test]
    fn weight_counts_scale_with_model_size() {
        // The Figure 1 motivation quotes Llama2-70B at 131.6 GB FP16;
        // our GEMM-weight catalogue should land near that (attention +
        // FFN dominate the parameter count).
        let w70 = Model::Llama2_70b.gemm_weights();
        let gb_fp16 = w70 as f64 * 2.0 / 1e9;
        assert!((100.0..140.0).contains(&gb_fp16), "70B fp16 GB = {gb_fp16}");
        assert!(Model::Llama2_70b.gemm_weights() > Model::Llama2_13b.gemm_weights());
        assert!(Model::Llama2_13b.gemm_weights() > Model::Llama2_7b.gemm_weights());
    }

    #[test]
    fn analyze_block_pairs_layers_with_reports() {
        use pacq_simt::Architecture;
        let runner = crate::runner::GemmRunner::new();
        let arches = [Architecture::StandardDequant, Architecture::Pacq];
        let rows = analyze_block(
            &runner,
            Model::Llama2_7b,
            16,
            pacq_fp16::WeightPrecision::Int4,
            &arches,
        )
        .unwrap();
        assert_eq!(rows.len(), 7);
        for (layer, reports) in &rows {
            assert_eq!(reports.len(), 2);
            for (r, arch) in reports.iter().zip(arches) {
                assert_eq!(r.arch, arch);
                assert_eq!(r.workload.shape, layer.shape);
            }
        }
    }

    #[test]
    fn gqa_shrinks_kv_projections() {
        let layers = Model::Llama2_70b.layers(16);
        let k = layers
            .iter()
            .find(|l| l.name == "attn.k_proj")
            .expect("exists");
        assert_eq!(k.shape.n, 1024);
    }
}
