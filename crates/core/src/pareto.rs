//! Pareto-front extraction for design-space searches.
//!
//! A dse run answers "which design point is best" two ways: the scalar
//! `best EDP` headline, and — since cycles and energy trade off — the
//! full non-dominated set. A point is **dominated** when some other
//! point is no worse on both axes and strictly better on at least one;
//! the Pareto front is everything that survives.
//!
//! Determinism contract: the front depends only on the point *set*
//! (never on input order, `--jobs` or `--shard` interleaving), ties on
//! both axes keep every tied point, and the returned order is
//! `(cycles asc, energy asc, id asc)` — so two invocations that cover
//! the same points render byte-identical tables.

/// One candidate design point: a stable id plus its two objectives.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// The point's stable identifier (a dse job id).
    pub id: String,
    /// Latency objective: total SM cycles.
    pub cycles: u64,
    /// Energy objective, in picojoules.
    pub energy_pj: f64,
}

impl ParetoPoint {
    /// `true` when `other` dominates `self`: no worse on both axes and
    /// strictly better on at least one. Equal points do not dominate
    /// each other (both stay on the front).
    pub fn dominated_by(&self, other: &ParetoPoint) -> bool {
        other.cycles <= self.cycles
            && other.energy_pj <= self.energy_pj
            && (other.cycles < self.cycles || other.energy_pj < self.energy_pj)
    }
}

/// The canonical ordering of front rows: cycles, then energy (total
/// order over the f64 bits), then id — a pure function of the point, so
/// output order never leaks enumeration or thread order.
fn canonical_cmp(a: &ParetoPoint, b: &ParetoPoint) -> std::cmp::Ordering {
    a.cycles
        .cmp(&b.cycles)
        .then_with(|| a.energy_pj.total_cmp(&b.energy_pj))
        .then_with(|| a.id.cmp(&b.id))
}

/// Extracts the non-dominated `(cycles, energy)` set from `points`,
/// in canonical `(cycles, energy, id)` order.
///
/// Single left-to-right sweep over the canonically sorted points: a
/// group of equal-cycles points is led by its minimal-energy members,
/// and that group survives exactly when its minimum undercuts the best
/// energy seen at strictly fewer cycles (an earlier point with `cycles
/// <` and `energy <=` dominates the whole group otherwise). Duplicated
/// `(cycles, energy)` pairs all survive together.
pub fn pareto_front(points: &[ParetoPoint]) -> Vec<ParetoPoint> {
    let mut sorted = points.to_vec();
    sorted.sort_by(canonical_cmp);
    let mut front = Vec::new();
    let mut best_energy = f64::INFINITY;
    let mut i = 0;
    while i < sorted.len() {
        let cycles = sorted[i].cycles;
        let mut j = i;
        while j < sorted.len() && sorted[j].cycles == cycles {
            j += 1;
        }
        // Within the group, energy ascends; the leaders share index i's.
        let group_min = sorted[i].energy_pj;
        if group_min < best_energy {
            front.extend(
                sorted[i..j]
                    .iter()
                    .take_while(|p| p.energy_pj == group_min)
                    .cloned(),
            );
            best_energy = group_min;
        }
        i = j;
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(id: &str, cycles: u64, energy_pj: f64) -> ParetoPoint {
        ParetoPoint {
            id: id.to_string(),
            cycles,
            energy_pj,
        }
    }

    /// The O(n²) definition, used as the oracle: keep exactly the
    /// points no other point dominates.
    fn oracle(points: &[ParetoPoint]) -> Vec<ParetoPoint> {
        let mut front: Vec<ParetoPoint> = points
            .iter()
            .filter(|a| !points.iter().any(|b| a.dominated_by(b)))
            .cloned()
            .collect();
        front.sort_by(canonical_cmp);
        front
    }

    #[test]
    fn front_keeps_tradeoffs_and_drops_dominated_points() {
        let points = [
            p("fast-hungry", 100, 900.0),
            p("slow-frugal", 900, 100.0),
            p("balanced", 400, 400.0),
            p("dominated", 500, 500.0),    // beaten by `balanced` on both
            p("weakly-worse", 400, 450.0), // same cycles, more energy
        ];
        let front = pareto_front(&points);
        let ids: Vec<&str> = front.iter().map(|q| q.id.as_str()).collect();
        assert_eq!(ids, ["fast-hungry", "balanced", "slow-frugal"]);
    }

    #[test]
    fn equal_points_both_survive_in_id_order() {
        // Neither strictly dominates the other: a tie is two equally
        // good designs, and the table must name both, id-ordered.
        let points = [p("zeta", 100, 100.0), p("alpha", 100, 100.0)];
        let front = pareto_front(&points);
        let ids: Vec<&str> = front.iter().map(|q| q.id.as_str()).collect();
        assert_eq!(ids, ["alpha", "zeta"]);
    }

    #[test]
    fn front_is_input_order_invariant() {
        // The shard/jobs determinism contract: any permutation of the
        // same point set yields the identical front, byte for byte.
        let mut points = vec![
            p("a", 10, 50.0),
            p("b", 20, 40.0),
            p("c", 30, 40.0), // dominated by b
            p("d", 20, 45.0), // dominated by b (same cycles, more energy)
            p("e", 40, 10.0),
        ];
        let reference = pareto_front(&points);
        for _ in 0..points.len() {
            points.rotate_left(1);
            assert_eq!(pareto_front(&points), reference);
        }
        points.reverse();
        assert_eq!(pareto_front(&points), reference);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(pareto_front(&[]).is_empty());
        let single = [p("only", 7, 7.0)];
        assert_eq!(pareto_front(&single), single);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The sweep implementation equals the O(n²) oracle on random
        /// point sets dense with ties (small value domains force
        /// equal-cycles groups and duplicated pairs).
        #[test]
        fn sweep_matches_quadratic_oracle(
            raw in prop::collection::vec((0u64..8, 0u32..8), 0..40)
        ) {
            let points: Vec<ParetoPoint> = raw
                .iter()
                .enumerate()
                .map(|(i, &(c, e))| p(&format!("pt{i:02}"), c, f64::from(e)))
                .collect();
            prop_assert_eq!(pareto_front(&points), oracle(&points));
        }

        /// Every front member comes from the input and no front member
        /// dominates another.
        #[test]
        fn front_is_a_nondominated_subset(
            raw in prop::collection::vec((0u64..1000, 0u32..1000), 0..30)
        ) {
            let points: Vec<ParetoPoint> = raw
                .iter()
                .enumerate()
                .map(|(i, &(c, e))| p(&format!("pt{i:02}"), c, f64::from(e)))
                .collect();
            let front = pareto_front(&points);
            for a in &front {
                prop_assert!(points.contains(a));
                for b in &front {
                    prop_assert!(!a.dominated_by(b), "{a:?} dominated by {b:?}");
                }
            }
        }
    }
}
