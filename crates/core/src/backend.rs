//! The `--backend` knob: one place that turns a CLI flag or the
//! `PACQ_BACKEND` environment variable into a [`Backend`] selection for
//! every functional execution path.
//!
//! Both backends compute the same bits — the batched SoA kernels are
//! bit-identical to the scalar datapaths (DESIGN.md §13) — so the
//! selection only affects wall-clock time, exactly like `--jobs`.

use pacq_error::{PacqError, PacqResult};
use pacq_fp16::Backend;

/// Environment variable consulted when no explicit backend is given.
pub const BACKEND_ENV: &str = "PACQ_BACKEND";

/// The one validator behind both spellings of the knob (`--backend B`
/// and `PACQ_BACKEND=B`): surrounding whitespace is tolerated, the
/// token must match a backend name exactly (case-sensitive — `Scalar`
/// is a typo, not a backend). `source` names the spelling in the error
/// message.
fn validate_backend(raw: &str, source: &str) -> PacqResult<Backend> {
    let v = raw.trim();
    Backend::parse(v).ok_or_else(|| {
        PacqError::usage(format!(
            "invalid {source} value `{raw}` (want `scalar` or `batched`)"
        ))
    })
}

/// Reads and validates the [`BACKEND_ENV`] environment variable with
/// the same rules as `--backend` (one validator, two spellings).
///
/// # Errors
///
/// Returns [`PacqError::Usage`] when the variable is set but is not a
/// known backend token.
pub fn validated_env_backend() -> PacqResult<Option<Backend>> {
    let Ok(raw) = std::env::var(BACKEND_ENV) else {
        return Ok(None);
    };
    validate_backend(&raw, BACKEND_ENV).map(Some)
}

/// Splits `--backend B` / `--backend=B` out of an argument list,
/// returning the remaining arguments and the parsed selection. Shared
/// by the CLI and the figure/table binaries so every entry point spells
/// the knob the same way.
///
/// # Errors
///
/// Returns [`PacqError::Usage`] when the value is missing or not a
/// known backend token.
pub fn take_backend_flag(args: &[String]) -> PacqResult<(Vec<String>, Option<Backend>)> {
    let mut rest = Vec::with_capacity(args.len());
    let mut backend = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--backend" {
            let v = it
                .next()
                .ok_or_else(|| PacqError::usage("missing value for --backend"))?;
            backend = Some(validate_backend(v, "--backend")?);
        } else if let Some(v) = arg.strip_prefix("--backend=") {
            backend = Some(validate_backend(v, "--backend")?);
        } else {
            rest.push(arg.clone());
        }
    }
    Ok((rest, backend))
}

/// Resolves the effective backend: an explicit `backend` argument
/// (from `--backend B`), then the [`BACKEND_ENV`] environment
/// variable, then [`Backend::Scalar`].
///
/// # Errors
///
/// Returns [`PacqError::Usage`] when no explicit selection is given and
/// the environment variable holds an unknown token.
pub fn resolve_backend(backend: Option<Backend>) -> PacqResult<Backend> {
    match backend {
        Some(b) => Ok(b),
        None => Ok(validated_env_backend()?.unwrap_or_default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn backend_flag_is_extracted() {
        let (rest, b) = take_backend_flag(&argv("--shape m16n16k16 --backend batched")).unwrap();
        assert_eq!(b, Some(Backend::Batched));
        assert_eq!(rest, argv("--shape m16n16k16"));
        let (rest, b) = take_backend_flag(&argv("--backend=scalar sweep")).unwrap();
        assert_eq!(b, Some(Backend::Scalar));
        assert_eq!(rest, argv("sweep"));
        let (_, b) = take_backend_flag(&argv("compare")).unwrap();
        assert_eq!(b, None);
        assert!(take_backend_flag(&argv("--backend")).is_err());
        assert!(take_backend_flag(&argv("--backend turbo")).is_err());
    }

    #[test]
    fn flag_and_env_agree_on_every_boundary_input() {
        // One validator behind both spellings: any input the flag
        // accepts, the env var accepts with the same value, and any
        // input the flag rejects, the env var rejects.
        let cases: &[(&str, Option<Backend>)] = &[
            ("scalar", Some(Backend::Scalar)),
            ("batched", Some(Backend::Batched)),
            (" batched ", Some(Backend::Batched)), // surrounding whitespace tolerated
            ("\tscalar\n", Some(Backend::Scalar)), // ...in any form
            ("Scalar", None),                      // case matters: a typo, not a backend
            ("BATCHED", None),
            ("turbo", None),
            ("scalar,batched", None),
            ("", None),
            ("  ", None),
        ];
        for &(input, expect) in cases {
            let flag =
                take_backend_flag(&["--backend".to_string(), input.to_string()]).map(|(_, b)| b);
            let env = validate_backend(input, BACKEND_ENV).map(Some);
            match expect {
                Some(b) => {
                    assert_eq!(flag.as_ref().ok(), Some(&Some(b)), "--backend `{input}`");
                    assert_eq!(env.as_ref().ok(), Some(&Some(b)), "{BACKEND_ENV}=`{input}`");
                }
                None => {
                    let err = flag.unwrap_err();
                    assert!(err.is_usage(), "--backend `{input}`: {err}");
                    assert!(
                        err.to_string().contains("want `scalar` or `batched`"),
                        "{err}"
                    );
                    let err = env.unwrap_err();
                    assert!(err.is_usage(), "{err}");
                    assert!(err.to_string().contains(BACKEND_ENV), "{err}");
                }
            }
        }
    }

    #[test]
    fn explicit_backend_wins_over_default() {
        assert_eq!(
            resolve_backend(Some(Backend::Batched)).unwrap(),
            Backend::Batched
        );
        // With no explicit flag and (in this test environment) no env
        // override, the scalar reference is the default.
        if std::env::var(BACKEND_ENV).is_err() {
            assert_eq!(resolve_backend(None).unwrap(), Backend::Scalar);
        }
    }
}
