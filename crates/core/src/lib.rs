//! # pacq — a reproduction of the PacQ SIMT microarchitecture
//!
//! Rust reproduction of *"PacQ: A SIMT Microarchitecture for Efficient
//! Dataflow in Hyper-asymmetric GEMMs"* (Yin, Li, Panda — DAC 2025).
//!
//! A **hyper-asymmetric GEMM** multiplies FP16 activations by very
//! low-precision integer weights (INT4/INT2) — the compute pattern of
//! weight-only-quantized LLM inference. PacQ keeps the weights *packed
//! all the way into the tensor core* and co-designs three things:
//!
//! 1. packing along the output-feature dimension (`P(B_x)_n`) with an
//!    output-stationary dataflow (§III);
//! 2. a parallel FP-INT multiplier computing one FP16 × four INT4 (or
//!    eight INT2) products per cycle (§IV);
//! 3. a tensor core with duplicated adder trees and `Σ A` accumulators
//!    that remove the biasing offset algebraically (Eq. (1)).
//!
//! This crate is the façade over the full stack:
//!
//! | Layer | Crate |
//! |---|---|
//! | Bit-accurate FP16 + the multiplier datapaths | [`pacq_fp16`] |
//! | Power/area/SRAM models (Synopsys DC + CACTI substitute) | [`pacq_energy`] |
//! | RTN quantization, groups, `P(B_x)_y` packing | [`pacq_quant`] |
//! | Volta-like SIMT simulator (three dataflows) | [`pacq_simt`] |
//! | Mix-GEMM binary-segmentation baseline | [`pacq_mixgemm`] |
//!
//! ## Quickstart
//!
//! ```
//! use pacq::{Architecture, Comparison, GemmRunner, GemmShape, Workload};
//! use pacq_fp16::WeightPrecision;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Simulate a Llama2-7B attention projection at batch 16 on all three
//! // architectures and compare.
//! let runner = GemmRunner::new();
//! let wl = Workload::new(GemmShape::new(16, 4096, 4096), WeightPrecision::Int4);
//! let cmp = Comparison::new(vec![
//!     runner.analyze(Architecture::StandardDequant, wl)?,
//!     runner.analyze(Architecture::PackedK, wl)?,
//!     runner.analyze(Architecture::Pacq, wl)?,
//! ]);
//! let edp = cmp.normalized_edp();
//! assert!(edp[2] < 0.35, "PacQ cuts EDP by >65%: {}", edp[2]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod activity;
pub mod backend;
pub mod cli;
pub mod dse;
pub mod llama;
pub mod loadgen;
pub mod par;
pub mod params;
pub mod pareto;
pub mod report;
pub mod roofline;
pub mod runner;
pub mod serve;
pub mod sweep;

pub use dse::{best_edp, run_dse, DseAxes, DseJob, DseOutcome, DsePlan, DseRow, Mapping};
pub use pareto::{pareto_front, ParetoPoint};
pub use report::{Comparison, GemmReport};
pub use runner::GemmRunner;
pub use serve::{ServeOptions, ServeSummary, Server};
pub use sweep::{run_sweep, SweepJob, SweepOutcome, SweepPlan, SweepRow, SweepTally};

// The result-cache and sharding layer (`--cache`, `--shard`,
// `--checkpoint`; DESIGN.md §12).
pub use pacq_cache::{
    CacheKey, CacheStats, CachedReport, ReportCache, Shard, SweepCheckpoint, VerifyOutcome,
};

// The declarative architecture-template layer (`pacq-arch/v1`,
// `--arch-template`, `pacq dse`; DESIGN.md §18).
pub use pacq_arch::{ArchTemplate, Dataflow, Packing, TEMPLATE_SCHEMA};

// The workspace-wide typed error layer (DESIGN.md §10).
pub use pacq_error::{ArtifactError, PacqError, PacqResult};

// Re-export the vocabulary types so `pacq` alone is enough for most uses.
pub use pacq_fp16::{
    AccPrecision, Backend, Fp16, Int2, Int4, NumericsMode, PackedWord, WeightPrecision,
};
pub use pacq_quant::{
    GroupShape, MatrixF16, MatrixF32, PackDim, PackedMatrix, QuantScheme, QuantizedMatrix,
    RtnQuantizer,
};
pub use pacq_simt::{
    Architecture, EnergyModel, EnergyReport, GemmShape, GemmStats, SmConfig, Workload,
};
