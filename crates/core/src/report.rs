//! Reports produced by the GEMM runner.

use pacq_simt::{Architecture, EnergyReport, GemmStats, Workload};

/// Full analysis of one GEMM on one architecture: traffic, timing,
/// energy, EDP.
#[derive(Debug, Clone, PartialEq)]
pub struct GemmReport {
    /// The architecture simulated.
    pub arch: Architecture,
    /// The workload.
    pub workload: Workload,
    /// Raw simulator statistics.
    pub stats: GemmStats,
    /// Energy split in pJ.
    pub energy: EnergyReport,
    /// End-to-end latency in seconds.
    pub latency_s: f64,
    /// Energy-delay product in pJ·s.
    pub edp_pj_s: f64,
}

impl GemmReport {
    /// Total energy in pJ.
    pub fn total_energy_pj(&self) -> f64 {
        self.energy.total_pj()
    }

    /// Speedup of this report over another (other ÷ self, in cycles).
    pub fn speedup_over(&self, other: &GemmReport) -> f64 {
        other.stats.total_cycles as f64 / self.stats.total_cycles as f64
    }

    /// EDP of this report normalized to another (self ÷ other).
    pub fn edp_normalized_to(&self, other: &GemmReport) -> f64 {
        self.edp_pj_s / other.edp_pj_s
    }

    /// Register-file accesses normalized to another report.
    pub fn rf_accesses_normalized_to(&self, other: &GemmReport) -> f64 {
        self.stats.rf.total_accesses() as f64 / other.stats.rf.total_accesses() as f64
    }
}

/// A side-by-side comparison of several architecture reports on the same
/// workload, normalized to the first entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    reports: Vec<GemmReport>,
}

impl Comparison {
    /// Builds a comparison.
    ///
    /// # Panics
    ///
    /// Panics if `reports` is empty or the workloads differ.
    pub fn new(reports: Vec<GemmReport>) -> Self {
        assert!(!reports.is_empty(), "comparison needs at least one report");
        let wl = reports[0].workload;
        assert!(
            reports.iter().all(|r| r.workload == wl),
            "comparison requires identical workloads"
        );
        Comparison { reports }
    }

    /// The underlying reports (baseline first).
    pub fn reports(&self) -> &[GemmReport] {
        &self.reports
    }

    /// Normalized EDP of every report (baseline = 1.0).
    pub fn normalized_edp(&self) -> Vec<f64> {
        self.reports
            .iter()
            .map(|r| r.edp_normalized_to(&self.reports[0]))
            .collect()
    }

    /// Normalized speedup of every report over the baseline.
    pub fn normalized_speedup(&self) -> Vec<f64> {
        self.reports
            .iter()
            .map(|r| r.speedup_over(&self.reports[0]))
            .collect()
    }

    /// Normalized RF accesses (baseline = 1.0).
    pub fn normalized_rf_accesses(&self) -> Vec<f64> {
        self.reports
            .iter()
            .map(|r| r.rf_accesses_normalized_to(&self.reports[0]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::GemmRunner;
    use pacq_fp16::WeightPrecision;
    use pacq_simt::GemmShape;

    fn reports() -> Vec<GemmReport> {
        let runner = GemmRunner::new();
        let wl = Workload::new(GemmShape::M16N16K16, WeightPrecision::Int4);
        vec![
            runner.analyze(Architecture::PackedK, wl).unwrap(),
            runner.analyze(Architecture::Pacq, wl).unwrap(),
        ]
    }

    #[test]
    fn normalization_is_relative_to_first() {
        let cmp = Comparison::new(reports());
        let edp = cmp.normalized_edp();
        assert_eq!(edp[0], 1.0);
        assert!(edp[1] < 1.0, "PacQ EDP should improve: {}", edp[1]);
        let speed = cmp.normalized_speedup();
        assert_eq!(speed[0], 1.0);
        assert!(speed[1] > 1.5);
    }

    #[test]
    #[should_panic(expected = "identical workloads")]
    fn mismatched_workloads_rejected() {
        let runner = GemmRunner::new();
        let a = runner
            .analyze(
                Architecture::Pacq,
                Workload::new(GemmShape::M16N16K16, WeightPrecision::Int4),
            )
            .unwrap();
        let b = runner
            .analyze(
                Architecture::Pacq,
                Workload::new(GemmShape::M16N16K16, WeightPrecision::Int2),
            )
            .unwrap();
        Comparison::new(vec![a, b]);
    }

    #[test]
    #[should_panic(expected = "at least one report")]
    fn empty_comparison_rejected() {
        Comparison::new(vec![]);
    }
}
