//! Reports produced by the GEMM runner.

use pacq_error::{PacqError, PacqResult};
use pacq_simt::{Architecture, EnergyReport, GemmStats, Workload};
use pacq_trace::Json;

/// Full analysis of one GEMM on one architecture: traffic, timing,
/// energy, EDP.
#[derive(Debug, Clone, PartialEq)]
pub struct GemmReport {
    /// The architecture simulated.
    pub arch: Architecture,
    /// The workload.
    pub workload: Workload,
    /// Raw simulator statistics.
    pub stats: GemmStats,
    /// Energy split in pJ.
    pub energy: EnergyReport,
    /// End-to-end latency in seconds.
    pub latency_s: f64,
    /// Energy-delay product in pJ·s.
    pub edp_pj_s: f64,
}

impl GemmReport {
    /// Total energy in pJ.
    pub fn total_energy_pj(&self) -> f64 {
        self.energy.total_pj()
    }

    /// Speedup of this report over another (other ÷ self, in cycles).
    pub fn speedup_over(&self, other: &GemmReport) -> f64 {
        other.stats.total_cycles as f64 / self.stats.total_cycles as f64
    }

    /// EDP of this report normalized to another (self ÷ other).
    pub fn edp_normalized_to(&self, other: &GemmReport) -> f64 {
        self.edp_pj_s / other.edp_pj_s
    }

    /// Register-file accesses normalized to another report.
    pub fn rf_accesses_normalized_to(&self, other: &GemmReport) -> f64 {
        self.stats.rf.total_accesses() as f64 / other.stats.rf.total_accesses() as f64
    }

    /// Converts to the cache/serve vocabulary type ([`CachedReport`] is
    /// the same data one crate down, so both the on-disk `pacq-cache/v1`
    /// entry and the `pacq-serve/v1` reply share one lossless codec).
    pub fn to_cached(&self) -> pacq_cache::CachedReport {
        pacq_cache::CachedReport {
            arch: self.arch,
            workload: self.workload,
            stats: self.stats,
            energy: self.energy,
            latency_s: self.latency_s,
            edp_pj_s: self.edp_pj_s,
        }
    }

    /// The inverse of [`GemmReport::to_cached`].
    pub fn from_cached(cached: pacq_cache::CachedReport) -> GemmReport {
        GemmReport {
            arch: cached.arch,
            workload: cached.workload,
            stats: cached.stats,
            energy: cached.energy,
            latency_s: cached.latency_s,
            edp_pj_s: cached.edp_pj_s,
        }
    }

    /// Internal-consistency audit of this report (DESIGN.md §11).
    ///
    /// Promotes the invariants historically pinned only in unit tests to
    /// first-class checks used by `pacq audit` and (in debug builds) by
    /// every [`crate::GemmRunner::analyze`] call:
    ///
    /// 1. `edp_pj_s == total_energy_pj * latency_s` (within 1e-9
    ///    relative) — the EDP is a *derived* quantity, never priced
    ///    independently.
    /// 2. The energy bill-of-materials sums: the report total equals the
    ///    sum of the six priced components.
    /// 3. The Figure-7 identity: `rf.total_accesses()` is exactly the
    ///    sum of the four access counters it claims to aggregate.
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::AuditMismatch`] naming the first diverging
    /// quantity.
    pub fn check_invariants(&self) -> PacqResult<()> {
        let case = format!("{} on {}", self.workload, self.arch);
        let mismatch = |counter: &str, observed: String, expected: String| {
            Err(PacqError::AuditMismatch {
                counter: counter.to_string(),
                case: case.clone(),
                observed,
                expected,
            })
        };

        let edp_expected = self.total_energy_pj() * self.latency_s;
        if (self.edp_pj_s - edp_expected).abs() > 1e-9 * edp_expected.abs() {
            return mismatch(
                "edp_pj_s",
                format!("{:e}", self.edp_pj_s),
                format!("{edp_expected:e} (total_energy_pj * latency_s)"),
            );
        }

        let e = &self.energy;
        let bom = e.tc_pj + e.rf_pj + e.l1_pj + e.dram_pj + e.buffer_pj + e.general_pj;
        if (e.total_pj() - bom).abs() > 1e-9 * bom.abs() {
            return mismatch(
                "energy.total_pj",
                format!("{:.6}", e.total_pj()),
                format!("{bom:.6} (component BOM sum)"),
            );
        }

        let rf = &self.stats.rf;
        let accesses = rf.a_reads + rf.b_reads + rf.c_reads + rf.c_writes;
        if rf.total_accesses() != accesses {
            return mismatch(
                "rf.total_accesses",
                rf.total_accesses().to_string(),
                format!("{accesses} (a+b+c reads + c writes)"),
            );
        }
        Ok(())
    }

    /// The report as a [`Json`] object for the run manifest
    /// (`pacq --metrics`, DESIGN.md §11). Field names mirror
    /// `pacq analyze --json`.
    pub fn metrics_json(&self) -> Json {
        let mut shape = Json::object();
        shape.set("m", self.workload.shape.m as u64);
        shape.set("n", self.workload.shape.n as u64);
        shape.set("k", self.workload.shape.k as u64);

        let mut rf = Json::object();
        rf.set("a_reads", self.stats.rf.a_reads);
        rf.set("b_reads", self.stats.rf.b_reads);
        rf.set("c_reads", self.stats.rf.c_reads);
        rf.set("c_writes", self.stats.rf.c_writes);
        rf.set("total_accesses", self.stats.rf.total_accesses());

        let mut energy = Json::object();
        energy.set("tensor_core", self.energy.tc_pj);
        energy.set("register_file", self.energy.rf_pj);
        energy.set("l1", self.energy.l1_pj);
        energy.set("dram", self.energy.dram_pj);
        energy.set("buffers", self.energy.buffer_pj);
        energy.set("general_core", self.energy.general_pj);

        let mut doc = Json::object();
        doc.set("workload", self.workload.to_string());
        doc.set("architecture", self.arch.to_string());
        doc.set("shape", shape);
        doc.set("total_cycles", self.stats.total_cycles);
        doc.set("tc_cycles", self.stats.tc_cycles);
        doc.set("general_cycles", self.stats.general_cycles);
        doc.set("latency_s", self.latency_s);
        doc.set("energy_pj", self.total_energy_pj());
        doc.set("energy_breakdown_pj", energy);
        doc.set("edp_pj_s", self.edp_pj_s);
        doc.set("rf", rf);
        doc.set("fetch_instructions", self.stats.fetch_instructions);
        doc.set("buffer_fills", self.stats.buffer_fills);
        doc.set("buffer_evictions", self.stats.buffer_evictions);
        doc
    }
}

/// A side-by-side comparison of several architecture reports on the same
/// workload, normalized to the first entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    reports: Vec<GemmReport>,
}

impl Comparison {
    /// Builds a comparison.
    ///
    /// # Panics
    ///
    /// Panics if `reports` is empty or the workloads differ.
    pub fn new(reports: Vec<GemmReport>) -> Self {
        assert!(!reports.is_empty(), "comparison needs at least one report");
        let wl = reports[0].workload;
        assert!(
            reports.iter().all(|r| r.workload == wl),
            "comparison requires identical workloads"
        );
        Comparison { reports }
    }

    /// The underlying reports (baseline first).
    pub fn reports(&self) -> &[GemmReport] {
        &self.reports
    }

    /// Normalized EDP of every report (baseline = 1.0).
    pub fn normalized_edp(&self) -> Vec<f64> {
        self.reports
            .iter()
            .map(|r| r.edp_normalized_to(&self.reports[0]))
            .collect()
    }

    /// Normalized speedup of every report over the baseline.
    pub fn normalized_speedup(&self) -> Vec<f64> {
        self.reports
            .iter()
            .map(|r| r.speedup_over(&self.reports[0]))
            .collect()
    }

    /// Normalized RF accesses (baseline = 1.0).
    pub fn normalized_rf_accesses(&self) -> Vec<f64> {
        self.reports
            .iter()
            .map(|r| r.rf_accesses_normalized_to(&self.reports[0]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::GemmRunner;
    use pacq_fp16::WeightPrecision;
    use pacq_simt::GemmShape;

    fn reports() -> Vec<GemmReport> {
        let runner = GemmRunner::new();
        let wl = Workload::new(GemmShape::M16N16K16, WeightPrecision::Int4);
        vec![
            runner.analyze(Architecture::PackedK, wl).unwrap(),
            runner.analyze(Architecture::Pacq, wl).unwrap(),
        ]
    }

    #[test]
    fn normalization_is_relative_to_first() {
        let cmp = Comparison::new(reports());
        let edp = cmp.normalized_edp();
        assert_eq!(edp[0], 1.0);
        assert!(edp[1] < 1.0, "PacQ EDP should improve: {}", edp[1]);
        let speed = cmp.normalized_speedup();
        assert_eq!(speed[0], 1.0);
        assert!(speed[1] > 1.5);
    }

    #[test]
    #[should_panic(expected = "identical workloads")]
    fn mismatched_workloads_rejected() {
        let runner = GemmRunner::new();
        let a = runner
            .analyze(
                Architecture::Pacq,
                Workload::new(GemmShape::M16N16K16, WeightPrecision::Int4),
            )
            .unwrap();
        let b = runner
            .analyze(
                Architecture::Pacq,
                Workload::new(GemmShape::M16N16K16, WeightPrecision::Int2),
            )
            .unwrap();
        Comparison::new(vec![a, b]);
    }

    #[test]
    #[should_panic(expected = "at least one report")]
    fn empty_comparison_rejected() {
        Comparison::new(vec![]);
    }
}
