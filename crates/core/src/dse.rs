//! The design-space-exploration engine behind `pacq dse`.
//!
//! Where `pacq sweep --param grid` walks one fixed batch × architecture
//! × precision grid over the hardcoded machine, `pacq dse` grid-searches
//! *design points*: batch sizes, dataflows (architectures), weight
//! precisions, DP widths, adder-tree duplications and group geometries,
//! all over a machine described by an architecture template (or the
//! builtin Volta-like configuration). It reuses the sweep machinery
//! wholesale — `--shard i/N` residue classes, `--checkpoint FILE`
//! resume bound to the (grid × machine × template × backend) digest,
//! the `--cache DIR` report store, the rayon worker pool — so dse runs
//! are interruptible, splittable and memoized the same way sweeps are.
//!
//! Axes are spelled as repeated `--param name=v1,v2,...` flags (see
//! [`crate::params`]); every axis the user does not name keeps its
//! default, which is chosen so that a flag-less `pacq dse` over a
//! committed builtin-equivalent template enumerates exactly the
//! `sweep --param grid` jobs and reproduces its reports bit for bit.

use rayon::prelude::*;

use crate::params::ParamSpec;
use crate::report::GemmReport;
use crate::runner::GemmRunner;
use crate::sweep::SweepTally;
use pacq_cache::{grid_digest, Shard, SweepCheckpoint};
use pacq_error::{PacqError, PacqResult};
use pacq_fp16::WeightPrecision;
use pacq_quant::GroupShape;
use pacq_simt::{Architecture, GemmShape, Workload};

fn err(msg: impl Into<String>) -> PacqError {
    PacqError::usage(msg)
}

/// A tile-mapping coordinate: one loop-order permutation of the m/n/k
/// warp-tile walk, optionally qualified by a warp-tile shape.
///
/// The innermost loop decides which operand stays resident in the
/// tensor-core buffers while the other two stream, so each permutation
/// canonicalizes onto one of the simulated stationarity classes:
///
/// - inner `m` — B fixed while m varies: weight-stationary, the
///   `P(B_x)_k` machine ([`Architecture::PackedK`]);
/// - inner `n` — A fixed while n varies: input-stationary
///   ([`Architecture::InputStationary`]);
/// - inner `k` — C accumulates in place: output-stationary, PacQ
///   ([`Architecture::Pacq`]).
///
/// Two permutations sharing an innermost loop (e.g. `mnk` and `nmk`)
/// differ only in which *outer* tile loop advances first; the per-tile
/// traffic and timing counters are identical, so the search prices them
/// as counter-equivalent duplicates — visible as repeated rows, which
/// the Pareto front's id tie-break keeps deterministic.
///
/// The optional `@MxN` suffix names the warp-tile shape. Only `@16x16`
/// is legal: the datapath executes `mma.m16n16k16` warp tiles as a 2×2
/// grid of 8×8 octets, so any other shape has no octet decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mapping {
    /// The loop order, outermost first — a permutation of `[m, n, k]`
    /// stored as the three ASCII letters.
    perm: [u8; 3],
}

impl Mapping {
    /// Parses `perm[@MxN]`, e.g. `mnk`, `knm@16x16`.
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::Usage`] when the permutation is not one of
    /// the six orderings of `mnk`, or the warp-tile suffix names any
    /// shape other than `16x16`.
    pub fn parse(text: &str) -> PacqResult<Mapping> {
        let (perm_text, tile) = match text.split_once('@') {
            Some((p, t)) => (p, Some(t)),
            None => (text, None),
        };
        if let Some(tile) = tile {
            if tile != "16x16" {
                return Err(err(format!(
                    "--param mapping: warp tile `@{tile}` is not executable — the datapath \
                     runs mma.m16n16k16 warp tiles (a 2x2 grid of 8x8 octets), so only \
                     @16x16 is legal"
                )));
            }
        }
        let bytes = perm_text.as_bytes();
        let mut seen = [false; 3];
        if bytes.len() == 3 {
            for &b in bytes {
                match b {
                    b'm' => seen[0] = true,
                    b'n' => seen[1] = true,
                    b'k' => seen[2] = true,
                    _ => {}
                }
            }
        }
        if seen != [true; 3] {
            return Err(err(format!(
                "--param mapping: `{perm_text}` is not a loop order; expected a permutation \
                 of `mnk` (e.g. mnk, nkm), optionally with `@16x16`"
            )));
        }
        Ok(Mapping {
            perm: [bytes[0], bytes[1], bytes[2]],
        })
    }

    /// The stationarity class this loop order canonicalizes onto (see
    /// the type docs for the innermost-loop derivation).
    pub fn architecture(&self) -> Architecture {
        match self.perm[2] {
            b'm' => Architecture::PackedK,
            b'n' => Architecture::InputStationary,
            _ => Architecture::Pacq,
        }
    }
}

impl core::fmt::Display for Mapping {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for &b in &self.perm {
            f.write_str(match b {
                b'm' => "m",
                b'n' => "n",
                _ => "k",
            })?;
        }
        Ok(())
    }
}

/// The search axes of one dse invocation. Axis order inside each list
/// is significant (it defines job enumeration order and therefore row
/// order, shard classes and the checkpoint binding).
#[derive(Debug, Clone, PartialEq)]
pub struct DseAxes {
    /// Batch sizes (`m` extents).
    pub batch: Vec<usize>,
    /// Architectures (dataflows) to simulate.
    pub arch: Vec<Architecture>,
    /// Weight precisions.
    pub precision: Vec<WeightPrecision>,
    /// DP widths.
    pub width: Vec<usize>,
    /// Adder-tree duplications.
    pub dup: Vec<usize>,
    /// Quantization group geometries.
    pub group: Vec<GroupShape>,
    /// Tile mappings (loop orders). Empty means the axis is off and the
    /// `arch` axis drives the architecture loop; non-empty, each mapping
    /// derives its architecture from its innermost loop and `arch` must
    /// not also be named (the two would fight over the same coordinate).
    pub mapping: Vec<Mapping>,
}

impl DseAxes {
    /// The default axes over a base machine: the `sweep --param grid`
    /// batch × architecture × precision product, with width / dup /
    /// group pinned to the machine's own values — so a flag-less dse
    /// over a builtin-equivalent template reproduces the grid sweep's
    /// reports bit for bit.
    pub fn defaults(base_width: usize, base_dup: usize, base_group: GroupShape) -> DseAxes {
        DseAxes {
            batch: vec![16, 32, 64, 128, 256, 512],
            arch: vec![
                Architecture::StandardDequant,
                Architecture::PackedK,
                Architecture::Pacq,
            ],
            precision: vec![WeightPrecision::Int4, WeightPrecision::Int2],
            width: vec![base_width],
            dup: vec![base_dup],
            group: vec![base_group],
            mapping: Vec::new(),
        }
    }

    /// Applies validated `--param name=v1,v2` specs onto the defaults.
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::Usage`] for an unknown axis name, a bare
    /// spec with no values, or an unparseable value (each axis reuses
    /// the corresponding single-flag parser, so `--param arch=pacq`
    /// accepts exactly what `--arch pacq` does).
    pub fn apply(&mut self, specs: &[ParamSpec]) -> PacqResult<()> {
        let named = |axis: &str| specs.iter().any(|s| s.name == axis);
        if named("arch") && named("mapping") {
            return Err(err(
                "--param arch conflicts with --param mapping: a mapping's innermost loop \
                 already determines the architecture (inner m = packedk, inner n = is, \
                 inner k = pacq); name one axis or the other",
            ));
        }
        for spec in specs {
            if spec.values.is_empty() {
                return Err(err(format!(
                    "--param {}: dse wants values, e.g. --param {}=...",
                    spec.name, spec.name
                )));
            }
            let values = &spec.values;
            match spec.name.as_str() {
                "batch" => {
                    self.batch = values
                        .iter()
                        .map(|v| {
                            let m: usize = v
                                .parse()
                                .map_err(|_| err(format!("--param batch: bad batch `{v}`")))?;
                            if m == 0 || !m.is_multiple_of(16) {
                                return Err(err(format!(
                                    "--param batch: batch `{v}` must be a non-zero multiple of 16"
                                )));
                            }
                            Ok(m)
                        })
                        .collect::<PacqResult<Vec<usize>>>()?;
                }
                "arch" => {
                    self.arch = values
                        .iter()
                        .map(|v| crate::cli::parse_arch(v))
                        .collect::<PacqResult<Vec<Architecture>>>()?;
                }
                "precision" => {
                    self.precision = values
                        .iter()
                        .map(|v| crate::cli::parse_precision(v))
                        .collect::<PacqResult<Vec<WeightPrecision>>>()?;
                }
                "width" => {
                    self.width = values
                        .iter()
                        .map(|v| match v.parse() {
                            Ok(w @ (4 | 8 | 16)) => Ok(w),
                            _ => Err(err(format!("--param width: `{v}` must be 4, 8 or 16"))),
                        })
                        .collect::<PacqResult<Vec<usize>>>()?;
                }
                "dup" => {
                    self.dup = values
                        .iter()
                        .map(|v| match v.parse() {
                            Ok(d @ (1 | 2 | 4)) => Ok(d),
                            _ => Err(err(format!("--param dup: `{v}` must be 1, 2 or 4"))),
                        })
                        .collect::<PacqResult<Vec<usize>>>()?;
                }
                "group" => {
                    self.group = values
                        .iter()
                        .map(|v| crate::cli::parse_group(v))
                        .collect::<PacqResult<Vec<GroupShape>>>()?;
                }
                "mapping" => {
                    self.mapping = values
                        .iter()
                        .map(|v| Mapping::parse(v))
                        .collect::<PacqResult<Vec<Mapping>>>()?;
                }
                other => {
                    return Err(err(format!(
                        "--param {other}: unknown dse axis (batch, arch, precision, width, dup, group, mapping)"
                    )))
                }
            }
        }
        Ok(())
    }
}

/// One dse design point: a full (workload × architecture × datapath ×
/// group) coordinate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DseJob {
    /// The architecture (dataflow) to simulate.
    pub arch: Architecture,
    /// The workload (batch × layer × precision).
    pub workload: Workload,
    /// DP width for this point.
    pub width: usize,
    /// Adder-tree duplication for this point.
    pub dup: usize,
    /// Quantization group geometry for this point.
    pub group: GroupShape,
    /// The tile mapping this point came from, when the search ran over
    /// the mapping axis (`arch` is then derived from it).
    pub mapping: Option<Mapping>,
}

impl DseJob {
    /// The job's stable id — checkpoint line format, newline-free. A
    /// mapping-axis point appends its loop order (`...:g128:nkm`), so
    /// two counter-equivalent permutations stay distinct rows.
    pub fn id(&self) -> String {
        let mut id = format!(
            "b{}:{}:{}:w{}:d{}:{}",
            self.workload.shape.m,
            pacq_cache::arch_token(self.arch),
            pacq_cache::precision_token(self.workload.precision),
            self.width,
            self.dup,
            self.group,
        );
        if let Some(mapping) = &self.mapping {
            id.push(':');
            let _ = core::fmt::write(&mut id, format_args!("{mapping}"));
        }
        id
    }
}

/// A fully enumerated dse search with a content digest binding
/// checkpoints to it.
#[derive(Debug, Clone)]
pub struct DsePlan {
    jobs: Vec<DseJob>,
}

impl DsePlan {
    /// Enumerates the axis product over an `n×k` layer, nesting (outer
    /// to inner) batch, arch-or-mapping, precision, width, dup, group.
    /// With the mapping axis on, each mapping takes the arch loop's
    /// slot and supplies its derived architecture — the default grid
    /// (mapping off) is untouched, byte for byte.
    pub fn enumerate(axes: &DseAxes, n: usize, k: usize) -> DsePlan {
        let arch_points: Vec<(Architecture, Option<Mapping>)> = if axes.mapping.is_empty() {
            axes.arch.iter().map(|&a| (a, None)).collect()
        } else {
            axes.mapping
                .iter()
                .map(|&mapping| (mapping.architecture(), Some(mapping)))
                .collect()
        };
        let mut jobs = Vec::new();
        for &m in &axes.batch {
            for &(arch, mapping) in &arch_points {
                for &precision in &axes.precision {
                    for &width in &axes.width {
                        for &dup in &axes.dup {
                            for &group in &axes.group {
                                jobs.push(DseJob {
                                    arch,
                                    workload: Workload::new(GemmShape::new(m, n, k), precision),
                                    width,
                                    dup,
                                    group,
                                    mapping,
                                });
                            }
                        }
                    }
                }
            }
        }
        DsePlan { jobs }
    }

    /// The search's jobs in enumeration order.
    pub fn jobs(&self) -> &[DseJob] {
        &self.jobs
    }

    /// A digest over every job id (order-sensitive).
    pub fn digest(&self) -> String {
        let ids: Vec<String> = self.jobs.iter().map(DseJob::id).collect();
        grid_digest(&ids.join("\n"))
    }

    /// The checkpoint binding: this search's digest plus the *base*
    /// runner's full provenance (machine, template identity, backend —
    /// see [`crate::sweep::SweepPlan::binding_digest`] for why job ids
    /// alone under-bind). Per-job width/dup/group variations are
    /// already in the job ids.
    pub fn binding_digest(&self, base: &GemmRunner) -> String {
        grid_digest(&format!(
            "{grid}\n{provenance}",
            grid = self.digest(),
            provenance = base.provenance()
        ))
    }
}

/// One completed (or checkpoint-skipped) dse row.
#[derive(Debug, Clone)]
pub struct DseRow {
    /// The design point this row answers.
    pub job: DseJob,
    /// The report. `None` only when the checkpoint records the job as
    /// done *and* no attached `--cache` store still holds its report —
    /// resumed rows are rehydrated from the cache whenever possible, so
    /// rankings over a resumed run stay complete.
    pub report: Option<GemmReport>,
}

/// The best completed row by EDP, ties broken by lexicographic job id —
/// so the winner is a pure function of the row *set*, byte-identical
/// across `--jobs` counts, shard interleavings and resume histories.
/// Rows without a report (resumed, not rehydratable) don't compete; the
/// caller is responsible for flagging the ranking as partial then.
pub fn best_edp(rows: &[DseRow]) -> Option<(&DseJob, &GemmReport)> {
    rows.iter()
        .filter_map(|r| r.report.as_ref().map(|rep| (&r.job, rep)))
        .min_by(|a, b| {
            a.1.edp_pj_s
                .total_cmp(&b.1.edp_pj_s)
                .then_with(|| a.0.id().cmp(&b.0.id()))
        })
}

/// The result of [`run_dse`]: rows in enumeration order (restricted to
/// this shard) plus the selection/skip/execution tally.
#[derive(Debug, Clone)]
pub struct DseOutcome {
    /// This shard's rows, in enumeration order.
    pub rows: Vec<DseRow>,
    /// Selection/skip/execution accounting.
    pub tally: SweepTally,
}

/// Runs `plan` against the base runner, deriving each job's runner by
/// overriding the datapath knobs (width, dup) and group geometry on the
/// base — the base's machine capacities, energy model, template
/// identity, cache handle and backend all carry over, so cache keys and
/// the checkpoint binding see the template behind every point.
///
/// # Errors
///
/// Returns the first failing job's error in enumeration order, or a
/// checkpoint I/O error.
pub fn run_dse(
    base: &GemmRunner,
    plan: &DsePlan,
    shard: Shard,
    checkpoint: Option<&SweepCheckpoint>,
) -> PacqResult<DseOutcome> {
    let _span = pacq_trace::span("core.dse");
    let mut tally = SweepTally {
        total: plan.jobs().len(),
        ..SweepTally::default()
    };

    // The per-job runner: the base with this point's datapath knobs and
    // group geometry overridden (used both to execute and to probe the
    // cache for resumed rows, so the key derivation is identical).
    let job_runner = |job: &DseJob| {
        let mut cfg = *base.config();
        cfg.dp_width = job.width;
        cfg.adder_tree_duplication = job.dup;
        base.clone().with_config(cfg).with_group(job.group)
    };

    let mut skipped_rows = Vec::new();
    let mut to_run = Vec::new();
    for (index, job) in plan.jobs().iter().enumerate() {
        if !shard.selects(index) {
            continue;
        }
        tally.selected += 1;
        if checkpoint.is_some_and(|c| c.is_done(&job.id())) {
            tally.skipped += 1;
            // A resumed job's report usually still sits in the --cache
            // store (the first pass wrote it there); rehydrate it so
            // best-EDP/Pareto rankings over the resumed run see every
            // row instead of silently excluding the resumed ones.
            let report = job_runner(job).cached_report(job.arch, job.workload);
            skipped_rows.push((index, DseRow { job: *job, report }));
        } else {
            tally.executed += 1;
            to_run.push((index, *job));
        }
    }

    let reports: Vec<PacqResult<(usize, DseRow)>> = to_run
        .into_par_iter()
        .map(|(index, job)| {
            let runner = job_runner(&job);
            let report = runner.analyze(job.arch, job.workload)?;
            if let Some(c) = checkpoint {
                c.mark_done(&job.id())?;
            }
            Ok((
                index,
                DseRow {
                    job,
                    report: Some(report),
                },
            ))
        })
        .collect();

    let mut rows = reports
        .into_iter()
        .collect::<PacqResult<Vec<(usize, DseRow)>>>()?;
    rows.extend(skipped_rows);
    rows.sort_by_key(|(index, _)| *index);

    pacq_trace::add_counter("dse.jobs.total", tally.total as u64);
    pacq_trace::add_counter("dse.jobs.selected", tally.selected as u64);
    pacq_trace::add_counter("dse.jobs.skipped", tally.skipped as u64);
    pacq_trace::add_counter("dse.jobs.executed", tally.executed as u64);

    Ok(DseOutcome {
        rows: rows.into_iter().map(|(_, row)| row).collect(),
        tally,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::parse_params;
    use crate::sweep::{run_sweep, SweepPlan};

    fn default_axes() -> DseAxes {
        DseAxes::defaults(4, 2, GroupShape::G128)
    }

    #[test]
    fn default_axes_reproduce_the_grid_sweep_bit_for_bit() {
        // The reproduction contract: a flag-less dse over the builtin
        // machine enumerates exactly the sweep --param grid jobs and
        // prices them identically.
        let runner = GemmRunner::new();
        let plan = DsePlan::enumerate(&default_axes(), 256, 256);
        let grid = SweepPlan::batch_grid(256, 256);
        assert_eq!(plan.jobs().len(), grid.jobs().len());

        let dse = run_dse(&runner, &plan, Shard::FULL, None).unwrap();
        let sweep = run_sweep(&runner, &grid, Shard::FULL, None).unwrap();
        for (d, s) in dse.rows.iter().zip(&sweep.rows) {
            let (dr, sr) = (d.report.as_ref().unwrap(), s.report.as_ref().unwrap());
            assert_eq!(d.job.arch, s.job.arch);
            assert_eq!(d.job.workload, s.job.workload);
            assert_eq!(dr.stats, sr.stats);
            assert_eq!(dr.edp_pj_s.to_bits(), sr.edp_pj_s.to_bits());
            assert_eq!(
                dr.total_energy_pj().to_bits(),
                sr.total_energy_pj().to_bits()
            );
        }
    }

    #[test]
    fn params_reshape_the_axes() {
        let mut axes = default_axes();
        let specs = parse_params(&[
            "batch=16,32".to_string(),
            "arch=pacq".to_string(),
            "width=4,8".to_string(),
            "dup=1,4".to_string(),
            "group=g64".to_string(),
        ])
        .unwrap();
        axes.apply(&specs).unwrap();
        assert_eq!(axes.batch, [16, 32]);
        assert_eq!(axes.arch, [Architecture::Pacq]);
        assert_eq!(axes.width, [4, 8]);
        assert_eq!(axes.dup, [1, 4]);
        let plan = DsePlan::enumerate(&axes, 256, 256);
        // 2 batches × 1 arch × 2 precisions × 2 widths × 2 dups × 1 group.
        assert_eq!(plan.jobs().len(), 16);
        // Ids are unique and carry every coordinate.
        let mut ids: Vec<String> = plan.jobs().iter().map(DseJob::id).collect();
        assert!(ids[0].starts_with("b16:pacq:int4:w4:d1:g64"), "{}", ids[0]);
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 16);
    }

    #[test]
    fn bad_axis_specs_are_usage_errors() {
        for spec in [
            "batch",          // bare name: dse wants values
            "batch=15",       // not 16-aligned
            "batch=0",        // zero
            "width=5",        // out of domain
            "dup=3",          // out of domain
            "arch=quantum",   // unknown arch
            "precision=int5", // unknown precision
            "group=h128",     // unknown group
            "tile=4",         // unknown axis
        ] {
            let mut axes = default_axes();
            let specs = parse_params(&[spec.to_string()]).unwrap();
            let e = axes.apply(&specs).unwrap_err();
            assert!(e.is_usage(), "{spec}: {e}");
            assert_eq!(e.exit_code(), 2, "{spec}");
        }
    }

    #[test]
    fn checkpoint_binding_covers_the_base_runner() {
        use pacq_fp16::Backend;
        let path =
            std::env::temp_dir().join(format!("pacq-dse-binding-{}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let plan = DsePlan::enumerate(&default_axes(), 256, 256);
        let base = GemmRunner::new();
        drop(SweepCheckpoint::open(&path, &plan.binding_digest(&base)).unwrap());

        for other in [
            GemmRunner::new().with_backend(Backend::Batched),
            GemmRunner::new().with_template_digest("deadbeef"),
        ] {
            let e = SweepCheckpoint::open(&path, &plan.binding_digest(&other)).unwrap_err();
            assert_eq!(e.exit_code(), 4, "{e}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mapping_axis_parses_loop_orders_and_derives_the_dataflow() {
        for (text, arch) in [
            ("mnk", Architecture::Pacq),
            ("nmk", Architecture::Pacq),
            ("mkn", Architecture::InputStationary),
            ("kmn", Architecture::InputStationary),
            ("nkm", Architecture::PackedK),
            ("knm", Architecture::PackedK),
            ("knm@16x16", Architecture::PackedK),
        ] {
            let m = Mapping::parse(text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(m.architecture(), arch, "{text}");
        }
        for bad in [
            "mn",
            "mnkk",
            "mnx",
            "abc",
            "",
            "mnk@8x8",
            "mnk@16x32",
            "@16x16",
        ] {
            let e = Mapping::parse(bad).unwrap_err();
            assert!(e.is_usage(), "{bad}: {e}");
        }
        // The warp-tile error names the constraint.
        let e = Mapping::parse("mnk@8x8").unwrap_err();
        assert!(e.to_string().contains("mma.m16n16k16"), "{e}");
    }

    #[test]
    fn mapping_axis_enumerates_and_conflicts_with_arch() {
        let mut axes = default_axes();
        axes.batch = vec![16];
        let specs = parse_params(&["mapping=mnk,mkn,nkm".to_string()]).unwrap();
        axes.apply(&specs).unwrap();
        let plan = DsePlan::enumerate(&axes, 256, 256);
        // 1 batch × 3 mappings × 2 precisions.
        assert_eq!(plan.jobs().len(), 6);
        let ids: Vec<String> = plan.jobs().iter().map(DseJob::id).collect();
        assert!(
            ids[0].starts_with("b16:pacq:int4:w4:d2:g128:mnk"),
            "{}",
            ids[0]
        );
        assert!(ids.iter().any(|i| i.ends_with(":mkn")), "{ids:?}");
        assert!(ids.iter().any(|i| i.contains(":is:")), "{ids:?}");
        assert!(ids.iter().any(|i| i.contains(":packedk:")), "{ids:?}");

        // mapping + arch fight over the same coordinate: usage error.
        let mut axes = default_axes();
        let specs = parse_params(&["mapping=mnk".to_string(), "arch=pacq".to_string()]).unwrap();
        let e = axes.apply(&specs).unwrap_err();
        assert!(e.is_usage(), "{e}");
        assert!(e.to_string().contains("mapping"), "{e}");
    }

    #[test]
    fn counter_equivalent_permutations_price_identically() {
        // `mnk` and `nmk` share the innermost k loop: same stationarity
        // class, so the search prices them as duplicates of PacQ.
        let mut axes = default_axes();
        axes.batch = vec![16];
        axes.precision = vec![pacq_fp16::WeightPrecision::Int4];
        axes.apply(&parse_params(&["mapping=mnk,nmk".to_string()]).unwrap())
            .unwrap();
        let plan = DsePlan::enumerate(&axes, 256, 256);
        let out = run_dse(&GemmRunner::new(), &plan, Shard::FULL, None).unwrap();
        let [a, b] = &out.rows[..] else {
            panic!("expected 2 rows, got {}", out.rows.len())
        };
        assert_ne!(a.job.id(), b.job.id());
        let (ra, rb) = (a.report.as_ref().unwrap(), b.report.as_ref().unwrap());
        assert_eq!(ra.stats, rb.stats);
        assert_eq!(ra.edp_pj_s.to_bits(), rb.edp_pj_s.to_bits());
    }

    #[test]
    fn best_edp_breaks_ties_by_job_id() {
        // Two counter-equivalent permutations produce bit-identical
        // EDPs; the winner must be the lexicographically first id, not
        // whichever row a thread finished first.
        let mut axes = default_axes();
        axes.batch = vec![16];
        axes.precision = vec![pacq_fp16::WeightPrecision::Int4];
        axes.apply(&parse_params(&["mapping=nmk,mnk".to_string()]).unwrap())
            .unwrap();
        let plan = DsePlan::enumerate(&axes, 256, 256);
        let out = run_dse(&GemmRunner::new(), &plan, Shard::FULL, None).unwrap();
        let (job, _) = best_edp(&out.rows).unwrap();
        assert!(job.id().ends_with(":mnk"), "{}", job.id());

        // And reversing row order must not move the winner.
        let mut reversed = out.rows.clone();
        reversed.reverse();
        let (again, _) = best_edp(&reversed).unwrap();
        assert_eq!(again.id(), job.id());

        assert!(best_edp(&[]).is_none());
    }

    #[test]
    fn resumed_rows_rehydrate_from_the_cache() {
        // The resume-then-rank regression: a second pass over a full
        // checkpoint used to return report-less rows, silently dropping
        // every resumed point from best-EDP rankings. With a cache
        // attached, the skipped rows now rehydrate to the first pass's
        // exact reports.
        use std::sync::Arc;
        let dir = std::env::temp_dir().join(format!("pacq-dse-rehydrate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path =
            std::env::temp_dir().join(format!("pacq-dse-rehydrate-{}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let mut axes = default_axes();
        axes.batch = vec![16, 32];
        axes.arch = vec![Architecture::Pacq, Architecture::InputStationary];
        let plan = DsePlan::enumerate(&axes, 256, 256);
        let cache = Arc::new(pacq_cache::ReportCache::open(&dir).unwrap());
        let base = GemmRunner::new().with_cache(Arc::clone(&cache));

        let first = {
            let ckpt = SweepCheckpoint::open(&path, &plan.binding_digest(&base)).unwrap();
            run_dse(&base, &plan, Shard::FULL, Some(&ckpt)).unwrap()
        };
        let ckpt = SweepCheckpoint::open(&path, &plan.binding_digest(&base)).unwrap();
        let second = run_dse(&base, &plan, Shard::FULL, Some(&ckpt)).unwrap();
        assert_eq!(second.tally.executed, 0);
        assert_eq!(second.tally.skipped, second.tally.selected);
        for (f, s) in first.rows.iter().zip(&second.rows) {
            let rehydrated = s.report.as_ref().expect("resumed row rehydrates");
            let fresh = f.report.as_ref().unwrap();
            assert_eq!(fresh.edp_pj_s.to_bits(), rehydrated.edp_pj_s.to_bits());
            assert_eq!(fresh.stats, rehydrated.stats);
        }
        // And the resumed ranking equals the fresh one.
        let (fj, fr) = best_edp(&first.rows).unwrap();
        let (sj, sr) = best_edp(&second.rows).unwrap();
        assert_eq!(fj.id(), sj.id());
        assert_eq!(fr.edp_pj_s.to_bits(), sr.edp_pj_s.to_bits());

        // Without the cache the rows stay report-less (the caller then
        // flags the ranking as partial).
        let bare = GemmRunner::new();
        let ckpt = SweepCheckpoint::open(&path, &plan.binding_digest(&bare));
        // Different provenance (no cache does not change provenance, so
        // this open succeeds against the same binding).
        let ckpt = ckpt.unwrap();
        let dry = run_dse(&bare, &plan, Shard::FULL, Some(&ckpt)).unwrap();
        assert!(dry.rows.iter().all(|r| r.report.is_none()));

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_resume_skips_done_jobs() {
        let path =
            std::env::temp_dir().join(format!("pacq-dse-resume-{}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut axes = default_axes();
        axes.batch = vec![16, 32];
        let plan = DsePlan::enumerate(&axes, 256, 256);
        let base = GemmRunner::new();

        {
            let ckpt = SweepCheckpoint::open(&path, &plan.binding_digest(&base)).unwrap();
            let first = run_dse(&base, &plan, Shard { index: 1, count: 2 }, Some(&ckpt)).unwrap();
            assert_eq!(first.tally.executed, first.tally.selected);
        }
        let ckpt = SweepCheckpoint::open(&path, &plan.binding_digest(&base)).unwrap();
        let again = run_dse(&base, &plan, Shard { index: 1, count: 2 }, Some(&ckpt)).unwrap();
        assert_eq!(again.tally.executed, 0);
        assert_eq!(again.tally.skipped, again.tally.selected);
        // The other shard's jobs are untouched by that checkpoint.
        let other = run_dse(&base, &plan, Shard { index: 2, count: 2 }, Some(&ckpt)).unwrap();
        assert_eq!(other.tally.skipped, 0);
        let _ = std::fs::remove_file(&path);
    }
}
