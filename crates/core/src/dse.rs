//! The design-space-exploration engine behind `pacq dse`.
//!
//! Where `pacq sweep --param grid` walks one fixed batch × architecture
//! × precision grid over the hardcoded machine, `pacq dse` grid-searches
//! *design points*: batch sizes, dataflows (architectures), weight
//! precisions, DP widths, adder-tree duplications and group geometries,
//! all over a machine described by an architecture template (or the
//! builtin Volta-like configuration). It reuses the sweep machinery
//! wholesale — `--shard i/N` residue classes, `--checkpoint FILE`
//! resume bound to the (grid × machine × template × backend) digest,
//! the `--cache DIR` report store, the rayon worker pool — so dse runs
//! are interruptible, splittable and memoized the same way sweeps are.
//!
//! Axes are spelled as repeated `--param name=v1,v2,...` flags (see
//! [`crate::params`]); every axis the user does not name keeps its
//! default, which is chosen so that a flag-less `pacq dse` over a
//! committed builtin-equivalent template enumerates exactly the
//! `sweep --param grid` jobs and reproduces its reports bit for bit.

use rayon::prelude::*;

use crate::params::ParamSpec;
use crate::report::GemmReport;
use crate::runner::GemmRunner;
use crate::sweep::SweepTally;
use pacq_cache::{grid_digest, Shard, SweepCheckpoint};
use pacq_error::{PacqError, PacqResult};
use pacq_fp16::WeightPrecision;
use pacq_quant::GroupShape;
use pacq_simt::{Architecture, GemmShape, Workload};

fn err(msg: impl Into<String>) -> PacqError {
    PacqError::usage(msg)
}

/// The search axes of one dse invocation. Axis order inside each list
/// is significant (it defines job enumeration order and therefore row
/// order, shard classes and the checkpoint binding).
#[derive(Debug, Clone, PartialEq)]
pub struct DseAxes {
    /// Batch sizes (`m` extents).
    pub batch: Vec<usize>,
    /// Architectures (dataflows) to simulate.
    pub arch: Vec<Architecture>,
    /// Weight precisions.
    pub precision: Vec<WeightPrecision>,
    /// DP widths.
    pub width: Vec<usize>,
    /// Adder-tree duplications.
    pub dup: Vec<usize>,
    /// Quantization group geometries.
    pub group: Vec<GroupShape>,
}

impl DseAxes {
    /// The default axes over a base machine: the `sweep --param grid`
    /// batch × architecture × precision product, with width / dup /
    /// group pinned to the machine's own values — so a flag-less dse
    /// over a builtin-equivalent template reproduces the grid sweep's
    /// reports bit for bit.
    pub fn defaults(base_width: usize, base_dup: usize, base_group: GroupShape) -> DseAxes {
        DseAxes {
            batch: vec![16, 32, 64, 128, 256, 512],
            arch: vec![
                Architecture::StandardDequant,
                Architecture::PackedK,
                Architecture::Pacq,
            ],
            precision: vec![WeightPrecision::Int4, WeightPrecision::Int2],
            width: vec![base_width],
            dup: vec![base_dup],
            group: vec![base_group],
        }
    }

    /// Applies validated `--param name=v1,v2` specs onto the defaults.
    ///
    /// # Errors
    ///
    /// Returns [`PacqError::Usage`] for an unknown axis name, a bare
    /// spec with no values, or an unparseable value (each axis reuses
    /// the corresponding single-flag parser, so `--param arch=pacq`
    /// accepts exactly what `--arch pacq` does).
    pub fn apply(&mut self, specs: &[ParamSpec]) -> PacqResult<()> {
        for spec in specs {
            if spec.values.is_empty() {
                return Err(err(format!(
                    "--param {}: dse wants values, e.g. --param {}=...",
                    spec.name, spec.name
                )));
            }
            let values = &spec.values;
            match spec.name.as_str() {
                "batch" => {
                    self.batch = values
                        .iter()
                        .map(|v| {
                            let m: usize = v
                                .parse()
                                .map_err(|_| err(format!("--param batch: bad batch `{v}`")))?;
                            if m == 0 || !m.is_multiple_of(16) {
                                return Err(err(format!(
                                    "--param batch: batch `{v}` must be a non-zero multiple of 16"
                                )));
                            }
                            Ok(m)
                        })
                        .collect::<PacqResult<Vec<usize>>>()?;
                }
                "arch" => {
                    self.arch = values
                        .iter()
                        .map(|v| crate::cli::parse_arch(v))
                        .collect::<PacqResult<Vec<Architecture>>>()?;
                }
                "precision" => {
                    self.precision = values
                        .iter()
                        .map(|v| crate::cli::parse_precision(v))
                        .collect::<PacqResult<Vec<WeightPrecision>>>()?;
                }
                "width" => {
                    self.width = values
                        .iter()
                        .map(|v| match v.parse() {
                            Ok(w @ (4 | 8 | 16)) => Ok(w),
                            _ => Err(err(format!("--param width: `{v}` must be 4, 8 or 16"))),
                        })
                        .collect::<PacqResult<Vec<usize>>>()?;
                }
                "dup" => {
                    self.dup = values
                        .iter()
                        .map(|v| match v.parse() {
                            Ok(d @ (1 | 2 | 4)) => Ok(d),
                            _ => Err(err(format!("--param dup: `{v}` must be 1, 2 or 4"))),
                        })
                        .collect::<PacqResult<Vec<usize>>>()?;
                }
                "group" => {
                    self.group = values
                        .iter()
                        .map(|v| crate::cli::parse_group(v))
                        .collect::<PacqResult<Vec<GroupShape>>>()?;
                }
                other => {
                    return Err(err(format!(
                        "--param {other}: unknown dse axis (batch, arch, precision, width, dup, group)"
                    )))
                }
            }
        }
        Ok(())
    }
}

/// One dse design point: a full (workload × architecture × datapath ×
/// group) coordinate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DseJob {
    /// The architecture (dataflow) to simulate.
    pub arch: Architecture,
    /// The workload (batch × layer × precision).
    pub workload: Workload,
    /// DP width for this point.
    pub width: usize,
    /// Adder-tree duplication for this point.
    pub dup: usize,
    /// Quantization group geometry for this point.
    pub group: GroupShape,
}

impl DseJob {
    /// The job's stable id — checkpoint line format, newline-free.
    pub fn id(&self) -> String {
        format!(
            "b{}:{}:{}:w{}:d{}:{}",
            self.workload.shape.m,
            pacq_cache::arch_token(self.arch),
            pacq_cache::precision_token(self.workload.precision),
            self.width,
            self.dup,
            self.group,
        )
    }
}

/// A fully enumerated dse search with a content digest binding
/// checkpoints to it.
#[derive(Debug, Clone)]
pub struct DsePlan {
    jobs: Vec<DseJob>,
}

impl DsePlan {
    /// Enumerates the axis product over an `n×k` layer, nesting (outer
    /// to inner) batch, arch, precision, width, dup, group.
    pub fn enumerate(axes: &DseAxes, n: usize, k: usize) -> DsePlan {
        let mut jobs = Vec::new();
        for &m in &axes.batch {
            for &arch in &axes.arch {
                for &precision in &axes.precision {
                    for &width in &axes.width {
                        for &dup in &axes.dup {
                            for &group in &axes.group {
                                jobs.push(DseJob {
                                    arch,
                                    workload: Workload::new(GemmShape::new(m, n, k), precision),
                                    width,
                                    dup,
                                    group,
                                });
                            }
                        }
                    }
                }
            }
        }
        DsePlan { jobs }
    }

    /// The search's jobs in enumeration order.
    pub fn jobs(&self) -> &[DseJob] {
        &self.jobs
    }

    /// A digest over every job id (order-sensitive).
    pub fn digest(&self) -> String {
        let ids: Vec<String> = self.jobs.iter().map(DseJob::id).collect();
        grid_digest(&ids.join("\n"))
    }

    /// The checkpoint binding: this search's digest plus the *base*
    /// runner's full provenance (machine, template identity, backend —
    /// see [`crate::sweep::SweepPlan::binding_digest`] for why job ids
    /// alone under-bind). Per-job width/dup/group variations are
    /// already in the job ids.
    pub fn binding_digest(&self, base: &GemmRunner) -> String {
        grid_digest(&format!(
            "{grid}\n{provenance}",
            grid = self.digest(),
            provenance = base.provenance()
        ))
    }
}

/// One completed (or checkpoint-skipped) dse row.
#[derive(Debug, Clone)]
pub struct DseRow {
    /// The design point this row answers.
    pub job: DseJob,
    /// The report, or `None` when the checkpoint already records the
    /// job as done.
    pub report: Option<GemmReport>,
}

/// The result of [`run_dse`]: rows in enumeration order (restricted to
/// this shard) plus the selection/skip/execution tally.
#[derive(Debug, Clone)]
pub struct DseOutcome {
    /// This shard's rows, in enumeration order.
    pub rows: Vec<DseRow>,
    /// Selection/skip/execution accounting.
    pub tally: SweepTally,
}

/// Runs `plan` against the base runner, deriving each job's runner by
/// overriding the datapath knobs (width, dup) and group geometry on the
/// base — the base's machine capacities, energy model, template
/// identity, cache handle and backend all carry over, so cache keys and
/// the checkpoint binding see the template behind every point.
///
/// # Errors
///
/// Returns the first failing job's error in enumeration order, or a
/// checkpoint I/O error.
pub fn run_dse(
    base: &GemmRunner,
    plan: &DsePlan,
    shard: Shard,
    checkpoint: Option<&SweepCheckpoint>,
) -> PacqResult<DseOutcome> {
    let _span = pacq_trace::span("core.dse");
    let mut tally = SweepTally {
        total: plan.jobs().len(),
        ..SweepTally::default()
    };

    let mut skipped_rows = Vec::new();
    let mut to_run = Vec::new();
    for (index, job) in plan.jobs().iter().enumerate() {
        if !shard.selects(index) {
            continue;
        }
        tally.selected += 1;
        if checkpoint.is_some_and(|c| c.is_done(&job.id())) {
            tally.skipped += 1;
            skipped_rows.push((
                index,
                DseRow {
                    job: *job,
                    report: None,
                },
            ));
        } else {
            tally.executed += 1;
            to_run.push((index, *job));
        }
    }

    let reports: Vec<PacqResult<(usize, DseRow)>> = to_run
        .into_par_iter()
        .map(|(index, job)| {
            let mut cfg = *base.config();
            cfg.dp_width = job.width;
            cfg.adder_tree_duplication = job.dup;
            let runner = base.clone().with_config(cfg).with_group(job.group);
            let report = runner.analyze(job.arch, job.workload)?;
            if let Some(c) = checkpoint {
                c.mark_done(&job.id())?;
            }
            Ok((
                index,
                DseRow {
                    job,
                    report: Some(report),
                },
            ))
        })
        .collect();

    let mut rows = reports
        .into_iter()
        .collect::<PacqResult<Vec<(usize, DseRow)>>>()?;
    rows.extend(skipped_rows);
    rows.sort_by_key(|(index, _)| *index);

    pacq_trace::add_counter("dse.jobs.total", tally.total as u64);
    pacq_trace::add_counter("dse.jobs.selected", tally.selected as u64);
    pacq_trace::add_counter("dse.jobs.skipped", tally.skipped as u64);
    pacq_trace::add_counter("dse.jobs.executed", tally.executed as u64);

    Ok(DseOutcome {
        rows: rows.into_iter().map(|(_, row)| row).collect(),
        tally,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::parse_params;
    use crate::sweep::{run_sweep, SweepPlan};

    fn default_axes() -> DseAxes {
        DseAxes::defaults(4, 2, GroupShape::G128)
    }

    #[test]
    fn default_axes_reproduce_the_grid_sweep_bit_for_bit() {
        // The reproduction contract: a flag-less dse over the builtin
        // machine enumerates exactly the sweep --param grid jobs and
        // prices them identically.
        let runner = GemmRunner::new();
        let plan = DsePlan::enumerate(&default_axes(), 256, 256);
        let grid = SweepPlan::batch_grid(256, 256);
        assert_eq!(plan.jobs().len(), grid.jobs().len());

        let dse = run_dse(&runner, &plan, Shard::FULL, None).unwrap();
        let sweep = run_sweep(&runner, &grid, Shard::FULL, None).unwrap();
        for (d, s) in dse.rows.iter().zip(&sweep.rows) {
            let (dr, sr) = (d.report.as_ref().unwrap(), s.report.as_ref().unwrap());
            assert_eq!(d.job.arch, s.job.arch);
            assert_eq!(d.job.workload, s.job.workload);
            assert_eq!(dr.stats, sr.stats);
            assert_eq!(dr.edp_pj_s.to_bits(), sr.edp_pj_s.to_bits());
            assert_eq!(
                dr.total_energy_pj().to_bits(),
                sr.total_energy_pj().to_bits()
            );
        }
    }

    #[test]
    fn params_reshape_the_axes() {
        let mut axes = default_axes();
        let specs = parse_params(&[
            "batch=16,32".to_string(),
            "arch=pacq".to_string(),
            "width=4,8".to_string(),
            "dup=1,4".to_string(),
            "group=g64".to_string(),
        ])
        .unwrap();
        axes.apply(&specs).unwrap();
        assert_eq!(axes.batch, [16, 32]);
        assert_eq!(axes.arch, [Architecture::Pacq]);
        assert_eq!(axes.width, [4, 8]);
        assert_eq!(axes.dup, [1, 4]);
        let plan = DsePlan::enumerate(&axes, 256, 256);
        // 2 batches × 1 arch × 2 precisions × 2 widths × 2 dups × 1 group.
        assert_eq!(plan.jobs().len(), 16);
        // Ids are unique and carry every coordinate.
        let mut ids: Vec<String> = plan.jobs().iter().map(DseJob::id).collect();
        assert!(ids[0].starts_with("b16:pacq:int4:w4:d1:g64"), "{}", ids[0]);
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 16);
    }

    #[test]
    fn bad_axis_specs_are_usage_errors() {
        for spec in [
            "batch",          // bare name: dse wants values
            "batch=15",       // not 16-aligned
            "batch=0",        // zero
            "width=5",        // out of domain
            "dup=3",          // out of domain
            "arch=quantum",   // unknown arch
            "precision=int5", // unknown precision
            "group=h128",     // unknown group
            "tile=4",         // unknown axis
        ] {
            let mut axes = default_axes();
            let specs = parse_params(&[spec.to_string()]).unwrap();
            let e = axes.apply(&specs).unwrap_err();
            assert!(e.is_usage(), "{spec}: {e}");
            assert_eq!(e.exit_code(), 2, "{spec}");
        }
    }

    #[test]
    fn checkpoint_binding_covers_the_base_runner() {
        use pacq_fp16::Backend;
        let path =
            std::env::temp_dir().join(format!("pacq-dse-binding-{}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let plan = DsePlan::enumerate(&default_axes(), 256, 256);
        let base = GemmRunner::new();
        drop(SweepCheckpoint::open(&path, &plan.binding_digest(&base)).unwrap());

        for other in [
            GemmRunner::new().with_backend(Backend::Batched),
            GemmRunner::new().with_template_digest("deadbeef"),
        ] {
            let e = SweepCheckpoint::open(&path, &plan.binding_digest(&other)).unwrap_err();
            assert_eq!(e.exit_code(), 4, "{e}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sharded_resume_skips_done_jobs() {
        let path =
            std::env::temp_dir().join(format!("pacq-dse-resume-{}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut axes = default_axes();
        axes.batch = vec![16, 32];
        let plan = DsePlan::enumerate(&axes, 256, 256);
        let base = GemmRunner::new();

        {
            let ckpt = SweepCheckpoint::open(&path, &plan.binding_digest(&base)).unwrap();
            let first = run_dse(&base, &plan, Shard { index: 1, count: 2 }, Some(&ckpt)).unwrap();
            assert_eq!(first.tally.executed, first.tally.selected);
        }
        let ckpt = SweepCheckpoint::open(&path, &plan.binding_digest(&base)).unwrap();
        let again = run_dse(&base, &plan, Shard { index: 1, count: 2 }, Some(&ckpt)).unwrap();
        assert_eq!(again.tally.executed, 0);
        assert_eq!(again.tally.skipped, again.tally.selected);
        // The other shard's jobs are untouched by that checkpoint.
        let other = run_dse(&base, &plan, Shard { index: 2, count: 2 }, Some(&ckpt)).unwrap();
        assert_eq!(other.tally.skipped, 0);
        let _ = std::fs::remove_file(&path);
    }
}
