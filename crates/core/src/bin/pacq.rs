//! `pacq` — command-line front end to the simulator. See
//! [`pacq::cli::USAGE`] or run `pacq help`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match pacq::cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            // One diagnostic line, never a backtrace; the exit code
            // encodes the error class (see DESIGN.md §10).
            eprintln!("error: {e}");
            if e.is_usage() {
                eprintln!();
                eprintln!("{}", pacq::cli::USAGE);
            }
            ExitCode::from(e.exit_code())
        }
    }
}
