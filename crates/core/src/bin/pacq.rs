//! `pacq` — command-line front end to the simulator. See
//! [`pacq::cli::USAGE`] or run `pacq help`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match pacq::cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", pacq::cli::USAGE);
            ExitCode::FAILURE
        }
    }
}
