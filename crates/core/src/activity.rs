//! Activity-calibration driver: the bridge from gate-level toggle
//! measurement (`pacq-rtl`) through the per-gate-class energy BOM
//! (`pacq-energy`) to the analytic multiplier constants the rest of the
//! simulator prices with.
//!
//! `pacq audit --activity` runs [`calibrate`] over both multiplier
//! netlists at both weight precisions and cross-checks each
//! activity-derived pJ/op figure against its analytic counterpart
//! within a declared tolerance; [`mul_override`] turns the same
//! measurements into the [`MulEnergyOverride`] the `pacq-simt` energy
//! model accepts as an `activity_calibrated` source.

use pacq_energy::{ActivityBom, GemmUnit};
use pacq_error::PacqResult;
use pacq_fp16::WeightPrecision;
use pacq_rtl::{measure, ActivityProfile, MulKind};
use pacq_simt::MulEnergyOverride;

/// Operations per reference stimulus stream (the anchoring constant
/// `pacq_energy::PJ_PER_TOGGLE_GE` is pinned against this run length).
pub const DEFAULT_OPS: u64 = 2048;

/// Seed of the reference stimulus stream.
pub const DEFAULT_SEED: u64 = 0x5EED;

/// Default maximum relative error between analytic and activity-derived
/// multiplier energy before `pacq audit --activity` reports a mismatch.
///
/// Wide by design: the toggle proxy and the paper-calibrated constants
/// diverge structurally (the gate-level INT2 build duplicates the
/// 4-lane array where the analytic model assumes one shared unit, and
/// toggle counting carries no synthesis-level operand gating or
/// activity derating). The worst in-tree divergence is ≈ 2.9× on the
/// parallel INT2 point; 4.0 covers it with headroom while still
/// catching order-of-magnitude regressions in either model. See
/// DESIGN.md (activity calibration) for the full accounting.
pub const DEFAULT_TOLERANCE: f64 = 4.0;

/// One audited point: a multiplier netlist at a weight precision, with
/// its analytic and activity-derived energy figures.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitCalibration {
    /// The toggle measurement this point was priced from.
    pub profile: ActivityProfile,
    /// The analytic model's energy per product, in pJ.
    pub analytic_pj_per_op: f64,
    /// The activity-derived energy per product, in pJ.
    pub activity_pj_per_op: f64,
    /// The activity-derived energy per fully-active cycle, in pJ.
    pub activity_pj_per_cycle: f64,
}

impl UnitCalibration {
    /// Signed relative error of the activity figure against the
    /// analytic one: `(activity − analytic) / analytic`.
    pub fn rel_error(&self) -> f64 {
        (self.activity_pj_per_op - self.analytic_pj_per_op) / self.analytic_pj_per_op
    }

    /// Stable unit token used in audit counters and manifests.
    pub fn unit_token(&self) -> &'static str {
        self.profile.kind.token()
    }

    /// Stable lowercase precision token (`int4` / `int2`).
    pub fn precision_token(&self) -> &'static str {
        match self.profile.precision {
            WeightPrecision::Int4 => "int4",
            WeightPrecision::Int2 => "int2",
        }
    }
}

/// The analytic unit a multiplier netlist reproduces.
pub fn analytic_unit(kind: MulKind) -> GemmUnit {
    match kind {
        MulKind::Baseline => GemmUnit::BaselineFp16Mul,
        MulKind::Parallel => GemmUnit::ParallelFpIntMul,
    }
}

/// Measures one multiplier netlist at one precision and prices it
/// through `bom`.
///
/// # Errors
///
/// Propagates typed errors from the netlist measurement (degenerate
/// stream) and the BOM pricing (gate class missing).
pub fn calibrate_unit(
    bom: &ActivityBom,
    kind: MulKind,
    precision: WeightPrecision,
    ops: u64,
    seed: u64,
) -> PacqResult<UnitCalibration> {
    let profile = measure(kind, precision, ops, seed)?;
    let run_pj = bom.price_pj(&profile.toggles_by_class)?;
    let activity_pj_per_cycle = run_pj / profile.transitions() as f64;
    let activity_pj_per_op = activity_pj_per_cycle / profile.lanes as f64;
    let unit = analytic_unit(kind);
    let analytic_pj_per_op = unit.energy_per_cycle_pj() / unit.products_per_cycle(Some(precision));
    Ok(UnitCalibration {
        profile,
        analytic_pj_per_op,
        activity_pj_per_op,
        activity_pj_per_cycle,
    })
}

/// Calibrates every audited point, in audit order: baseline INT4,
/// parallel INT4, baseline INT2, parallel INT2 — the order `pacq audit
/// --activity` scans when naming the first diverging unit.
///
/// # Errors
///
/// Propagates the first typed error from [`calibrate_unit`].
pub fn calibrate(bom: &ActivityBom, ops: u64, seed: u64) -> PacqResult<Vec<UnitCalibration>> {
    let mut points = Vec::with_capacity(4);
    for precision in [WeightPrecision::Int4, WeightPrecision::Int2] {
        for kind in MulKind::ALL {
            points.push(calibrate_unit(bom, kind, precision, ops, seed)?);
        }
    }
    Ok(points)
}

/// The activity-calibrated multiplier override for the `pacq-simt`
/// energy model, from the INT4 calibration points (the paper's primary
/// configuration — the DP units the simulator prices are built for
/// 4-lane words).
///
/// # Errors
///
/// Propagates typed errors from [`calibrate_unit`].
pub fn mul_override(bom: &ActivityBom, ops: u64, seed: u64) -> PacqResult<MulEnergyOverride> {
    let baseline = calibrate_unit(bom, MulKind::Baseline, WeightPrecision::Int4, ops, seed)?;
    let parallel = calibrate_unit(bom, MulKind::Parallel, WeightPrecision::Int4, ops, seed)?;
    Ok(MulEnergyOverride {
        baseline_pj_per_cycle: baseline.activity_pj_per_cycle,
        parallel_pj_per_cycle: parallel.activity_pj_per_cycle,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_calibration_is_within_the_default_tolerance() {
        let bom = ActivityBom::calibrated();
        let points = calibrate(&bom, DEFAULT_OPS, DEFAULT_SEED).unwrap();
        assert_eq!(points.len(), 4);
        for p in &points {
            assert!(
                p.rel_error().abs() <= DEFAULT_TOLERANCE,
                "{} {}: rel error {:.3} exceeds default tolerance",
                p.unit_token(),
                p.precision_token(),
                p.rel_error()
            );
        }
        // The anchoring point: baseline INT4 reproduces the analytic
        // 0.9 pJ/op within a percent (the constant is pinned there).
        let anchor = &points[0];
        assert_eq!(anchor.unit_token(), "baseline");
        assert_eq!(anchor.precision_token(), "int4");
        assert!(
            anchor.rel_error().abs() < 0.01,
            "anchor rel error {:.4}",
            anchor.rel_error()
        );
    }

    #[test]
    fn calibration_points_are_ordered_and_deterministic() {
        let bom = ActivityBom::calibrated();
        let a = calibrate(&bom, 64, DEFAULT_SEED).unwrap();
        let b = calibrate(&bom, 64, DEFAULT_SEED).unwrap();
        assert_eq!(a, b);
        let tokens: Vec<(&str, &str)> = a
            .iter()
            .map(|p| (p.unit_token(), p.precision_token()))
            .collect();
        assert_eq!(
            tokens,
            vec![
                ("baseline", "int4"),
                ("parallel", "int4"),
                ("baseline", "int2"),
                ("parallel", "int2"),
            ]
        );
    }

    #[test]
    fn override_carries_the_int4_per_cycle_figures() {
        let bom = ActivityBom::calibrated();
        let ov = mul_override(&bom, 128, DEFAULT_SEED).unwrap();
        let points = calibrate(&bom, 128, DEFAULT_SEED).unwrap();
        assert_eq!(ov.baseline_pj_per_cycle, points[0].activity_pj_per_cycle);
        assert_eq!(ov.parallel_pj_per_cycle, points[1].activity_pj_per_cycle);
        assert!(ov.baseline_pj_per_cycle > 0.0);
        assert!(ov.parallel_pj_per_cycle > ov.baseline_pj_per_cycle);
    }

    #[test]
    fn degenerate_streams_and_gutted_boms_are_typed_errors() {
        let bom = ActivityBom::calibrated();
        assert!(calibrate(&bom, 1, DEFAULT_SEED).is_err());
        let gutted = ActivityBom::calibrated().without_class("xor");
        let e = calibrate(&gutted, 16, DEFAULT_SEED).unwrap_err();
        assert!(e.to_string().contains("missing from activity BOM"), "{e}");
    }
}
