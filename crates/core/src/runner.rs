//! The high-level GEMM runner: one object that quantizes, packs,
//! simulates, executes and prices a hyper-asymmetric GEMM on any of the
//! three architectures.

use std::sync::Arc;

use crate::report::GemmReport;
use pacq_cache::{arch_token, config_canonical, CacheKey, CachedReport, ReportCache};
use pacq_error::PacqResult;
use pacq_fp16::{Backend, NumericsMode, WeightPrecision};
use pacq_quant::{GroupShape, MatrixF16, MatrixF32, PackDim, PackedMatrix, RtnQuantizer};
use pacq_simt::{execute_with_backend, simulate, Architecture, EnergyModel, SmConfig, Workload};
use rayon::prelude::*;

/// End-to-end runner with a fixed machine configuration, quantization
/// group geometry and numerics mode.
///
/// # Examples
///
/// ```
/// use pacq::{Architecture, GemmRunner, GemmShape, Workload};
/// use pacq_fp16::WeightPrecision;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let runner = GemmRunner::new();
/// let wl = Workload::new(GemmShape::new(16, 256, 256), WeightPrecision::Int4);
/// let base = runner.analyze(Architecture::StandardDequant, wl)?;
/// let pacq = runner.analyze(Architecture::Pacq, wl)?;
/// assert!(pacq.edp_pj_s < base.edp_pj_s);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GemmRunner {
    config: SmConfig,
    group: GroupShape,
    numerics: NumericsMode,
    backend: Backend,
    cache: Option<Arc<ReportCache>>,
    record_results: bool,
    /// Explicit per-level energy model (from an architecture template).
    /// `None` means the capacity-derived defaults of
    /// [`EnergyModel::new`].
    energy: Option<EnergyModel>,
    /// Content digest of the architecture template this runner was built
    /// from, if any. Folded into [`GemmRunner::arch_id`] so cache
    /// entries and checkpoints are bound to the template's content.
    template_digest: Option<String>,
}

impl GemmRunner {
    /// A runner with the Table I Volta-like configuration, `g128` groups
    /// and the paper's product-rounding numerics.
    pub fn new() -> Self {
        GemmRunner {
            config: SmConfig::volta_like(),
            group: GroupShape::G128,
            numerics: NumericsMode::PaperRounded,
            backend: Backend::Scalar,
            cache: None,
            record_results: true,
            energy: None,
            template_digest: None,
        }
    }

    /// Replaces the machine configuration.
    pub fn with_config(mut self, config: SmConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces the energy model with explicit per-level SRAM models (an
    /// architecture template's energy overrides). Without this, pricing
    /// uses the capacity-derived [`EnergyModel::new`] defaults.
    pub fn with_energy_model(mut self, energy: EnergyModel) -> Self {
        self.energy = Some(energy);
        self
    }

    /// Records the content digest of the architecture template this
    /// runner was configured from. The digest becomes part of
    /// [`GemmRunner::arch_id`], so editing the template invalidates
    /// cache entries and checkpoint bindings even when the edit happens
    /// to leave every `SmConfig` field unchanged.
    pub fn with_template_digest(mut self, digest: impl Into<String>) -> Self {
        self.template_digest = Some(digest.into());
        self
    }

    /// Replaces the quantization group geometry.
    pub fn with_group(mut self, group: GroupShape) -> Self {
        self.group = group;
        self
    }

    /// Replaces the PacQ datapath numerics mode.
    pub fn with_numerics(mut self, numerics: NumericsMode) -> Self {
        self.numerics = numerics;
        self
    }

    /// Replaces the functional compute backend. Both backends produce
    /// bit-identical results — the choice only affects [`GemmRunner::execute`]
    /// throughput, so it is deliberately *not* part of
    /// [`GemmRunner::cache_key`].
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Attaches a content-addressed report cache: [`GemmRunner::analyze`]
    /// looks points up before simulating and stores fresh results after.
    pub fn with_cache(mut self, cache: Arc<ReportCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// [`GemmRunner::with_cache`] for an optional handle (the common CLI
    /// shape, where `--cache` may or may not be present).
    pub fn with_cache_opt(mut self, cache: Option<Arc<ReportCache>>) -> Self {
        self.cache = cache;
        self
    }

    /// Disables per-analysis result records in the metrics collector.
    ///
    /// Figure sweeps and `pacq exec` want one result record per point —
    /// that is what the manifest-determinism CI job diffs. A serving
    /// process answering an unbounded request stream must not: with
    /// recording on, a million-request `pacq serve --metrics` run
    /// accumulates a million `gemm_report` records and renders a ~1 GB
    /// manifest at drain time. The serve path turns recording off and
    /// accounts for traffic through its `serve.*` counters instead.
    pub fn without_result_recording(mut self) -> Self {
        self.record_results = false;
        self
    }

    /// The attached report cache, if any.
    pub fn cache(&self) -> Option<&Arc<ReportCache>> {
        self.cache.as_ref()
    }

    /// The machine configuration.
    pub fn config(&self) -> &SmConfig {
        &self.config
    }

    /// The quantization group geometry.
    pub fn group(&self) -> GroupShape {
        self.group
    }

    /// The functional compute backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Analytically simulates `workload` on `arch` and prices it.
    ///
    /// In debug builds every report is additionally audited against the
    /// EDP/energy-BOM/Figure-7 invariants
    /// ([`GemmReport::check_invariants`]); release builds defer that
    /// check to `pacq audit`.
    ///
    /// # Errors
    ///
    /// Propagates [`pacq_simt::simulate`]'s shape/config errors, and (in
    /// debug builds) [`pacq_error::PacqError::AuditMismatch`] if the
    /// priced report violates its own accounting identities.
    pub fn analyze(&self, arch: Architecture, workload: Workload) -> PacqResult<GemmReport> {
        let _span = pacq_trace::span("core.analyze");
        let report = match &self.cache {
            Some(cache) => {
                let key = self.cache_key(arch, workload);
                match cache.get(&key).and_then(Self::accept_hit) {
                    Some(report) => report,
                    None => {
                        let fresh = self.price(arch, workload)?;
                        cache.put_degraded(&key, &fresh.to_cached());
                        fresh
                    }
                }
            }
            None => self.price(arch, workload)?,
        };
        // Cache hits record their result too, so a run served from the
        // store produces a manifest bit-identical (modulo timings) to a
        // fresh one — the property the CI determinism job asserts.
        if self.record_results && pacq_trace::is_enabled() {
            pacq_trace::record_result(
                format!("{}|{}", report.workload, report.arch),
                report.metrics_json(),
            );
        }
        Ok(report)
    }

    /// The energy model pricing this runner's reports: the template's
    /// explicit per-level model when one is attached, otherwise the
    /// capacity-derived defaults for this configuration.
    pub fn energy_model(&self) -> EnergyModel {
        match &self.energy {
            Some(model) => model.clone(),
            None => EnergyModel::new(&self.config),
        }
    }

    /// Simulates and prices one point (the uncached core of
    /// [`GemmRunner::analyze`]).
    fn price(&self, arch: Architecture, workload: Workload) -> PacqResult<GemmReport> {
        let stats = simulate(arch, workload, &self.config, self.group)?;
        let model = self.energy_model();
        let energy = model.energy(arch, &self.config, &stats);
        let edp_pj_s = model.edp(&energy, &stats);
        let report = GemmReport {
            arch,
            workload,
            stats,
            energy,
            latency_s: stats.latency_s(self.config.clock_hz),
            edp_pj_s,
        };
        #[cfg(debug_assertions)]
        report.check_invariants()?;
        Ok(report)
    }

    /// The identity of the architecture *definition* behind this runner:
    /// the template content digest (or `builtin` for the hardcoded
    /// configurations) plus the resolved per-level access energies of the
    /// effective energy model, as exact bit patterns.
    ///
    /// This is the cache-correctness linchpin for templates: `SmConfig`
    /// does not carry access energies, so two templates sharing every
    /// config field but differing in one `access_energy_pj_per_word16`
    /// produce identical `SmConfig`s — and before this segment existed
    /// they collided into one cache entry and one checkpoint binding.
    pub fn arch_id(&self) -> String {
        let source = match &self.template_digest {
            Some(digest) => format!("tpl:{digest}"),
            None => "builtin".to_string(),
        };
        format!("{source};em={}", self.energy_model().energy_canonical())
    }

    /// The full provenance string of this runner for checkpoint binding:
    /// the canonical machine configuration, group geometry, numerics
    /// mode, architecture identity ([`GemmRunner::arch_id`]) and compute
    /// backend. A sweep/dse checkpoint digests this together with the
    /// job grid, so resuming under a different machine, template or
    /// backend is a typed mismatch instead of a silent skip.
    ///
    /// The backend is deliberately part of provenance but *not* of
    /// [`GemmRunner::cache_key`]: backends are bit-identical per point
    /// (cache entries are shareable), but a resumed run's manifest
    /// records one backend for the whole run, so a checkpoint must not
    /// splice two backends into one run.
    pub fn provenance(&self) -> String {
        format!(
            "{cfg};group={group};numerics={numerics};arch={arch};backend={backend}",
            cfg = config_canonical(&self.config),
            group = self.group,
            numerics = self.numerics_token(),
            arch = self.arch_id(),
            backend = match self.backend {
                Backend::Scalar => "scalar",
                Backend::Batched => "batched",
            },
        )
    }

    fn numerics_token(&self) -> &'static str {
        match self.numerics {
            NumericsMode::PaperRounded => "rounded",
            NumericsMode::Wide => "wide",
        }
    }

    /// The content address of one analysis point under this runner: the
    /// machine configuration, the workload, a dataflow string that folds
    /// in everything else report-shaping — architecture token, group
    /// geometry, numerics mode — and the architecture identity
    /// ([`GemmRunner::arch_id`]).
    pub fn cache_key(&self, arch: Architecture, workload: Workload) -> CacheKey {
        let dataflow = format!(
            "{}:{}:{}",
            arch_token(arch),
            self.group,
            self.numerics_token()
        );
        CacheKey::new(
            &self.config,
            workload.shape,
            workload.precision.bits(),
            &dataflow,
            &self.arch_id(),
        )
    }

    /// Probes the attached cache for an already-priced report without
    /// computing on a miss — the rehydration path for checkpoint-resumed
    /// sweep/dse rows, whose reports were priced by an earlier run.
    /// Returns `None` when no cache is attached or the point is absent
    /// (the caller then reports the ranking as partial rather than
    /// silently wrong).
    pub fn cached_report(&self, arch: Architecture, workload: Workload) -> Option<GemmReport> {
        let cache = self.cache.as_ref()?;
        let key = self.cache_key(arch, workload);
        cache.get(&key).and_then(Self::accept_hit)
    }

    /// Converts a stored entry back into a report, rejecting (as a miss)
    /// any entry that decodes but fails the report's own accounting
    /// invariants in debug builds — a tampered entry must degrade to a
    /// recompute, never an error exit.
    fn accept_hit(hit: CachedReport) -> Option<GemmReport> {
        let report = GemmReport::from_cached(hit);
        #[cfg(debug_assertions)]
        if report.check_invariants().is_err() {
            return None;
        }
        Some(report)
    }

    /// Analyzes every `(architecture, workload)` sweep point on the
    /// worker pool, returning reports in input order (the analysis is
    /// deterministic per point, so the sweep result does not depend on
    /// the job count).
    ///
    /// # Errors
    ///
    /// Returns the first point's error in input order; no partial sweep
    /// is returned.
    pub fn analyze_sweep(
        &self,
        points: &[(Architecture, Workload)],
    ) -> PacqResult<Vec<GemmReport>> {
        points
            .to_vec()
            .into_par_iter()
            .map(|(arch, wl)| self.analyze(arch, wl))
            .collect::<Vec<PacqResult<GemmReport>>>()
            .into_iter()
            .collect()
    }

    /// Quantizes FP32 weights with this runner's group geometry and packs
    /// them in the direction `arch` requires (`P(B_x)_n` for PacQ,
    /// `P(B_x)_k` otherwise).
    ///
    /// # Errors
    ///
    /// Propagates the quantizer's degenerate-input errors and the packing
    /// error when the matrix extent is misaligned with the lane count.
    pub fn quantize_and_pack(
        &self,
        weights: &MatrixF32,
        precision: WeightPrecision,
        arch: Architecture,
    ) -> PacqResult<PackedMatrix> {
        let q = RtnQuantizer::new(precision, self.group).quantize(weights)?;
        let dim = match arch {
            Architecture::Pacq => PackDim::N,
            Architecture::PackedK
            | Architecture::StandardDequant
            | Architecture::InputStationary => PackDim::K,
        };
        PackedMatrix::pack(&q, dim)
    }

    /// Functionally executes a GEMM through the modeled datapath.
    ///
    /// # Errors
    ///
    /// See [`pacq_simt::execute`] for the error conditions.
    pub fn execute(
        &self,
        arch: Architecture,
        a: &MatrixF16,
        packed: &PackedMatrix,
    ) -> PacqResult<MatrixF32> {
        execute_with_backend(arch, a, packed, self.numerics, self.backend)
    }
}

impl Default for GemmRunner {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacq_quant::synth::SynthGenerator;
    use pacq_simt::GemmShape;

    #[test]
    fn analyze_produces_consistent_reports() {
        let runner = GemmRunner::new();
        let wl = Workload::new(GemmShape::new(16, 512, 512), WeightPrecision::Int4);
        let r = runner.analyze(Architecture::Pacq, wl).unwrap();
        assert_eq!(r.arch, Architecture::Pacq);
        assert!(r.latency_s > 0.0);
        assert!((r.edp_pj_s - r.total_energy_pj() * r.latency_s).abs() < 1e-9 * r.edp_pj_s);
    }

    #[test]
    fn cached_reports_are_bit_identical_to_fresh_ones() {
        let dir = std::env::temp_dir().join(format!("pacq-runner-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Arc::new(ReportCache::open(&dir).unwrap());
        let runner = GemmRunner::new().with_cache(Arc::clone(&cache));
        let wl = Workload::new(GemmShape::new(16, 512, 512), WeightPrecision::Int4);

        let fresh = runner.analyze(Architecture::Pacq, wl).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let cached = runner.analyze(Architecture::Pacq, wl).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));

        assert_eq!(cached.stats, fresh.stats);
        assert_eq!(cached.latency_s.to_bits(), fresh.latency_s.to_bits());
        assert_eq!(cached.edp_pj_s.to_bits(), fresh.edp_pj_s.to_bits());
        assert_eq!(
            cached.total_energy_pj().to_bits(),
            fresh.total_energy_pj().to_bits()
        );

        // A different architecture is a different key.
        runner.analyze(Architecture::PackedK, wl).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn result_recording_can_be_disabled_for_unbounded_streams() {
        // Serialize against every other test that arms the process-wide
        // collector (the CLI --metrics tests share this lock).
        let _guard = crate::par::test_lock();
        let wl = Workload::new(GemmShape::new(16, 256, 256), WeightPrecision::Int4);

        pacq_trace::enable();
        GemmRunner::new()
            .without_result_recording()
            .analyze(Architecture::Pacq, wl)
            .unwrap();
        let (spans, _, results, _) = pacq_trace::drain();
        assert!(
            results.is_empty(),
            "a serve-path runner must not grow the collector per request"
        );
        assert!(
            spans.iter().any(|s| s.name == "core.analyze"),
            "spans still record (and are bounded by the collector's cap)"
        );

        // The default runner keeps the sweep/exec contract: one result
        // record per analysis.
        GemmRunner::new().analyze(Architecture::Pacq, wl).unwrap();
        let (_, _, results, _) = pacq_trace::drain();
        assert_eq!(results.len(), 1);
        pacq_trace::disable();
    }

    #[test]
    fn cache_key_covers_group_and_numerics() {
        let wl = Workload::new(GemmShape::new(16, 512, 512), WeightPrecision::Int4);
        let base = GemmRunner::new().cache_key(Architecture::Pacq, wl);
        let group = GemmRunner::new()
            .with_group(GroupShape::along_k(32))
            .cache_key(Architecture::Pacq, wl);
        let numerics = GemmRunner::new()
            .with_numerics(NumericsMode::Wide)
            .cache_key(Architecture::Pacq, wl);
        assert_ne!(base, group);
        assert_ne!(base, numerics);
    }

    #[test]
    fn cache_key_covers_energy_overrides_and_template_digest() {
        // The key-binding regression: two runners with identical
        // SmConfigs but different per-level access energies (two
        // templates differing in one energy) must never share an entry.
        use pacq_energy::{MemoryKind, SramModel};
        let wl = Workload::new(GemmShape::new(16, 512, 512), WeightPrecision::Int4);
        let base = GemmRunner::new();
        let cfg = *base.config();
        let bumped = EnergyModel::with_levels(
            SramModel::with_access_energy(
                MemoryKind::RegisterFile,
                cfg.register_file_bytes,
                SramModel::volta_register_file().energy_per_word16_pj() * 1.5,
            )
            .unwrap(),
            SramModel::new(MemoryKind::Cache, cfg.l1_bytes),
            SramModel::dram(),
            SramModel::volta_operand_buffer(),
            cfg.clock_hz,
        );
        let overridden = GemmRunner::new().with_energy_model(bumped);
        assert_ne!(
            base.cache_key(Architecture::Pacq, wl),
            overridden.cache_key(Architecture::Pacq, wl),
            "an access-energy edit must change the cache key"
        );

        // A template digest alone (same resolved config and energies)
        // still separates entries: template content is authoritative.
        let tagged = GemmRunner::new().with_template_digest("deadbeef");
        assert_ne!(
            base.cache_key(Architecture::Pacq, wl),
            tagged.cache_key(Architecture::Pacq, wl)
        );
        assert!(tagged.arch_id().starts_with("tpl:deadbeef;em="));
        assert!(base.arch_id().starts_with("builtin;em="));
    }

    #[test]
    fn provenance_covers_machine_group_numerics_arch_and_backend() {
        let base = GemmRunner::new();
        let variants = [
            GemmRunner::new().with_group(GroupShape::along_k(32)),
            GemmRunner::new().with_numerics(NumericsMode::Wide),
            GemmRunner::new().with_backend(Backend::Batched),
            GemmRunner::new().with_template_digest("deadbeef"),
            GemmRunner::new().with_config(SmConfig {
                adder_tree_duplication: 4,
                ..SmConfig::volta_like()
            }),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(
                base.provenance(),
                v.provenance(),
                "provenance variant {i} not bound"
            );
        }
    }

    #[test]
    fn explicit_default_energy_model_prices_bit_identically() {
        // A template with no energy overrides resolves to the same
        // levels as EnergyModel::new — reports must match to the bit.
        let wl = Workload::new(GemmShape::new(16, 512, 512), WeightPrecision::Int4);
        let base = GemmRunner::new();
        let explicit = GemmRunner::new().with_energy_model(EnergyModel::new(base.config()));
        let a = base.analyze(Architecture::Pacq, wl).unwrap();
        let b = explicit.analyze(Architecture::Pacq, wl).unwrap();
        assert_eq!(a.edp_pj_s.to_bits(), b.edp_pj_s.to_bits());
        assert_eq!(a.total_energy_pj().to_bits(), b.total_energy_pj().to_bits());
        // And they share a cache key, because the resolved energies are
        // identical (the em= segment matches).
        assert_eq!(
            base.cache_key(Architecture::Pacq, wl),
            explicit.cache_key(Architecture::Pacq, wl)
        );
    }

    #[test]
    fn execute_is_backend_invariant() {
        // The backend is a throughput knob, not a numerics knob: the
        // batched runner must reproduce the scalar runner to the bit.
        let mut g = SynthGenerator::new(23);
        let a = g.llm_activations(4, 64).to_f16();
        let w = g.llm_weights(64, 16);
        for arch in [
            Architecture::StandardDequant,
            Architecture::PackedK,
            Architecture::Pacq,
            Architecture::InputStationary,
        ] {
            let scalar = GemmRunner::new().with_group(GroupShape::along_k(32));
            let batched = scalar.clone().with_backend(Backend::Batched);
            assert_eq!(batched.backend(), Backend::Batched);
            let p = scalar
                .quantize_and_pack(&w, WeightPrecision::Int4, arch)
                .expect("packs");
            let rs = scalar.execute(arch, &a, &p).unwrap();
            let rb = batched.execute(arch, &a, &p).unwrap();
            for r in 0..rs.rows() {
                for c in 0..rs.cols() {
                    assert_eq!(
                        rs.get(r, c).to_bits(),
                        rb.get(r, c).to_bits(),
                        "{arch:?} ({r},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn quantize_and_pack_picks_the_right_direction() {
        let runner = GemmRunner::new().with_group(GroupShape::along_k(32));
        let w = SynthGenerator::new(5).llm_weights(64, 32);
        let pn = runner
            .quantize_and_pack(&w, WeightPrecision::Int4, Architecture::Pacq)
            .expect("packs");
        assert_eq!(pn.pack_dim(), PackDim::N);
        let pk = runner
            .quantize_and_pack(&w, WeightPrecision::Int4, Architecture::PackedK)
            .expect("packs");
        assert_eq!(pk.pack_dim(), PackDim::K);
        let is = runner
            .quantize_and_pack(&w, WeightPrecision::Int4, Architecture::InputStationary)
            .expect("packs");
        assert_eq!(is.pack_dim(), PackDim::K);
    }

    #[test]
    fn end_to_end_execution_matches_across_flows() {
        // All three flows compute the same quantized GEMM (different
        // schedules of the same arithmetic), so results agree closely.
        let runner = GemmRunner::new()
            .with_group(GroupShape::along_k(32))
            .with_numerics(NumericsMode::Wide);
        let mut g = SynthGenerator::new(17);
        let a = g.llm_activations(4, 64).to_f16();
        let w = g.llm_weights(64, 16);

        let p_n = runner
            .quantize_and_pack(&w, WeightPrecision::Int4, Architecture::Pacq)
            .expect("packs");
        let p_k = runner
            .quantize_and_pack(&w, WeightPrecision::Int4, Architecture::PackedK)
            .expect("packs");

        let std = runner
            .execute(Architecture::StandardDequant, &a, &p_k)
            .unwrap();
        let pk = runner.execute(Architecture::PackedK, &a, &p_k).unwrap();
        let pq = runner.execute(Architecture::Pacq, &a, &p_n).unwrap();

        let err = |x: &MatrixF32, y: &MatrixF32| {
            let d = MatrixF32::from_fn(x.rows(), x.cols(), |r, c| x.get(r, c) - y.get(r, c));
            d.frobenius_norm() / y.frobenius_norm().max(1e-12)
        };
        assert!(err(&pq, &pk) < 5e-3, "PacQ vs PackedK: {}", err(&pq, &pk));
        assert!(
            err(&pq, &std) < 5e-3,
            "PacQ vs Standard: {}",
            err(&pq, &std)
        );
    }
}
