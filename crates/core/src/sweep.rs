//! The sharded, resumable sweep engine behind `pacq sweep --param grid`.
//!
//! A sweep is a deterministically ordered list of `(architecture,
//! workload)` jobs. Three orthogonal mechanisms make big grids cheap to
//! run and safe to interrupt:
//!
//! - **sharding** ([`Shard`], `--shard i/N`): each invocation owns a
//!   residue class of job indices, so N machines (or N CI lanes) split
//!   one grid with no coordination beyond the flag;
//! - **checkpointing** ([`SweepCheckpoint`], `--checkpoint FILE`): an
//!   append-only record of completed job ids, bound to this grid's
//!   digest, so a killed sweep resumes where it stopped;
//! - **result caching** ([`pacq_cache::ReportCache`], `--cache DIR`,
//!   attached to the runner): completed points are memoized
//!   content-addressed, so even a checkpoint-less re-run pays only
//!   lookups.
//!
//! All three compose with the rayon worker pool: selection and
//! skip-filtering happen up front, execution fans out in parallel, and
//! rows come back in grid order regardless of completion order.

use rayon::prelude::*;

use crate::report::GemmReport;
use crate::runner::GemmRunner;
use pacq_cache::{grid_digest, Shard, SweepCheckpoint};
use pacq_error::PacqResult;
use pacq_fp16::WeightPrecision;
use pacq_simt::{Architecture, Workload};

/// One sweep point: a stable id plus the `(architecture, workload)`
/// pair it analyzes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepJob {
    /// The architecture to simulate.
    pub arch: Architecture,
    /// The workload.
    pub workload: Workload,
}

impl SweepJob {
    /// The job's stable id — the line format used in checkpoint files,
    /// so it must be newline-free and never end with `.`.
    pub fn id(&self) -> String {
        format!(
            "{}:{}:m{}n{}k{}",
            pacq_cache::arch_token(self.arch),
            pacq_cache::precision_token(self.workload.precision),
            self.workload.shape.m,
            self.workload.shape.n,
            self.workload.shape.k
        )
    }
}

/// A fully enumerated sweep grid with a content digest binding
/// checkpoints to it.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    jobs: Vec<SweepJob>,
}

impl SweepPlan {
    /// Builds a plan over an explicit job list (order is significant:
    /// it defines job indices for sharding and row order in results).
    pub fn new(jobs: Vec<SweepJob>) -> SweepPlan {
        SweepPlan { jobs }
    }

    /// The `--param grid` plan over an `n×k` layer: batch sizes
    /// {16, 32, 64, 128, 256, 512} × three architectures × two weight
    /// precisions, in that nesting order.
    pub fn batch_grid(n: usize, k: usize) -> SweepPlan {
        let mut jobs = Vec::new();
        for &m in &[16usize, 32, 64, 128, 256, 512] {
            for &arch in &[
                Architecture::StandardDequant,
                Architecture::PackedK,
                Architecture::Pacq,
            ] {
                for &precision in &[WeightPrecision::Int4, WeightPrecision::Int2] {
                    jobs.push(SweepJob {
                        arch,
                        workload: Workload::new(pacq_simt::GemmShape::new(m, n, k), precision),
                    });
                }
            }
        }
        SweepPlan { jobs }
    }

    /// [`SweepPlan::batch_grid`] over the Llama2-7B FFN projection
    /// (n = k = 4096).
    pub fn default_grid() -> SweepPlan {
        SweepPlan::batch_grid(4096, 4096)
    }

    /// The grid's jobs in index order.
    pub fn jobs(&self) -> &[SweepJob] {
        &self.jobs
    }

    /// A digest over every job id, binding checkpoint files to exactly
    /// this grid (any change in contents *or order* changes the digest).
    pub fn digest(&self) -> String {
        let ids: Vec<String> = self.jobs.iter().map(SweepJob::id).collect();
        grid_digest(&ids.join("\n"))
    }

    /// The digest a checkpoint file is bound to: the grid digest plus
    /// the full provenance of the runner executing it
    /// ([`GemmRunner::provenance`] — machine configuration, group
    /// geometry, numerics mode, architecture template identity and
    /// compute backend).
    ///
    /// [`SweepPlan::digest`] alone only covers job ids, so a checkpoint
    /// written under one machine could silently satisfy a resume under
    /// another (different `--dup`, an edited template, a different
    /// backend) — the resumed run would skip every job and splice rows
    /// priced by two different machines into one table. Binding the
    /// runner makes that a typed [`pacq_error::PacqError::InvalidInput`]
    /// at open time instead.
    pub fn binding_digest(&self, runner: &GemmRunner) -> String {
        grid_digest(&format!(
            "{grid}\n{provenance}",
            grid = self.digest(),
            provenance = runner.provenance()
        ))
    }
}

/// One completed (or skipped) row of a sweep run.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// The job this row answers.
    pub job: SweepJob,
    /// The report, or `None` when the job was already checkpointed as
    /// done and no attached `--cache` store still holds its report
    /// (skipped jobs are rehydrated from the cache when possible, so
    /// summaries over a resumed run stay complete).
    pub report: Option<GemmReport>,
}

/// Aggregate accounting for one sweep invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepTally {
    /// Jobs in the full grid.
    pub total: usize,
    /// Jobs this shard owns.
    pub selected: usize,
    /// Owned jobs skipped because the checkpoint already records them.
    pub skipped: usize,
    /// Owned jobs actually analyzed this run.
    pub executed: usize,
}

/// The result of [`run_sweep`]: per-job rows (in grid order, restricted
/// to this shard's jobs) plus the tally.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// This shard's rows, in grid order.
    pub rows: Vec<SweepRow>,
    /// Selection/skip/execution accounting.
    pub tally: SweepTally,
}

/// Runs `plan` through `runner`, honoring the shard slice and, when
/// given, the resume checkpoint. Executed jobs fan out on the rayon
/// pool; rows return in grid order. Each completed job is appended to
/// the checkpoint before the run returns, so an interrupt after this
/// function loses nothing.
///
/// # Errors
///
/// Returns the first failing job's error in grid order (no partial
/// outcome), or a checkpoint I/O error.
pub fn run_sweep(
    runner: &GemmRunner,
    plan: &SweepPlan,
    shard: Shard,
    checkpoint: Option<&SweepCheckpoint>,
) -> PacqResult<SweepOutcome> {
    let _span = pacq_trace::span("core.sweep");
    let mut tally = SweepTally {
        total: plan.jobs().len(),
        ..SweepTally::default()
    };

    // Partition up front: selection and checkpoint lookup are cheap and
    // sequential; only analysis fans out.
    let mut skipped_rows = Vec::new();
    let mut to_run = Vec::new();
    for (index, job) in plan.jobs().iter().enumerate() {
        if !shard.selects(index) {
            continue;
        }
        tally.selected += 1;
        let done = checkpoint.is_some_and(|c| c.is_done(&job.id()));
        if done {
            tally.skipped += 1;
            // The first pass usually left the report in the --cache
            // store; rehydrate rather than losing the row's numbers.
            let report = runner.cached_report(job.arch, job.workload);
            skipped_rows.push((index, SweepRow { job: *job, report }));
        } else {
            tally.executed += 1;
            to_run.push((index, *job));
        }
    }

    let reports: Vec<PacqResult<(usize, SweepRow)>> = to_run
        .into_par_iter()
        .map(|(index, job)| {
            let report = runner.analyze(job.arch, job.workload)?;
            if let Some(c) = checkpoint {
                c.mark_done(&job.id())?;
            }
            Ok((
                index,
                SweepRow {
                    job,
                    report: Some(report),
                },
            ))
        })
        .collect();

    let mut rows = reports
        .into_iter()
        .collect::<PacqResult<Vec<(usize, SweepRow)>>>()?;
    rows.extend(skipped_rows);
    rows.sort_by_key(|(index, _)| *index);

    pacq_trace::add_counter("sweep.jobs.total", tally.total as u64);
    pacq_trace::add_counter("sweep.jobs.selected", tally.selected as u64);
    pacq_trace::add_counter("sweep.jobs.skipped", tally.skipped as u64);
    pacq_trace::add_counter("sweep.jobs.executed", tally.executed as u64);

    Ok(SweepOutcome {
        rows: rows.into_iter().map(|(_, row)| row).collect(),
        tally,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_is_deterministic_and_fully_enumerated() {
        let a = SweepPlan::batch_grid(256, 256);
        let b = SweepPlan::batch_grid(256, 256);
        assert_eq!(a.jobs().len(), 6 * 3 * 2);
        assert_eq!(a.digest(), b.digest());
        // Ids are unique (they double as checkpoint records).
        let mut ids: Vec<String> = a.jobs().iter().map(SweepJob::id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), a.jobs().len());
        // And newline-free with no trailing terminator ambiguity.
        assert!(ids
            .iter()
            .all(|id| !id.contains('\n') && !id.ends_with('.')));
    }

    #[test]
    fn digest_is_order_sensitive() {
        let grid = SweepPlan::batch_grid(256, 256);
        let mut reversed = grid.jobs().to_vec();
        reversed.reverse();
        assert_ne!(grid.digest(), SweepPlan::new(reversed).digest());
    }

    #[test]
    fn shards_partition_and_reunite_the_grid() {
        let plan = SweepPlan::batch_grid(256, 256);
        let runner = GemmRunner::new();
        let full = run_sweep(&runner, &plan, Shard::FULL, None).unwrap();
        assert_eq!(full.tally.executed, plan.jobs().len());

        let n = 3;
        let mut union: Vec<String> = Vec::new();
        for i in 1..=n {
            let shard = Shard { index: i, count: n };
            let out = run_sweep(&runner, &plan, shard, None).unwrap();
            assert_eq!(out.tally.selected, out.tally.executed);
            union.extend(out.rows.iter().map(|r| r.job.id()));
        }
        let mut expected: Vec<String> = plan.jobs().iter().map(SweepJob::id).collect();
        union.sort();
        expected.sort();
        assert_eq!(union, expected, "shards must union to the full grid");
    }

    #[test]
    fn checkpoint_resume_skips_completed_jobs() {
        let path =
            std::env::temp_dir().join(format!("pacq-sweep-resume-{}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let plan = SweepPlan::batch_grid(256, 256);
        let runner = GemmRunner::new();

        let first = {
            let ckpt = SweepCheckpoint::open(&path, &plan.binding_digest(&runner)).unwrap();
            run_sweep(&runner, &plan, Shard::FULL, Some(&ckpt)).unwrap()
        };
        assert_eq!(first.tally.executed, plan.jobs().len());

        let ckpt = SweepCheckpoint::open(&path, &plan.binding_digest(&runner)).unwrap();
        let second = run_sweep(&runner, &plan, Shard::FULL, Some(&ckpt)).unwrap();
        assert_eq!(second.tally.executed, 0);
        assert_eq!(second.tally.skipped, plan.jobs().len());
        assert!(second.rows.iter().all(|r| r.report.is_none()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpointed_rows_rehydrate_from_an_attached_cache() {
        use std::sync::Arc;
        let dir = std::env::temp_dir().join(format!("pacq-sweep-rehydrate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path =
            std::env::temp_dir().join(format!("pacq-sweep-rehydrate-{}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let plan = SweepPlan::batch_grid(256, 256);
        let cache = Arc::new(pacq_cache::ReportCache::open(&dir).unwrap());
        let runner = GemmRunner::new().with_cache(Arc::clone(&cache));
        let first = {
            let ckpt = SweepCheckpoint::open(&path, &plan.binding_digest(&runner)).unwrap();
            run_sweep(&runner, &plan, Shard::FULL, Some(&ckpt)).unwrap()
        };
        let ckpt = SweepCheckpoint::open(&path, &plan.binding_digest(&runner)).unwrap();
        let second = run_sweep(&runner, &plan, Shard::FULL, Some(&ckpt)).unwrap();
        assert_eq!(second.tally.executed, 0);
        assert_eq!(second.tally.skipped, plan.jobs().len());
        for (f, s) in first.rows.iter().zip(&second.rows) {
            let fresh = f.report.as_ref().unwrap();
            let rehydrated = s.report.as_ref().expect("skipped row rehydrates");
            assert_eq!(fresh.edp_pj_s.to_bits(), rehydrated.edp_pj_s.to_bits());
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_binding_covers_runner_provenance() {
        // The checkpoint-binding regression: a checkpoint written under
        // one (grid × machine × template × backend) must refuse to
        // resume under any other, with a typed error — not silently
        // skip jobs priced by a different machine.
        use pacq_fp16::Backend;
        let path =
            std::env::temp_dir().join(format!("pacq-sweep-binding-{}.ckpt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let plan = SweepPlan::batch_grid(256, 256);
        let runner = GemmRunner::new();
        drop(SweepCheckpoint::open(&path, &plan.binding_digest(&runner)).unwrap());

        let variants = [
            GemmRunner::new().with_backend(Backend::Batched),
            GemmRunner::new().with_template_digest("deadbeef"),
            GemmRunner::new().with_config(pacq_simt::SmConfig {
                adder_tree_duplication: 4,
                ..pacq_simt::SmConfig::volta_like()
            }),
        ];
        for (i, other) in variants.iter().enumerate() {
            let digest = plan.binding_digest(other);
            assert_ne!(digest, plan.binding_digest(&runner), "variant {i}");
            let err = SweepCheckpoint::open(&path, &digest).unwrap_err();
            assert_eq!(err.exit_code(), 4, "variant {i}: {err}");
            assert!(err.to_string().contains("checkpoint"), "variant {i}: {err}");
        }

        // And a different grid over the same runner also refuses.
        let other_grid = SweepPlan::batch_grid(512, 512);
        assert!(SweepCheckpoint::open(&path, &other_grid.binding_digest(&runner)).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
