//! The `pacq` command-line interface (library side, so it is testable).
//!
//! Hand-rolled argument parsing — the workspace deliberately keeps its
//! dependency set to the numeric essentials (see DESIGN.md §8).

use crate::backend::take_backend_flag;
use crate::dse::{run_dse, DseAxes, DsePlan};
use crate::par;
use crate::params::parse_params;
use crate::report::{Comparison, GemmReport};
use crate::roofline;
use crate::runner::GemmRunner;
use crate::sweep::{run_sweep, SweepPlan};
use core::fmt::Write as _;
use pacq_arch::ArchTemplate;
use pacq_cache::{ReportCache, Shard, SweepCheckpoint};
use pacq_error::{PacqError, PacqResult};
use pacq_fp16::{Backend, WeightPrecision};
use pacq_quant::synth::SynthGenerator;
use pacq_quant::GroupShape;
use pacq_simt::{
    octet_schedule, simulate, Architecture, GemmShape, OctetPipeline, SmConfig, Workload,
};
use pacq_trace::{ChromeTrace, Json, RunManifest};
use rayon::prelude::*;
use std::sync::Arc;

/// Usage text shown by `pacq help` and on errors.
pub const USAGE: &str = "\
pacq — PacQ hyper-asymmetric GEMM simulator (DAC 2025 reproduction)

USAGE:
  pacq analyze --shape mMnNkK [--arch std|packedk|is|pacq] [--precision int4|int2]
               [--group g128|g256|g32x4|g64x4|gK] [--dup 1|2|4] [--width 4|8|16]
               [--json]
  pacq compare --shape mMnNkK [--precision int4|int2] [--group ...]
  pacq sweep --param batch|dup|width|grid --shape mMnNkK [--precision int4|int2]
             [--shard i/N] [--checkpoint FILE]
  pacq dse --shape mMnNkK [--param axis=v1,v2,...]... [--pareto] [--shard i/N]
           [--checkpoint FILE]
  pacq exec --shape mMnNkK [--arch std|packedk|is|pacq] [--precision int4|int2]
            [--group ...] [--check] [--json]
  pacq cache stats|clear|verify --dir DIR
  pacq audit [--activity] [--tolerance X] [--activity-scale S]
  pacq trace --out trace.json [--arch ...] [--precision ...] [--dup ...] [--width ...]
  pacq serve (--port N | --stdio) [--queue N] [--rate N] [--burst N]
             [--max-clients N]
  pacq loadgen (--addr HOST:PORT | --ready-log FILE | --spawn)
               [--requests N] [--clients N] [--window N] [--unique N]
               [--sample N]
  pacq help

Every command also accepts --jobs N (worker threads for sweeps and
functional execution; defaults to the PACQ_JOBS environment variable,
then the host parallelism; results are bit-identical at any job count),
--backend scalar|batched (functional compute backend; defaults to the
PACQ_BACKEND environment variable, then `scalar`; the batched SoA
kernels are bit-identical to the scalar reference — see DESIGN.md),
--metrics PATH (write a machine-readable JSON run manifest, schema
pacq-metrics/v1 — see DESIGN.md §11), --cache DIR (a content-addressed
on-disk report cache: repeated analyses of the same point become
lookups, bit-identical to fresh runs — see DESIGN.md §12), and
--hot N (with --cache: a bounded in-memory LRU hot tier of N entries in
front of the disk store; hits are bit-identical and tallied separately
as cache.hot_hits/hot_misses/hot_evictions — see DESIGN.md §15).

analyze, compare, sweep, dse, exec and trace also accept
--arch-template FILE: a declarative pacq-arch/v1 architecture template
(TOML or JSON, see DESIGN.md §18) replacing the builtin Volta-like
machine — memory hierarchy capacities and access energies, datapath
widths, clock and dataflow all come from the file, and the template's
content digest is folded into every cache key, checkpoint binding and
run manifest, so editing the template invalidates stale artifacts with
typed errors. The template pins the dataflow, so --arch conflicts with
it. Committed examples: examples/arch/volta_like.toml (the hardcoded
Table I machine, bit for bit), examples/arch/pacq.toml and
examples/arch/input_stationary.toml (dataflow = \"is\": the activation
tile held in the tensor-core buffers across the n loop).

`pacq sweep --param grid` runs the full batch × architecture ×
precision grid for the layer; --shard i/N slices it into N disjoint
index classes (for split runs), and --checkpoint FILE records completed
jobs so an interrupted sweep resumes where it stopped.

`pacq dse` grid-searches design points over the template (or builtin)
machine: repeated --param flags name the axes — batch=16,32
arch=std,packedk,is,pacq precision=int4,int2 width=4,8,16 dup=1,2,4
group=g128,g64 — and every unnamed axis keeps its default (the
sweep-grid product over the machine's own width/dup and g128, so a
flag-less dse reproduces `sweep --param grid` bit for bit). The
mapping axis searches warp-tile loop orders instead of naming
architectures directly: --param mapping=mnk,nkm,knm (permutations of
mnk, optionally @16x16 — the only executable warp tile) derives each
point's dataflow from the innermost loop (inner m = packedk, inner
n = is, inner k = pacq) and conflicts with --param arch. --pareto
prints the non-dominated (cycles, energy) front as a stable table
(ties keep every point, rows ordered by cycles/energy/id) and records
it in the --metrics manifest (kind \"dse.pareto\"). --shard,
--checkpoint and --cache compose exactly as they do for sweep; with
--cache, checkpoint-resumed rows are rehydrated from the store so
best-EDP/Pareto rankings stay complete (otherwise they are flagged
partial).

`pacq exec` functionally executes one GEMM through the bit-accurate
datapath on deterministic synthetic data, printing a result digest and
throughput. With --check it runs *both* backends, asserts the results
are bit-identical, and reports the batched-over-scalar speedup (also
recorded in the --metrics manifest).

`pacq audit` cross-checks the analytic dataflow engine against the
event-driven per-octet replay on a grid of shapes (including ragged,
zero-padded ones), architectures and precisions, plus the energy/EDP
accounting identities and the roofline crossover search; the first
diverging counter is reported as a typed error (exit code 7). With
--activity it instead runs the activity calibration: both multiplier
netlists are simulated gate by gate over deterministic
precision-representative operand streams, the per-gate-class toggle
histograms are priced through the energy BOM, and each activity-derived
pJ/op figure must match its analytic counterpart within the declared
tolerance (--tolerance, or the template's audit.activity_tolerance, or
the documented default — see DESIGN.md). --activity-scale S multiplies
the BOM's per-toggle energies (CI smokes the exit-7 mismatch path with
a deliberately perturbed BOM). Both numbers and the toggle histogram
go to the --metrics manifest. `pacq audit --activity` is the only
audit form that accepts --arch-template (solely for the pinned
tolerance).

`pacq trace` replays one warp-tile octet cycle-by-cycle and writes a
Chrome trace_event JSON (open in chrome://tracing or Perfetto; 1 trace
microsecond = 1 SM cycle).

`pacq serve` runs a long-lived evaluation server speaking the
newline-delimited JSON protocol pacq-serve/v1 over TCP (--port N;
--port 0 picks an ephemeral port, announced in the ready frame) or
over stdin/stdout (--stdio). The worker pool is sized by --jobs /
PACQ_JOBS; --queue N bounds the pending-request queue (overflow is a
typed queue_full error frame, exit-code class 8). Admission control:
--rate N caps each connection at N work requests per second (token
bucket; denials are typed rate_limited frames, class 8), --burst N sets
the bucket capacity (defaults to the rate), and --max-clients N turns
away connections beyond N at the accept gate. A `shutdown` frame or
stdio EOF drains gracefully. See DESIGN.md §13 and §16.

`pacq loadgen` drives a live pacq serve instance with a deterministic
mixed-point analyze workload: --requests N total requests across
--clients C pipelined connections (--window frames in flight each),
cycling --unique distinct evaluation points (repeats exercise the
cache tiers). The target is --addr HOST:PORT, --ready-log FILE (polls
a server log for the pacq-serve/v1 ready frame, as written by
`pacq serve --port 0`), or --spawn (an in-process server sharing this
invocation's --cache/--hot/--backend). Every request must be answered
exactly once (lost replies are a typed error); the first --sample
unique points are re-evaluated in process and must match the served
bytes exactly. Latency p50/p95/p99, a log2 histogram, and throughput
go to stdout and the --metrics manifest. See DESIGN.md §16.

EXAMPLES:
  pacq analyze --shape m16n4096k4096 --arch pacq
  pacq compare --shape m16n11008k4096 --precision int2
  pacq sweep --param batch --shape m16n4096k4096 --metrics run.json
  pacq trace --arch pacq --precision int2 --out octet.trace.json";

fn err(msg: impl Into<String>) -> PacqError {
    PacqError::usage(msg)
}

/// Splits `--metrics PATH` / `--metrics=PATH` out of an argument list.
///
/// Shared by the `pacq` CLI and every figure binary (via `pacq-bench`):
/// the flag enables the process-wide observability collector for the
/// duration of the command and names the run-manifest output file.
///
/// # Errors
///
/// Returns [`PacqError::Usage`] when the flag is present without a
/// value.
pub fn take_metrics_flag(args: &[String]) -> PacqResult<(Vec<String>, Option<String>)> {
    let mut rest = Vec::with_capacity(args.len());
    let mut metrics = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--metrics" {
            let v = it
                .next()
                .ok_or_else(|| err("missing value for --metrics"))?;
            metrics = Some(v.clone());
        } else if let Some(v) = arg.strip_prefix("--metrics=") {
            metrics = Some(v.to_string());
        } else {
            rest.push(arg.clone());
        }
    }
    Ok((rest, metrics))
}

/// Splits `--cache DIR` / `--cache=DIR` out of an argument list.
///
/// Like [`take_metrics_flag`], shared by the `pacq` CLI and the figure
/// binaries so every entry point spells the report cache the same way.
///
/// # Errors
///
/// Returns [`PacqError::Usage`] when the flag is present without a
/// value.
pub fn take_cache_flag(args: &[String]) -> PacqResult<(Vec<String>, Option<String>)> {
    let mut rest = Vec::with_capacity(args.len());
    let mut cache = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--cache" {
            let v = it.next().ok_or_else(|| err("missing value for --cache"))?;
            cache = Some(v.clone());
        } else if let Some(v) = arg.strip_prefix("--cache=") {
            cache = Some(v.to_string());
        } else {
            rest.push(arg.clone());
        }
    }
    Ok((rest, cache))
}

/// Splits `--hot N` / `--hot=N` out of an argument list and validates
/// the capacity with the serve-layer count validator (trimmed plain
/// digits, at least 1). The flag mounts a bounded in-memory LRU hot
/// tier in front of the `--cache` store, so it is rejected later when
/// no cache directory is given.
///
/// # Errors
///
/// Returns [`PacqError::Usage`] when the flag is present without a
/// value or with a malformed one.
pub fn take_hot_flag(args: &[String]) -> PacqResult<(Vec<String>, Option<usize>)> {
    /// Upper bound on hot-tier entries; a tier bigger than this should
    /// be the disk store.
    const MAX_HOT_ENTRIES: u64 = 1 << 20;
    let mut rest = Vec::with_capacity(args.len());
    let mut hot = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--hot" {
            let v = it.next().ok_or_else(|| err("missing value for --hot"))?;
            hot = Some(crate::serve::validate_serve_count(v, "--hot", MAX_HOT_ENTRIES)? as usize);
        } else if let Some(v) = arg.strip_prefix("--hot=") {
            hot = Some(crate::serve::validate_serve_count(v, "--hot", MAX_HOT_ENTRIES)? as usize);
        } else {
            rest.push(arg.clone());
        }
    }
    Ok((rest, hot))
}

/// Splits `--arch-template FILE` / `--arch-template=FILE` out of an
/// argument list. The flag names a `pacq-arch/v1` template file
/// replacing the builtin Volta-like machine for the command.
///
/// # Errors
///
/// Returns [`PacqError::Usage`] when the flag is present without a
/// value.
pub fn take_arch_template_flag(args: &[String]) -> PacqResult<(Vec<String>, Option<String>)> {
    let mut rest = Vec::with_capacity(args.len());
    let mut template = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--arch-template" {
            let v = it
                .next()
                .ok_or_else(|| err("missing value for --arch-template"))?;
            template = Some(v.clone());
        } else if let Some(v) = arg.strip_prefix("--arch-template=") {
            template = Some(v.to_string());
        } else {
            rest.push(arg.clone());
        }
    }
    Ok((rest, template))
}

/// Loads, parses and validates the `--arch-template` file. I/O failures
/// are [`PacqError::Io`] (exit 6); schema and validation failures are
/// typed template errors (exit 9) naming the file.
pub fn load_arch_template(path: &str) -> PacqResult<ArchTemplate> {
    let text = std::fs::read_to_string(path).map_err(|e| PacqError::Io {
        context: "cli::--arch-template",
        message: format!("cannot read `{path}`: {e}"),
    })?;
    ArchTemplate::load(&text, path)
}

/// Runs the CLI on pre-split arguments, returning the output text.
///
/// # Errors
///
/// Returns [`PacqError::Usage`] for any unknown command, missing or
/// malformed option, and propagates typed simulator errors.
pub fn run(args: &[String]) -> PacqResult<String> {
    let (args, metrics) = take_metrics_flag(args)?;
    let (args, cache_dir) = take_cache_flag(&args)?;
    let (args, hot) = take_hot_flag(&args)?;
    let (args, template_path) = take_arch_template_flag(&args)?;
    let template = match &template_path {
        Some(path) => Some(load_arch_template(path)?),
        None => None,
    };
    let (args, jobs) = par::take_jobs_flag(&args)?;
    let (args, backend_flag) = take_backend_flag(&args)?;
    // Like --jobs, the env spelling is validated even when the flag
    // wins — a typo'd PACQ_BACKEND must never pass silently.
    let env_backend = crate::backend::validated_env_backend()?;
    let backend = backend_flag.or(env_backend).unwrap_or_default();
    let env_jobs = par::validated_env_jobs()?;
    // Only touch the global pool when the user asked for a count — a
    // plain invocation must not clobber a programmatically configured
    // pool (and concurrent unit tests share the process-wide setting).
    if jobs.is_some() || env_jobs.is_some() {
        par::configure_jobs(jobs.or(env_jobs));
    }
    if metrics.is_some() {
        pacq_trace::enable();
    }
    if hot.is_some() && cache_dir.is_none() {
        return Err(err(
            "--hot mounts a memory tier in front of --cache; pass --cache DIR too",
        ));
    }
    let cache = match &cache_dir {
        Some(dir) => {
            let store = ReportCache::open(dir)?;
            Some(Arc::new(match hot {
                Some(n) => store.with_hot_tier(n),
                None => store,
            }))
        }
        None => None,
    };
    let result = dispatch(&args, cache.as_ref(), backend, template.as_ref());
    if let Some(path) = metrics {
        let mut manifest = RunManifest::new("pacq", &args);
        if let Some(j) = jobs.or(env_jobs) {
            manifest = manifest.with_jobs(j);
        }
        manifest = manifest
            .with_effective_jobs(rayon::current_num_threads())
            .with_backend(backend.token());
        if let Some(t) = &template {
            manifest = manifest.with_arch_template(t.digest());
        }
        manifest.gather();
        pacq_trace::disable();
        if result.is_ok() {
            manifest.write_to(&path)?;
        }
    }
    result
}

fn dispatch(
    args: &[String],
    cache: Option<&Arc<ReportCache>>,
    backend: Backend,
    template: Option<&ArchTemplate>,
) -> PacqResult<String> {
    let mut it = args.iter().map(String::as_str);
    let command = it.next();
    // Commands that don't simulate a machine have nothing to apply a
    // template to — silently ignoring the flag would misattribute their
    // output to the template.
    if template.is_some() && matches!(command, Some("cache" | "serve" | "loadgen")) {
        return Err(err(format!(
            "--arch-template does not apply to `{}`",
            command.unwrap_or_default()
        )));
    }
    match command {
        None | Some("help") | Some("--help") | Some("-h") => Ok(format!("{USAGE}\n")),
        Some("analyze") => analyze(&args[1..], cache, template),
        Some("compare") => compare(&args[1..], cache, template),
        Some("sweep") => sweep(&args[1..], cache, backend, template),
        Some("dse") => dse(&args[1..], cache, backend, template),
        Some("exec") => exec(&args[1..], cache, backend, template),
        Some("cache") => cache_cmd(&args[1..], cache),
        Some("audit") => audit(&args[1..], cache, template),
        Some("trace") => trace(&args[1..], template),
        Some("serve") => crate::serve::run_cli(&args[1..], cache.map(Arc::clone), backend),
        Some("loadgen") => crate::loadgen::run_cli(&args[1..], cache.map(Arc::clone), backend),
        Some(other) => Err(err(format!("unknown command `{other}`"))),
    }
}

/// Parsed common options. `arch`, `dup` and `width` stay `None` until
/// the user passes the flag — the effective value depends on whether an
/// architecture template is in play (the template's datapath must not
/// be silently clobbered by a hardcoded default), so resolution happens
/// in [`resolve_arch`] / [`runner_for`].
struct Options {
    shape: GemmShape,
    precision: WeightPrecision,
    arch: Option<Architecture>,
    group: GroupShape,
    dup: Option<usize>,
    width: Option<usize>,
    json: bool,
    check: bool,
    params: Vec<String>,
    out: Option<String>,
    shard: Shard,
    checkpoint: Option<String>,
}

fn parse_options(args: &[String], require_shape: bool) -> PacqResult<Options> {
    let mut shape = None;
    let mut precision = WeightPrecision::Int4;
    let mut arch = None;
    let mut group = GroupShape::G128;
    let mut dup = None;
    let mut width = None;
    let mut json = false;
    let mut check = false;
    let mut params = Vec::new();
    let mut out = None;
    let mut shard = Shard::FULL;
    let mut checkpoint = None;

    let mut it = args.iter().map(String::as_str).peekable();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> PacqResult<&str> {
            it.next()
                .ok_or_else(|| err(format!("missing value for {name}")))
        };
        match flag {
            "--shape" => shape = Some(parse_shape(value("--shape")?)?),
            "--precision" => precision = parse_precision(value("--precision")?)?,
            "--arch" => arch = Some(parse_arch(value("--arch")?)?),
            "--group" => group = parse_group(value("--group")?)?,
            "--dup" => {
                let d = value("--dup")?
                    .parse()
                    .map_err(|_| err("--dup expects 1, 2 or 4"))?;
                if !matches!(d, 1 | 2 | 4) {
                    return Err(err("--dup expects 1, 2 or 4"));
                }
                dup = Some(d);
            }
            "--width" => {
                let w = value("--width")?
                    .parse()
                    .map_err(|_| err("--width expects 4, 8 or 16"))?;
                if !matches!(w, 4 | 8 | 16) {
                    return Err(err("--width expects 4, 8 or 16"));
                }
                width = Some(w);
            }
            "--json" => json = true,
            "--check" => check = true,
            "--param" => params.push(value("--param")?.to_string()),
            "--out" => out = Some(value("--out")?.to_string()),
            "--shard" => shard = Shard::parse(value("--shard")?)?,
            "--checkpoint" => checkpoint = Some(value("--checkpoint")?.to_string()),
            other => return Err(err(format!("unknown option `{other}`"))),
        }
    }

    let shape = match (shape, require_shape) {
        (Some(s), _) => s,
        (None, false) => GemmShape::M16N16K16,
        (None, true) => return Err(err("--shape is required (e.g. --shape m16n4096k4096)")),
    };
    Ok(Options {
        shape,
        precision,
        arch,
        group,
        dup,
        width,
        json,
        check,
        params,
        out,
        shard,
        checkpoint,
    })
}

/// The architecture a single-point command simulates: the `--arch` flag
/// without a template, the template's dataflow with one (an explicit
/// `--arch` then conflicts — the template pins the dataflow), PacQ when
/// neither says.
fn resolve_arch(
    arch: Option<Architecture>,
    template: Option<&ArchTemplate>,
) -> PacqResult<Architecture> {
    match (arch, template) {
        (Some(_), Some(_)) => Err(err(
            "--arch conflicts with --arch-template: the template's dataflow/packing/dequant \
             triple pins the architecture",
        )),
        (Some(a), None) => Ok(a),
        (None, Some(t)) => t.architecture(),
        (None, None) => Ok(Architecture::Pacq),
    }
}

/// The effective machine configuration: the template's (when given,
/// with `--dup`/`--width` still overriding) or the builtin Volta-like
/// defaults.
fn resolve_config(opts: &Options, template: Option<&ArchTemplate>) -> SmConfig {
    let mut cfg = match template {
        Some(t) => t.sm_config(),
        None => SmConfig::volta_like(),
    };
    if let Some(dup) = opts.dup {
        cfg.adder_tree_duplication = dup;
    }
    if let Some(width) = opts.width {
        cfg.dp_width = width;
    }
    cfg
}

/// Parses the paper's `mMnNkK` shape notation.
///
/// # Errors
///
/// Returns [`PacqError::Usage`] for malformed, zero or 16-misaligned
/// extents.
pub fn parse_shape(text: &str) -> PacqResult<GemmShape> {
    let bad = || {
        err(format!(
            "malformed shape `{text}`; expected e.g. m16n4096k4096"
        ))
    };
    let rest = text.strip_prefix('m').ok_or_else(bad)?;
    let n_pos = rest.find('n').ok_or_else(bad)?;
    let k_pos = rest.find('k').ok_or_else(bad)?;
    if k_pos < n_pos {
        return Err(bad());
    }
    let m: usize = rest[..n_pos].parse().map_err(|_| bad())?;
    let n: usize = rest[n_pos + 1..k_pos].parse().map_err(|_| bad())?;
    let k: usize = rest[k_pos + 1..].parse().map_err(|_| bad())?;
    if m == 0 || n == 0 || k == 0 {
        return Err(err("shape extents must be non-zero"));
    }
    if !m.is_multiple_of(16) || !n.is_multiple_of(16) || !k.is_multiple_of(16) {
        return Err(err(format!(
            "shape {text} is not 16-aligned (the simulator tiles in 16s)"
        )));
    }
    GemmShape::try_new(m, n, k)
}

/// Parses an architecture name the way `--arch` does (accepting the
/// same aliases); shared with `pacq serve` request decoding.
///
/// # Errors
///
/// Returns [`PacqError::Usage`] for an unknown name.
pub fn parse_arch(text: &str) -> PacqResult<Architecture> {
    match text {
        "std" | "standard" | "dequant" => Ok(Architecture::StandardDequant),
        "packedk" | "packed-k" | "pbk" => Ok(Architecture::PackedK),
        "pacq" => Ok(Architecture::Pacq),
        "is" | "input-stationary" => Ok(Architecture::InputStationary),
        other => Err(err(format!("unknown architecture `{other}`"))),
    }
}

/// Parses a weight precision the way `--precision` does; shared with
/// `pacq serve` request decoding.
///
/// # Errors
///
/// Returns [`PacqError::Usage`] for an unknown name.
pub fn parse_precision(text: &str) -> PacqResult<WeightPrecision> {
    match text {
        "int4" | "INT4" => Ok(WeightPrecision::Int4),
        "int2" | "INT2" => Ok(WeightPrecision::Int2),
        other => Err(err(format!("unknown precision `{other}`"))),
    }
}

/// Parses a quantization-group name the way `--group` does; shared with
/// `pacq serve` request decoding.
///
/// # Errors
///
/// Returns [`PacqError::Usage`] for an unknown or zero-sized group.
pub fn parse_group(text: &str) -> PacqResult<GroupShape> {
    match text {
        "g128" => Ok(GroupShape::G128),
        "g256" => Ok(GroupShape::G256),
        "g32x4" | "g[32,4]" => Ok(GroupShape::G32X4),
        "g64x4" | "g[64,4]" => Ok(GroupShape::G64X4),
        other => {
            let k: usize = other
                .strip_prefix('g')
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| err(format!("unknown group `{other}`")))?;
            if k == 0 {
                return Err(err("group size must be non-zero"));
            }
            Ok(GroupShape::along_k(k))
        }
    }
}

fn runner_for(
    opts: &Options,
    cache: Option<&Arc<ReportCache>>,
    template: Option<&ArchTemplate>,
) -> PacqResult<GemmRunner> {
    let mut runner = GemmRunner::new()
        .with_config(resolve_config(opts, template))
        .with_group(opts.group)
        .with_cache_opt(cache.map(Arc::clone));
    if let Some(t) = template {
        // Bind the runner to the template: its per-level energies price
        // every report, and its content digest travels into cache keys,
        // checkpoint bindings and run provenance.
        runner = runner
            .with_energy_model(t.energy_model()?)
            .with_template_digest(t.digest());
    }
    Ok(runner)
}

/// FNV-1a over the row-major result bits: a stable fingerprint that two
/// backends (or two runs) can be compared by at a glance.
fn result_digest(c: &pacq_quant::MatrixF32) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for r in 0..c.rows() {
        for col in 0..c.cols() {
            for byte in c.get(r, col).to_bits().to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
    }
    h
}

/// `pacq exec`: functionally executes one GEMM through the bit-accurate
/// datapath on deterministic synthetic data (seeded from the shape, so
/// reruns and backends see identical inputs). `--check` runs the scalar
/// *and* batched backends, asserts bit-identity, and reports the
/// speedup.
fn exec(
    args: &[String],
    cache: Option<&Arc<ReportCache>>,
    backend: Backend,
    template: Option<&ArchTemplate>,
) -> PacqResult<String> {
    let opts = parse_options(args, true)?;
    let arch = resolve_arch(opts.arch, template)?;
    let _span = pacq_trace::span("cli.exec");
    let (m, n, k) = (opts.shape.m, opts.shape.n, opts.shape.k);
    let runner = runner_for(&opts, cache, template)?.with_backend(backend);
    let mut g = SynthGenerator::new((m ^ (n << 8) ^ (k << 16)) as u64 | 1);
    let a = g.llm_activations(m, k).to_f16();
    let w = g.llm_weights(k, n);
    let packed = runner.quantize_and_pack(&w, opts.precision, arch)?;

    let timed = |r: &GemmRunner| -> PacqResult<(pacq_quant::MatrixF32, f64)> {
        let t0 = std::time::Instant::now();
        let c = r.execute(arch, &a, &packed)?;
        Ok((c, t0.elapsed().as_secs_f64()))
    };
    let (c, seconds) = timed(&runner)?;
    let digest = result_digest(&c);
    let flops = 2.0 * (m * n * k) as f64;
    let gflops = flops / seconds.max(1e-12) / 1e9;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "exec {} on {} ({}, {} backend): digest {digest:016x}, {seconds:.6} s, {gflops:.3} GFLOP/s",
        Workload::new(opts.shape, opts.precision),
        arch,
        opts.group,
        runner.backend(),
    );
    let mut record = Json::object();
    record.set("backend", runner.backend().token());
    record.set("digest", format!("{digest:016x}"));

    if opts.check {
        // Run the *other* backend on the same inputs: results must agree
        // to the bit (the tentpole contract), and the ratio of wall
        // times is the measured speedup.
        let other = runner.clone().with_backend(match runner.backend() {
            Backend::Scalar => Backend::Batched,
            Backend::Batched => Backend::Scalar,
        });
        let (c2, seconds2) = timed(&other)?;
        let d2 = result_digest(&c2);
        for r in 0..c.rows() {
            for col in 0..c.cols() {
                let (x, y) = (c.get(r, col), c2.get(r, col));
                if x.to_bits() != y.to_bits() {
                    return Err(PacqError::AuditMismatch {
                        counter: "exec.backend_bits".to_string(),
                        case: format!(
                            "({r},{col}) under {} vs {}",
                            runner.backend(),
                            other.backend()
                        ),
                        observed: format!("{:#010x}", y.to_bits()),
                        expected: format!("{:#010x}", x.to_bits()),
                    });
                }
            }
        }
        let (batched_s, scalar_s) = match runner.backend() {
            Backend::Batched => (seconds, seconds2),
            Backend::Scalar => (seconds2, seconds),
        };
        let speedup = scalar_s / batched_s.max(1e-12);
        let _ = writeln!(
            out,
            "check OK: {} backend bit-identical (digest {d2:016x}); batched speedup {speedup:.2}x \
(scalar {scalar_s:.6} s, batched {batched_s:.6} s)",
            other.backend(),
        );
        record.set("check", "bit-identical");
        record.set("batched_speedup", speedup);
    }
    if pacq_trace::is_enabled() {
        pacq_trace::record_result(format!("exec|{}|{arch}", opts.shape), record);
    }
    Ok(out)
}

fn analyze(
    args: &[String],
    cache: Option<&Arc<ReportCache>>,
    template: Option<&ArchTemplate>,
) -> PacqResult<String> {
    let opts = parse_options(args, true)?;
    let arch = resolve_arch(opts.arch, template)?;
    let runner = runner_for(&opts, cache, template)?;
    let report = runner.analyze(arch, Workload::new(opts.shape, opts.precision))?;
    if opts.json {
        Ok(report_json(&report))
    } else {
        Ok(report_text(&report))
    }
}

fn compare(
    args: &[String],
    cache: Option<&Arc<ReportCache>>,
    template: Option<&ArchTemplate>,
) -> PacqResult<String> {
    let opts = parse_options(args, true)?;
    if opts.arch.is_some() {
        return Err(err(
            "compare always runs all three architectures; drop --arch",
        ));
    }
    // With a template, compare runs all three dataflows on the
    // template's *machine* (capacities, datapath, energies) — the
    // template's own dataflow triple picks none of them out.
    let runner = runner_for(&opts, cache, template)?;
    let wl = Workload::new(opts.shape, opts.precision);
    let cmp = Comparison::new(vec![
        runner.analyze(Architecture::StandardDequant, wl)?,
        runner.analyze(Architecture::PackedK, wl)?,
        runner.analyze(Architecture::Pacq, wl)?,
    ]);
    let mut out = String::new();
    let _ = writeln!(out, "workload {wl}, group {}:", opts.group);
    let _ = writeln!(
        out,
        "{:<28} {:>12} {:>14} {:>10} {:>10} {:>12}",
        "architecture", "cycles", "energy (uJ)", "speedup", "EDP(norm)", "RF accesses"
    );
    let edp = cmp.normalized_edp();
    let speed = cmp.normalized_speedup();
    for (i, r) in cmp.reports().iter().enumerate() {
        let _ = writeln!(
            out,
            "{:<28} {:>12} {:>14.2} {:>9.2}x {:>10.3} {:>12}",
            r.arch.to_string(),
            r.stats.total_cycles,
            r.total_energy_pj() / 1e6,
            speed[i],
            edp[i],
            r.stats.rf.total_accesses(),
        );
    }
    Ok(out)
}

fn sweep(
    args: &[String],
    cache: Option<&Arc<ReportCache>>,
    backend: Backend,
    template: Option<&ArchTemplate>,
) -> PacqResult<String> {
    let opts = parse_options(args, true)?;
    // Shared --param validation (duplicates, empty value lists) before
    // the sweep-specific shape check.
    let specs = parse_params(&opts.params)?;
    let param = match specs.as_slice() {
        [] => return Err(err("--param is required for sweep")),
        [spec] if spec.values.is_empty() => spec.name.as_str(),
        [spec] => {
            return Err(err(format!(
                "--param {}=...: sweep takes a bare parameter name (batch, dup, width or \
                 grid); value lists belong to `pacq dse`",
                spec.name
            )))
        }
        _ => return Err(err("sweep takes exactly one --param")),
    };
    if param != "grid" && (opts.shard != Shard::FULL || opts.checkpoint.is_some()) {
        return Err(err(
            "--shard and --checkpoint apply to `sweep --param grid` only",
        ));
    }
    let mut out = String::new();
    match param {
        // The sharded, resumable batch×architecture×precision grid
        // (DESIGN.md §12). Rows print in grid order; jobs other shards
        // own are omitted, checkpointed jobs print as `done (resumed)`.
        "grid" => {
            let runner = runner_for(&opts, cache, template)?.with_backend(backend);
            let plan = SweepPlan::batch_grid(opts.shape.n, opts.shape.k);
            // The checkpoint is bound to grid × machine × template ×
            // backend: resuming a half-done sweep under any other runner
            // is a typed mismatch, never a silent skip.
            let checkpoint = match &opts.checkpoint {
                Some(path) => Some(SweepCheckpoint::open(path, &plan.binding_digest(&runner))?),
                None => None,
            };
            let outcome = run_sweep(&runner, &plan, opts.shard, checkpoint.as_ref())?;
            let _ = writeln!(
                out,
                "{:<24} {:>14} {:>14} {:>14}",
                "job", "cycles", "energy (uJ)", "EDP (pJ*s)"
            );
            for row in &outcome.rows {
                match &row.report {
                    Some(r) => {
                        let _ = writeln!(
                            out,
                            "{:<24} {:>14} {:>14.2} {:>14.6}",
                            row.job.id(),
                            r.stats.total_cycles,
                            r.total_energy_pj() / 1e6,
                            r.edp_pj_s,
                        );
                    }
                    None => {
                        let _ = writeln!(out, "{:<24} {:>14}", row.job.id(), "done (resumed)");
                    }
                }
            }
            let t = outcome.tally;
            let _ = writeln!(
                out,
                "grid: {} jobs, shard {} selected {}, resumed {}, executed {}",
                t.total, opts.shard, t.selected, t.skipped, t.executed
            );
            if let Some(c) = cache {
                let _ = writeln!(out, "cache: {} hits, {} misses", c.hits(), c.misses());
            }
        }
        // Each arm renders its sweep points into rows on the worker pool
        // (ordered collect), so the printed table is identical at any
        // `--jobs` setting.
        "batch" => {
            let _ = writeln!(
                out,
                "{:<8} {:>14} {:>14} {:>14}",
                "batch", "PacQ cycles", "speedup v std", "EDP reduction"
            );
            let runner = runner_for(&opts, cache, template)?.with_backend(backend);
            let points: Vec<(Architecture, Workload)> = [16usize, 32, 64, 128, 256, 512]
                .iter()
                .flat_map(|&m| {
                    let wl = Workload::new(
                        GemmShape::new(m, opts.shape.n, opts.shape.k),
                        opts.precision,
                    );
                    [
                        (Architecture::StandardDequant, wl),
                        (Architecture::Pacq, wl),
                    ]
                })
                .collect();
            for pair in runner.analyze_sweep(&points)?.chunks(2) {
                let [std, pq] = pair else {
                    // chunks(2) over an even point list always yields pairs.
                    continue;
                };
                let _ = writeln!(
                    out,
                    "{:<8} {:>14} {:>13.2}x {:>13.1}%",
                    pq.workload.shape.m,
                    pq.stats.total_cycles,
                    pq.speedup_over(std),
                    100.0 * (1.0 - pq.edp_normalized_to(std)),
                );
            }
        }
        "dup" => {
            let _ = writeln!(
                out,
                "{:<6} {:>14} {:>16}",
                "dup", "PacQ cycles", "TC power (units)"
            );
            let width = resolve_config(&opts, template).dp_width;
            let rows: Vec<PacqResult<String>> = vec![1usize, 2, 4]
                .into_par_iter()
                .map(|dup| {
                    let mut o = opts_clone(&opts);
                    o.dup = Some(dup);
                    let runner = runner_for(&o, cache, template)?.with_backend(backend);
                    let r = runner.analyze(
                        Architecture::Pacq,
                        Workload::new(opts.shape, opts.precision),
                    )?;
                    let unit = pacq_energy::GemmUnit::ParallelDp {
                        width,
                        duplication: dup,
                    };
                    Ok(format!(
                        "{:<6} {:>14} {:>16.2}\n",
                        dup,
                        r.stats.total_cycles,
                        unit.power_units()
                    ))
                })
                .collect();
            for row in rows {
                out.push_str(&row?);
            }
        }
        "width" => {
            let _ = writeln!(
                out,
                "{:<8} {:>14} {:>14}",
                "width", "PacQ cycles", "P(B)k cycles"
            );
            let rows: Vec<PacqResult<String>> = vec![4usize, 8, 16]
                .into_par_iter()
                .map(|width| {
                    let mut o = opts_clone(&opts);
                    o.width = Some(width);
                    let runner = runner_for(&o, cache, template)?.with_backend(backend);
                    let wl = Workload::new(opts.shape, opts.precision);
                    let pq = runner.analyze(Architecture::Pacq, wl)?;
                    let pk = runner.analyze(Architecture::PackedK, wl)?;
                    Ok(format!(
                        "DP-{:<5} {:>14} {:>14}\n",
                        width, pq.stats.total_cycles, pk.stats.total_cycles
                    ))
                })
                .collect();
            for row in rows {
                out.push_str(&row?);
            }
        }
        other => return Err(err(format!("unknown sweep parameter `{other}`"))),
    }
    Ok(out)
}

/// `pacq dse`: grid-searches design points (batch × architecture-or-
/// mapping × precision × width × dup × group) over the template (or
/// builtin) machine, with the sweep machinery — sharding, checkpoint
/// resume bound to the (grid × machine × template × backend) digest,
/// report caching — reused wholesale. See [`crate::dse`]. With
/// `--pareto` the non-dominated (cycles, energy) set is printed as a
/// stable table and recorded in the `--metrics` manifest.
fn dse(
    args: &[String],
    cache: Option<&Arc<ReportCache>>,
    backend: Backend,
    template: Option<&ArchTemplate>,
) -> PacqResult<String> {
    // `--pareto` is dse-only, so it is split off before the shared
    // option parser (which would reject it for every other command).
    let mut pareto = false;
    let args: Vec<String> = args
        .iter()
        .filter(|a| {
            let hit = *a == "--pareto";
            pareto |= hit;
            !hit
        })
        .cloned()
        .collect();
    let opts = parse_options(&args, true)?;
    if opts.arch.is_some() || opts.dup.is_some() || opts.width.is_some() {
        return Err(err(
            "dse searches architectures/dup/width via --param (e.g. --param arch=std,pacq); \
             the single-value flags don't apply",
        ));
    }
    let base = runner_for(&opts, cache, template)?.with_backend(backend);
    let cfg = *base.config();
    let mut axes = DseAxes::defaults(cfg.dp_width, cfg.adder_tree_duplication, opts.group);
    axes.apply(&parse_params(&opts.params)?)?;
    let plan = DsePlan::enumerate(&axes, opts.shape.n, opts.shape.k);
    let checkpoint = match &opts.checkpoint {
        Some(path) => Some(SweepCheckpoint::open(path, &plan.binding_digest(&base))?),
        None => None,
    };
    let outcome = run_dse(&base, &plan, opts.shard, checkpoint.as_ref())?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<32} {:>14} {:>14} {:>14}",
        "design point", "cycles", "energy (uJ)", "EDP (pJ*s)"
    );
    for row in &outcome.rows {
        match &row.report {
            Some(r) => {
                let _ = writeln!(
                    out,
                    "{:<32} {:>14} {:>14.2} {:>14.6}",
                    row.job.id(),
                    r.stats.total_cycles,
                    r.total_energy_pj() / 1e6,
                    r.edp_pj_s,
                );
            }
            None => {
                let _ = writeln!(out, "{:<32} {:>14}", row.job.id(), "done (resumed)");
            }
        }
    }
    // Rankings must never silently drop rows: resumed rows are
    // rehydrated from --cache inside run_dse; any still left without a
    // report makes every ranking line explicitly partial.
    let unranked = outcome.rows.iter().filter(|r| r.report.is_none()).count();
    let partial = if unranked > 0 {
        format!(" (partial: {unranked} resumed rows excluded)")
    } else {
        String::new()
    };
    // The best completed point by EDP — the headline of a design-space
    // search; ties break by job id, so the winner is byte-identical
    // across --jobs counts and shard interleavings.
    if let Some((job, best)) = crate::dse::best_edp(&outcome.rows) {
        let _ = writeln!(
            out,
            "best EDP: {} ({:.6} pJ*s){partial}",
            job.id(),
            best.edp_pj_s
        );
    }
    if pareto {
        let points: Vec<crate::pareto::ParetoPoint> = outcome
            .rows
            .iter()
            .filter_map(|r| {
                r.report.as_ref().map(|rep| crate::pareto::ParetoPoint {
                    id: r.job.id(),
                    cycles: rep.stats.total_cycles,
                    energy_pj: rep.total_energy_pj(),
                })
            })
            .collect();
        let front = crate::pareto::pareto_front(&points);
        let _ = writeln!(
            out,
            "pareto front ({} of {} points){partial}:",
            front.len(),
            points.len()
        );
        let _ = writeln!(
            out,
            "{:<36} {:>14} {:>14}",
            "design point", "cycles", "energy (uJ)"
        );
        let mut records = Vec::new();
        for p in &front {
            let _ = writeln!(
                out,
                "{:<36} {:>14} {:>14.2}",
                p.id,
                p.cycles,
                p.energy_pj / 1e6
            );
            let mut rec = Json::object();
            rec.set("id", p.id.as_str());
            rec.set("cycles", p.cycles);
            rec.set("energy_pj", p.energy_pj);
            records.push(rec);
        }
        // The front also lands in the --metrics manifest as one
        // structured record (kind "dse.pareto").
        let mut record = Json::object();
        record.set("kind", "dse.pareto");
        record.set("points_ranked", points.len() as u64);
        record.set("points_excluded", unranked as u64);
        record.set("front", Json::Arr(records));
        pacq_trace::record_result("dse.pareto", record);
    }
    let t = outcome.tally;
    let _ = writeln!(
        out,
        "dse: {} points, shard {} selected {}, resumed {}, executed {}{}",
        t.total,
        opts.shard,
        t.selected,
        t.skipped,
        t.executed,
        match template {
            Some(tpl) => format!("; template {} ({})", tpl.name, tpl.digest()),
            None => "; builtin machine".to_string(),
        }
    );
    if let Some(c) = cache {
        let _ = writeln!(out, "cache: {} hits, {} misses", c.hits(), c.misses());
    }
    Ok(out)
}

/// `pacq cache stats|clear|verify --dir DIR`: maintenance operations on
/// a content-addressed report cache directory. `verify` exits nonzero
/// (typed, exit code 4) when any entry fails its integrity walk, so CI
/// can gate on store health.
fn cache_cmd(args: &[String], ambient: Option<&Arc<ReportCache>>) -> PacqResult<String> {
    let mut action = None;
    let mut dir = None;
    let mut it = args.iter().map(String::as_str);
    while let Some(arg) = it.next() {
        match arg {
            "stats" | "clear" | "verify" if action.is_none() => action = Some(arg.to_string()),
            "--dir" => {
                dir = Some(
                    it.next()
                        .ok_or_else(|| err("missing value for --dir"))?
                        .to_string(),
                )
            }
            other => return Err(err(format!("unknown cache argument `{other}`"))),
        }
    }
    let action = action.ok_or_else(|| err("cache wants an action: stats, clear or verify"))?;
    // `--dir DIR` names the store; the global `--cache DIR` flag works
    // too, so `pacq cache stats --cache DIR` reads naturally.
    let store = match (dir, ambient) {
        (Some(d), _) => ReportCache::open(d)?,
        (None, Some(c)) => ReportCache::open(c.dir())?,
        (None, None) => return Err(err("cache wants --dir DIR (or the global --cache DIR)")),
    };
    match action.as_str() {
        "stats" => {
            let s = store.stats()?;
            Ok(format!(
                "cache {}: {} entries, {} bytes, {} corrupt\n",
                store.dir().display(),
                s.entries,
                s.bytes,
                s.corrupt
            ))
        }
        "clear" => {
            let removed = store.clear()?;
            Ok(format!(
                "cache {}: removed {removed} entries\n",
                store.dir().display()
            ))
        }
        _ => {
            let v = store.verify()?;
            if v.corrupt.is_empty() {
                Ok(format!(
                    "cache {}: {} entries verified OK\n",
                    store.dir().display(),
                    v.valid
                ))
            } else {
                Err(PacqError::invalid_input(
                    "cli::cache verify",
                    format!(
                        "{} of {} entries corrupt: {}",
                        v.corrupt.len(),
                        v.valid + v.corrupt.len(),
                        v.corrupt.join(", ")
                    ),
                ))
            }
        }
    }
}

/// `pacq audit`: cross-checks the two independent simulators (analytic
/// closed forms vs event-driven per-octet replay) counter by counter on
/// a grid of shapes — including ragged ones that exercise the
/// zero-padding path — then verifies the energy/EDP accounting
/// identities and the roofline crossover search against a dense
/// reference scan. With `--cache DIR`, priced reports go through (and
/// into) the store, so the audit doubles as a check that cached reports
/// satisfy the same invariants as fresh ones.
fn audit(
    args: &[String],
    cache: Option<&Arc<ReportCache>>,
    template: Option<&ArchTemplate>,
) -> PacqResult<String> {
    let mut activity = false;
    let mut tolerance_flag = None;
    let mut scale = None;
    let mut it = args.iter().map(String::as_str);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> PacqResult<&str> {
            it.next()
                .ok_or_else(|| err(format!("missing value for {name}")))
        };
        match flag {
            "--activity" => activity = true,
            "--tolerance" => {
                let t: f64 = value("--tolerance")?
                    .parse()
                    .map_err(|_| err("--tolerance expects a number"))?;
                if !(t > 0.0 && t.is_finite()) {
                    return Err(err(format!(
                        "--tolerance must be positive and finite, got {t}"
                    )));
                }
                tolerance_flag = Some(t);
            }
            "--activity-scale" => {
                let s: f64 = value("--activity-scale")?
                    .parse()
                    .map_err(|_| err("--activity-scale expects a number"))?;
                scale = Some(s);
            }
            other => return Err(err(format!("unknown audit option `{other}`"))),
        }
    }
    if activity {
        return audit_activity(tolerance_flag, scale, template);
    }
    if tolerance_flag.is_some() || scale.is_some() || template.is_some() {
        return Err(err(
            "--tolerance, --activity-scale and --arch-template configure the activity \
             cross-check; pass --activity too",
        ));
    }
    // along_k(16) matches the per-octet schedule's scale granularity, so
    // the replay×octets == analytic identity is exact (see pipeline.rs).
    let group = GroupShape::along_k(16);
    let shapes = [
        GemmShape::new(16, 16, 16),
        GemmShape::new(3, 40, 17),  // ragged: zero-pads to m16n48k32
        GemmShape::new(24, 48, 48), // ragged m only
        GemmShape::new(16, 256, 256),
    ];
    let archs = [
        Architecture::StandardDequant,
        Architecture::PackedK,
        Architecture::InputStationary,
        Architecture::Pacq,
    ];
    let precisions = [WeightPrecision::Int4, WeightPrecision::Int2];
    let mut cases = 0u64;
    let mut checks = 0u64;
    for width in [4usize, 8] {
        let mut cfg = SmConfig::volta_like();
        cfg.dp_width = width;
        for shape in shapes {
            for arch in archs {
                for precision in precisions {
                    checks += audit_point(shape, arch, precision, &cfg, group, cache)?;
                    cases += 1;
                }
            }
        }
    }
    let mut roofline_checks = 0u64;
    for (n, k) in [(4096usize, 4096usize), (11008, 4096), (500, 700), (64, 64)] {
        for bits in [16u32, 4, 2] {
            roofline_checks += audit_roofline(n, k, bits)?;
        }
    }
    pacq_trace::add_counter("cli.audit.checks", checks + roofline_checks);
    Ok(format!(
        "audit OK: {checks} counter/energy checks across {cases} replay cases \
(shapes incl. ragged, INT4/INT2, DP-4/DP-8) and {roofline_checks} roofline \
crossover checks (FP16/INT4/INT2 weights)\n"
    ))
}

/// `pacq audit --activity`: simulates both multiplier netlists over the
/// reference operand streams at both precisions, prices the toggle
/// histograms through the per-gate-class energy BOM, and cross-checks
/// every activity-derived pJ/op figure against its analytic
/// counterpart. The first point whose relative error exceeds the
/// declared tolerance is a typed [`PacqError::AuditMismatch`]
/// (exit code 7) naming the diverging unit. Every point — numbers,
/// toggle histogram, tolerance — is recorded in the metrics manifest.
///
/// Tolerance resolution: `--tolerance` and a template's
/// `audit.activity_tolerance` conflict; either alone wins over
/// [`activity::DEFAULT_TOLERANCE`]. `--activity-scale` multiplies the
/// BOM's per-toggle energies (CI uses it to smoke the mismatch path).
fn audit_activity(
    tolerance_flag: Option<f64>,
    scale: Option<f64>,
    template: Option<&ArchTemplate>,
) -> PacqResult<String> {
    use crate::activity::{self, UnitCalibration};

    let template_tolerance = template.and_then(|t| t.activity_tolerance);
    let tolerance = match (tolerance_flag, template_tolerance) {
        (Some(_), Some(_)) => {
            return Err(err(
                "--tolerance conflicts with the template's audit.activity_tolerance",
            ))
        }
        (Some(t), None) | (None, Some(t)) => t,
        (None, None) => activity::DEFAULT_TOLERANCE,
    };
    let bom = match scale {
        Some(s) => pacq_energy::ActivityBom::calibrated().with_scale(s)?,
        None => pacq_energy::ActivityBom::calibrated(),
    };
    let points = activity::calibrate(&bom, activity::DEFAULT_OPS, activity::DEFAULT_SEED)?;

    let record = |p: &UnitCalibration| {
        let mut result = Json::object();
        result.set("kind", "audit.activity");
        result.set("unit", p.unit_token());
        result.set("precision", p.precision_token());
        result.set("analytic_pj_per_op", p.analytic_pj_per_op);
        result.set("activity_pj_per_op", p.activity_pj_per_op);
        result.set("activity_pj_per_cycle", p.activity_pj_per_cycle);
        result.set("rel_error", p.rel_error());
        result.set("tolerance", tolerance);
        result.set("ops", p.profile.ops);
        result.set("seed", p.profile.seed);
        result.set("lanes", p.profile.lanes);
        result.set("total_toggles", p.profile.total_toggles);
        result.set("logic_toggles", p.profile.logic_toggles());
        let mut hist = Json::object();
        for &(class, toggles) in &p.profile.toggles_by_class {
            hist.set(class, toggles);
        }
        result.set("toggles_by_class", hist);
        pacq_trace::record_result(
            format!("audit.activity.{}.{}", p.precision_token(), p.unit_token()),
            result,
        );
    };

    let mut table = String::new();
    for p in &points {
        record(p);
        let _ = writeln!(
            table,
            "  {:<8} {:<4}  analytic {:>8.4} pJ/op  activity {:>8.4} pJ/op  rel {:>+7.1}%",
            p.unit_token(),
            p.precision_token(),
            p.analytic_pj_per_op,
            p.activity_pj_per_op,
            100.0 * p.rel_error()
        );
        // `!(.. <= ..)` so a NaN relative error also trips the check.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(p.rel_error().abs() <= tolerance) {
            return Err(PacqError::AuditMismatch {
                counter: format!(
                    "activity.{}.{}.pj_per_op",
                    p.unit_token(),
                    p.precision_token()
                ),
                case: format!(
                    "{} multiplier at {} (ops {}, seed {:#x}, tolerance {tolerance})",
                    p.unit_token(),
                    p.precision_token(),
                    p.profile.ops,
                    p.profile.seed
                ),
                observed: format!("{:.4} pJ/op (activity-derived)", p.activity_pj_per_op),
                expected: format!(
                    "{:.4} pJ/op (analytic, within ±{tolerance} relative)",
                    p.analytic_pj_per_op
                ),
            });
        }
    }
    pacq_trace::add_counter("audit.activity.checks", points.len() as u64);
    Ok(format!(
        "audit OK (activity): {} multiplier points within tolerance ±{tolerance} \
(ops {}, seed {:#x})\n{table}",
        points.len(),
        activity::DEFAULT_OPS,
        activity::DEFAULT_SEED
    ))
}

/// Audits one (shape, architecture, precision, machine) point: every
/// traffic counter of the analytic engine must equal the per-octet
/// replay scaled by the warp-tile octet count, and the priced report
/// must satisfy its own accounting identities.
fn audit_point(
    shape: GemmShape,
    arch: Architecture,
    precision: WeightPrecision,
    cfg: &SmConfig,
    group: GroupShape,
    cache: Option<&Arc<ReportCache>>,
) -> PacqResult<u64> {
    let wl = Workload::new(shape, precision);
    let case = format!("{wl} on {arch} (DP-{})", cfg.dp_width);
    let analytic = simulate(arch, wl, cfg, group)?;
    let octets = shape.padded_to_tiles().warp_tiles() * 4;
    let replay = OctetPipeline::new().run(&octet_schedule(arch, precision, cfg));

    let pairs = [
        ("rf.a_reads", replay.rf.a_reads, analytic.rf.a_reads),
        ("rf.b_reads", replay.rf.b_reads, analytic.rf.b_reads),
        ("rf.c_reads", replay.rf.c_reads, analytic.rf.c_reads),
        ("rf.c_writes", replay.rf.c_writes, analytic.rf.c_writes),
        ("rf.a_bits", replay.rf.a_bits, analytic.rf.a_bits),
        ("rf.b_bits", replay.rf.b_bits, analytic.rf.b_bits),
        ("rf.c_bits", replay.rf.c_bits, analytic.rf.c_bits),
        ("buffer_fills", replay.buffer_fills, analytic.buffer_fills),
        (
            "buffer_evictions",
            replay.buffer_evictions,
            analytic.buffer_evictions,
        ),
        (
            "fetch_instructions",
            replay.fetch_instructions,
            analytic.fetch_instructions,
        ),
    ];
    for (counter, per_octet, total) in pairs {
        let observed = per_octet * octets;
        if observed != total {
            return Err(PacqError::AuditMismatch {
                counter: counter.to_string(),
                case,
                observed: format!("{observed} (replay {per_octet} x {octets} octets)"),
                expected: format!("{total} (analytic)"),
            });
        }
    }

    // The priced report's EDP / energy-BOM / Figure-7 identities —
    // through the cache when one is attached, so cached entries face the
    // same checks as fresh ones.
    let report = GemmRunner::new()
        .with_config(*cfg)
        .with_group(group)
        .with_cache_opt(cache.map(Arc::clone))
        .analyze(arch, wl)?;
    report.check_invariants()?;
    Ok(pairs.len() as u64 + 3)
}

/// Audits the roofline crossover search for one layer: the
/// galloping-plus-binary search must agree exactly with a dense 16-step
/// reference scan, and a layer whose intensity saturates below the
/// ridge must be a typed error, not a sentinel batch.
fn audit_roofline(n: usize, k: usize, bits: u32) -> PacqResult<u64> {
    let cfg = SmConfig::volta_like();
    let case = format!("roofline n{n} k{k} w{bits}");
    let fast = roofline::crossover_batch_with_weight_bits(n, k, bits, &cfg);

    let mut reference = None;
    let mut m = 16usize;
    while m <= (1 << 20) {
        let a = roofline::analyze_with_weight_bits(GemmShape::new(m, n, k), bits, &cfg);
        if a.bound == roofline::Bound::ComputeBound {
            reference = Some(m);
            break;
        }
        m += 16;
    }

    match (&fast, reference) {
        (Ok(f), Some(r)) if *f == r => Ok(1),
        (Err(e), None) if !e.is_usage() => Ok(1),
        _ => Err(PacqError::AuditMismatch {
            counter: "roofline.crossover_batch".to_string(),
            case,
            observed: match &fast {
                Ok(f) => format!("m={f}"),
                Err(e) => format!("error ({e})"),
            },
            expected: match reference {
                Some(r) => format!("m={r} (reference linear scan)"),
                None => "saturating-layer error (reference scan never crosses)".to_string(),
            },
        }),
    }
}

/// `pacq trace`: replays one warp-tile octet through the event-driven
/// pipeline and writes the cycle-resolved activity as Chrome trace_event
/// JSON (1 trace microsecond = 1 SM cycle).
fn trace(args: &[String], template: Option<&ArchTemplate>) -> PacqResult<String> {
    let opts = parse_options(args, false)?;
    let arch = resolve_arch(opts.arch, template)?;
    let out = opts
        .out
        .clone()
        .ok_or_else(|| err("--out PATH is required for trace"))?;
    let cfg = resolve_config(&opts, template);
    let schedule = octet_schedule(arch, opts.precision, &cfg);
    let (replay, events) = OctetPipeline::new().run_traced(&schedule);

    let mut chrome = ChromeTrace::new();
    let mut lanes: Vec<(u64, String)> = Vec::new();
    for e in &events {
        let lane_name = match e.kind {
            "compute" => "DP compute".to_string(),
            "evict A" => "A-buffer evictions".to_string(),
            _ => format!("RF port {}", e.lane),
        };
        if !lanes.iter().any(|(l, _)| *l == e.lane) {
            lanes.push((e.lane, lane_name));
        }
        if e.dur == 0 {
            chrome.instant_event(e.kind, "octet", 1, e.lane, e.start);
        } else {
            chrome.complete_event(e.kind, "octet", 1, e.lane, e.start, e.dur, &[]);
        }
    }
    lanes.sort_by_key(|(l, _)| *l);
    for (lane, name) in &lanes {
        chrome.name_lane(1, *lane, name);
    }
    chrome.set_metadata("architecture", Json::from(arch.to_string()));
    chrome.set_metadata("precision", Json::from(opts.precision.to_string()));
    chrome.set_metadata("cycles", Json::from(replay.cycles));
    chrome.set_metadata("time_units", Json::from("1 trace microsecond = 1 SM cycle"));
    chrome.write_to(&out)?;
    Ok(format!(
        "wrote Chrome trace: {} events over {} cycles ({} stall) -> {out}\n",
        events.len(),
        replay.cycles,
        replay.fetch_stall_cycles,
    ))
}

fn opts_clone(o: &Options) -> Options {
    Options {
        shape: o.shape,
        precision: o.precision,
        arch: o.arch,
        group: o.group,
        dup: o.dup,
        width: o.width,
        json: o.json,
        check: o.check,
        params: o.params.clone(),
        out: o.out.clone(),
        shard: o.shard,
        checkpoint: o.checkpoint.clone(),
    }
}

fn report_text(r: &GemmReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "workload:        {}", r.workload);
    let _ = writeln!(out, "architecture:    {}", r.arch);
    let _ = writeln!(out, "total cycles:    {}", r.stats.total_cycles);
    let _ = writeln!(out, "  tensor core:   {}", r.stats.tc_cycles);
    let _ = writeln!(out, "  general core:  {}", r.stats.general_cycles);
    let _ = writeln!(out, "latency:         {:.3} us", r.latency_s * 1e6);
    let _ = writeln!(out, "energy:          {:.3} uJ", r.total_energy_pj() / 1e6);
    let _ = writeln!(out, "  tensor core:   {:.3} uJ", r.energy.tc_pj / 1e6);
    let _ = writeln!(out, "  register file: {:.3} uJ", r.energy.rf_pj / 1e6);
    let _ = writeln!(out, "  L1:            {:.3} uJ", r.energy.l1_pj / 1e6);
    let _ = writeln!(out, "  DRAM:          {:.3} uJ", r.energy.dram_pj / 1e6);
    let _ = writeln!(out, "  general core:  {:.3} uJ", r.energy.general_pj / 1e6);
    let _ = writeln!(out, "EDP:             {:.6} pJ*s", r.edp_pj_s);
    let _ = writeln!(out, "RF accesses:     {}", r.stats.rf.total_accesses());
    let _ = writeln!(out, "fetch instrs:    {}", r.stats.fetch_instructions);
    let _ = writeln!(out, "buffer evicts:   {}", r.stats.buffer_evictions);
    out
}

/// The `--json` rendering of one report (human-oriented: floats are
/// rounded for reading; the lossless wire form is the cache entry /
/// serve reply codec, `CachedReport::to_json`). Public so the serve
/// conformance suite can pin the one-shot CLI path against it.
pub fn report_json(r: &GemmReport) -> String {
    // Hand-rolled JSON keeps the dependency set minimal; all values are
    // numbers or simple strings, so no escaping is needed.
    format!(
        concat!(
            "{{\n",
            "  \"workload\": \"{}\",\n",
            "  \"architecture\": \"{}\",\n",
            "  \"total_cycles\": {},\n",
            "  \"tc_cycles\": {},\n",
            "  \"general_cycles\": {},\n",
            "  \"latency_s\": {:e},\n",
            "  \"energy_pj\": {:.3},\n",
            "  \"energy_breakdown_pj\": {{\n",
            "    \"tensor_core\": {:.3},\n",
            "    \"register_file\": {:.3},\n",
            "    \"l1\": {:.3},\n",
            "    \"dram\": {:.3},\n",
            "    \"buffers\": {:.3},\n",
            "    \"general_core\": {:.3}\n",
            "  }},\n",
            "  \"edp_pj_s\": {:e},\n",
            "  \"rf_accesses\": {},\n",
            "  \"fetch_instructions\": {},\n",
            "  \"buffer_evictions\": {}\n",
            "}}\n"
        ),
        r.workload,
        r.arch,
        r.stats.total_cycles,
        r.stats.tc_cycles,
        r.stats.general_cycles,
        r.latency_s,
        r.total_energy_pj(),
        r.energy.tc_pj,
        r.energy.rf_pj,
        r.energy.l1_pj,
        r.energy.dram_pj,
        r.energy.buffer_pj,
        r.energy.general_pj,
        r.edp_pj_s,
        r.stats.rf.total_accesses(),
        r.stats.fetch_instructions,
        r.stats.buffer_evictions,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_shape_accepts_paper_notation() {
        let s = parse_shape("m16n4096k4096").expect("parses");
        assert_eq!((s.m, s.n, s.k), (16, 4096, 4096));
        assert!(parse_shape("m16k16n16").is_err()); // wrong order
        assert!(parse_shape("16n16k16").is_err());
        assert!(parse_shape("m15n16k16").is_err()); // misaligned
        assert!(parse_shape("m0n16k16").is_err());
    }

    #[test]
    fn parse_group_variants() {
        assert_eq!(parse_group("g128").unwrap(), GroupShape::G128);
        assert_eq!(parse_group("g32x4").unwrap(), GroupShape::G32X4);
        assert_eq!(parse_group("g64").unwrap(), GroupShape::along_k(64));
        assert!(parse_group("h128").is_err());
    }

    #[test]
    fn help_and_empty() {
        assert!(run(&[]).unwrap().contains("USAGE"));
        assert!(run(&argv("help")).unwrap().contains("USAGE"));
    }

    #[test]
    fn analyze_produces_report() {
        let out = run(&argv("analyze --shape m16n256k256 --arch pacq")).expect("runs");
        assert!(out.contains("PacQ"));
        assert!(out.contains("total cycles"));
        assert!(out.contains("EDP"));
    }

    #[test]
    fn analyze_json_is_wellformed_enough() {
        let out = run(&argv("analyze --shape m16n256k256 --json")).expect("runs");
        assert!(out.trim_start().starts_with('{'));
        assert!(out.trim_end().ends_with('}'));
        assert!(out.contains("\"total_cycles\""));
        assert_eq!(out.matches('{').count(), out.matches('}').count());
    }

    #[test]
    fn compare_lists_three_architectures() {
        let out = run(&argv("compare --shape m16n256k256")).expect("runs");
        assert!(out.contains("Standard"));
        assert!(out.contains("P(B_x)_k"));
        assert!(out.contains("PacQ"));
    }

    #[test]
    fn sweep_batch_runs() {
        let out = run(&argv("sweep --param batch --shape m16n256k256")).expect("runs");
        assert!(out.contains("512"));
        let out = run(&argv("sweep --param dup --shape m16n256k256")).expect("runs");
        assert!(out.lines().count() >= 4);
        let out = run(&argv("sweep --param width --shape m16n256k256")).expect("runs");
        assert!(out.contains("DP-16"));
    }

    #[test]
    fn jobs_flag_is_accepted_everywhere() {
        let _guard = crate::par::test_lock();
        let out = run(&argv("sweep --param width --shape m16n256k256 --jobs 2")).expect("runs");
        assert!(out.contains("DP-16"));
        let serial = run(&argv("sweep --param width --shape m16n256k256 --jobs 1")).expect("runs");
        assert_eq!(out, serial, "sweep output must not depend on the job count");
        crate::par::configure_jobs(Some(0));
        assert!(run(&argv("analyze --shape m16n16k16 --jobs many")).is_err());
    }

    #[test]
    fn zero_jobs_rejected_with_usage_error() {
        let _guard = crate::par::test_lock();
        for cmd in [
            "analyze --shape m16n16k16 --jobs 0",
            "compare --shape m16n16k16 --jobs=0",
            "sweep --param batch --shape m16n16k16 --jobs 0",
        ] {
            let err = run(&argv(cmd)).unwrap_err();
            assert!(err.is_usage(), "{cmd}: {err}");
            assert_eq!(err.exit_code(), 2, "{cmd}");
        }
    }

    #[test]
    fn zero_jobs_env_rejected() {
        let _guard = crate::par::test_lock();
        std::env::set_var(crate::par::JOBS_ENV, "0");
        let err = run(&argv("analyze --shape m16n16k16")).unwrap_err();
        std::env::remove_var(crate::par::JOBS_ENV);
        assert!(err.is_usage(), "{err}");
        assert!(err.to_string().contains("PACQ_JOBS"), "{err}");
    }

    #[test]
    fn exec_runs_and_check_pins_backend_identity() {
        let _guard = crate::par::test_lock();
        let digest = |s: &str| {
            s.split("digest ")
                .nth(1)
                .and_then(|t| t.split([',', ')']).next())
                .map(str::to_string)
        };
        let scalar = run(&argv(
            "exec --shape m16n32k128 --group g32 --backend scalar",
        ))
        .expect("runs");
        assert!(scalar.contains("scalar backend"), "{scalar}");
        let batched = run(&argv(
            "exec --shape m16n32k128 --group g32 --backend=batched",
        ))
        .expect("runs");
        assert!(batched.contains("batched backend"), "{batched}");
        // Same inputs, same bits: the digest is backend-invariant.
        assert_eq!(digest(&scalar), digest(&batched), "{scalar}\n{batched}");
        let checked = run(&argv(
            "exec --shape m16n32k128 --arch packedk --precision int2 --group g32 --check",
        ))
        .expect("runs");
        assert!(checked.contains("check OK"), "{checked}");
        assert!(checked.contains("speedup"), "{checked}");
    }

    #[test]
    fn backend_flag_and_env_are_validated() {
        let _guard = crate::par::test_lock();
        let err = run(&argv("analyze --shape m16n16k16 --backend turbo")).unwrap_err();
        assert!(err.is_usage(), "{err}");
        assert_eq!(err.exit_code(), 2);
        std::env::set_var(crate::backend::BACKEND_ENV, "turbo");
        let err = run(&argv("analyze --shape m16n16k16")).unwrap_err();
        // ...and a typo'd env var fails even when the flag would win.
        let flagged = run(&argv("analyze --shape m16n16k16 --backend scalar"));
        std::env::remove_var(crate::backend::BACKEND_ENV);
        assert!(err.is_usage(), "{err}");
        assert!(err.to_string().contains("PACQ_BACKEND"), "{err}");
        assert!(flagged.is_err(), "env typos are never masked by the flag");
        // A valid selection is accepted by every command.
        let out = run(&argv("analyze --shape m16n256k256 --backend batched")).expect("runs");
        assert!(out.contains("total cycles"), "{out}");
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&argv("analyze")).is_err()); // missing shape
        assert!(run(&argv("analyze --shape m16n16k16 --precision int5")).is_err());
        assert!(run(&argv("frobnicate")).is_err());
        assert!(run(&argv("sweep --shape m16n16k16")).is_err()); // missing param
        assert!(run(&argv("analyze --shape m16n16k16 --dup 3")).is_err());
    }

    fn tmp_path(tag: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("pacq-cli-test-{}-{tag}.json", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn audit_cross_checks_the_two_simulators() {
        let out = run(&argv("audit")).expect("audit passes");
        assert!(out.contains("audit OK"), "{out}");
        assert!(out.contains("ragged"), "{out}");
        assert!(run(&argv("audit --shape m16n16k16")).is_err());
    }

    #[test]
    fn audit_activity_cross_checks_all_four_points() {
        let out = run(&argv("audit --activity")).expect("activity audit passes");
        assert!(
            out.contains("audit OK (activity): 4 multiplier points"),
            "{out}"
        );
        for token in ["baseline", "parallel", "int4", "int2"] {
            assert!(out.contains(token), "missing {token} in: {out}");
        }
        // An explicit (achievable) tolerance also passes; a tight one
        // (wider than the anchor's sub-percent residual, tighter than
        // the structural divergence) trips the typed exit-7 mismatch
        // naming the first diverging unit — parallel INT4, the first
        // non-anchored point.
        run(&argv("audit --activity --tolerance 4")).expect("explicit tolerance");
        let e = run(&argv("audit --activity --tolerance 0.01")).unwrap_err();
        assert_eq!(e.exit_code(), 7, "{e}");
        assert!(
            e.to_string().contains("activity.parallel.int4.pj_per_op"),
            "{e}"
        );
        // A perturbed BOM diverges even at the default tolerance —
        // 16x pushes the anchored baseline point far off the analytic
        // figure, so it is named first.
        let e = run(&argv("audit --activity --activity-scale 16")).unwrap_err();
        assert_eq!(e.exit_code(), 7, "{e}");
        assert!(
            e.to_string().contains("activity.baseline.int4.pj_per_op"),
            "{e}"
        );
    }

    #[test]
    fn audit_activity_flag_validation() {
        // Activity options without --activity are usage errors.
        for args in [
            "audit --tolerance 0.5",
            "audit --activity-scale 2",
            "audit --activity --tolerance",
            "audit --activity --tolerance -1",
            "audit --activity --tolerance nan",
            "audit --activity --activity-scale 0",
            "audit --activity --bogus",
        ] {
            assert!(run(&argv(args)).is_err(), "`{args}` must fail");
        }
    }

    #[test]
    fn audit_activity_takes_the_template_tolerance() {
        let mut template = pacq_arch::ArchTemplate::pacq();
        template.activity_tolerance = Some(0.001);
        let path = tmp_path("audit-template").replace(".json", ".toml");
        std::fs::write(&path, template.render()).unwrap();
        // The pinned (absurdly tight) tolerance governs the check.
        let e = run(&[
            "audit".to_string(),
            "--activity".to_string(),
            "--arch-template".to_string(),
            path.clone(),
        ])
        .unwrap_err();
        assert_eq!(e.exit_code(), 7, "{e}");
        // An explicit --tolerance on top of the pinned one conflicts.
        let e = run(&[
            "audit".to_string(),
            "--activity".to_string(),
            "--tolerance".to_string(),
            "4".to_string(),
            "--arch-template".to_string(),
            path.clone(),
        ])
        .unwrap_err();
        assert_eq!(e.exit_code(), 2, "{e}");
        assert!(e.to_string().contains("conflicts"), "{e}");
        // A template without --activity still does not apply to the
        // replay audit.
        let e = run(&[
            "audit".to_string(),
            "--arch-template".to_string(),
            path.clone(),
        ])
        .unwrap_err();
        assert_eq!(e.exit_code(), 2, "{e}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_writes_chrome_trace_json() {
        let path = tmp_path("trace");
        let out = run(&[
            "trace".to_string(),
            "--arch".to_string(),
            "pacq".to_string(),
            "--precision".to_string(),
            "int2".to_string(),
            "--out".to_string(),
            path.clone(),
        ])
        .expect("trace runs");
        assert!(out.contains("wrote Chrome trace"), "{out}");
        let text = std::fs::read_to_string(&path).expect("trace file exists");
        let doc = pacq_trace::Json::parse(&text).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        assert!(!events.is_empty(), "trace has events");
        // Every event carries a phase; timed phases also carry a
        // timestamp (metadata `"M"` events are timeless per the spec).
        for e in events {
            let ph = e.get("ph").and_then(|p| p.as_str()).unwrap();
            assert!(ph == "M" || e.get("ts").is_some(), "{text}");
        }
        std::fs::remove_file(&path).ok();
        assert!(run(&argv("trace")).is_err(), "--out is required");
    }

    #[test]
    fn metrics_flag_writes_a_schema_valid_manifest() {
        let _guard = crate::par::test_lock();
        let path = tmp_path("metrics");
        let out = run(&[
            "analyze".to_string(),
            "--shape".to_string(),
            "m16n256k256".to_string(),
            format!("--metrics={path}"),
        ])
        .expect("analyze runs");
        assert!(out.contains("total cycles"));
        let text = std::fs::read_to_string(&path).expect("manifest exists");
        let doc = pacq_trace::Json::parse(&text).expect("valid JSON");
        pacq_trace::validate_manifest(&doc).expect("schema-valid manifest");
        // The analyzed report landed in the results section.
        let results = doc.get("results").and_then(|r| r.as_arr()).unwrap();
        assert!(
            results
                .iter()
                .any(|r| r.get("total_cycles").is_some() && r.get("edp_pj_s").is_some()),
            "{text}"
        );
        // The chosen backend is part of the invocation record.
        let backend = doc
            .get("invocation")
            .and_then(|i| i.get("backend"))
            .and_then(pacq_trace::Json::as_str)
            .map(str::to_string);
        assert_eq!(backend.as_deref(), Some("scalar"), "{text}");
        std::fs::remove_file(&path).ok();
        assert!(run(&argv("analyze --shape m16n16k16 --metrics")).is_err());
    }

    fn tmp_dir(tag: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("pacq-cli-test-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn sweep_grid_prints_rows_and_tally() {
        let out = run(&argv("sweep --param grid --shape m16n256k256")).expect("runs");
        assert!(out.contains("pacq:int2:m512n256k256"), "{out}");
        assert!(
            out.contains("grid: 36 jobs, shard 1/1 selected 36, resumed 0, executed 36"),
            "{out}"
        );
    }

    #[test]
    fn sweep_grid_shards_split_the_rows() {
        let full = run(&argv("sweep --param grid --shape m16n256k256")).unwrap();
        let a = run(&argv("sweep --param grid --shape m16n256k256 --shard 1/2")).unwrap();
        let b = run(&argv("sweep --param grid --shape m16n256k256 --shard 2/2")).unwrap();
        assert!(a.contains("selected 18"), "{a}");
        assert!(b.contains("selected 18"), "{b}");
        // Every full-grid row lands in exactly one shard's output.
        for line in full.lines().filter(|l| l.contains(":m")) {
            assert!(
                a.contains(line) ^ b.contains(line),
                "row `{line}` must be in exactly one shard"
            );
        }
    }

    #[test]
    fn sweep_grid_resumes_from_checkpoint() {
        let path = tmp_path("ckpt");
        std::fs::remove_file(&path).ok();
        let first = run(&[
            "sweep".to_string(),
            "--param".to_string(),
            "grid".to_string(),
            "--shape".to_string(),
            "m16n256k256".to_string(),
            "--checkpoint".to_string(),
            path.clone(),
        ])
        .expect("first pass runs");
        assert!(first.contains("executed 36"), "{first}");
        let second = run(&[
            "sweep".to_string(),
            "--param".to_string(),
            "grid".to_string(),
            "--shape".to_string(),
            "m16n256k256".to_string(),
            "--checkpoint".to_string(),
            path.clone(),
        ])
        .expect("resume runs");
        assert!(second.contains("done (resumed)"), "{second}");
        assert!(second.contains("resumed 36, executed 0"), "{second}");
        // A checkpoint written for a different grid must be a typed
        // error, not a silent fresh start.
        let err = run(&[
            "sweep".to_string(),
            "--param".to_string(),
            "grid".to_string(),
            "--shape".to_string(),
            "m16n512k512".to_string(),
            "--checkpoint".to_string(),
            path.clone(),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("checkpoint"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shard_and_checkpoint_are_grid_only() {
        let err = run(&argv("sweep --param batch --shape m16n256k256 --shard 1/2")).unwrap_err();
        assert!(err.is_usage(), "{err}");
        assert!(err.to_string().contains("grid"), "{err}");
        for bad in ["0/4", "5/4", "+1/4", "1of4", "1/0"] {
            let mut args = argv("sweep --param grid --shape m16n256k256 --shard");
            args.push(bad.to_string());
            let err = run(&args).unwrap_err();
            assert!(err.is_usage(), "--shard {bad}: {err}");
        }
    }

    #[test]
    fn cache_flag_memoizes_and_subcommands_manage_the_store() {
        let dir = tmp_dir("cache");
        let cached = |cmd: &str| {
            let mut args = argv(cmd);
            args.push("--cache".to_string());
            args.push(dir.clone());
            run(&args)
        };
        let cold = cached("analyze --shape m16n256k256 --arch pacq").expect("cold run");
        let warm = cached("analyze --shape m16n256k256 --arch pacq").expect("warm run");
        assert_eq!(cold, warm, "cached report must render identically");

        let stats = cached("cache stats").expect("stats");
        assert!(stats.contains("1 entries"), "{stats}");
        let verify = cached("cache verify").expect("verify");
        assert!(verify.contains("verified OK"), "{verify}");

        // Corrupt the single entry: verify now fails with the typed
        // invalid-input exit code, while analyze still succeeds (a bad
        // entry is a miss, never an error).
        let entry = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .find(|e| e.path().extension().is_some_and(|x| x == "json"))
            .expect("one cache entry")
            .path();
        std::fs::write(&entry, "{\"schema\": \"pacq-cache/v1\", \"tru").unwrap();
        let err = cached("cache verify").unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        let healed = cached("analyze --shape m16n256k256 --arch pacq").expect("recomputes");
        assert_eq!(healed, cold);

        let cleared = run(&[
            "cache".to_string(),
            "clear".to_string(),
            "--dir".to_string(),
            dir.clone(),
        ])
        .expect("clear");
        assert!(cleared.contains("removed"), "{cleared}");
        assert!(run(&argv("cache stats")).is_err(), "--dir is required");
        assert!(cached("cache frobnicate").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hot_flag_requires_a_cache_and_validates_its_capacity() {
        // --hot without --cache is a usage error: there is no store to
        // front.
        let err = run(&argv("analyze --shape m16n256k256 --hot 8")).unwrap_err();
        assert!(err.is_usage(), "{err}");
        assert!(err.to_string().contains("--cache"), "{err}");

        let dir = tmp_dir("hotcli");
        for bad in ["0", "-1", "4.0", "nope", ""] {
            let mut args = argv("analyze --shape m16n256k256 --cache");
            args.push(dir.clone());
            args.push(format!("--hot={bad}"));
            let err = run(&args).unwrap_err();
            assert_eq!(err.exit_code(), 2, "--hot {bad}: {err}");
        }

        // With a store, --hot N is accepted (both spellings) and the
        // warm run renders identically to the cold one.
        let hot = |cmd: &str| {
            let mut args = argv(cmd);
            args.extend(["--cache".to_string(), dir.clone(), "--hot".to_string()]);
            args.push("8".to_string());
            run(&args)
        };
        let cold = hot("analyze --shape m16n256k256 --arch pacq").expect("cold run");
        let warm = hot("analyze --shape m16n256k256 --arch pacq").expect("warm run");
        assert_eq!(cold, warm);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_param_duplicates_and_value_lists_are_usage_errors() {
        // The --param regression table (alongside the --jobs cases
        // above): every row used to be accepted silently.
        for cmd in [
            "sweep --shape m16n256k256 --param batch --param batch",
            "sweep --shape m16n256k256 --param grid --param batch",
            "sweep --shape m16n256k256 --param batch=16,32",
            "sweep --shape m16n256k256 --param batch=",
            "sweep --shape m16n256k256 --param =grid",
            "dse --shape m16n256k256 --param batch=16 --param batch=32",
            "dse --shape m16n256k256 --param batch=16,,32",
            "dse --shape m16n256k256 --param batch",
            "dse --shape m16n256k256 --param tile=4",
        ] {
            let err = run(&argv(cmd)).unwrap_err();
            assert!(err.is_usage(), "{cmd}: {err}");
            assert_eq!(err.exit_code(), 2, "{cmd}");
        }
    }

    #[test]
    fn dse_defaults_reproduce_the_grid_sweep_rows() {
        let dse = run(&argv("dse --shape m16n256k256")).expect("runs");
        let grid = run(&argv("sweep --param grid --shape m16n256k256")).expect("runs");
        assert!(dse.contains("dse: 36 points"), "{dse}");
        assert!(dse.contains("best EDP"), "{dse}");
        // Every dse row's numbers appear in the grid sweep's output:
        // same jobs, same machine, same bits. Columns are aligned
        // differently, so compare whitespace-split number tuples.
        let grid_rows: Vec<Vec<&str>> = grid
            .lines()
            .map(|l| l.split_whitespace().skip(1).collect())
            .collect();
        let is_row = |l: &&str| {
            l.strip_prefix('b')
                .is_some_and(|r| r.starts_with(|c: char| c.is_ascii_digit()))
        };
        for line in dse.lines().filter(is_row) {
            let numbers: Vec<&str> = line.split_whitespace().skip(1).take(3).collect();
            assert!(
                grid_rows.iter().any(|r| r.starts_with(&numbers)),
                "dse row `{line}` not in grid output:\n{grid}"
            );
        }
    }

    #[test]
    fn dse_params_shape_the_search_and_shards_compose() {
        let out = run(&argv(
            "dse --shape m16n256k256 --param batch=16,32 --param arch=pacq --param width=4,8",
        ))
        .expect("runs");
        assert!(out.contains("dse: 8 points"), "{out}");
        assert!(out.contains("b32:pacq:int2:w8:d2:g128"), "{out}");
        let a = run(&argv(
            "dse --shape m16n256k256 --param batch=16,32 --param arch=pacq --shard 1/2",
        ))
        .unwrap();
        assert!(a.contains("selected 2"), "{a}");
        // Single-value flags are rejected: axes go through --param.
        let err = run(&argv("dse --shape m16n256k256 --arch pacq")).unwrap_err();
        assert!(err.is_usage(), "{err}");
        let err = run(&argv("dse --shape m16n256k256 --dup 4")).unwrap_err();
        assert!(err.is_usage(), "{err}");
    }

    #[test]
    fn dse_checkpoint_resumes_and_binds_to_the_run() {
        let path = tmp_path("dse-ckpt");
        std::fs::remove_file(&path).ok();
        let base = "dse --shape m16n256k256 --param batch=16,32 --param arch=pacq";
        let mut args = argv(base);
        args.extend(["--checkpoint".to_string(), path.clone()]);
        let first = run(&args).expect("first pass");
        assert!(first.contains("executed 4"), "{first}");
        let second = run(&args).expect("resume");
        assert!(second.contains("resumed 4, executed 0"), "{second}");
        // A different search over the same checkpoint is a typed error.
        let mut other = argv("dse --shape m16n256k256 --param batch=16 --param arch=pacq");
        other.extend(["--checkpoint".to_string(), path.clone()]);
        let err = run(&other).unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        assert!(
            err.to_string().contains("belongs to a different run"),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn analyze_and_audit_cover_the_input_stationary_flow() {
        let out = run(&argv("analyze --shape m16n256k256 --arch is")).expect("runs");
        assert!(out.contains("Input-stationary"), "{out}");
        assert!(out.contains("total cycles"), "{out}");
        let alias =
            run(&argv("analyze --shape m16n256k256 --arch input-stationary")).expect("runs");
        assert_eq!(out, alias);
    }

    #[test]
    fn dse_mapping_axis_searches_loop_orders() {
        let out = run(&argv(
            "dse --shape m16n256k256 --param batch=16 --param mapping=mnk,mkn,nkm",
        ))
        .expect("runs");
        assert!(out.contains("dse: 6 points"), "{out}");
        assert!(out.contains(":pacq:") && out.contains(":mnk"), "{out}");
        assert!(out.contains(":is:") && out.contains(":mkn"), "{out}");
        assert!(out.contains(":packedk:") && out.contains(":nkm"), "{out}");
        // mapping conflicts with arch; bad loop orders are usage errors.
        for bad in [
            "dse --shape m16n256k256 --param mapping=mnk --param arch=pacq",
            "dse --shape m16n256k256 --param mapping=mnx",
            "dse --shape m16n256k256 --param mapping=mnk@8x8",
        ] {
            let e = run(&argv(bad)).unwrap_err();
            assert!(e.is_usage(), "{bad}: {e}");
        }
    }

    #[test]
    fn dse_pareto_prints_a_stable_front_and_records_it() {
        let base = "dse --shape m16n256k256 --param batch=16,32 \
                    --param arch=std,packedk,is,pacq --pareto";
        let out = run(&argv(base)).expect("runs");
        assert!(out.contains("pareto front ("), "{out}");
        assert!(out.contains("of 16 points"), "{out}");
        // Determinism: a second run and a different job count render
        // the identical front bytes.
        let _guard = crate::par::test_lock();
        let again = run(&argv(&format!("{base} --jobs 1"))).expect("runs");
        let front_of = |s: &str| {
            s.lines()
                .skip_while(|l| !l.starts_with("pareto front"))
                .take_while(|l| !l.starts_with("dse:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(front_of(&out), front_of(&again), "{out}\n---\n{again}");
        // The front lands in the --metrics manifest as a dse.pareto
        // record.
        let path = tmp_path("pareto-manifest");
        let mut args = argv(base);
        args.push(format!("--metrics={path}"));
        run(&args).expect("runs with metrics");
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = pacq_trace::Json::parse(&text).unwrap();
        let results = doc.get("results").and_then(|r| r.as_arr()).unwrap();
        let pareto = results
            .iter()
            .find(|r| r.get("kind").and_then(pacq_trace::Json::as_str) == Some("dse.pareto"))
            .unwrap_or_else(|| panic!("no dse.pareto record in {text}"));
        let front = pareto.get("front").and_then(|f| f.as_arr()).unwrap();
        assert!(!front.is_empty(), "{text}");
        assert!(front.iter().all(|p| p.get("id").is_some()
            && p.get("cycles").is_some()
            && p.get("energy_pj").is_some()));
        std::fs::remove_file(&path).ok();
        // --pareto belongs to dse alone.
        assert!(run(&argv("sweep --param grid --shape m16n256k256 --pareto")).is_err());
    }

    #[test]
    fn dse_resumed_rankings_rehydrate_or_flag_partial() {
        // The resume-then-rank regression, end to end: with --cache the
        // resumed pass rehydrates every row and reprints the complete
        // ranking; without it the best-EDP line says what's missing
        // instead of silently excluding the resumed rows.
        let dir = tmp_dir("dse-rehydrate");
        let ckpt = tmp_path("dse-rehydrate-ckpt");
        std::fs::remove_file(&ckpt).ok();
        let base = "dse --shape m16n256k256 --param batch=16,32 --param arch=pacq,is --pareto";
        let with = |extra: &[&str]| {
            let mut a = argv(base);
            a.extend(extra.iter().map(|s| s.to_string()));
            a.extend(["--checkpoint".to_string(), ckpt.clone()]);
            a
        };
        let first = run(&with(&["--cache", &dir])).expect("first pass");
        assert!(first.contains("executed 8"), "{first}");
        let best_line = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("best EDP"))
                .map(str::to_string)
                .unwrap_or_default()
        };
        assert!(!best_line(&first).contains("partial"), "{first}");

        let resumed = run(&with(&["--cache", &dir])).expect("cached resume");
        assert!(resumed.contains("resumed 8, executed 0"), "{resumed}");
        assert_eq!(
            best_line(&first),
            best_line(&resumed),
            "rehydrated ranking must equal the fresh one\n{first}\n---\n{resumed}"
        );
        assert!(!resumed.contains("done (resumed)"), "{resumed}");

        // Cache-less resume: rows can't rehydrate, so the ranking and
        // the Pareto header are explicitly partial (and no best-EDP
        // winner is invented from zero completed rows).
        let dry = run(&with(&[])).expect("cache-less resume");
        assert!(dry.contains("resumed 8, executed 0"), "{dry}");
        assert!(dry.contains("(partial: 8 resumed rows excluded)"), "{dry}");
        assert!(!dry.contains("best EDP:"), "{dry}");

        std::fs::remove_file(&ckpt).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    fn write_template(tag: &str, text: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("pacq-cli-tpl-{}-{tag}.toml", std::process::id()));
        std::fs::write(&p, text).unwrap();
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn arch_template_flag_reproduces_the_builtin_machine() {
        let path = write_template("volta", &crate::ArchTemplate::volta_like().render());
        let mut args = argv("analyze --shape m16n256k256 --arch std");
        let builtin = run(&args).expect("builtin runs");
        args = argv("analyze --shape m16n256k256");
        args.extend(["--arch-template".to_string(), path.clone()]);
        let templated = run(&args).expect("template runs");
        assert_eq!(
            builtin, templated,
            "the volta-like template must reproduce the hardcoded report bit for bit"
        );
        // The template pins the dataflow: --arch conflicts.
        let mut conflict = argv("analyze --shape m16n256k256 --arch pacq");
        conflict.extend(["--arch-template".to_string(), path.clone()]);
        let err = run(&conflict).unwrap_err();
        assert!(err.is_usage(), "{err}");
        assert!(err.to_string().contains("pins"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn arch_template_errors_are_typed() {
        // Missing file: I/O error, exit 6.
        let err = run(&[
            "analyze".to_string(),
            "--shape".to_string(),
            "m16n16k16".to_string(),
            "--arch-template".to_string(),
            "/nonexistent/x.toml".to_string(),
        ])
        .unwrap_err();
        assert_eq!(err.exit_code(), 6, "{err}");
        // Broken template: typed template error, exit 9, naming the file.
        let path = write_template("broken", "schema = \"pacq-arch/v1\"\nname = \"x\"\n");
        let err = run(&[
            "analyze".to_string(),
            "--shape".to_string(),
            "m16n16k16".to_string(),
            format!("--arch-template={path}"),
        ])
        .unwrap_err();
        assert_eq!(err.exit_code(), 9, "{err}");
        assert!(err.to_string().contains(&path), "{err}");
        std::fs::remove_file(&path).ok();
        // Commands with no machine to describe reject the flag.
        let path = write_template("volta2", &crate::ArchTemplate::volta_like().render());
        let err = run(&[
            "audit".to_string(),
            "--arch-template".to_string(),
            path.clone(),
        ])
        .unwrap_err();
        assert!(err.is_usage(), "{err}");
        std::fs::remove_file(&path).ok();
        // And a missing value is a usage error.
        assert!(run(&argv("analyze --shape m16n16k16 --arch-template")).is_err());
    }

    #[test]
    fn editing_a_template_invalidates_cache_and_checkpoint() {
        let dir = tmp_dir("tpl-cache");
        let ckpt = tmp_path("tpl-ckpt");
        std::fs::remove_file(&ckpt).ok();
        let template = crate::ArchTemplate::volta_like();
        let path = write_template("evolving", &template.render());

        let sweep_args = |tpl: &str| {
            let mut a = argv("sweep --param grid --shape m16n256k256");
            a.extend([
                "--cache".to_string(),
                dir.clone(),
                "--checkpoint".to_string(),
                ckpt.clone(),
                "--arch-template".to_string(),
                tpl.to_string(),
            ]);
            a
        };
        let first = run(&sweep_args(&path)).expect("first pass");
        assert!(first.contains("executed 36"), "{first}");
        let warm = run(&sweep_args(&path)).expect("warm pass");
        assert!(warm.contains("resumed 36, executed 0"), "{warm}");

        // Edit one access energy: same SmConfig, different machine.
        let mut edited = template.clone();
        edited.l1.access_energy_pj_per_word16 = Some(3.5);
        std::fs::write(&path, edited.render()).unwrap();
        let err = run(&sweep_args(&path)).unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        assert!(
            err.to_string().contains("belongs to a different run"),
            "{err}"
        );

        // Without the stale checkpoint the run proceeds — and gets zero
        // cache hits, because the template digest is in every key.
        let mut fresh = argv("sweep --param grid --shape m16n256k256");
        fresh.extend([
            "--cache".to_string(),
            dir.clone(),
            "--arch-template".to_string(),
            path.clone(),
        ]);
        let out = run(&fresh).expect("edited template runs");
        assert!(out.contains("cache: 0 hits, 36 misses"), "{out}");

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&ckpt).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn options_affect_the_simulation() {
        let d1 = run(&argv("analyze --shape m16n256k256 --dup 1")).unwrap();
        let d4 = run(&argv("analyze --shape m16n256k256 --dup 4")).unwrap();
        assert_ne!(d1, d4);
        let int2 = run(&argv("analyze --shape m16n256k256 --precision int2")).unwrap();
        assert!(int2.contains("INT2"));
    }
}
