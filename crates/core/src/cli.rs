//! The `pacq` command-line interface (library side, so it is testable).
//!
//! Hand-rolled argument parsing — the workspace deliberately keeps its
//! dependency set to the numeric essentials (see DESIGN.md §8).

use crate::par;
use crate::report::{Comparison, GemmReport};
use crate::runner::GemmRunner;
use core::fmt::Write as _;
use pacq_error::{PacqError, PacqResult};
use pacq_fp16::WeightPrecision;
use pacq_quant::GroupShape;
use pacq_simt::{Architecture, GemmShape, SmConfig, Workload};
use rayon::prelude::*;

/// Usage text shown by `pacq help` and on errors.
pub const USAGE: &str = "\
pacq — PacQ hyper-asymmetric GEMM simulator (DAC 2025 reproduction)

USAGE:
  pacq analyze --shape mMnNkK [--arch std|packedk|pacq] [--precision int4|int2]
               [--group g128|g256|g32x4|g64x4|gK] [--dup 1|2|4] [--width 4|8|16]
               [--json]
  pacq compare --shape mMnNkK [--precision int4|int2] [--group ...]
  pacq sweep --param batch|dup|width --shape mMnNkK [--precision int4|int2]
  pacq help

Every command also accepts --jobs N (worker threads for sweeps and
functional execution; defaults to the PACQ_JOBS environment variable,
then the host parallelism). Results are bit-identical at any job count.

EXAMPLES:
  pacq analyze --shape m16n4096k4096 --arch pacq
  pacq compare --shape m16n11008k4096 --precision int2
  pacq sweep --param batch --shape m16n4096k4096";

fn err(msg: impl Into<String>) -> PacqError {
    PacqError::usage(msg)
}

/// Runs the CLI on pre-split arguments, returning the output text.
///
/// # Errors
///
/// Returns [`PacqError::Usage`] for any unknown command, missing or
/// malformed option, and propagates typed simulator errors.
pub fn run(args: &[String]) -> PacqResult<String> {
    let (args, jobs) = par::take_jobs_flag(args)?;
    let env_jobs = par::validated_env_jobs()?;
    // Only touch the global pool when the user asked for a count — a
    // plain invocation must not clobber a programmatically configured
    // pool (and concurrent unit tests share the process-wide setting).
    if jobs.is_some() || env_jobs.is_some() {
        par::configure_jobs(jobs.or(env_jobs));
    }
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        None | Some("help") | Some("--help") | Some("-h") => Ok(format!("{USAGE}\n")),
        Some("analyze") => analyze(&args[1..]),
        Some("compare") => compare(&args[1..]),
        Some("sweep") => sweep(&args[1..]),
        Some(other) => Err(err(format!("unknown command `{other}`"))),
    }
}

/// Parsed common options.
struct Options {
    shape: GemmShape,
    precision: WeightPrecision,
    arch: Architecture,
    group: GroupShape,
    dup: usize,
    width: usize,
    json: bool,
    param: Option<String>,
}

fn parse_options(args: &[String], require_shape: bool) -> PacqResult<Options> {
    let mut shape = None;
    let mut precision = WeightPrecision::Int4;
    let mut arch = Architecture::Pacq;
    let mut group = GroupShape::G128;
    let mut dup = 2usize;
    let mut width = 4usize;
    let mut json = false;
    let mut param = None;

    let mut it = args.iter().map(String::as_str).peekable();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> PacqResult<&str> {
            it.next()
                .ok_or_else(|| err(format!("missing value for {name}")))
        };
        match flag {
            "--shape" => shape = Some(parse_shape(value("--shape")?)?),
            "--precision" => {
                precision = match value("--precision")? {
                    "int4" | "INT4" => WeightPrecision::Int4,
                    "int2" | "INT2" => WeightPrecision::Int2,
                    other => return Err(err(format!("unknown precision `{other}`"))),
                }
            }
            "--arch" => {
                arch = match value("--arch")? {
                    "std" | "standard" | "dequant" => Architecture::StandardDequant,
                    "packedk" | "packed-k" | "pbk" => Architecture::PackedK,
                    "pacq" => Architecture::Pacq,
                    other => return Err(err(format!("unknown architecture `{other}`"))),
                }
            }
            "--group" => group = parse_group(value("--group")?)?,
            "--dup" => {
                dup = value("--dup")?
                    .parse()
                    .map_err(|_| err("--dup expects 1, 2 or 4"))?;
                if !matches!(dup, 1 | 2 | 4) {
                    return Err(err("--dup expects 1, 2 or 4"));
                }
            }
            "--width" => {
                width = value("--width")?
                    .parse()
                    .map_err(|_| err("--width expects 4, 8 or 16"))?;
                if !matches!(width, 4 | 8 | 16) {
                    return Err(err("--width expects 4, 8 or 16"));
                }
            }
            "--json" => json = true,
            "--param" => param = Some(value("--param")?.to_string()),
            other => return Err(err(format!("unknown option `{other}`"))),
        }
    }

    let shape = match (shape, require_shape) {
        (Some(s), _) => s,
        (None, false) => GemmShape::M16N16K16,
        (None, true) => return Err(err("--shape is required (e.g. --shape m16n4096k4096)")),
    };
    Ok(Options {
        shape,
        precision,
        arch,
        group,
        dup,
        width,
        json,
        param,
    })
}

/// Parses the paper's `mMnNkK` shape notation.
///
/// # Errors
///
/// Returns [`PacqError::Usage`] for malformed, zero or 16-misaligned
/// extents.
pub fn parse_shape(text: &str) -> PacqResult<GemmShape> {
    let bad = || {
        err(format!(
            "malformed shape `{text}`; expected e.g. m16n4096k4096"
        ))
    };
    let rest = text.strip_prefix('m').ok_or_else(bad)?;
    let n_pos = rest.find('n').ok_or_else(bad)?;
    let k_pos = rest.find('k').ok_or_else(bad)?;
    if k_pos < n_pos {
        return Err(bad());
    }
    let m: usize = rest[..n_pos].parse().map_err(|_| bad())?;
    let n: usize = rest[n_pos + 1..k_pos].parse().map_err(|_| bad())?;
    let k: usize = rest[k_pos + 1..].parse().map_err(|_| bad())?;
    if m == 0 || n == 0 || k == 0 {
        return Err(err("shape extents must be non-zero"));
    }
    if !m.is_multiple_of(16) || !n.is_multiple_of(16) || !k.is_multiple_of(16) {
        return Err(err(format!(
            "shape {text} is not 16-aligned (the simulator tiles in 16s)"
        )));
    }
    GemmShape::try_new(m, n, k)
}

fn parse_group(text: &str) -> PacqResult<GroupShape> {
    match text {
        "g128" => Ok(GroupShape::G128),
        "g256" => Ok(GroupShape::G256),
        "g32x4" | "g[32,4]" => Ok(GroupShape::G32X4),
        "g64x4" | "g[64,4]" => Ok(GroupShape::G64X4),
        other => {
            let k: usize = other
                .strip_prefix('g')
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| err(format!("unknown group `{other}`")))?;
            if k == 0 {
                return Err(err("group size must be non-zero"));
            }
            Ok(GroupShape::along_k(k))
        }
    }
}

fn runner_for(opts: &Options) -> GemmRunner {
    let mut cfg = SmConfig::volta_like();
    cfg.adder_tree_duplication = opts.dup;
    cfg.dp_width = opts.width;
    GemmRunner::new().with_config(cfg).with_group(opts.group)
}

fn analyze(args: &[String]) -> PacqResult<String> {
    let opts = parse_options(args, true)?;
    let runner = runner_for(&opts);
    let report = runner.analyze(opts.arch, Workload::new(opts.shape, opts.precision))?;
    if opts.json {
        Ok(report_json(&report))
    } else {
        Ok(report_text(&report))
    }
}

fn compare(args: &[String]) -> PacqResult<String> {
    let opts = parse_options(args, true)?;
    let runner = runner_for(&opts);
    let wl = Workload::new(opts.shape, opts.precision);
    let cmp = Comparison::new(vec![
        runner.analyze(Architecture::StandardDequant, wl)?,
        runner.analyze(Architecture::PackedK, wl)?,
        runner.analyze(Architecture::Pacq, wl)?,
    ]);
    let mut out = String::new();
    let _ = writeln!(out, "workload {wl}, group {}:", opts.group);
    let _ = writeln!(
        out,
        "{:<28} {:>12} {:>14} {:>10} {:>10} {:>12}",
        "architecture", "cycles", "energy (uJ)", "speedup", "EDP(norm)", "RF accesses"
    );
    let edp = cmp.normalized_edp();
    let speed = cmp.normalized_speedup();
    for (i, r) in cmp.reports().iter().enumerate() {
        let _ = writeln!(
            out,
            "{:<28} {:>12} {:>14.2} {:>9.2}x {:>10.3} {:>12}",
            r.arch.to_string(),
            r.stats.total_cycles,
            r.total_energy_pj() / 1e6,
            speed[i],
            edp[i],
            r.stats.rf.total_accesses(),
        );
    }
    Ok(out)
}

fn sweep(args: &[String]) -> PacqResult<String> {
    let opts = parse_options(args, true)?;
    let param = opts
        .param
        .as_deref()
        .ok_or_else(|| err("--param is required for sweep"))?;
    let mut out = String::new();
    match param {
        // Each arm renders its sweep points into rows on the worker pool
        // (ordered collect), so the printed table is identical at any
        // `--jobs` setting.
        "batch" => {
            let _ = writeln!(
                out,
                "{:<8} {:>14} {:>14} {:>14}",
                "batch", "PacQ cycles", "speedup v std", "EDP reduction"
            );
            let runner = runner_for(&opts);
            let points: Vec<(Architecture, Workload)> = [16usize, 32, 64, 128, 256, 512]
                .iter()
                .flat_map(|&m| {
                    let wl = Workload::new(
                        GemmShape::new(m, opts.shape.n, opts.shape.k),
                        opts.precision,
                    );
                    [
                        (Architecture::StandardDequant, wl),
                        (Architecture::Pacq, wl),
                    ]
                })
                .collect();
            for pair in runner.analyze_sweep(&points)?.chunks(2) {
                let [std, pq] = pair else {
                    // chunks(2) over an even point list always yields pairs.
                    continue;
                };
                let _ = writeln!(
                    out,
                    "{:<8} {:>14} {:>13.2}x {:>13.1}%",
                    pq.workload.shape.m,
                    pq.stats.total_cycles,
                    pq.speedup_over(std),
                    100.0 * (1.0 - pq.edp_normalized_to(std)),
                );
            }
        }
        "dup" => {
            let _ = writeln!(
                out,
                "{:<6} {:>14} {:>16}",
                "dup", "PacQ cycles", "TC power (units)"
            );
            let rows: Vec<PacqResult<String>> = vec![1usize, 2, 4]
                .into_par_iter()
                .map(|dup| {
                    let mut o = opts_clone(&opts);
                    o.dup = dup;
                    let runner = runner_for(&o);
                    let r = runner.analyze(
                        Architecture::Pacq,
                        Workload::new(opts.shape, opts.precision),
                    )?;
                    let unit = pacq_energy::GemmUnit::ParallelDp {
                        width: opts.width,
                        duplication: dup,
                    };
                    Ok(format!(
                        "{:<6} {:>14} {:>16.2}\n",
                        dup,
                        r.stats.total_cycles,
                        unit.power_units()
                    ))
                })
                .collect();
            for row in rows {
                out.push_str(&row?);
            }
        }
        "width" => {
            let _ = writeln!(
                out,
                "{:<8} {:>14} {:>14}",
                "width", "PacQ cycles", "P(B)k cycles"
            );
            let rows: Vec<PacqResult<String>> = vec![4usize, 8, 16]
                .into_par_iter()
                .map(|width| {
                    let mut o = opts_clone(&opts);
                    o.width = width;
                    let runner = runner_for(&o);
                    let wl = Workload::new(opts.shape, opts.precision);
                    let pq = runner.analyze(Architecture::Pacq, wl)?;
                    let pk = runner.analyze(Architecture::PackedK, wl)?;
                    Ok(format!(
                        "DP-{:<5} {:>14} {:>14}\n",
                        width, pq.stats.total_cycles, pk.stats.total_cycles
                    ))
                })
                .collect();
            for row in rows {
                out.push_str(&row?);
            }
        }
        other => return Err(err(format!("unknown sweep parameter `{other}`"))),
    }
    Ok(out)
}

fn opts_clone(o: &Options) -> Options {
    Options {
        shape: o.shape,
        precision: o.precision,
        arch: o.arch,
        group: o.group,
        dup: o.dup,
        width: o.width,
        json: o.json,
        param: o.param.clone(),
    }
}

fn report_text(r: &GemmReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "workload:        {}", r.workload);
    let _ = writeln!(out, "architecture:    {}", r.arch);
    let _ = writeln!(out, "total cycles:    {}", r.stats.total_cycles);
    let _ = writeln!(out, "  tensor core:   {}", r.stats.tc_cycles);
    let _ = writeln!(out, "  general core:  {}", r.stats.general_cycles);
    let _ = writeln!(out, "latency:         {:.3} us", r.latency_s * 1e6);
    let _ = writeln!(out, "energy:          {:.3} uJ", r.total_energy_pj() / 1e6);
    let _ = writeln!(out, "  tensor core:   {:.3} uJ", r.energy.tc_pj / 1e6);
    let _ = writeln!(out, "  register file: {:.3} uJ", r.energy.rf_pj / 1e6);
    let _ = writeln!(out, "  L1:            {:.3} uJ", r.energy.l1_pj / 1e6);
    let _ = writeln!(out, "  DRAM:          {:.3} uJ", r.energy.dram_pj / 1e6);
    let _ = writeln!(out, "  general core:  {:.3} uJ", r.energy.general_pj / 1e6);
    let _ = writeln!(out, "EDP:             {:.6} pJ*s", r.edp_pj_s);
    let _ = writeln!(out, "RF accesses:     {}", r.stats.rf.total_accesses());
    let _ = writeln!(out, "fetch instrs:    {}", r.stats.fetch_instructions);
    let _ = writeln!(out, "buffer evicts:   {}", r.stats.buffer_evictions);
    out
}

fn report_json(r: &GemmReport) -> String {
    // Hand-rolled JSON keeps the dependency set minimal; all values are
    // numbers or simple strings, so no escaping is needed.
    format!(
        concat!(
            "{{\n",
            "  \"workload\": \"{}\",\n",
            "  \"architecture\": \"{}\",\n",
            "  \"total_cycles\": {},\n",
            "  \"tc_cycles\": {},\n",
            "  \"general_cycles\": {},\n",
            "  \"latency_s\": {:e},\n",
            "  \"energy_pj\": {:.3},\n",
            "  \"energy_breakdown_pj\": {{\n",
            "    \"tensor_core\": {:.3},\n",
            "    \"register_file\": {:.3},\n",
            "    \"l1\": {:.3},\n",
            "    \"dram\": {:.3},\n",
            "    \"buffers\": {:.3},\n",
            "    \"general_core\": {:.3}\n",
            "  }},\n",
            "  \"edp_pj_s\": {:e},\n",
            "  \"rf_accesses\": {},\n",
            "  \"fetch_instructions\": {},\n",
            "  \"buffer_evictions\": {}\n",
            "}}\n"
        ),
        r.workload,
        r.arch,
        r.stats.total_cycles,
        r.stats.tc_cycles,
        r.stats.general_cycles,
        r.latency_s,
        r.total_energy_pj(),
        r.energy.tc_pj,
        r.energy.rf_pj,
        r.energy.l1_pj,
        r.energy.dram_pj,
        r.energy.buffer_pj,
        r.energy.general_pj,
        r.edp_pj_s,
        r.stats.rf.total_accesses(),
        r.stats.fetch_instructions,
        r.stats.buffer_evictions,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_shape_accepts_paper_notation() {
        let s = parse_shape("m16n4096k4096").expect("parses");
        assert_eq!((s.m, s.n, s.k), (16, 4096, 4096));
        assert!(parse_shape("m16k16n16").is_err()); // wrong order
        assert!(parse_shape("16n16k16").is_err());
        assert!(parse_shape("m15n16k16").is_err()); // misaligned
        assert!(parse_shape("m0n16k16").is_err());
    }

    #[test]
    fn parse_group_variants() {
        assert_eq!(parse_group("g128").unwrap(), GroupShape::G128);
        assert_eq!(parse_group("g32x4").unwrap(), GroupShape::G32X4);
        assert_eq!(parse_group("g64").unwrap(), GroupShape::along_k(64));
        assert!(parse_group("h128").is_err());
    }

    #[test]
    fn help_and_empty() {
        assert!(run(&[]).unwrap().contains("USAGE"));
        assert!(run(&argv("help")).unwrap().contains("USAGE"));
    }

    #[test]
    fn analyze_produces_report() {
        let out = run(&argv("analyze --shape m16n256k256 --arch pacq")).expect("runs");
        assert!(out.contains("PacQ"));
        assert!(out.contains("total cycles"));
        assert!(out.contains("EDP"));
    }

    #[test]
    fn analyze_json_is_wellformed_enough() {
        let out = run(&argv("analyze --shape m16n256k256 --json")).expect("runs");
        assert!(out.trim_start().starts_with('{'));
        assert!(out.trim_end().ends_with('}'));
        assert!(out.contains("\"total_cycles\""));
        assert_eq!(out.matches('{').count(), out.matches('}').count());
    }

    #[test]
    fn compare_lists_three_architectures() {
        let out = run(&argv("compare --shape m16n256k256")).expect("runs");
        assert!(out.contains("Standard"));
        assert!(out.contains("P(B_x)_k"));
        assert!(out.contains("PacQ"));
    }

    #[test]
    fn sweep_batch_runs() {
        let out = run(&argv("sweep --param batch --shape m16n256k256")).expect("runs");
        assert!(out.contains("512"));
        let out = run(&argv("sweep --param dup --shape m16n256k256")).expect("runs");
        assert!(out.lines().count() >= 4);
        let out = run(&argv("sweep --param width --shape m16n256k256")).expect("runs");
        assert!(out.contains("DP-16"));
    }

    #[test]
    fn jobs_flag_is_accepted_everywhere() {
        let _guard = crate::par::test_lock();
        let out = run(&argv("sweep --param width --shape m16n256k256 --jobs 2")).expect("runs");
        assert!(out.contains("DP-16"));
        let serial = run(&argv("sweep --param width --shape m16n256k256 --jobs 1")).expect("runs");
        assert_eq!(out, serial, "sweep output must not depend on the job count");
        crate::par::configure_jobs(Some(0));
        assert!(run(&argv("analyze --shape m16n16k16 --jobs many")).is_err());
    }

    #[test]
    fn zero_jobs_rejected_with_usage_error() {
        let _guard = crate::par::test_lock();
        for cmd in [
            "analyze --shape m16n16k16 --jobs 0",
            "compare --shape m16n16k16 --jobs=0",
            "sweep --param batch --shape m16n16k16 --jobs 0",
        ] {
            let err = run(&argv(cmd)).unwrap_err();
            assert!(err.is_usage(), "{cmd}: {err}");
            assert_eq!(err.exit_code(), 2, "{cmd}");
        }
    }

    #[test]
    fn zero_jobs_env_rejected() {
        let _guard = crate::par::test_lock();
        std::env::set_var(crate::par::JOBS_ENV, "0");
        let err = run(&argv("analyze --shape m16n16k16")).unwrap_err();
        std::env::remove_var(crate::par::JOBS_ENV);
        assert!(err.is_usage(), "{err}");
        assert!(err.to_string().contains("PACQ_JOBS"), "{err}");
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&argv("analyze")).is_err()); // missing shape
        assert!(run(&argv("analyze --shape m16n16k16 --precision int5")).is_err());
        assert!(run(&argv("frobnicate")).is_err());
        assert!(run(&argv("sweep --shape m16n16k16")).is_err()); // missing param
        assert!(run(&argv("analyze --shape m16n16k16 --dup 3")).is_err());
    }

    #[test]
    fn options_affect_the_simulation() {
        let d1 = run(&argv("analyze --shape m16n256k256 --dup 1")).unwrap();
        let d4 = run(&argv("analyze --shape m16n256k256 --dup 4")).unwrap();
        assert_ne!(d1, d4);
        let int2 = run(&argv("analyze --shape m16n256k256 --precision int2")).unwrap();
        assert!(int2.contains("INT2"));
    }
}
