//! `pacq loadgen` — the load-generator harness for `pacq serve`
//! (DESIGN.md §16).
//!
//! The serving tier's scale claims (hot-tier hit rates, admission
//! fairness, tail latency) only mean something under load, so the
//! harness drives a live `pacq-serve/v1` endpoint with a deterministic
//! mixed workload and measures what comes back:
//!
//! - **Zero-lost accounting.** Every request carries a unique numeric
//!   `id`; a reply (ok *or* typed error frame) retires exactly one
//!   pending id. A missing reply is a hard, typed failure — never a
//!   silently shortened histogram. A 60-second read timeout turns a
//!   hung server into a loud error instead of a hung harness.
//! - **Deterministic mix.** `--unique N` distinct evaluation points
//!   (distinct `m`, cycling architectures and precisions) are replayed
//!   round-robin across `--requests`, so a run is reproducible and the
//!   hot-tier working set is exactly N entries.
//! - **Byte-identity sampling.** For the first `--sample` unique points
//!   the served `report` rendering is compared against a fresh
//!   in-process [`GemmRunner::analyze`] — the serve conformance
//!   contract, re-checked under concurrency (a mismatch is an
//!   audit-class error, exit 7).
//! - **Latency provenance.** Per-request latencies are merged across
//!   client threads and reported as exact nearest-rank p50/p95/p99
//!   plus a log2 histogram, both on stdout and in the `--metrics`
//!   manifest (`loadgen.*` counters and a `loadgen` result record).
//!
//! The target comes from exactly one of `--addr HOST:PORT` (a running
//! server), `--ready-log FILE` (poll a server's stdout log for its
//! ready frame — the CI pattern), or `--spawn` (bind an in-process
//! [`Server`] on an ephemeral port, sharing this invocation's
//! `--cache`/`--hot`/`--backend`, and drain it when the run ends).

use crate::cli;
use crate::runner::GemmRunner;
use crate::serve::{validate_serve_count, ServeOptions, Server};
use pacq_cache::ReportCache;
use pacq_error::{PacqError, PacqResult};
use pacq_fp16::{Backend, WeightPrecision};
use pacq_quant::GroupShape;
use pacq_simt::{Architecture, SmConfig, Workload};
use pacq_trace::Json;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::ops::Range;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Default `--requests` (one quick local run; CI and acceptance runs
/// pass their own).
pub const DEFAULT_REQUESTS: u64 = 10_000;

/// Hard cap on `--requests`.
pub const MAX_REQUESTS: u64 = 100_000_000;

/// Default / max `--clients` (pipelined connections).
pub const DEFAULT_CLIENTS: u64 = 4;
/// Hard cap on `--clients`.
pub const MAX_CLIENTS: u64 = 256;

/// Default `--window` (in-flight requests per connection). The default
/// keeps `clients × window` at half the server's default `--queue` so
/// an out-of-the-box run never trips `queue_full` backpressure.
pub const DEFAULT_WINDOW: u64 = 8;
/// Hard cap on `--window`.
pub const MAX_WINDOW: u64 = 4096;

/// Default `--unique` (distinct evaluation points in the mix).
pub const DEFAULT_UNIQUE: u64 = 64;
/// Hard cap on `--unique` (bounds the largest generated `m`).
pub const MAX_UNIQUE: u64 = 4096;

/// Default `--sample` (points re-checked for byte identity).
pub const DEFAULT_SAMPLE: u64 = 8;
/// Hard cap on `--sample`.
pub const MAX_SAMPLE: u64 = 256;

/// How long each client connection waits for one reply before calling
/// it lost. Generous: the server prices analytically in well under a
/// second even cold, so a minute of silence is a wedged server.
const READ_TIMEOUT: Duration = Duration::from_secs(60);

/// How long `--ready-log` polls for the server's ready frame.
const READY_TIMEOUT: Duration = Duration::from_secs(30);

fn io_err(context: &'static str, e: &std::io::Error) -> PacqError {
    PacqError::Io {
        context,
        message: e.to_string(),
    }
}

fn proto(message: impl Into<String>) -> PacqError {
    PacqError::protocol("loadgen", message)
}

// ---------------------------------------------------------------------
// The deterministic point mix
// ---------------------------------------------------------------------

/// One evaluation point in the mix: the wire tokens it is requested
/// with and the typed values the in-process reference recomputes from.
#[derive(Debug, Clone)]
struct MixPoint {
    shape: String,
    arch_token: &'static str,
    precision_token: &'static str,
    arch: Architecture,
    precision: WeightPrecision,
}

/// Builds `unique` distinct points: `m = 16·(i+1)` with `n = k = 256`
/// (every point is a distinct cache key by shape alone), cycling the
/// three architectures and both precisions for datapath variety.
fn point_mix(unique: usize) -> Vec<MixPoint> {
    const ARCHS: [(&str, Architecture); 3] = [
        ("pacq", Architecture::Pacq),
        ("std", Architecture::StandardDequant),
        ("packedk", Architecture::PackedK),
    ];
    const PRECS: [(&str, WeightPrecision); 2] = [
        ("int4", WeightPrecision::Int4),
        ("int2", WeightPrecision::Int2),
    ];
    (0..unique)
        .map(|i| {
            let (arch_token, arch) = ARCHS[i % ARCHS.len()];
            let (precision_token, precision) = PRECS[i % PRECS.len()];
            MixPoint {
                shape: format!("m{}n256k256", 16 * (i + 1)),
                arch_token,
                precision_token,
                arch,
                precision,
            }
        })
        .collect()
}

/// Renders the request frame for `point` under `id`.
fn request_line(id: u64, point: &MixPoint) -> String {
    let mut frame = Json::object();
    frame.set("op", "analyze");
    frame.set("id", id);
    frame.set("shape", point.shape.as_str());
    frame.set("arch", point.arch_token);
    frame.set("precision", point.precision_token);
    frame.render_line()
}

/// Recomputes `point` in-process under the serve-side defaults
/// (`volta_like`, `dup 2`, `width 4`, `g128`) without any cache, and
/// renders the report in the lossless `pacq-cache/v1` encoding — the
/// exact string a conforming server must have sent.
fn reference_line(point: &MixPoint, backend: Backend) -> PacqResult<String> {
    let mut cfg = SmConfig::volta_like();
    cfg.adder_tree_duplication = 2;
    cfg.dp_width = 4;
    let runner = GemmRunner::new()
        .with_config(cfg)
        .with_group(GroupShape::G128)
        .with_backend(backend);
    let workload = Workload::new(cli::parse_shape(&point.shape)?, point.precision);
    let report = runner.analyze(point.arch, workload)?;
    let key = runner.cache_key(point.arch, workload);
    Ok(report.to_cached().to_json(&key).render_line())
}

// ---------------------------------------------------------------------
// Client connections
// ---------------------------------------------------------------------

/// What one client connection measured.
#[derive(Debug, Default)]
struct ClientOutcome {
    /// Per-request round-trip latencies, microseconds, send order.
    latencies_us: Vec<u64>,
    /// Replies with `ok: true`.
    ok: u64,
    /// Typed error frames (still replies — never lost).
    errors: u64,
    /// `(point index, served report rendering)` for sampled points.
    captures: Vec<(usize, String)>,
}

/// Drives one pipelined connection: keeps up to `window` requests in
/// flight from the contiguous id range `ids`, retires them by echoed
/// id, and captures report renderings for point indices below
/// `sample`.
///
/// # Errors
///
/// Io for connect/write failures, protocol-class for a lost or
/// unattributable reply (timeout, early close, unknown id).
fn run_client(
    addr: &str,
    ids: Range<u64>,
    points: &Arc<Vec<MixPoint>>,
    window: usize,
    sample: usize,
) -> PacqResult<ClientOutcome> {
    let stream = TcpStream::connect(addr).map_err(|e| io_err("loadgen::connect", &e))?;
    stream
        .set_read_timeout(Some(READ_TIMEOUT))
        .map_err(|e| io_err("loadgen::connect", &e))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| io_err("loadgen::connect", &e))?;
    let mut reader = BufReader::new(stream);
    let unique = points.len() as u64;
    let mut outcome = ClientOutcome::default();
    let mut captured = vec![false; sample];
    let mut pending: HashMap<u64, Instant> = HashMap::new();
    let mut next = ids.start;
    let mut line = String::new();
    while next < ids.end || !pending.is_empty() {
        // Top up the window, then flush the burst in one syscall-ish go.
        let mut wrote = false;
        while next < ids.end && pending.len() < window {
            let point = &points[(next % unique) as usize];
            let frame = request_line(next, point);
            writer
                .write_all(frame.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .map_err(|e| io_err("loadgen::send", &e))?;
            pending.insert(next, Instant::now());
            next += 1;
            wrote = true;
        }
        if wrote {
            writer.flush().map_err(|e| io_err("loadgen::send", &e))?;
        }
        // Retire one reply. Replies are unordered across the pipeline,
        // so attribution goes by the echoed id, never by position.
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| proto(format!("reply timed out or failed: {e}")))?;
        if n == 0 {
            return Err(proto(format!(
                "server closed the connection with {} replies outstanding",
                pending.len()
            )));
        }
        let doc =
            Json::parse(line.trim()).map_err(|e| proto(format!("unparseable reply frame: {e}")))?;
        let id = doc
            .get("id")
            .and_then(Json::as_num)
            .filter(|v| v.fract() == 0.0 && *v >= 0.0)
            .map(|v| v as u64)
            .ok_or_else(|| proto("reply frame has no numeric id"))?;
        let started = pending
            .remove(&id)
            .ok_or_else(|| proto(format!("reply for unknown or already-retired id {id}")))?;
        outcome
            .latencies_us
            .push(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
        if doc.get("ok") == Some(&Json::Bool(true)) {
            outcome.ok += 1;
            let slot = (id % unique) as usize;
            if slot < sample && !captured[slot] {
                if let Some(report) = doc.get("report") {
                    outcome.captures.push((slot, report.render_line()));
                    captured[slot] = true;
                }
            }
        } else {
            outcome.errors += 1;
        }
    }
    Ok(outcome)
}

// ---------------------------------------------------------------------
// Latency statistics
// ---------------------------------------------------------------------

/// Exact nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1]
}

/// Log2 latency histogram: bucket `i` counts latencies in
/// `(2^(i-1), 2^i]` microseconds (bucket 0 is `≤ 1 µs`).
fn log2_histogram(sorted_us: &[u64]) -> Vec<(u64, u64)> {
    let mut counts: Vec<u64> = Vec::new();
    for &lat in sorted_us {
        let bucket = (64 - lat.max(1).leading_zeros() as usize)
            - usize::from(lat.is_power_of_two() || lat == 0);
        if counts.len() <= bucket {
            counts.resize(bucket + 1, 0);
        }
        counts[bucket] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, c)| (1u64 << i, c))
        .collect()
}

// ---------------------------------------------------------------------
// Target resolution
// ---------------------------------------------------------------------

/// Polls `path` for the server's `"event":"ready"` frame and returns
/// its announced `addr`. This is how CI scripts find a `--port 0`
/// server: start it with stdout redirected to a log, point the harness
/// at the log.
fn wait_for_ready(path: &str) -> PacqResult<String> {
    let deadline = Instant::now() + READY_TIMEOUT;
    loop {
        if let Ok(text) = std::fs::read_to_string(path) {
            for line in text.lines() {
                let Ok(doc) = Json::parse(line.trim()) else {
                    continue;
                };
                if doc.get("event").and_then(Json::as_str) == Some("ready") {
                    if let Some(addr) = doc.get("addr").and_then(Json::as_str) {
                        return Ok(addr.to_string());
                    }
                }
            }
        }
        if Instant::now() >= deadline {
            return Err(proto(format!(
                "no ready frame with an `addr` appeared in `{path}` within {}s",
                READY_TIMEOUT.as_secs()
            )));
        }
        thread::sleep(Duration::from_millis(50));
    }
}

/// Where the load goes.
enum Target {
    /// A server someone else is running.
    Addr(String),
    /// A server whose stdout log announces the address.
    ReadyLog(String),
    /// Bind an in-process server on an ephemeral port for this run.
    Spawn,
}

// ---------------------------------------------------------------------
// CLI entry point
// ---------------------------------------------------------------------

/// `pacq loadgen (--addr HOST:PORT | --ready-log FILE | --spawn)
/// [--requests N] [--clients N] [--window N] [--unique N] [--sample N]`
/// — drives the workload and returns the human summary.
///
/// # Errors
///
/// Usage errors for flag problems; io/protocol-class errors for
/// connection failures and lost replies; audit-class for a sampled
/// report that differs from in-process computation.
pub fn run_cli(
    args: &[String],
    cache: Option<Arc<ReportCache>>,
    backend: Backend,
) -> PacqResult<String> {
    let usage = |msg: &str| PacqError::usage(msg.to_string());
    let mut target: Option<Target> = None;
    let mut set_target = |t: Target| -> PacqResult<()> {
        if target.is_some() {
            return Err(PacqError::usage(
                "pass exactly one of --addr, --ready-log, --spawn".to_string(),
            ));
        }
        target = Some(t);
        Ok(())
    };
    let mut requests = DEFAULT_REQUESTS;
    let mut clients = DEFAULT_CLIENTS;
    let mut window = DEFAULT_WINDOW;
    let mut unique = DEFAULT_UNIQUE;
    let mut sample = DEFAULT_SAMPLE;
    let mut it = args.iter().map(String::as_str);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> PacqResult<&str> {
            it.next()
                .ok_or_else(|| PacqError::usage(format!("missing value for {name}")))
        };
        match flag {
            "--addr" => set_target(Target::Addr(value("--addr")?.to_string()))?,
            "--ready-log" => set_target(Target::ReadyLog(value("--ready-log")?.to_string()))?,
            "--spawn" => set_target(Target::Spawn)?,
            "--requests" => {
                requests = validate_serve_count(value("--requests")?, "--requests", MAX_REQUESTS)?;
            }
            "--clients" => {
                clients = validate_serve_count(value("--clients")?, "--clients", MAX_CLIENTS)?;
            }
            "--window" => {
                window = validate_serve_count(value("--window")?, "--window", MAX_WINDOW)?;
            }
            "--unique" => {
                unique = validate_serve_count(value("--unique")?, "--unique", MAX_UNIQUE)?;
            }
            "--sample" => {
                sample = validate_serve_count(value("--sample")?, "--sample", MAX_SAMPLE)?;
            }
            other => {
                return Err(PacqError::usage(format!(
                    "unknown loadgen option `{other}`"
                )))
            }
        }
    }
    let Some(target) = target else {
        return Err(usage(
            "loadgen wants a target: --addr HOST:PORT, --ready-log FILE or --spawn",
        ));
    };
    let clients = clients.min(requests).max(1);
    // Sampling more points than the mix holds would wait forever on
    // captures that cannot happen; pin instead of erroring.
    let sample = sample.min(unique) as usize;

    let spawned = match &target {
        Target::Spawn => Some(Server::bind(
            "127.0.0.1:0",
            ServeOptions {
                backend,
                ..ServeOptions::default()
            },
            cache,
        )?),
        Target::Addr(_) | Target::ReadyLog(_) => None,
    };
    let addr = match &target {
        Target::Addr(addr) => addr.clone(),
        Target::ReadyLog(path) => wait_for_ready(path)?,
        Target::Spawn => spawned
            .as_ref()
            .map(|s| s.addr().to_string())
            .unwrap_or_default(),
    };

    let points = Arc::new(point_mix(unique as usize));
    let started = Instant::now();
    let mut handles = Vec::with_capacity(clients as usize);
    let per = requests / clients;
    let extra = requests % clients;
    let mut cursor = 0u64;
    for c in 0..clients {
        let count = per + u64::from(c < extra);
        let ids = cursor..cursor + count;
        cursor += count;
        let addr = addr.clone();
        let points = Arc::clone(&points);
        handles.push(thread::spawn(move || {
            run_client(&addr, ids, &points, window as usize, sample)
        }));
    }
    let mut latencies: Vec<u64> = Vec::with_capacity(requests as usize);
    let mut ok = 0u64;
    let mut errors = 0u64;
    let mut served: Vec<Option<String>> = vec![None; sample];
    for handle in handles {
        let outcome = handle
            .join()
            .map_err(|_| proto("a client thread panicked"))??;
        latencies.extend(outcome.latencies_us);
        ok += outcome.ok;
        errors += outcome.errors;
        for (slot, rendering) in outcome.captures {
            if let Some(entry) = served.get_mut(slot) {
                entry.get_or_insert(rendering);
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    if let Some(server) = spawned {
        server.shutdown();
        server.wait()?;
    }

    // Zero-lost is the whole contract: every id must have come back.
    let replies = latencies.len() as u64;
    if replies != requests {
        return Err(proto(format!(
            "lost replies: sent {requests}, retired {replies}"
        )));
    }

    // Byte-identity spot check against fresh in-process computation.
    let mut sampled = 0u64;
    for (slot, rendering) in served.iter().enumerate() {
        let Some(rendering) = rendering else {
            // Every sampled slot got at least one ok reply unless the
            // server answered it with errors only (e.g. rate limiting);
            // that is visible in the error count, not a silent skip.
            continue;
        };
        let point = &points[slot];
        let expected = reference_line(point, backend)?;
        if *rendering != expected {
            return Err(PacqError::AuditMismatch {
                counter: "loadgen.report_bytes".to_string(),
                case: format!(
                    "{} {} {}",
                    point.shape, point.arch_token, point.precision_token
                ),
                observed: rendering.clone(),
                expected,
            });
        }
        sampled += 1;
    }

    latencies.sort_unstable();
    let (p50, p95, p99) = (
        percentile(&latencies, 50.0),
        percentile(&latencies, 95.0),
        percentile(&latencies, 99.0),
    );
    let throughput = requests as f64 / elapsed;

    pacq_trace::add_counter("loadgen.requests", requests);
    pacq_trace::add_counter("loadgen.replies", replies);
    pacq_trace::add_counter("loadgen.ok", ok);
    pacq_trace::add_counter("loadgen.errors", errors);
    pacq_trace::add_counter("loadgen.lost", 0);
    pacq_trace::add_counter("loadgen.sampled_identical", sampled);
    pacq_trace::add_counter("loadgen.p50_us", p50);
    pacq_trace::add_counter("loadgen.p95_us", p95);
    pacq_trace::add_counter("loadgen.p99_us", p99);
    if pacq_trace::is_enabled() {
        let mut record = Json::object();
        record.set("kind", "loadgen");
        record.set("requests", requests.to_string());
        record.set("clients", clients.to_string());
        record.set("window", window.to_string());
        record.set("unique", unique.to_string());
        record.set("ok", ok.to_string());
        record.set("errors", errors.to_string());
        record.set("lost", "0");
        record.set("sampled_identical", sampled.to_string());
        record.set("elapsed_s", elapsed);
        record.set("throughput_rps", throughput);
        record.set("p50_us", p50.to_string());
        record.set("p95_us", p95.to_string());
        record.set("p99_us", p99.to_string());
        let buckets = log2_histogram(&latencies)
            .into_iter()
            .map(|(le, count)| {
                let mut b = Json::object();
                b.set("le_us", le.to_string());
                b.set("count", count.to_string());
                b
            })
            .collect();
        record.set("latency_histogram_log2", Json::Arr(buckets));
        pacq_trace::record_result("loadgen", record);
    }

    Ok(format!(
        "loadgen: {requests} requests to {addr} over {clients} conns (window {window}, \
{unique} unique points): {ok} ok, {errors} errors, 0 lost in {elapsed:.3} s \
({throughput:.0} req/s)\nlatency µs: p50 {p50}, p95 {p95}, p99 {p99}; \
{sampled} sampled reports byte-identical\n"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(text: &str) -> Vec<String> {
        text.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn the_mix_is_deterministic_and_all_points_are_distinct() {
        let a = point_mix(48);
        let b = point_mix(48);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.shape, y.shape);
            assert_eq!(x.arch_token, y.arch_token);
        }
        let mut shapes: Vec<&str> = a.iter().map(|p| p.shape.as_str()).collect();
        shapes.sort_unstable();
        shapes.dedup();
        assert_eq!(shapes.len(), 48, "every point must be a distinct key");
    }

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 95.0), 95);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&[7], 50.0), 7);
        assert_eq!(percentile(&[], 99.0), 0);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let hist = log2_histogram(&[1, 2, 3, 4, 1000]);
        let total: u64 = hist.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 5);
        // 1 and 2 land in ≤1 / ≤2; 3 and 4 in ≤4; 1000 in ≤1024.
        assert_eq!(hist[0], (1, 1));
        assert_eq!(hist[1], (2, 1));
        assert_eq!(hist[2], (4, 2));
        assert_eq!(hist.last(), Some(&(1024, 1)));
    }

    #[test]
    fn flags_are_validated() {
        for bad in [
            "",                      // no target
            "--addr a:1 --spawn",    // two targets
            "--spawn --requests 0",  // zero count
            "--spawn --requests -5", // sign
            "--spawn --clients 4.0", // decimal
            "--spawn --window nope", // word
            "--spawn --frobnicate",  // unknown flag
            "--addr",                // missing value
        ] {
            let err = run_cli(&argv(bad), None, Backend::Scalar).unwrap_err();
            assert_eq!(err.exit_code(), 2, "`{bad}`: {err}");
        }
    }

    #[test]
    fn spawned_smoke_run_loses_nothing_and_matches_in_process() {
        let out = run_cli(
            &argv("--spawn --requests 96 --clients 3 --window 4 --unique 6 --sample 6"),
            None,
            Backend::Scalar,
        )
        .expect("smoke run");
        assert!(out.contains("96 requests"), "{out}");
        assert!(out.contains("96 ok, 0 errors, 0 lost"), "{out}");
        assert!(out.contains("6 sampled reports byte-identical"), "{out}");
    }
}
